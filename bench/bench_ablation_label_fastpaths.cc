// Ablation: the asymmetric label fast paths (DESIGN.md §6, EXPERIMENTS.md
// calibration notes) versus the literal linear evaluation the paper's kernel
// performs. The fast paths are exact (tests/label_checks_test.cc) and the
// *charged* virtual cycles stay linear either way; this bench shows the real
// host-time difference that makes the Figure 7/9 sweeps tractable, and how
// the naive path scales with label size while the fast path does not.
#include <benchmark/benchmark.h>

#include "src/kernel/label_checks.h"
#include "src/labels/label.h"

namespace asbestos {
namespace {

// netd-shaped receiver: n user taints at 3 in the receive label.
Label WideReceiveLabel(size_t n) {
  Label l(kDefaultReceiveLevel);
  for (size_t i = 0; i < n; ++i) {
    l.Set(Handle::FromValue(1000 + i * 3), Level::kL3);
  }
  return l;
}

// netd-shaped sender: n ⋆ capabilities plus one level-3 taint.
Label WideStarSendLabel(size_t n, Handle taint) {
  Label l(kDefaultSendLevel);
  for (size_t i = 0; i < n; ++i) {
    l.Set(Handle::FromValue(500000 + i * 3), Level::kStar);
  }
  l.Set(taint, Level::kL3);
  return l;
}

void BM_DeliveryCheckFused_WideReceiver(benchmark::State& state) {
  const Label qr = WideReceiveLabel(static_cast<size_t>(state.range(0)));
  const Handle taint = Handle::FromValue(1000);  // cleared in qr
  Label es(kDefaultSendLevel);
  es.Set(taint, Level::kL3);
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label({{Handle::FromValue(7), Level::kL0}, {taint, Level::kL3}},
                         Level::kL2);
  for (auto _ : state) {
    uint64_t work = 0;
    benchmark::DoNotOptimize(CheckDeliveryAllowed(es, qr, dr, v, pr, &work));
  }
}
BENCHMARK(BM_DeliveryCheckFused_WideReceiver)->Range(64, 1 << 14);

void BM_DeliveryCheckNaive_WideReceiver(benchmark::State& state) {
  const Label qr = WideReceiveLabel(static_cast<size_t>(state.range(0)));
  const Handle taint = Handle::FromValue(1000);
  Label es(kDefaultSendLevel);
  es.Set(taint, Level::kL3);
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label({{Handle::FromValue(7), Level::kL0}, {taint, Level::kL3}},
                         Level::kL2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeliveryCheckNaive_WideReceiver)->Range(64, 1 << 14)->Complexity(benchmark::oN);

void BM_DeliveryCheckFused_WideSender(benchmark::State& state) {
  const Handle taint = Handle::FromValue(42);
  const Label es = WideStarSendLabel(static_cast<size_t>(state.range(0)), taint);
  const Label qr({{taint, Level::kL3}}, kDefaultReceiveLevel);
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label(Level::kL3);
  for (auto _ : state) {
    uint64_t work = 0;
    benchmark::DoNotOptimize(CheckDeliveryAllowed(es, qr, dr, v, pr, &work));
  }
}
BENCHMARK(BM_DeliveryCheckFused_WideSender)->Range(64, 1 << 14);

void BM_DeliveryCheckNaive_WideSender(benchmark::State& state) {
  const Handle taint = Handle::FromValue(42);
  const Label es = WideStarSendLabel(static_cast<size_t>(state.range(0)), taint);
  const Label qr({{taint, Level::kL3}}, kDefaultReceiveLevel);
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label(Level::kL3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeliveryCheckNaive_WideSender)->Range(64, 1 << 14)->Complexity(benchmark::oN);

void BM_ContaminationFused_WideStarReceiver(benchmark::State& state) {
  // Delivery to netd: small tainted ES against a huge ⋆-rich QS.
  const Handle taint = Handle::FromValue(42);
  Label es(kDefaultSendLevel);
  es.Set(taint, Level::kL3);
  const Label qs = WideStarSendLabel(static_cast<size_t>(state.range(0)), taint);
  for (auto _ : state) {
    uint64_t work = 0;
    benchmark::DoNotOptimize(NeedsContamination(es, qs, &work));
  }
}
BENCHMARK(BM_ContaminationFused_WideStarReceiver)->Range(64, 1 << 14);

void BM_ContaminationNaive_WideStarReceiver(benchmark::State& state) {
  const Handle taint = Handle::FromValue(42);
  Label es(kDefaultSendLevel);
  es.Set(taint, Level::kL3);
  const Label qs = WideStarSendLabel(static_cast<size_t>(state.range(0)), taint);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NeedsContaminationNaive(es, qs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContaminationNaive_WideStarReceiver)
    ->Range(64, 1 << 14)
    ->Complexity(benchmark::oN);

void BM_AsymmetricJoin_GrantIntoWideLabel(benchmark::State& state) {
  // QR ⊔ DR on every ADD_TAINT delivery: a two-entry grant folded into a
  // wide receive label — chunk-sharing makes this O(small), the naive merge
  // rebuilds all n entries.
  const Label qr = WideReceiveLabel(static_cast<size_t>(state.range(0)));
  const Label dr({{Handle::FromValue(99), Level::kL3}}, Level::kStar);
  for (auto _ : state) {
    Label copy = qr;
    copy.JoinInPlace(dr);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_AsymmetricJoin_GrantIntoWideLabel)->Range(64, 1 << 14);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
