// Handle-generation microbenchmarks (paper §4/§8): the 61-bit cipher that
// makes handle values unpredictable and non-repeating.
#include <benchmark/benchmark.h>

#include "src/crypto/feistel61.h"

namespace asbestos {
namespace {

void BM_Encrypt(benchmark::State& state) {
  Feistel61 cipher(0xbeef);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Encrypt(x++ & (Feistel61::kDomain - 1)));
  }
}
BENCHMARK(BM_Encrypt);

void BM_Decrypt(benchmark::State& state) {
  Feistel61 cipher(0xbeef);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.Decrypt(x++ & (Feistel61::kDomain - 1)));
  }
}
BENCHMARK(BM_Decrypt);

void BM_HandleSequence(benchmark::State& state) {
  HandleSequence seq(0x1234);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.Next());
  }
  // Paper §5.1: exhausting the 61-bit space at 1e9 handles/second takes 73
  // years; surface the rate so the claim can be sanity-checked.
  state.counters["handles"] = benchmark::Counter(static_cast<double>(state.iterations()),
                                                 benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandleSequence);

void BM_KeySchedule(benchmark::State& state) {
  uint64_t key = 1;
  for (auto _ : state) {
    Feistel61 cipher(key++);
    benchmark::DoNotOptimize(cipher);
  }
}
BENCHMARK(BM_KeySchedule);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
