// Reproduces paper Figure 6: "Memory used by active and cached Web sessions
// as a function of the number of sessions. Includes all memory allocated by
// both kernel and user programs."
//
// Paper result: ≈1.5 4KB-pages per cached session (1 page of event-process
// user state + kernel structures), and ≈8 additional pages per active
// session (stack pages, message-queue page, modified heap/globals).
//
// Cached sessions run the paper's toy storage service with the normal
// ep_clean discipline; active sessions run workers that never clean, and we
// report the peak (the paper's "worst-case behavior, capturing the maximum
// amount of memory consumed").
#include <cstdio>
#include <cstdlib>

#include "bench/okws_bench_harness.h"

namespace {

using asbestos::bench::OkwsRunConfig;
using asbestos::bench::OkwsRunResult;
using asbestos::bench::RunOkwsWorkload;

}  // namespace

int main() {
  const bool quick = std::getenv("ASBESTOS_BENCH_QUICK") != nullptr;
  const uint64_t session_counts_full[] = {1000, 2500, 5000, 7500, 10000};
  const uint64_t session_counts_quick[] = {250, 500, 1000};
  const auto* counts = quick ? session_counts_quick : session_counts_full;
  const size_t n = quick ? 3 : 5;

  std::printf("=== Figure 6: memory used by Web sessions ===\n");
  std::printf("(paper: ~1.5 pages/cached session, ~8 extra pages/active session)\n\n");
  std::printf("%10s  %18s  %18s  %15s  %15s\n", "sessions", "cached total (pg)",
              "active total (pg)", "cached pg/sess", "active pg/sess");

  double last_cached = 0;
  double last_active = 0;
  for (size_t i = 0; i < n; ++i) {
    OkwsRunConfig cached;
    cached.sessions = counts[i];
    cached.service = "store";
    cached.total_connections = 2 * counts[i];  // two requests per session
    cached.min_connections = 0;

    OkwsRunConfig active = cached;
    active.active_memory_mode = true;

    const OkwsRunResult rc = RunOkwsWorkload(cached);
    const OkwsRunResult ra = RunOkwsWorkload(active);

    const double cached_pages =
        static_cast<double>(rc.mem_after_bytes - rc.mem_before_bytes) / 4096.0;
    const double active_pages =
        static_cast<double>(ra.mem_peak_bytes - ra.mem_before_bytes) / 4096.0;
    last_cached = rc.PagesPerSession();
    last_active = static_cast<double>(ra.mem_peak_bytes - ra.mem_before_bytes) / 4096.0 /
                  static_cast<double>(ra.sessions);
    std::printf("%10llu  %18.0f  %18.0f  %15.2f  %15.2f\n",
                static_cast<unsigned long long>(counts[i]), cached_pages, active_pages,
                last_cached, last_active);
    std::fflush(stdout);
  }
  std::printf("\npaper:    cached ~1.5 pages/session, active ~9.5 pages/session (1.5+8)\n");
  std::printf("measured: cached ~%.2f pages/session, active ~%.2f pages/session\n",
              last_cached, last_active);
  return 0;
}
