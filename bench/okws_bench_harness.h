// Shared harness for the paper-evaluation benchmarks (Figures 6-9): boots a
// fresh OKWS world with N user accounts, drives the paper's workloads
// through the simulated wire, and reports throughput, latency percentiles,
// per-component cycle attribution, and memory.
#ifndef BENCH_OKWS_BENCH_HARNESS_H_
#define BENCH_OKWS_BENCH_HARNESS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/cycles.h"

namespace asbestos::bench {

struct OkwsRunConfig {
  uint64_t sessions = 1;            // distinct users (= cached sessions)
  uint64_t total_connections = 0;   // 0 → max(4 × sessions, min_connections)
  uint64_t min_connections = 2000;  // floor for small session counts
  int concurrency = 16;             // paper: 16 maximizes OKWS/LWIP throughput
  std::string service = "echo";     // "echo" (Fig. 7-9) or "store" (Fig. 6)
  bool active_memory_mode = false;  // workers skip ep_clean (Fig. 6 "active")
  // Million-compartment scale (bench_scale): park idle event processes down
  // to compact records, and account per-user state at its dense size
  // (handle-table entries, interned binding table). Both default off — the
  // figure benches must stay byte-identical to the paper calibration.
  bool park_idle_sessions = false;
  bool scale_accounting = false;
};

struct OkwsRunResult {
  uint64_t sessions = 0;
  uint64_t connections_completed = 0;
  uint64_t failures = 0;

  // Virtual-time performance.
  double elapsed_cycles = 0;
  double throughput_conn_per_sec = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p90_us = 0;

  // Figure-9 attribution (cycles over the whole run).
  std::array<uint64_t, kComponentCount> component_cycles{};
  double KcyclesPerConn(Component c) const {
    if (connections_completed == 0) {
      return 0;
    }
    return static_cast<double>(component_cycles[static_cast<size_t>(c)]) / 1000.0 /
           static_cast<double>(connections_completed);
  }
  double TotalKcyclesPerConn() const {
    double sum = 0;
    for (int c = 0; c < kComponentCount; ++c) {
      sum += KcyclesPerConn(static_cast<Component>(c));
    }
    return sum;
  }

  // Figure-6 memory accounting (bytes).
  uint64_t mem_before_bytes = 0;
  uint64_t mem_after_bytes = 0;
  uint64_t mem_peak_bytes = 0;
  double PagesPerSession() const;
  double PeakPagesPerSession() const;

  // Scale accounting (bench_scale): the compacted per-user planes out of
  // KernelMemReport, plus the park/resume traffic this run generated.
  uint64_t session_bytes = 0;       // compact park records
  uint64_t binding_bytes = 0;       // interned idd + dbproxy binding tables
  uint64_t handle_table_bytes = 0;  // dense plain-handle entries
  uint64_t session_parks = 0;
  uint64_t session_resumes = 0;
  // The tentpole metric: total post-run kernel bytes over distinct users.
  double BytesPerUser() const;

  // Label-work telemetry (for calibration notes in EXPERIMENTS.md).
  uint64_t label_entries_visited = 0;
};

// Boots, primes nothing, runs the workload, reports. Deterministic. After
// the world is torn down, asserts (fail-fast) that every global byte ledger
// — labels, simulated pages, stores, park records, binding tables — returned
// to within a fixed epsilon of its pre-boot value, so leaks cannot hide
// behind a fresh world in the next benchmark iteration.
OkwsRunResult RunOkwsWorkload(const OkwsRunConfig& config);

// --- Scenario matrix (bench_scale) -------------------------------------------
// The examples/ demos folded in as measured, asserting scenarios: each boots
// a small dedicated kernel, drives the paper's flows, and reports counts the
// benchmark publishes. `ok` is the full expected outcome; runners abort the
// process on violation rather than report garbage timings.

// Paper §5.5: mail reader vs. untrusted attachment. The tainted attachment's
// sends must bounce off the inbox port label and the reader's receive label.
struct MailReaderScenarioResult {
  uint64_t delivered = 0;  // untainted progress + filesystem messages
  uint64_t blocked = 0;    // label-check drops of the compromised attachment
  bool ok = false;
};
MailReaderScenarioResult RunMailReaderScenario();

// Paper §5.2: MLS clearance hierarchy over two compartments. Checks the
// 3×3 flow matrix both statically (Leq) and with live sends.
struct MlsScenarioResult {
  uint64_t flows_allowed = 0;  // static matrix entries that flow
  uint64_t flows_blocked = 0;
  uint64_t delivered = 0;      // live cross-clearance sends that arrived
  uint64_t blocked_drops = 0;  // live sends the kernel dropped
  bool ok = false;
};
MlsScenarioResult RunMlsScenario();

}  // namespace asbestos::bench

#endif  // BENCH_OKWS_BENCH_HARNESS_H_
