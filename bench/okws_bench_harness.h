// Shared harness for the paper-evaluation benchmarks (Figures 6-9): boots a
// fresh OKWS world with N user accounts, drives the paper's workloads
// through the simulated wire, and reports throughput, latency percentiles,
// per-component cycle attribution, and memory.
#ifndef BENCH_OKWS_BENCH_HARNESS_H_
#define BENCH_OKWS_BENCH_HARNESS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/cycles.h"

namespace asbestos::bench {

struct OkwsRunConfig {
  uint64_t sessions = 1;            // distinct users (= cached sessions)
  uint64_t total_connections = 0;   // 0 → max(4 × sessions, min_connections)
  uint64_t min_connections = 2000;  // floor for small session counts
  int concurrency = 16;             // paper: 16 maximizes OKWS/LWIP throughput
  std::string service = "echo";     // "echo" (Fig. 7-9) or "store" (Fig. 6)
  bool active_memory_mode = false;  // workers skip ep_clean (Fig. 6 "active")
};

struct OkwsRunResult {
  uint64_t sessions = 0;
  uint64_t connections_completed = 0;
  uint64_t failures = 0;

  // Virtual-time performance.
  double elapsed_cycles = 0;
  double throughput_conn_per_sec = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p90_us = 0;

  // Figure-9 attribution (cycles over the whole run).
  std::array<uint64_t, kComponentCount> component_cycles{};
  double KcyclesPerConn(Component c) const {
    if (connections_completed == 0) {
      return 0;
    }
    return static_cast<double>(component_cycles[static_cast<size_t>(c)]) / 1000.0 /
           static_cast<double>(connections_completed);
  }
  double TotalKcyclesPerConn() const {
    double sum = 0;
    for (int c = 0; c < kComponentCount; ++c) {
      sum += KcyclesPerConn(static_cast<Component>(c));
    }
    return sum;
  }

  // Figure-6 memory accounting (bytes).
  uint64_t mem_before_bytes = 0;
  uint64_t mem_after_bytes = 0;
  uint64_t mem_peak_bytes = 0;
  double PagesPerSession() const;
  double PeakPagesPerSession() const;

  // Label-work telemetry (for calibration notes in EXPERIMENTS.md).
  uint64_t label_entries_visited = 0;
};

// Boots, primes nothing, runs the workload, reports. Deterministic.
OkwsRunResult RunOkwsWorkload(const OkwsRunConfig& config);

}  // namespace asbestos::bench

#endif  // BENCH_OKWS_BENCH_HARNESS_H_
