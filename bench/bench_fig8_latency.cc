// Reproduces paper Figure 8: "The median and 90th percentile latencies of
// requests to various server configurations" at a concurrency of four.
//
//   Paper (µs):      median   90th
//   Mod-Apache          999   1,015
//   Apache            3,374   5,262
//   OKWS, 1 session   1,875   2,384
//   OKWS, 1000 sess.  3,414   6,767
//
// Shape: Mod-Apache fastest with a flat tail; OKWS-1 beats Apache with a
// smaller variance; OKWS-1000 degrades to roughly Apache's median with a
// wider tail.
#include <cstdio>
#include <cstdlib>

#include "bench/okws_bench_harness.h"
#include "src/baseline/unix_sim.h"
#include "src/sim/costs.h"

namespace {

using namespace asbestos;        // NOLINT
using namespace asbestos::bench;  // NOLINT

uint64_t ToUs(uint64_t cycles) {
  return static_cast<uint64_t>(static_cast<double>(cycles) * 1e6 / costs::kCpuHz);
}

}  // namespace

int main() {
  const bool quick = std::getenv("ASBESTOS_BENCH_QUICK") != nullptr;
  const uint64_t n_requests = quick ? 2000 : 10000;

  std::printf("=== Figure 8: request latency at concurrency 4 ===\n\n");
  std::printf("%22s  %12s  %12s\n", "server", "median (us)", "90th pct (us)");

  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  mod.pool_size = 16;
  const auto mod_stats = UnixApacheSim(mod).Run(n_requests, 4);
  std::printf("%22s  %12llu  %12llu\n", "Mod-Apache",
              (unsigned long long)ToUs(mod_stats.latency_percentile_cycles(50)),
              (unsigned long long)ToUs(mod_stats.latency_percentile_cycles(90)));

  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  const auto cgi_stats = UnixApacheSim(cgi).Run(n_requests, 4);
  const uint64_t apache_p50 = ToUs(cgi_stats.latency_percentile_cycles(50));
  std::printf("%22s  %12llu  %12llu\n", "Apache", (unsigned long long)apache_p50,
              (unsigned long long)ToUs(cgi_stats.latency_percentile_cycles(90)));

  OkwsRunConfig one;
  one.sessions = 1;
  one.concurrency = 4;
  one.min_connections = quick ? 1000 : 4000;
  const OkwsRunResult r1 = RunOkwsWorkload(one);
  std::printf("%22s  %12llu  %12llu\n", "OKWS, 1 session",
              (unsigned long long)r1.latency_p50_us, (unsigned long long)r1.latency_p90_us);

  OkwsRunConfig thousand;
  thousand.sessions = quick ? 200 : 1000;
  thousand.concurrency = 4;
  thousand.total_connections = 4 * thousand.sessions;
  thousand.min_connections = 0;
  const OkwsRunResult r1000 = RunOkwsWorkload(thousand);
  std::printf("%18s %4llu  %12llu  %12llu\n", "OKWS,",
              (unsigned long long)thousand.sessions,
              (unsigned long long)r1000.latency_p50_us,
              (unsigned long long)r1000.latency_p90_us);

  std::printf("\nshape checks (paper):\n");
  std::printf("  Mod-Apache < OKWS-1 < Apache (medians): %s\n",
              ToUs(mod_stats.latency_percentile_cycles(50)) < r1.latency_p50_us &&
                      r1.latency_p50_us < apache_p50
                  ? "yes"
                  : "NO");
  std::printf("  OKWS-many approaches Apache median: %s (%llu vs %llu)\n",
              4 * r1000.latency_p50_us > 3 * apache_p50 ? "yes" : "NO",
              (unsigned long long)r1000.latency_p50_us, (unsigned long long)apache_p50);
  std::printf("  OKWS-many tail wider than OKWS-1 tail: %s\n",
              (r1000.latency_p90_us - r1000.latency_p50_us) >
                      (r1.latency_p90_us - r1.latency_p50_us)
                  ? "yes"
                  : "NO");
  return 0;
}
