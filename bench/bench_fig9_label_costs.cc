// Reproduces paper Figure 9: "The average cost in Kcycles/connection of
// various Asbestos components, as the number of cached sessions increases."
//
// Paper result: OKWS and Network code cost roughly constant per connection;
// kernel IPC (send/recv including all label operations) and OKDB grow
// roughly linearly with the number of cached sessions, because idd and
// ok-dbproxy's send labels hold two handles per user, netd's receive label
// accumulates one decontamination per user, and user lookups scan the
// password table. Around 3,000 sessions IPC+labels passes the network
// stack. "Linear scaling factors in our label implementation lead to linear
// performance degradation as labels increase in size."
#include <cstdio>
#include <cstdlib>

#include "bench/okws_bench_harness.h"

namespace {

using namespace asbestos;        // NOLINT
using namespace asbestos::bench;  // NOLINT

}  // namespace

int main() {
  const bool quick = std::getenv("ASBESTOS_BENCH_QUICK") != nullptr;
  const uint64_t full[] = {1, 1000, 3000, 5000, 7500, 10000};
  const uint64_t fast[] = {1, 500, 1000};
  const auto* counts = quick ? fast : full;
  const size_t n = quick ? 3 : 6;

  std::printf("=== Figure 9: Kcycles/connection by component vs cached sessions ===\n\n");
  std::printf("%10s  %8s  %8s  %12s  %8s  %8s  %10s\n", "sessions", "OKWS", "Network",
              "Kernel IPC", "OKDB", "Other", "total");

  double ipc_first = 0;
  double ipc_last = 0;
  double net_last = 0;
  double db_first = 0;
  double db_last = 0;
  for (size_t i = 0; i < n; ++i) {
    OkwsRunConfig config;
    config.sessions = counts[i];
    config.concurrency = 16;
    config.min_connections = 2000;
    const OkwsRunResult r = RunOkwsWorkload(config);
    std::printf("%10llu  %8.0f  %8.0f  %12.0f  %8.0f  %8.0f  %10.0f\n",
                static_cast<unsigned long long>(counts[i]),
                r.KcyclesPerConn(Component::kOkws), r.KcyclesPerConn(Component::kNetwork),
                r.KcyclesPerConn(Component::kKernelIpc), r.KcyclesPerConn(Component::kOkdb),
                r.KcyclesPerConn(Component::kOther), r.TotalKcyclesPerConn());
    std::fflush(stdout);
    if (i == 0) {
      ipc_first = r.KcyclesPerConn(Component::kKernelIpc);
      db_first = r.KcyclesPerConn(Component::kOkdb);
    }
    ipc_last = r.KcyclesPerConn(Component::kKernelIpc);
    net_last = r.KcyclesPerConn(Component::kNetwork);
    db_last = r.KcyclesPerConn(Component::kOkdb);
  }

  std::printf("\nshape checks (paper):\n");
  std::printf("  Kernel IPC grows with sessions: %s (%.0fK -> %.0fK)\n",
              ipc_last > 2 * ipc_first ? "yes" : "NO", ipc_first, ipc_last);
  std::printf("  OKDB grows with sessions: %s (%.0fK -> %.0fK)\n",
              db_last > 2 * db_first ? "yes" : "NO", db_first, db_last);
  std::printf("  Kernel IPC eventually passes the network stack: %s (%.0fK vs %.0fK)\n",
              ipc_last > net_last ? "yes" : "NO", ipc_last, net_last);
  std::printf("  degradation is linear, not quadratic/exponential (paper §9.3)\n");
  return 0;
}
