// Event-process microbenchmarks (paper §6): creation and context switching
// cost versus full processes, kernel-state footprint (44 vs 320 bytes), and
// COW page behaviour — the mechanisms behind Figure 6.
#include <benchmark/benchmark.h>

#include "src/kernel/kernel.h"

namespace asbestos {
namespace {

class Sink : public ProcessCode {
 public:
  void HandleMessage(ProcessContext&, const Message&) override {}
};

class RealmSink : public ProcessCode {
 public:
  explicit RealmSink(Handle* port_out) : port_out_(port_out) {}
  void Start(ProcessContext& ctx) override {
    *port_out_ = ctx.NewPort(Label::Top());
    ASB_ASSERT(ctx.SetPortLabel(*port_out_, Label::Top()) == Status::kOk);
    ctx.EnterEventRealm();
  }
  void HandleMessage(ProcessContext& ctx, const Message&) override {
    // Touch one page of state, like a minimal session, then exit so the
    // benchmark measures pure create/destroy cost.
    const uint64_t one = 1;
    ctx.WriteMem(0x40000, &one, sizeof(one));
    ctx.EpExit();
  }

 private:
  Handle* port_out_;
};

void BM_EventProcessCreateDestroy(benchmark::State& state) {
  Kernel kernel(7);
  Handle service;
  SpawnArgs wargs;
  wargs.name = "worker";
  kernel.CreateProcess(std::make_unique<RealmSink>(&service), wargs);
  SpawnArgs sargs;
  sargs.name = "driver";
  const ProcessId driver = kernel.CreateProcess(std::make_unique<Sink>(), sargs);
  for (auto _ : state) {
    kernel.WithProcessContext(driver, [&](ProcessContext& ctx) {
      ASB_ASSERT(ctx.Send(service, Message()) == Status::kOk);
    });
    kernel.RunUntilIdle();
  }
  state.counters["eps_created"] =
      static_cast<double>(kernel.stats().eps_created);
}
BENCHMARK(BM_EventProcessCreateDestroy);

void BM_ProcessCreateDestroy(benchmark::State& state) {
  // The forked-server alternative the paper argues against.
  Kernel kernel(7);
  for (auto _ : state) {
    SpawnArgs args;
    args.name = "ephemeral";
    const ProcessId pid = kernel.CreateProcess(std::make_unique<Sink>(), args);
    kernel.WithProcessContext(pid, [](ProcessContext& ctx) {
      const uint64_t one = 1;
      ctx.WriteMem(ctx.AllocPages(1), &one, sizeof(one));
      ctx.Exit();
    });
  }
}
BENCHMARK(BM_ProcessCreateDestroy);

void BM_KernelStateFootprint(benchmark::State& state) {
  // Reports the paper's §6.1 kernel-state numbers as counters.
  for (auto _ : state) {
    benchmark::DoNotOptimize(kEpKernelBytes);
  }
  state.counters["ep_kernel_bytes"] = static_cast<double>(kEpKernelBytes);          // 44
  state.counters["process_kernel_bytes"] = static_cast<double>(kProcessKernelBytes);  // 320
  state.counters["vnode_bytes"] = static_cast<double>(kVnodeBytes);                 // 64
}
BENCHMARK(BM_KernelStateFootprint);

void BM_CowWriteFirstTouch(benchmark::State& state) {
  // First write to a page in an event process copies it (COW fault).
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  as.Write(nullptr, addr, "base", 4);
  for (auto _ : state) {
    PageOverlay overlay;
    benchmark::DoNotOptimize(as.Write(&overlay, addr, "x", 1));
  }
}
BENCHMARK(BM_CowWriteFirstTouch);

void BM_CowWriteWarm(benchmark::State& state) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  PageOverlay overlay;
  as.Write(&overlay, addr, "x", 1);  // page already private
  for (auto _ : state) {
    benchmark::DoNotOptimize(as.Write(&overlay, addr, "y", 1));
  }
}
BENCHMARK(BM_CowWriteWarm);

void BM_ThousandsOfCachedSessions(benchmark::State& state) {
  // §6.2's claim: "many thousands of them can theoretically coexist without
  // resource strain" — create N event processes, each holding one private
  // page, and report kernel bytes per session.
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    Kernel kernel(7);
    Handle service;
    SpawnArgs wargs;
    wargs.name = "worker";
    class KeepAlive : public ProcessCode {
     public:
      explicit KeepAlive(Handle* port_out) : port_out_(port_out) {}
      void Start(ProcessContext& ctx) override {
        *port_out_ = ctx.NewPort(Label::Top());
        ASB_ASSERT(ctx.SetPortLabel(*port_out_, Label::Top()) == Status::kOk);
        ctx.EnterEventRealm();
      }
      void HandleMessage(ProcessContext& ctx, const Message&) override {
        const uint64_t one = 1;
        ctx.WriteMem(0x40000, &one, sizeof(one));  // one private page, then yield
      }

     private:
      Handle* port_out_;
    };
    kernel.CreateProcess(std::make_unique<KeepAlive>(&service), wargs);
    SpawnArgs dargs;
    dargs.name = "driver";
    const ProcessId driver = kernel.CreateProcess(std::make_unique<Sink>(), dargs);
    const uint64_t before = kernel.MemReport().total_bytes();
    for (uint64_t i = 0; i < n; ++i) {
      kernel.WithProcessContext(driver, [&](ProcessContext& ctx) {
        ASB_ASSERT(ctx.Send(service, Message()) == Status::kOk);
      });
    }
    kernel.RunUntilIdle();
    const uint64_t after = kernel.MemReport().total_bytes();
    state.counters["bytes_per_session"] =
        static_cast<double>(after - before) / static_cast<double>(n);
  }
}
BENCHMARK(BM_ThousandsOfCachedSessions)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
