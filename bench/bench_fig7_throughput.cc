// Reproduces paper Figure 7: "Throughput for various numbers of cached
// sessions in OKWS, compared with Apache and Mod-Apache."
//
// Paper result: Mod-Apache ≈ 2,800 conn/s and Apache ≈ 1,050 conn/s
// (flat: neither knows about sessions or isolation); OKWS starts near
// 1,500 conn/s with one session, outperforms Apache until somewhere over
// 1,000 cached sessions, and degrades roughly linearly (label sizes grow
// with sessions) to about half of Apache's throughput at 10,000 sessions.
#include <cstdio>
#include <cstdlib>

#include "bench/okws_bench_harness.h"
#include "src/baseline/unix_sim.h"
#include "src/sim/costs.h"

namespace {

using namespace asbestos;        // NOLINT
using namespace asbestos::bench;  // NOLINT

}  // namespace

int main() {
  const bool quick = std::getenv("ASBESTOS_BENCH_QUICK") != nullptr;

  // Baselines (paper: 400-way concurrency maximizes Apache, 16 Mod-Apache).
  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  const double apache =
      UnixApacheSim(cgi).Run(quick ? 2000 : 20000, 400).throughput_per_sec(costs::kCpuHz);
  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  mod.pool_size = 16;
  const double mod_apache =
      UnixApacheSim(mod).Run(quick ? 2000 : 20000, 16).throughput_per_sec(costs::kCpuHz);

  std::printf("=== Figure 7: throughput vs cached OKWS sessions ===\n");
  std::printf("(144-byte responses; OKWS concurrency 16; 4 connections/session)\n\n");
  std::printf("%16s  %18s\n", "config", "connections/sec");
  std::printf("%16s  %18.0f\n", "Apache", apache);
  std::printf("%16s  %18.0f\n", "Mod-Apache", mod_apache);

  const uint64_t full[] = {1, 100, 1000, 3000, 5000, 7500, 10000};
  const uint64_t fast[] = {1, 100, 1000};
  const auto* counts = quick ? fast : full;
  const size_t n = quick ? 3 : 7;

  double okws_first = 0;
  double okws_last = 0;
  for (size_t i = 0; i < n; ++i) {
    OkwsRunConfig config;
    config.sessions = counts[i];
    config.service = "echo";
    config.concurrency = 16;
    config.min_connections = 2000;
    const OkwsRunResult r = RunOkwsWorkload(config);
    std::printf("%11s %4llu  %18.0f\n", "OKWS", static_cast<unsigned long long>(counts[i]),
                r.throughput_conn_per_sec);
    std::fflush(stdout);
    if (i == 0) {
      okws_first = r.throughput_conn_per_sec;
    }
    okws_last = r.throughput_conn_per_sec;
  }

  std::printf("\nshape checks (paper):\n");
  std::printf("  OKWS@1 between Apache and Mod-Apache: %s (%.0f in [%.0f, %.0f])\n",
              okws_first > apache && okws_first < mod_apache ? "yes" : "NO", okws_first,
              apache, mod_apache);
  std::printf("  OKWS throughput declines with sessions: %s (%.0f -> %.0f)\n",
              okws_last < okws_first ? "yes" : "NO", okws_first, okws_last);
  if (!quick) {
    std::printf("  OKWS@10000 roughly half of Apache: measured ratio %.2f (paper ~0.5)\n",
                okws_last / apache);
  }
  return 0;
}
