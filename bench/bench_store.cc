// Durable-store microbenchmarks: label pickle/unpickle throughput, WAL
// append rate, sharded put/group-commit throughput, and recovery time versus
// record count. These bound the cost of the durability layer that backs the
// file server and idd — the paper's performance story (Figures 7-9) assumes
// storage is not the bottleneck, and this bench is where we check that
// assumption as the store grows features (replication is the remaining
// ROADMAP follow-on).
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_store.json (google-benchmark JSON)
// into the working directory so the perf trajectory is tracked across PRs.
// `--smoke` shrinks every measurement to a sanity-check run for CI.
#include <benchmark/benchmark.h>
#include <stdlib.h>
#include <unistd.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/reset.h"
#include "src/labels/label.h"
#include "src/store/label_codec.h"
#include "src/store/store.h"
#include "src/store/wal.h"

namespace asbestos {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/asbestos_bench.XXXXXX";
  ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
  return tmpl;
}

// A RAM-backed directory (tmpfs), for the *Ram bench variants that isolate
// the store machinery's own overhead from the storage device's cache-flush
// latency — on virtualized disks a single flush costs ~200µs no matter how
// little is written, which floors any durable-vs-volatile ratio regardless
// of how cheap the batching discipline is. Empty when no tmpfs is writable;
// those variants then skip.
std::string MakeRamDir() {
  if (::access("/dev/shm", W_OK) != 0) {
    return "";
  }
  char tmpl[] = "/dev/shm/asbestos_bench.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    return "";
  }
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  // Stores are one level deep; remove files then the directories.
  const std::string cmd = "rm -rf '" + dir + "'";
  ASB_ASSERT(::system(cmd.c_str()) == 0);
}

Label MakeLabel(size_t entries, Level level, Level def) {
  Label l(def);
  for (size_t i = 0; i < entries; ++i) {
    l.Set(Handle::FromValue(1 + i * 7), level);
  }
  return l;
}

// --- Label codec -----------------------------------------------------------

void BM_PickleLabel(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const Label l = MakeLabel(static_cast<size_t>(state.range(0)), Level::kStar, Level::kL3);
  uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string pickled = codec::PickleLabel(l);
    bytes += pickled.size();
    benchmark::DoNotOptimize(pickled);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["entries"] = static_cast<double>(state.range(0));
  state.counters["pickled_bytes"] =
      static_cast<double>(codec::PickleLabel(l).size());
}
BENCHMARK(BM_PickleLabel)->Arg(0)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_UnpickleLabel(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const Label l = MakeLabel(static_cast<size_t>(state.range(0)), Level::kStar, Level::kL3);
  const std::string pickled = codec::PickleLabel(l);
  for (auto _ : state) {
    Label out;
    ASB_ASSERT(codec::UnpickleLabel(pickled, &out) == Status::kOk);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * pickled.size()));
}
BENCHMARK(BM_UnpickleLabel)->Arg(0)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

// --- WAL append rate -------------------------------------------------------

void BM_WalAppend(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const std::string dir = MakeTempDir();
  Wal wal;
  ASB_ASSERT(wal.Open(dir + "/wal", [](std::string_view) {}) == Status::kOk);
  const std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    ASB_ASSERT(wal.Append(record) == Status::kOk);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * record.size()));
  wal.Close();
  RemoveTree(dir);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024)->Arg(16384);

// --- Store mutation (log + apply, no fsync) --------------------------------

void BM_StorePut(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const std::string dir = MakeTempDir();
  StoreOptions opts;
  opts.dir = dir + "/store";
  auto store = DurableStore::Open(std::move(opts));
  ASB_ASSERT(store.ok());
  const Label secrecy({{Handle::FromValue(42), Level::kL3}}, Level::kStar);
  const Label integrity({{Handle::FromValue(43), Level::kL0}}, Level::kL3);
  const std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    ASB_ASSERT(store.value()->Put("key" + std::to_string(i++ % 1000), value, secrecy,
                                  integrity) == Status::kOk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  store.value().reset();
  RemoveTree(dir);
}
BENCHMARK(BM_StorePut);

// Non-durable puts across N shards: the routing + per-shard map cost as the
// log count grows. Arg = shard count.
void RunStorePutSharded(benchmark::State& state, const std::string& dir) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  StoreOptions opts;
  opts.dir = dir + "/store";
  opts.shards = static_cast<uint32_t>(state.range(0));
  auto store = DurableStore::Open(std::move(opts));
  ASB_ASSERT(store.ok());
  const Label secrecy({{Handle::FromValue(42), Level::kL3}}, Level::kStar);
  const std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    ASB_ASSERT(store.value()->Put("key" + std::to_string(i++ % 1000), value, secrecy,
                                  Label::Top()) == Status::kOk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["shards"] = static_cast<double>(state.range(0));
  store.value().reset();
  RemoveTree(dir);
}

void BM_StorePutSharded(benchmark::State& state) { RunStorePutSharded(state, MakeTempDir()); }
BENCHMARK(BM_StorePutSharded)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

void BM_StorePutShardedRam(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const std::string dir = MakeRamDir();
  if (dir.empty()) {
    state.SkipWithError("no writable tmpfs");
    return;
  }
  RunStorePutSharded(state, dir);
}
BENCHMARK(BM_StorePutShardedRam)->Arg(4)->UseRealTime();

// Durable puts under group commit: every put appends, and every `batch`
// puts one Sync() flushes the dirty shards (concurrently) — the exact
// discipline the end-of-pump OnIdle flush applies (batch ≈ mutations per
// pump iteration). Arg = batch size; batch 1 is the old per-mutation fsync
// regime. The acceptance bar — batch 64 within 2× of non-durable at the
// same shard count — is measured by the Ram pair, which isolates the
// store's own work; the disk pair additionally pays the device's per-flush
// floor (~200µs on virtualized disks, ~3µs/put at batch 64), which bounds
// the disk ratio at ~2.5× no matter the software.
void RunStorePutGroupCommit(benchmark::State& state, const std::string& dir) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  StoreOptions opts;
  opts.dir = dir + "/store";
  opts.shards = 4;
  auto store = DurableStore::Open(std::move(opts));
  ASB_ASSERT(store.ok());
  const uint64_t batch = static_cast<uint64_t>(state.range(0));
  const Label secrecy({{Handle::FromValue(42), Level::kL3}}, Level::kStar);
  const std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    ASB_ASSERT(store.value()->Put("key" + std::to_string(i % 1000), value, secrecy,
                                  Label::Top()) == Status::kOk);
    if (++i % batch == 0) {
      ASB_ASSERT(store.value()->Sync() == Status::kOk);
    }
  }
  ASB_ASSERT(store.value()->Sync() == Status::kOk);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["batch"] = static_cast<double>(batch);
  store.value().reset();
  RemoveTree(dir);
}

void BM_StorePutGroupCommit(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  RunStorePutGroupCommit(state, MakeTempDir());
}
BENCHMARK(BM_StorePutGroupCommit)->Arg(1)->Arg(8)->Arg(64)->UseRealTime();

void BM_StorePutGroupCommitRam(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const std::string dir = MakeRamDir();
  if (dir.empty()) {
    state.SkipWithError("no writable tmpfs");
    return;
  }
  RunStorePutGroupCommit(state, dir);
}
BENCHMARK(BM_StorePutGroupCommitRam)->Arg(1)->Arg(64)->UseRealTime();

// --- Recovery time versus record count -------------------------------------

void BM_Recovery(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    opts.compact_min_log_records = ~0ULL;  // keep everything in the log
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const Label secrecy({{Handle::FromValue(7), Level::kL3}}, Level::kStar);
    for (uint64_t i = 0; i < n; ++i) {
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(128, 'v'), secrecy,
                                    Label::Top()) == Status::kOk);
    }
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.SetComplexityN(state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_Recovery)->Arg(100)->Arg(1000)->Arg(10000)->Complexity(benchmark::oN);

// Recovery from a snapshot instead of a raw log (post-compaction shape).
void BM_RecoveryFromSnapshot(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const Label secrecy({{Handle::FromValue(7), Level::kL3}}, Level::kStar);
    for (uint64_t i = 0; i < n; ++i) {
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(128, 'v'), secrecy,
                                    Label::Top()) == Status::kOk);
    }
    ASB_ASSERT(store.value()->Compact() == Status::kOk);
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.SetComplexityN(state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_RecoveryFromSnapshot)->Arg(100)->Arg(1000)->Arg(10000)->Complexity(benchmark::oN);

// Sharded recovery: 10k records spread over N shard logs, replayed shard by
// shard on open. Arg = shard count (1 is the flat baseline above).
void BM_RecoverySharded(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t n = 10000;
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    opts.shards = static_cast<uint32_t>(state.range(0));
    opts.compact_min_log_records = ~0ULL;  // keep everything in the logs
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const Label secrecy({{Handle::FromValue(7), Level::kL3}}, Level::kStar);
    for (uint64_t i = 0; i < n; ++i) {
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(128, 'v'), secrecy,
                                    Label::Top()) == Status::kOk);
    }
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.counters["shards"] = static_cast<double>(state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_RecoverySharded)->Arg(4)->Arg(16);

}  // namespace
}  // namespace asbestos

// Custom main instead of BENCHMARK_MAIN: default the run to writing
// BENCH_store.json (JSON results tracked across PRs) and translate the
// `--smoke` convenience flag into a minimal-time run for CI regression
// checks, where only "builds, runs, produces sane numbers" matters.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    // Exactly the output-file flag: --benchmark_out_format alone must not
    // suppress the default output file.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_store.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The unified metrics snapshot rides alongside the google-benchmark JSON
  // (same basename, .metrics.json suffix); see README "Observability".
  asbestos::obs::Registry::Get().WriteSnapshotFile("BENCH_store.metrics.json");
  return 0;
}
