// Durable-store microbenchmarks: label pickle/unpickle throughput, WAL
// append rate, and recovery time versus record count. These bound the cost
// of the durability layer that backs the file server and idd — the paper's
// performance story (Figures 7-9) assumes storage is not the bottleneck, and
// this bench is where we check that assumption as the store grows features
// (sharding and replication are ROADMAP follow-ons).
#include <benchmark/benchmark.h>
#include <stdlib.h>
#include <unistd.h>

#include <string>

#include "src/base/panic.h"
#include "src/labels/label.h"
#include "src/store/label_codec.h"
#include "src/store/store.h"
#include "src/store/wal.h"

namespace asbestos {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/asbestos_bench.XXXXXX";
  ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  // Stores are one level deep; remove files then the directories.
  const std::string cmd = "rm -rf '" + dir + "'";
  ASB_ASSERT(::system(cmd.c_str()) == 0);
}

Label MakeLabel(size_t entries, Level level, Level def) {
  Label l(def);
  for (size_t i = 0; i < entries; ++i) {
    l.Set(Handle::FromValue(1 + i * 7), level);
  }
  return l;
}

// --- Label codec -----------------------------------------------------------

void BM_PickleLabel(benchmark::State& state) {
  const Label l = MakeLabel(static_cast<size_t>(state.range(0)), Level::kStar, Level::kL3);
  uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string pickled = codec::PickleLabel(l);
    bytes += pickled.size();
    benchmark::DoNotOptimize(pickled);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["entries"] = static_cast<double>(state.range(0));
  state.counters["pickled_bytes"] =
      static_cast<double>(codec::PickleLabel(l).size());
}
BENCHMARK(BM_PickleLabel)->Arg(0)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_UnpickleLabel(benchmark::State& state) {
  const Label l = MakeLabel(static_cast<size_t>(state.range(0)), Level::kStar, Level::kL3);
  const std::string pickled = codec::PickleLabel(l);
  for (auto _ : state) {
    Label out;
    ASB_ASSERT(codec::UnpickleLabel(pickled, &out) == Status::kOk);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * pickled.size()));
}
BENCHMARK(BM_UnpickleLabel)->Arg(0)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

// --- WAL append rate -------------------------------------------------------

void BM_WalAppend(benchmark::State& state) {
  const std::string dir = MakeTempDir();
  Wal wal;
  ASB_ASSERT(wal.Open(dir + "/wal", [](std::string_view) {}) == Status::kOk);
  const std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    ASB_ASSERT(wal.Append(record) == Status::kOk);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * record.size()));
  wal.Close();
  RemoveTree(dir);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024)->Arg(16384);

// --- Store mutation (log + apply, no fsync) --------------------------------

void BM_StorePut(benchmark::State& state) {
  const std::string dir = MakeTempDir();
  StoreOptions opts;
  opts.dir = dir + "/store";
  auto store = DurableStore::Open(std::move(opts));
  ASB_ASSERT(store.ok());
  const Label secrecy({{Handle::FromValue(42), Level::kL3}}, Level::kStar);
  const Label integrity({{Handle::FromValue(43), Level::kL0}}, Level::kL3);
  const std::string value(256, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    ASB_ASSERT(store.value()->Put("key" + std::to_string(i++ % 1000), value, secrecy,
                                  integrity) == Status::kOk);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  store.value().reset();
  RemoveTree(dir);
}
BENCHMARK(BM_StorePut);

// --- Recovery time versus record count -------------------------------------

void BM_Recovery(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    opts.compact_min_log_records = ~0ULL;  // keep everything in the log
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const Label secrecy({{Handle::FromValue(7), Level::kL3}}, Level::kStar);
    for (uint64_t i = 0; i < n; ++i) {
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(128, 'v'), secrecy,
                                    Label::Top()) == Status::kOk);
    }
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.SetComplexityN(state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_Recovery)->Arg(100)->Arg(1000)->Arg(10000)->Complexity(benchmark::oN);

// Recovery from a snapshot instead of a raw log (post-compaction shape).
void BM_RecoveryFromSnapshot(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const Label secrecy({{Handle::FromValue(7), Level::kL3}}, Level::kStar);
    for (uint64_t i = 0; i < n; ++i) {
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(128, 'v'), secrecy,
                                    Label::Top()) == Status::kOk);
    }
    ASB_ASSERT(store.value()->Compact() == Status::kOk);
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  state.SetComplexityN(state.range(0));
  RemoveTree(dir);
}
BENCHMARK(BM_RecoveryFromSnapshot)->Arg(100)->Arg(1000)->Arg(10000)->Complexity(benchmark::oN);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
