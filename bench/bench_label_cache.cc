// Canonical-label benchmarks: the kernel flow-check cache on recurring
// OKWS-shaped tuples (cold = uncached baseline, warm = cache hits), and
// store-recovery label memory with hash-consed dedup.
//
// The acceptance bar for the cache is wall-clock only: warm-cache
// CheckDeliveryAllowed on recurring tuples must be ≥5× faster than the
// uncached evaluation while charging EXACTLY the same LabelWorkStats/work
// (the fidelity is asserted here per-run, and property-tested in
// tests/label_checks_test.cc) — Figure-9 cost curves cannot tell the cache
// exists.
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_labels.json (google-benchmark JSON)
// into the working directory. `--smoke` shrinks every measurement to a
// sanity-check run for CI.
#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/reset.h"
#include "src/kernel/label_checks.h"
#include "src/labels/intern.h"
#include "src/labels/label.h"
#include "src/store/store.h"

namespace asbestos {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/asbestos_bench.XXXXXX";
  ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASB_ASSERT(::system(cmd.c_str()) == 0);
}

// One OKWS-shaped delivery tuple: a per-user-tainted effective-send label
// against a worker receive label that has grown a clearance entry per user.
// Shaped to defeat the O(1) extrema shortcut so the uncached check performs
// its charged linear merge, as the kernel hot path does at scale.
struct DeliveryTuple {
  Label es;
  Label qr;
  Label dr = Label::Bottom();
  Label v = Label::Top();
  Label pr = Label::Top();
};

DeliveryTuple MakeTuple(uint64_t salt, size_t entries) {
  DeliveryTuple t;
  LabelBuilder eb(Level::kL1);
  LabelBuilder qb(Level::kL2);
  for (size_t i = 1; i <= entries; ++i) {
    const uint64_t h = salt * 100000 + i * 3;
    eb.Append(Handle::FromValue(h), i % 2 == 0 ? Level::kL2 : Level::kL3);
    qb.Append(Handle::FromValue(h), Level::kL3);
  }
  t.es = eb.Build();
  t.qr = qb.Build();
  return t;
}

// Arg0: distinct recurring tuples (1 = one hot session, 64 = a working set);
// Arg1: entries per label.
void RunDeliveryCheck(benchmark::State& state, bool cached) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t tuples = static_cast<size_t>(state.range(0));
  const size_t entries = static_cast<size_t>(state.range(1));
  std::vector<DeliveryTuple> pool;
  pool.reserve(tuples);
  for (size_t i = 0; i < tuples; ++i) {
    pool.push_back(MakeTuple(i + 1, entries));
  }
  ResetLabelCheckCache();
  SetLabelCheckCacheEnabled(cached);
  ResetLabelWorkStats();
  uint64_t work = 0;
  uint64_t verdicts = 0;
  size_t i = 0;
  for (auto _ : state) {
    const DeliveryTuple& t = pool[i];
    i = i + 1 == pool.size() ? 0 : i + 1;
    verdicts += CheckDeliveryAllowed(t.es, t.qr, t.dr, t.v, t.pr, &work) ? 1 : 0;
  }
  benchmark::DoNotOptimize(verdicts);
  const LabelWorkStats& stats = GetLabelWorkStats();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["entries_per_label"] = static_cast<double>(entries);
  // Charged-cost fidelity: work per check must be identical cached/uncached
  // (compare these counters between the Cold and Warm rows of the JSON).
  state.counters["charged_work_per_check"] =
      static_cast<double>(work) / static_cast<double>(state.iterations());
  state.counters["entries_visited_per_check"] =
      static_cast<double>(stats.entries_visited) / static_cast<double>(state.iterations());
  if (cached) {
    const LabelCheckCacheStats& cache = GetLabelCheckCacheStats();
    state.counters["cache_hit_rate"] =
        static_cast<double>(cache.hits) / static_cast<double>(cache.hits + cache.misses);
  }
  SetLabelCheckCacheEnabled(true);
}

void BM_DeliveryCheckCold(benchmark::State& state) { RunDeliveryCheck(state, false); }
BENCHMARK(BM_DeliveryCheckCold)
    ->Args({1, 256})
    ->Args({64, 256})
    ->Args({64, 32});

void BM_DeliveryCheckWarm(benchmark::State& state) { RunDeliveryCheck(state, true); }
BENCHMARK(BM_DeliveryCheckWarm)
    ->Args({1, 256})
    ->Args({64, 256})
    ->Args({64, 32});

void RunContaminationCheck(benchmark::State& state, bool cached) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t tuples = static_cast<size_t>(state.range(0));
  std::vector<DeliveryTuple> pool;
  for (size_t i = 0; i < tuples; ++i) {
    pool.push_back(MakeTuple(i + 1, 256));
  }
  ResetLabelCheckCache();
  SetLabelCheckCacheEnabled(cached);
  uint64_t work = 0;
  uint64_t verdicts = 0;
  size_t i = 0;
  for (auto _ : state) {
    const DeliveryTuple& t = pool[i];
    i = i + 1 == pool.size() ? 0 : i + 1;
    verdicts += NeedsContamination(t.es, t.qr, &work) ? 1 : 0;
  }
  benchmark::DoNotOptimize(verdicts);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["charged_work_per_check"] =
      static_cast<double>(work) / static_cast<double>(state.iterations());
  SetLabelCheckCacheEnabled(true);
}

void BM_ContaminationCheckCold(benchmark::State& state) { RunContaminationCheck(state, false); }
BENCHMARK(BM_ContaminationCheckCold)->Arg(64);

void BM_ContaminationCheckWarm(benchmark::State& state) { RunContaminationCheck(state, true); }
BENCHMARK(BM_ContaminationCheckWarm)->Arg(64);

// --- Store recovery with hash-consed labels ---------------------------------

// N records share `distinct` secrecy labels round-robin (the OKWS shape:
// every record of one user carries that user's {uT 3, ⋆}). Recovery builds
// each label through the interning decode path, so the label heap after
// recovery is `distinct` reps, not N — the "before" memory is
// label_bytes_recovered + label_bytes_saved_by_dedup, the "after" is
// label_bytes_recovered alone.
void BM_RecoveryLabelDedup(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t distinct = 32;
  const std::string dir = MakeTempDir();
  {
    StoreOptions opts;
    opts.dir = dir + "/store";
    opts.shards = 4;
    opts.compact_min_log_records = ~0ULL;  // keep everything in the logs
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    for (uint64_t i = 0; i < n; ++i) {
      LabelBuilder sb(Level::kStar);
      for (uint64_t e = 1; e <= 64; ++e) {
        sb.Append(Handle::FromValue((i % distinct + 1) * 1000 + e), Level::kL3);
      }
      ASB_ASSERT(store.value()->Put("key" + std::to_string(i), std::string(64, 'v'), sb.Build(),
                                    Label::Top()) == Status::kOk);
    }
    ASB_ASSERT(store.value()->Sync() == Status::kOk);
  }
  for (auto _ : state) {
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok() && store.value()->size() == n);
    benchmark::DoNotOptimize(store);
  }
  // Metrics pass (untimed): one recovery, measured precisely.
  {
    ResetLabelInternStats();
    const int64_t live_before = GetLabelMemStats().live_bytes;
    StoreOptions opts;
    opts.dir = dir + "/store";
    auto store = DurableStore::Open(std::move(opts));
    ASB_ASSERT(store.ok());
    const LabelInternStats& intern = GetLabelInternStats();
    state.counters["records"] = static_cast<double>(n);
    state.counters["distinct_labels"] = static_cast<double>(distinct);
    state.counters["label_bytes_recovered"] =
        static_cast<double>(GetLabelMemStats().live_bytes - live_before);
    state.counters["label_bytes_saved_by_dedup"] = static_cast<double>(intern.bytes_saved);
    state.counters["dedup_hits"] = static_cast<double>(intern.hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
  RemoveTree(dir);
}
BENCHMARK(BM_RecoveryLabelDedup)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace asbestos

// Custom main (same pattern as bench_store): default the run to writing
// BENCH_labels.json and translate `--smoke` into a minimal-time run for the
// CI Release job.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_labels.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The unified metrics snapshot rides alongside the google-benchmark JSON
  // (same basename, .metrics.json suffix); see README "Observability".
  asbestos::obs::Registry::Get().WriteSnapshotFile("BENCH_labels.metrics.json");
  return 0;
}
