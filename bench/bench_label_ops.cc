// Microbenchmarks for the label algebra (paper §5.6): ⊑/⊔/⊓ cost versus
// label size. The paper: "In the worst case, of course, operations like ⊑,
// ⊓, and ⊔ are linear in the size of their input labels" — and the min/max
// caching fast path resolves favourable comparisons in O(1). The smallest
// label is about 300 bytes.
#include <benchmark/benchmark.h>

#include "src/labels/label.h"

namespace asbestos {
namespace {

Label MakeLabel(size_t entries, Level level, Level def, uint64_t base = 1) {
  Label l(def);
  for (size_t i = 0; i < entries; ++i) {
    l.Set(Handle::FromValue(base + i * 7), level);
  }
  return l;
}

void BM_LeqScan(benchmark::State& state) {
  // Worst case: receiver label has N entries at 3 (like netd's receive
  // label with N user taints), sender label is small and overlapping.
  const auto n = static_cast<size_t>(state.range(0));
  const Label big = MakeLabel(n, Level::kL3, Level::kL2);
  const Label small({{Handle::FromValue(8), Level::kL3}}, Level::kL1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Leq(big));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeqScan)->Range(1, 1 << 14)->Complexity(benchmark::oN);

void BM_LeqFastPath(benchmark::State& state) {
  // The min/max cache: {1}-ish send labels against {2}-ish receive labels
  // resolve without touching a single entry, regardless of size.
  const auto n = static_cast<size_t>(state.range(0));
  const Label big = MakeLabel(n, Level::kL3, Level::kL3);  // min level 3
  const Label small = MakeLabel(4, Level::kL1, Level::kL1);  // max level 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Leq(big));
  }
}
BENCHMARK(BM_LeqFastPath)->Range(1, 1 << 14);

void BM_Lub(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const Label a = MakeLabel(n, Level::kL3, Level::kL1, 1);
  const Label b = MakeLabel(n, Level::kL2, Level::kL1, 4);  // interleaved handles
  for (auto _ : state) {
    benchmark::DoNotOptimize(Label::Lub(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lub)->Range(1, 1 << 14)->Complexity(benchmark::oN);

void BM_LubSharedFastPath(benchmark::State& state) {
  // ⊔ with the bottom label {⋆} returns the other label's representation
  // without copying (reference-counted sharing, §5.6).
  const Label a = MakeLabel(static_cast<size_t>(state.range(0)), Level::kL3, Level::kL1);
  const Label bottom = Label::Bottom();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Label::Lub(a, bottom));
  }
}
BENCHMARK(BM_LubSharedFastPath)->Range(1, 1 << 14);

void BM_Glb(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const Label a = MakeLabel(n, Level::kL3, Level::kL2, 1);
  const Label b = MakeLabel(n, Level::kL0, Level::kL2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Label::Glb(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Glb)->Range(1, 1 << 14)->Complexity(benchmark::oN);

void BM_StarsOnly(benchmark::State& state) {
  const Label a = MakeLabel(static_cast<size_t>(state.range(0)), Level::kStar, Level::kL1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.StarsOnly());
  }
}
BENCHMARK(BM_StarsOnly)->Range(1, 1 << 12);

void BM_SetInsert(benchmark::State& state) {
  // Copy-on-write insertion into a label of N entries (chunk search + shift).
  const auto n = static_cast<size_t>(state.range(0));
  const Label base = MakeLabel(n, Level::kL3, Level::kL1);
  uint64_t v = 3;
  for (auto _ : state) {
    Label copy = base;  // shares the rep; Set unshares
    copy.Set(Handle::FromValue(v), Level::kL2);
    v += 7;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SetInsert)->Range(1, 1 << 12);

void BM_CopySharing(benchmark::State& state) {
  // Label copies are O(1): they share the representation.
  const Label a = MakeLabel(static_cast<size_t>(state.range(0)), Level::kL3, Level::kL1);
  for (auto _ : state) {
    Label copy = a;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_CopySharing)->Range(1, 1 << 14);

void BM_SmallestLabelBytes(benchmark::State& state) {
  for (auto _ : state) {
    const Label l({{Handle::FromValue(42), Level::kL3}}, Level::kL1);
    benchmark::DoNotOptimize(l.heap_bytes());
  }
  const Label probe({{Handle::FromValue(42), Level::kL3}}, Level::kL1);
  state.counters["smallest_label_bytes"] = static_cast<double>(probe.heap_bytes());
}
BENCHMARK(BM_SmallestLabelBytes);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
