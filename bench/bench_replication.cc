// Replication benchmarks: WAL ship throughput (primary side), follower
// apply lag (batch arrival → records live in the replica, labels interned),
// snapshot catch-up, and the full two-machine simnet/netd path.
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_replication.json (google-benchmark
// JSON) into the working directory. `--smoke` shrinks every measurement to
// a sanity-check run for CI.
#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/panic.h"
#include "src/fs/file_server.h"
#include "src/replication/follower.h"
#include "src/replication/link.h"
#include "src/replication/replica.h"
#include "src/replication/source.h"
#include "src/store/store.h"

namespace asbestos {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/asbestos_bench.XXXXXX";
  ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASB_ASSERT(::system(cmd.c_str()) == 0);
}

// One labeled record, the file-server shape: per-record secrecy compartment
// at 3, shared integrity bound.
void PutRecord(DurableStore* store, uint64_t i, size_t value_bytes) {
  const Label secrecy({{Handle::FromValue(1000 + (i % 64)), Level::kL3}}, Level::kStar);
  const Label integrity({{Handle::FromValue(5), Level::kL0}}, Level::kL3);
  ASB_ASSERT(store->Put("key" + std::to_string(i), std::string(value_bytes, 'x'), secrecy,
                        integrity) == Status::kOk);
}

// Parses a frame stream and applies every frame to the replica, feeding
// acks back into the source.
void ApplyStream(std::string stream, ReplicaStore* replica, ReplicationSource* source) {
  std::string acks;
  replwire::WireMessage m;
  while (replwire::ConsumeFrame(&stream, &m) == replwire::FrameParse::kFrame) {
    ASB_ASSERT(replica->HandleFrame(m, &acks) == Status::kOk);
  }
  while (replwire::ConsumeFrame(&acks, &m) == replwire::FrameParse::kFrame) {
    source->HandleAck(m);
  }
}

struct Pair {
  std::string dir;
  std::unique_ptr<DurableStore> primary;
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<ReplicaStore> replica;

  explicit Pair(uint32_t shards) {
    dir = MakeTempDir();
    StoreOptions popts;
    popts.dir = dir + "/primary";
    popts.shards = shards;
    auto p = DurableStore::Open(popts);
    ASB_ASSERT(p.ok());
    primary = p.take();
    source = std::make_unique<ReplicationSource>(primary.get(), 0xBE7C);
    StoreOptions ropts;
    ropts.dir = dir + "/replica";
    ropts.shards = shards;
    auto r = ReplicaStore::Open(ropts);
    ASB_ASSERT(r.ok());
    replica = r.take();
    // Hello/resume handshake, then drain the (empty) initial snapshots.
    ApplyStream(source->SessionHello(), replica.get(), source.get());
    std::string frames;
    source->PollFrames(1 << 16, ~0ULL, &frames);
    ApplyStream(std::move(frames), replica.get(), source.get());
  }

  ~Pair() {
    replica.reset();
    primary.reset();
    RemoveTree(dir);
  }
};

// Ship throughput: how fast the primary turns appended WAL bytes into wire
// frames AND the follower applies them (labels unpickled + interned through
// the canonical-rep table). Arg0: records per batch; Arg1: value bytes.
void BM_ShipAndApply(benchmark::State& state) {
  const uint64_t per_batch = static_cast<uint64_t>(state.range(0));
  const size_t value_bytes = static_cast<size_t>(state.range(1));
  Pair pair(4);
  uint64_t i = 0;
  uint64_t shipped_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();  // the primary's own writes are not replication cost
    for (uint64_t k = 0; k < per_batch; ++k) {
      PutRecord(pair.primary.get(), i++, value_bytes);
    }
    state.ResumeTiming();
    std::string frames;
    pair.source->PollFrames(1 << 16, ~0ULL, &frames);
    shipped_bytes += frames.size();
    ApplyStream(std::move(frames), pair.replica.get(), pair.source.get());
  }
  ASB_ASSERT(pair.source->FullySynced());
  ASB_ASSERT(pair.replica->store()->size() == pair.primary->size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * per_batch));
  state.SetBytesProcessed(static_cast<int64_t>(shipped_bytes));
  state.counters["batches"] =
      static_cast<double>(pair.source->stats().batches_shipped);
  state.counters["records_applied"] =
      static_cast<double>(pair.replica->stats().records_applied);
}
BENCHMARK(BM_ShipAndApply)->Args({16, 256})->Args({256, 256})->Args({256, 4096});

// Follower apply lag: wall time from "batch bytes arrived" to "every record
// live in the replica's map and logged in its WAL" — the window where a
// promote would miss the newest writes. Reported per record.
void BM_FollowerApplyLag(benchmark::State& state) {
  const uint64_t per_batch = static_cast<uint64_t>(state.range(0));
  Pair pair(4);
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (uint64_t k = 0; k < per_batch; ++k) {
      PutRecord(pair.primary.get(), i++, 256);
    }
    std::string frames;
    pair.source->PollFrames(1 << 16, ~0ULL, &frames);
    std::vector<replwire::WireMessage> batch;
    replwire::WireMessage m;
    while (replwire::ConsumeFrame(&frames, &m) == replwire::FrameParse::kFrame) {
      batch.push_back(std::move(m));
    }
    state.ResumeTiming();
    std::string acks;
    for (const replwire::WireMessage& b : batch) {
      ASB_ASSERT(pair.replica->HandleFrame(b, &acks) == Status::kOk);
    }
    state.PauseTiming();
    while (replwire::ConsumeFrame(&acks, &m) == replwire::FrameParse::kFrame) {
      pair.source->HandleAck(m);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * per_batch));
  state.counters["apply_lag_ns_per_record"] = benchmark::Counter(
      static_cast<double>(state.iterations() * per_batch),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FollowerApplyLag)->Arg(16)->Arg(256);

// Snapshot catch-up: a fresh follower joining a primary whose WAL was
// compacted away — the whole image ships and installs. Arg0: records.
void BM_SnapshotCatchUp(benchmark::State& state) {
  const uint64_t records = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  StoreOptions popts;
  popts.dir = dir + "/primary";
  popts.shards = 4;
  auto p = DurableStore::Open(popts);
  ASB_ASSERT(p.ok());
  std::unique_ptr<DurableStore> primary = p.take();
  for (uint64_t i = 0; i < records; ++i) {
    PutRecord(primary.get(), i, 256);
  }
  ASB_ASSERT(primary->Compact() == Status::kOk);
  ReplicationSource source(primary.get(), 0xBE7C);
  uint64_t joined = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string rdir = dir + "/replica" + std::to_string(joined++);
    StoreOptions ropts;
    ropts.dir = rdir;
    ropts.shards = 4;
    auto r = ReplicaStore::Open(ropts);
    ASB_ASSERT(r.ok());
    std::unique_ptr<ReplicaStore> replica = r.take();
    state.ResumeTiming();
    ApplyStream(source.SessionHello(), replica.get(), &source);
    std::string frames;
    source.PollFrames(1 << 16, ~0ULL, &frames);
    ApplyStream(std::move(frames), replica.get(), &source);
    ASB_ASSERT(replica->store()->size() == records);
    state.PauseTiming();
    replica.reset();
    RemoveTree(rdir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * records));
  primary.reset();
  RemoveTree(dir);
}
BENCHMARK(BM_SnapshotCatchUp)->Arg(1000)->Arg(10000);

// The full two-machine path: file-server writes on the primary world, NIC
// pumps, netd labeled messages, the wire ferry, and the follower's group
// commit. Items = records fully replicated per second, machine to machine.
void BM_EndToEndSimnet(benchmark::State& state) {
  const uint64_t per_round = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  FileServerOptions fs_opts;
  fs_opts.data_dir = dir + "/primary";
  fs_opts.shards = 4;
  fs_opts.replication.listen_tcp_port = 7000;
  FsPrimaryWorld primary(0x0451, fs_opts);
  primary.Pump();
  StoreOptions ropts;
  ropts.dir = dir + "/follower";
  ropts.shards = 4;
  FollowerWorld follower(0x0452, 7001, ropts);
  follower.Pump();
  ReplicationLink link(&primary.net(), 7000, &follower.net(), 7001);

  uint64_t i = 0;
  for (auto _ : state) {
    // Append straight into the file server's store (the workload driver is
    // not what this bench measures); the pump's OnIdle flushes AND ships.
    for (uint64_t k = 0; k < per_round; ++k) {
      PutRecord(const_cast<DurableStore*>(primary.fs()->store()), i++, 256);
    }
    int rounds = 0;
    do {
      link.Step();
      primary.Pump();
      follower.Pump();
    } while (!primary.fs()->replication()->source()->FullySynced() && ++rounds < 10000);
    ASB_ASSERT(primary.fs()->replication()->source()->FullySynced());
  }
  ASB_ASSERT(follower.follower()->replica()->store()->size() == primary.fs()->store()->size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * per_round));
  state.counters["wire_bytes"] = static_cast<double>(link.bytes_to_follower());
  RemoveTree(dir);
}
BENCHMARK(BM_EndToEndSimnet)->Arg(64);

}  // namespace
}  // namespace asbestos

// Custom main (same pattern as bench_store / bench_label_cache): default
// the run to writing BENCH_replication.json and translate `--smoke` into a
// minimal-time run for the CI Release job.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_replication.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
