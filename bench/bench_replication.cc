// Replication benchmarks: WAL ship throughput (primary side), K-follower
// fan-out through the shared frame cache (ship throughput and per-follower
// apply lag vs K, cache hit rate), follower apply lag (batch arrival →
// records live in the replica, labels interned), snapshot catch-up, and the
// full multi-machine simnet/netd path.
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_replication.json (google-benchmark
// JSON) into the working directory. `--smoke` shrinks every measurement to
// a sanity-check run for CI.
#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/reset.h"
#include "src/fs/file_server.h"
#include "src/replication/follower.h"
#include "src/replication/link.h"
#include "src/replication/read_gate.h"
#include "src/replication/replica.h"
#include "src/replication/source.h"
#include "src/sim/costs.h"
#include "src/sim/cycles.h"
#include "src/store/store.h"

namespace asbestos {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/asbestos_bench.XXXXXX";
  ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  ASB_ASSERT(::system(cmd.c_str()) == 0);
}

// One labeled record, the file-server shape: per-record secrecy compartment
// at 3, shared integrity bound.
void PutRecord(DurableStore* store, uint64_t i, size_t value_bytes) {
  const Label secrecy({{Handle::FromValue(1000 + (i % 64)), Level::kL3}}, Level::kStar);
  const Label integrity({{Handle::FromValue(5), Level::kL0}}, Level::kL3);
  ASB_ASSERT(store->Put("key" + std::to_string(i), std::string(value_bytes, 'x'), secrecy,
                        integrity) == Status::kOk);
}

// Parses a frame stream and applies every frame to the replica, feeding
// acks back into the session.
void ApplyStream(std::string stream, ReplicaStore* replica, FollowerSession* session) {
  std::string acks;
  replwire::WireMessage m;
  while (replwire::ConsumeFrame(&stream, &m) == replwire::FrameParse::kFrame) {
    ASB_ASSERT(replica->HandleFrame(m, &acks) == Status::kOk);
  }
  while (replwire::ConsumeFrame(&acks, &m) == replwire::FrameParse::kFrame) {
    session->HandleAck(m);
  }
}

// A primary store + hub fanning out to K replicas, sessions established.
struct FanOut {
  std::string dir;
  std::unique_ptr<DurableStore> primary;
  std::unique_ptr<ReplicationHub> hub;
  std::vector<std::unique_ptr<ReplicaStore>> replicas;
  std::vector<FollowerSession*> sessions;  // owned by the hub

  FanOut(uint32_t shards, size_t followers) {
    dir = MakeTempDir();
    StoreOptions popts;
    popts.dir = dir + "/primary";
    popts.shards = shards;
    auto p = DurableStore::Open(popts);
    ASB_ASSERT(p.ok());
    primary = p.take();
    hub = std::make_unique<ReplicationHub>(primary.get(), 0xBE7C);
    for (size_t k = 0; k < followers; ++k) {
      StoreOptions ropts;
      ropts.dir = dir + "/replica" + std::to_string(k);
      ropts.shards = shards;
      ReplicaOptions opts;
      opts.follower_id = k + 1;
      auto r = ReplicaStore::Open(ropts, opts);
      ASB_ASSERT(r.ok());
      replicas.push_back(r.take());
      sessions.push_back(hub->OpenSession());
      // Hello/resume handshake, then drain the (empty) initial snapshots.
      ApplyStream(sessions[k]->SessionHello(), replicas[k].get(), sessions[k]);
      std::string frames;
      sessions[k]->PollFrames(1 << 16, ~0ULL, &frames);
      ApplyStream(std::move(frames), replicas[k].get(), sessions[k]);
    }
  }

  ~FanOut() {
    replicas.clear();
    primary.reset();
    RemoveTree(dir);
  }
};

// Ship throughput: how fast the primary turns appended WAL bytes into wire
// frames AND the follower applies them (labels unpickled + interned through
// the canonical-rep table). Arg0: records per batch; Arg1: value bytes.
void BM_ShipAndApply(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t per_batch = static_cast<uint64_t>(state.range(0));
  const size_t value_bytes = static_cast<size_t>(state.range(1));
  FanOut pair(4, 1);
  uint64_t i = 0;
  uint64_t shipped_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();  // the primary's own writes are not replication cost
    for (uint64_t k = 0; k < per_batch; ++k) {
      PutRecord(pair.primary.get(), i++, value_bytes);
    }
    state.ResumeTiming();
    std::string frames;
    pair.sessions[0]->PollFrames(1 << 16, ~0ULL, &frames);
    shipped_bytes += frames.size();
    ApplyStream(std::move(frames), pair.replicas[0].get(), pair.sessions[0]);
  }
  ASB_ASSERT(pair.sessions[0]->FullySynced());
  ASB_ASSERT(pair.replicas[0]->store()->size() == pair.primary->size());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * per_batch));
  state.SetBytesProcessed(static_cast<int64_t>(shipped_bytes));
  state.counters["batches"] =
      static_cast<double>(pair.sessions[0]->stats().batches_shipped);
  state.counters["records_applied"] =
      static_cast<double>(pair.replicas[0]->stats().records_applied);
}
BENCHMARK(BM_ShipAndApply)->Args({16, 256})->Args({256, 256})->Args({256, 4096});

// K-follower fan-out: one primary feeding Arg0 followers in lockstep
// through the hub's shared frame cache. Items = records × K (each record
// must land on every follower); the cache hit rate and the WAL reads that
// actually hit the log show what the sharing saves as K grows.
void BM_FanOutShipAndApply(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t followers = static_cast<size_t>(state.range(0));
  const uint64_t per_batch = 256;
  FanOut fan(4, followers);
  uint64_t i = 0;
  uint64_t shipped_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (uint64_t k = 0; k < per_batch; ++k) {
      PutRecord(fan.primary.get(), i++, 256);
    }
    state.ResumeTiming();
    for (size_t k = 0; k < followers; ++k) {
      std::string frames;
      fan.sessions[k]->PollFrames(1 << 16, ~0ULL, &frames);
      shipped_bytes += frames.size();
      ApplyStream(std::move(frames), fan.replicas[k].get(), fan.sessions[k]);
    }
  }
  for (size_t k = 0; k < followers; ++k) {
    ASB_ASSERT(fan.sessions[k]->FullySynced());
    ASB_ASSERT(fan.replicas[k]->store()->size() == fan.primary->size());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * per_batch * followers));
  state.SetBytesProcessed(static_cast<int64_t>(shipped_bytes));
  const FrameCacheStats& cache = fan.hub->cache_stats();
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  state.counters["wal_reads"] = static_cast<double>(fan.primary->wal_read_calls());
  state.counters["records_applied_per_follower"] =
      static_cast<double>(fan.replicas[0]->stats().records_applied);
}
BENCHMARK(BM_FanOutShipAndApply)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Follower apply lag: wall time from "batch bytes arrived" to "every record
// live in the replica's map and logged in its WAL" — the window where a
// promote would miss the newest writes. Reported per record.
void BM_FollowerApplyLag(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t per_batch = static_cast<uint64_t>(state.range(0));
  FanOut pair(4, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (uint64_t k = 0; k < per_batch; ++k) {
      PutRecord(pair.primary.get(), i++, 256);
    }
    std::string frames;
    pair.sessions[0]->PollFrames(1 << 16, ~0ULL, &frames);
    std::vector<replwire::WireMessage> batch;
    replwire::WireMessage m;
    while (replwire::ConsumeFrame(&frames, &m) == replwire::FrameParse::kFrame) {
      batch.push_back(std::move(m));
    }
    state.ResumeTiming();
    std::string acks;
    for (const replwire::WireMessage& b : batch) {
      ASB_ASSERT(pair.replicas[0]->HandleFrame(b, &acks) == Status::kOk);
    }
    state.PauseTiming();
    while (replwire::ConsumeFrame(&acks, &m) == replwire::FrameParse::kFrame) {
      pair.sessions[0]->HandleAck(m);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * per_batch));
  state.counters["apply_lag_ns_per_record"] = benchmark::Counter(
      static_cast<double>(state.iterations() * per_batch),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FollowerApplyLag)->Arg(16)->Arg(256);

// Snapshot catch-up: a fresh follower joining a primary whose WAL was
// compacted away — the whole image ships and installs. Arg0: records.
void BM_SnapshotCatchUp(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const uint64_t records = static_cast<uint64_t>(state.range(0));
  const std::string dir = MakeTempDir();
  StoreOptions popts;
  popts.dir = dir + "/primary";
  popts.shards = 4;
  auto p = DurableStore::Open(popts);
  ASB_ASSERT(p.ok());
  std::unique_ptr<DurableStore> primary = p.take();
  for (uint64_t i = 0; i < records; ++i) {
    PutRecord(primary.get(), i, 256);
  }
  ASB_ASSERT(primary->Compact() == Status::kOk);
  ReplicationHub hub(primary.get(), 0xBE7C);
  FollowerSession* session = hub.OpenSession();
  uint64_t joined = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string rdir = dir + "/replica" + std::to_string(joined++);
    StoreOptions ropts;
    ropts.dir = rdir;
    ropts.shards = 4;
    auto r = ReplicaStore::Open(ropts);
    ASB_ASSERT(r.ok());
    std::unique_ptr<ReplicaStore> replica = r.take();
    state.ResumeTiming();
    ApplyStream(session->SessionHello(), replica.get(), session);
    std::string frames;
    session->PollFrames(1 << 16, ~0ULL, &frames);
    ApplyStream(std::move(frames), replica.get(), session);
    ASB_ASSERT(replica->store()->size() == records);
    state.PauseTiming();
    replica.reset();
    RemoveTree(rdir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * records));
  primary.reset();
  RemoveTree(dir);
}
BENCHMARK(BM_SnapshotCatchUp)->Arg(1000)->Arg(10000);

// Read fan-out: aggregate labeled-read throughput across K synced replicas,
// each serving through its own ReadGate (lease check + flow check + store
// lookup). The simulator's cycle clock is ONE serial CPU, so K racks serving
// in parallel cannot be timed by the wall clock: each replica's serve cycles
// are attributed separately (now() sampled around each Serve) and the
// aggregate rate is total_reads / max-per-replica-busy-time — the
// parallel-racks model. The flow-check verdict cache is warmed before
// measurement (every secrecy compartment seen once per gate), so the steady
// state pays kLabelOpBaseCycles-free cache hits, matching a server that has
// been up for more than one request per compartment.
void BM_ReadFanOut(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t followers = static_cast<size_t>(state.range(0));
  const uint64_t records = 512;
  const uint64_t reads_per_round = 32;  // per replica; lease renewed each round
  FanOut fan(4, followers);
  for (uint64_t i = 0; i < records; ++i) {
    PutRecord(fan.primary.get(), i, 256);
  }
  std::vector<std::unique_ptr<ReadGate>> gates;
  for (size_t k = 0; k < followers; ++k) {
    std::string frames;
    fan.sessions[k]->PollFrames(1 << 16, ~0ULL, &frames);
    ApplyStream(std::move(frames), fan.replicas[k].get(), fan.sessions[k]);
    ASB_ASSERT(fan.sessions[k]->FullySynced());
    gates.push_back(std::make_unique<ReadGate>(fan.replicas[k].get()));
  }
  const Label clearance = Label::Top();
  const replwire::ReadCursorToken no_token;  // eventual-consistency read
  // Warm the verdict cache: one read per secrecy compartment per gate.
  for (size_t k = 0; k < followers; ++k) {
    for (uint64_t i = 0; i < 64; ++i) {
      ASB_ASSERT(gates[k]->Serve("key" + std::to_string(i), clearance, no_token).status ==
                 ReadStatus::kOk);
    }
  }
  std::vector<uint64_t> serve_cycles(followers, 0);
  uint64_t total_reads = 0;
  uint64_t refused = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();  // lease upkeep is the replication stream's cost
    for (size_t k = 0; k < followers; ++k) {
      std::string hb;
      fan.sessions[k]->AppendHeartbeat(&hb);
      ApplyStream(std::move(hb), fan.replicas[k].get(), fan.sessions[k]);
    }
    state.ResumeTiming();
    for (size_t k = 0; k < followers; ++k) {
      const uint64_t before = GetCycleAccounting().now();
      for (uint64_t r = 0; r < reads_per_round; ++r) {
        const ReadResult res =
            gates[k]->Serve("key" + std::to_string(i++ % records), clearance, no_token);
        if (res.status != ReadStatus::kOk) {
          ++refused;
        }
        benchmark::DoNotOptimize(res.value.data());
      }
      serve_cycles[k] += GetCycleAccounting().now() - before;
      total_reads += reads_per_round;
    }
  }
  uint64_t busiest = 1;
  for (size_t k = 0; k < followers; ++k) {
    busiest = std::max(busiest, serve_cycles[k]);
  }
  const double busy_sec = static_cast<double>(busiest) / costs::kCpuHz;
  state.SetItemsProcessed(static_cast<int64_t>(total_reads));
  state.counters["reads_per_sec_aggregate"] = static_cast<double>(total_reads) / busy_sec;
  state.counters["reads_per_sec_per_replica"] =
      static_cast<double>(total_reads) / static_cast<double>(followers) / busy_sec;
  state.counters["refusal_rate"] =
      total_reads == 0 ? 0.0
                       : static_cast<double>(refused) / static_cast<double>(total_reads);
}
BENCHMARK(BM_ReadFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The full multi-machine path: file-server writes on the primary world, NIC
// pumps, netd labeled messages, one wire ferry per follower, and each
// follower's group commit. Arg0: follower machine count. Items = records
// fully replicated to EVERY follower per second, machine to machine.
void BM_EndToEndSimnet(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t followers = static_cast<size_t>(state.range(0));
  const uint64_t per_round = 64;
  const std::string dir = MakeTempDir();
  FileServerOptions fs_opts;
  fs_opts.data_dir = dir + "/primary";
  fs_opts.shards = 4;
  fs_opts.replication.listen_tcp_port = 7000;
  fs_opts.replication.max_followers = static_cast<uint32_t>(followers);
  ReplicationFleet fleet(0x0451, fs_opts);
  for (size_t k = 0; k < followers; ++k) {
    StoreOptions ropts;
    ropts.dir = dir + "/follower" + std::to_string(k);
    ropts.shards = 4;
    FollowerOptions fopts;
    fopts.follower_id = k + 1;
    fleet.AddFollower(0x0452 + k, static_cast<uint16_t>(7001 + k), ropts, fopts);
  }
  ASB_ASSERT(fleet.PumpUntilSynced(10000));

  uint64_t i = 0;
  for (auto _ : state) {
    // Append straight into the file server's store (the workload driver is
    // not what this bench measures); the pump's OnIdle flushes AND ships.
    for (uint64_t k = 0; k < per_round; ++k) {
      PutRecord(const_cast<DurableStore*>(fleet.primary()->fs()->store()), i++, 256);
    }
    ASB_ASSERT(fleet.PumpUntilSynced(10000));
  }
  uint64_t wire_bytes = 0;
  for (size_t k = 0; k < followers; ++k) {
    ASB_ASSERT(fleet.follower(k)->follower()->replica()->store()->size() ==
               fleet.primary()->fs()->store()->size());
    wire_bytes += fleet.link(k)->bytes_to_follower();
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * per_round * followers));
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  const FrameCacheStats& cache = fleet.primary()->fs()->replication()->hub()->cache_stats();
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups;
  RemoveTree(dir);
}
BENCHMARK(BM_EndToEndSimnet)->Arg(1)->Arg(3);

}  // namespace
}  // namespace asbestos

// Custom main (same pattern as bench_store / bench_label_cache): default
// the run to writing BENCH_replication.json and translate `--smoke` into a
// minimal-time run for the CI Release job.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_replication.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The unified metrics snapshot rides alongside the google-benchmark JSON
  // (same basename, .metrics.json suffix); see README "Observability".
  asbestos::obs::Registry::Get().WriteSnapshotFile("BENCH_replication.metrics.json");
  return 0;
}
