#include "bench/okws_bench_harness.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/base/strings.h"
#include "src/kernel/address_space.h"
#include "src/kernel/memstats.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/sim/costs.h"
#include "src/store/store.h"

namespace asbestos::bench {

namespace {

std::string UserName(uint64_t i) { return StrFormat("user%06llu", (unsigned long long)i); }
std::string UserPass(uint64_t i) { return StrFormat("pw%06llu", (unsigned long long)i); }

// Every global byte ledger a world's lifetime moves. Snapshotted before boot
// and compared after teardown: a destroyed world must give it all back.
struct GlobalBytes {
  int64_t label_bytes = 0;
  int64_t sim_page_bytes = 0;
  int64_t store_bytes = 0;
  int64_t park_bytes = 0;
  int64_t binding_bytes = 0;
};

GlobalBytes SnapshotGlobalBytes() {
  GlobalBytes g;
  g.label_bytes = GetLabelMemStats().live_bytes;
  g.sim_page_bytes = GetSimPageStats().live_pages * static_cast<int64_t>(kPageSize);
  g.store_bytes = GetStoreMemStats().live_bytes;
  g.park_bytes = GetSessionParkStats().live_bytes;
  g.binding_bytes = GetBindingMemStats().live_bytes;
  return g;
}

// Teardown drift guard: each ledger must return to within `epsilon` of its
// pre-boot value (a handful of interned singleton label reps may outlive the
// world; nothing else should). Fail fast — a leak here silently corrupts
// every later benchmark iteration's memory numbers.
void CheckTeardownDrift(const GlobalBytes& before) {
  constexpr int64_t kEpsilonBytes = 64 * 1024;
  const GlobalBytes after = SnapshotGlobalBytes();
  const struct {
    const char* name;
    int64_t before;
    int64_t after;
  } ledgers[] = {
      {"label", before.label_bytes, after.label_bytes},
      {"sim_pages", before.sim_page_bytes, after.sim_page_bytes},
      {"store", before.store_bytes, after.store_bytes},
      {"session_park", before.park_bytes, after.park_bytes},
      {"binding", before.binding_bytes, after.binding_bytes},
  };
  for (const auto& l : ledgers) {
    const int64_t drift = l.after - l.before;
    if (drift > kEpsilonBytes || drift < -kEpsilonBytes) {
      std::fprintf(stderr,
                   "okws_bench_harness: %s bytes drifted %" PRId64
                   " across world teardown (before=%" PRId64 " after=%" PRId64
                   ", epsilon=%" PRId64 ")\n",
                   l.name, drift, l.before, l.after, kEpsilonBytes);
      std::abort();
    }
  }
}

}  // namespace

double OkwsRunResult::PagesPerSession() const {
  if (sessions == 0) {
    return 0;
  }
  return static_cast<double>(mem_after_bytes - mem_before_bytes) / 4096.0 /
         static_cast<double>(sessions);
}

double OkwsRunResult::PeakPagesPerSession() const {
  if (sessions == 0) {
    return 0;
  }
  return static_cast<double>(mem_peak_bytes - mem_before_bytes) / 4096.0 /
         static_cast<double>(sessions);
}

double OkwsRunResult::BytesPerUser() const {
  if (sessions == 0) {
    return 0;
  }
  return static_cast<double>(mem_after_bytes) / static_cast<double>(sessions);
}

OkwsRunResult RunOkwsWorkload(const OkwsRunConfig& config) {
  const GlobalBytes globals_before = SnapshotGlobalBytes();
  const SessionParkStats park_before = GetSessionParkStats();
  SetScaleAccountingEnabled(config.scale_accounting);
  OkwsRunResult result;
  {
    OkwsWorldConfig world_config;
    world_config.users.reserve(config.sessions);
    for (uint64_t i = 0; i < config.sessions; ++i) {
      world_config.users.push_back({UserName(i), UserPass(i)});
    }
    WorkerOptions options;
    options.clean_after_request = !config.active_memory_mode;
    options.park_idle_sessions = config.park_idle_sessions;
    world_config.services.push_back(
        {"echo", [] { return std::make_unique<EchoService>(); }, false, options});
    world_config.services.push_back(
        {"store", [] { return std::make_unique<StorageService>(); }, false, options});

    OkwsWorld world(std::move(world_config));
    world.PumpUntilReady();
    world.kernel().SetScaleUserCount(config.sessions);

    // Measure only the workload: boot-time cycles and label work are
    // discarded, and memory/peak baselines start here.
    GetCycleAccounting().Reset();
    ResetLabelWorkStats();
    world.kernel().ResetPeakTotalBytes();
    result.sessions = config.sessions;
    result.mem_before_bytes = world.kernel().MemReport().total_bytes();

    uint64_t total = config.total_connections;
    if (total == 0) {
      total = std::max<uint64_t>(4 * config.sessions, config.min_connections);
    }

    HttpLoadClient client(&world.net(), 80, config.concurrency);
    const std::string target =
        config.service == "store" ? "/store?d=session-payload-0123456789" : "/echo";
    // Pass-major order: the first pass over the users performs every login
    // (event-process creation + idd + database); later passes resume cached
    // sessions — the paper's 4-connections-per-session mix.
    uint64_t enqueued = 0;
    uint64_t pass = 0;
    while (enqueued < total) {
      for (uint64_t u = 0; u < config.sessions && enqueued < total; ++u, ++enqueued) {
        client.Enqueue(OkwsWorld::MakeRequest(target, UserName(u), UserPass(u)), u);
      }
      ++pass;
      if (config.sessions == 0) {
        break;
      }
    }
    (void)pass;
    world.RunClient(&client);

    result.connections_completed = client.results().size();
    result.failures = client.failures();
    const KernelMemReport mem = world.kernel().MemReport();
    result.mem_after_bytes = mem.total_bytes();
    result.mem_peak_bytes = world.kernel().peak_total_bytes();
    result.session_bytes = mem.session_bytes;
    result.binding_bytes = mem.binding_bytes;
    result.handle_table_bytes = mem.handle_table_bytes;
    result.session_parks = GetSessionParkStats().parks - park_before.parks;
    result.session_resumes = GetSessionParkStats().resumes - park_before.resumes;
    result.label_entries_visited = GetLabelWorkStats().entries_visited;

    const CycleAccounting& acct = GetCycleAccounting();
    for (int c = 0; c < kComponentCount; ++c) {
      result.component_cycles[static_cast<size_t>(c)] =
          acct.total(static_cast<Component>(c));
    }
    result.elapsed_cycles = static_cast<double>(acct.now());
    if (result.elapsed_cycles > 0) {
      result.throughput_conn_per_sec = static_cast<double>(result.connections_completed) /
                                       (result.elapsed_cycles / costs::kCpuHz);
    }

    std::vector<uint64_t> latencies;
    latencies.reserve(client.results().size());
    for (const auto& r : client.results()) {
      latencies.push_back(r.end_cycles - r.start_cycles);
    }
    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
      const double us_per_cycle = 1e6 / costs::kCpuHz;
      result.latency_p50_us = static_cast<uint64_t>(
          static_cast<double>(latencies[latencies.size() / 2]) * us_per_cycle);
      result.latency_p90_us = static_cast<uint64_t>(
          static_cast<double>(latencies[latencies.size() * 9 / 10]) * us_per_cycle);
    }
  }
  SetScaleAccountingEnabled(false);
  CheckTeardownDrift(globals_before);
  return result;
}

// --- Scenario matrix ---------------------------------------------------------

namespace {

// A process that counts what it receives (the examples print instead).
class CountingActor : public ProcessCode {
 public:
  explicit CountingActor(uint64_t* delivered) : delivered_(delivered) {}
  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    (void)ctx;
    (void)msg;
    if (delivered_ != nullptr) {
      ++*delivered_;
    }
  }

 private:
  uint64_t* delivered_;
};

}  // namespace

MailReaderScenarioResult RunMailReaderScenario() {
  MailReaderScenarioResult r;
  Kernel kernel(7);

  uint64_t delivered = 0;
  SpawnArgs reader_args;
  reader_args.name = "mail-reader";
  const ProcessId reader =
      kernel.CreateProcess(std::make_unique<CountingActor>(&delivered), reader_args);
  SpawnArgs fs_args;
  fs_args.name = "filesystem";
  const ProcessId fs =
      kernel.CreateProcess(std::make_unique<CountingActor>(&delivered), fs_args);

  // The inbox's port label {2} refuses any sender whose effective send label
  // exceeds level 2 anywhere — a receiver-imposed discretionary filter.
  Handle inbox;
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    inbox = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(inbox, Label(Level::kL2));
  });

  SpawnArgs att_args;
  att_args.name = "attachment";
  const ProcessId attachment =
      kernel.CreateProcess(std::make_unique<CountingActor>(&delivered), att_args);

  // 1-2: untainted progress report and a trusted filesystem message arrive.
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    Message m;
    m.data = "rendering page 1 of 2";
    ctx.Send(inbox, std::move(m));
  });
  kernel.WithProcessContext(fs, [&](ProcessContext& ctx) {
    Message m;
    m.data = "mailbox synced";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();
  const uint64_t clean_deliveries = delivered;

  // 3: the attachment compromises itself with a high taint; its sends bounce
  // off the inbox port label.
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    const Handle stolen = ctx.NewHandle();
    ctx.SetSendLevel(stolen, Level::kL3);
    Message m;
    m.data = "innocent progress update (with exfiltrated bytes)";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();

  // 4: the reader re-opens the port label; its own receive label {2} is the
  // second line of defence and still drops the tainted send.
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    ctx.SetPortLabel(inbox, Label::Top());
  });
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    Message m;
    m.data = "try again";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();

  r.delivered = delivered;
  r.blocked = kernel.stats().drops_label_check;
  r.ok = clean_deliveries == 2 && r.delivered == 2 && r.blocked == 2;
  if (!r.ok) {
    std::fprintf(stderr,
                 "mail-reader scenario violated §5.5: delivered=%llu blocked=%llu\n",
                 (unsigned long long)r.delivered, (unsigned long long)r.blocked);
    std::abort();
  }
  return r;
}

MlsScenarioResult RunMlsScenario() {
  MlsScenarioResult r;
  Kernel kernel(1976);

  SpawnArgs admin_args;
  admin_args.name = "admin";
  const ProcessId admin =
      kernel.CreateProcess(std::make_unique<CountingActor>(nullptr), admin_args);
  Handle s;  // secret compartment
  Handle t;  // top-secret compartment
  kernel.WithProcessContext(admin, [&](ProcessContext& ctx) {
    s = ctx.NewHandle();
    t = ctx.NewHandle();
  });

  struct Clearance {
    const char* name;
    Label send;
    Label recv;
  };
  const Clearance levels[3] = {
      {"unclassified", Label(Level::kL1), Label(Level::kL2)},
      {"secret", Label({{s, Level::kL3}}, Level::kL1),
       Label({{s, Level::kL3}}, Level::kL2)},
      {"top-secret", Label({{s, Level::kL3}, {t, Level::kL3}}, Level::kL1),
       Label({{s, Level::kL3}, {t, Level::kL3}}, Level::kL2)},
  };

  uint64_t delivered = 0;
  ProcessId analysts[3];
  Handle ports[3];
  for (int i = 0; i < 3; ++i) {
    SpawnArgs args;
    args.name = levels[i].name;
    args.send_label = levels[i].send;
    args.recv_label = levels[i].recv;
    analysts[i] = kernel.CreateProcess(std::make_unique<CountingActor>(&delivered), args);
    kernel.WithProcessContext(analysts[i], [&](ProcessContext& ctx) {
      ports[i] = ctx.NewPort(Label::Top());
      ctx.SetPortLabel(ports[i], Label::Top());
    });
  }

  // Static flow matrix over all 9 sender→receiver pairs.
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (levels[from].send.Leq(levels[to].recv)) {
        ++r.flows_allowed;
      } else {
        ++r.flows_blocked;
      }
    }
  }

  // Live demonstration: every analyst briefs every other.
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) {
        continue;
      }
      kernel.WithProcessContext(analysts[from], [&](ProcessContext& ctx) {
        Message m;
        m.data = std::string(levels[from].name) + " briefing";
        ctx.Send(ports[to], std::move(m));
      });
    }
  }
  kernel.RunUntilIdle();
  r.delivered = delivered;
  r.blocked_drops = kernel.stats().drops_label_check;

  // The "odd label" {t 3, 1}: no classical level, flow control still total.
  const Label odd({{t, Level::kL3}}, Level::kL1);
  const bool odd_ok = !odd.Leq(levels[1].recv) && odd.Leq(levels[2].recv);

  // No-read-up / no-write-down: 6 of 9 static pairs flow (self-flows
  // included), and of the 6 live cross-clearance sends exactly the 3 upward
  // ones arrive.
  r.ok = r.flows_allowed == 6 && r.flows_blocked == 3 && r.delivered == 3 &&
         r.blocked_drops == 3 && odd_ok;
  if (!r.ok) {
    std::fprintf(stderr,
                 "MLS scenario violated §5.2: allowed=%llu blocked=%llu delivered=%llu "
                 "drops=%llu odd_ok=%d\n",
                 (unsigned long long)r.flows_allowed, (unsigned long long)r.flows_blocked,
                 (unsigned long long)r.delivered, (unsigned long long)r.blocked_drops,
                 odd_ok ? 1 : 0);
    std::abort();
  }
  return r;
}

}  // namespace asbestos::bench
