#include "bench/okws_bench_harness.h"

#include <algorithm>
#include <vector>

#include "src/base/strings.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/sim/costs.h"

namespace asbestos::bench {

namespace {

std::string UserName(uint64_t i) { return StrFormat("user%06llu", (unsigned long long)i); }
std::string UserPass(uint64_t i) { return StrFormat("pw%06llu", (unsigned long long)i); }

}  // namespace

double OkwsRunResult::PagesPerSession() const {
  if (sessions == 0) {
    return 0;
  }
  return static_cast<double>(mem_after_bytes - mem_before_bytes) / 4096.0 /
         static_cast<double>(sessions);
}

double OkwsRunResult::PeakPagesPerSession() const {
  if (sessions == 0) {
    return 0;
  }
  return static_cast<double>(mem_peak_bytes - mem_before_bytes) / 4096.0 /
         static_cast<double>(sessions);
}

OkwsRunResult RunOkwsWorkload(const OkwsRunConfig& config) {
  OkwsWorldConfig world_config;
  world_config.users.reserve(config.sessions);
  for (uint64_t i = 0; i < config.sessions; ++i) {
    world_config.users.push_back({UserName(i), UserPass(i)});
  }
  WorkerOptions options;
  options.clean_after_request = !config.active_memory_mode;
  world_config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, options});
  world_config.services.push_back(
      {"store", [] { return std::make_unique<StorageService>(); }, false, options});

  OkwsWorld world(std::move(world_config));
  world.PumpUntilReady();

  // Measure only the workload: boot-time cycles and label work are
  // discarded, and memory/peak baselines start here.
  GetCycleAccounting().Reset();
  ResetLabelWorkStats();
  world.kernel().ResetPeakTotalBytes();
  OkwsRunResult result;
  result.sessions = config.sessions;
  result.mem_before_bytes = world.kernel().MemReport().total_bytes();

  uint64_t total = config.total_connections;
  if (total == 0) {
    total = std::max<uint64_t>(4 * config.sessions, config.min_connections);
  }

  HttpLoadClient client(&world.net(), 80, config.concurrency);
  const std::string target =
      config.service == "store" ? "/store?d=session-payload-0123456789" : "/echo";
  // Pass-major order: the first pass over the users performs every login
  // (event-process creation + idd + database); later passes resume cached
  // sessions — the paper's 4-connections-per-session mix.
  uint64_t enqueued = 0;
  uint64_t pass = 0;
  while (enqueued < total) {
    for (uint64_t u = 0; u < config.sessions && enqueued < total; ++u, ++enqueued) {
      client.Enqueue(OkwsWorld::MakeRequest(target, UserName(u), UserPass(u)), u);
    }
    ++pass;
    if (config.sessions == 0) {
      break;
    }
  }
  (void)pass;
  world.RunClient(&client);

  result.connections_completed = client.results().size();
  result.failures = client.failures();
  result.mem_after_bytes = world.kernel().MemReport().total_bytes();
  result.mem_peak_bytes = world.kernel().peak_total_bytes();
  result.label_entries_visited = GetLabelWorkStats().entries_visited;

  const CycleAccounting& acct = GetCycleAccounting();
  for (int c = 0; c < kComponentCount; ++c) {
    result.component_cycles[static_cast<size_t>(c)] =
        acct.total(static_cast<Component>(c));
  }
  result.elapsed_cycles = static_cast<double>(acct.now());
  if (result.elapsed_cycles > 0) {
    result.throughput_conn_per_sec = static_cast<double>(result.connections_completed) /
                                     (result.elapsed_cycles / costs::kCpuHz);
  }

  std::vector<uint64_t> latencies;
  latencies.reserve(client.results().size());
  for (const auto& r : client.results()) {
    latencies.push_back(r.end_cycles - r.start_cycles);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const double us_per_cycle = 1e6 / costs::kCpuHz;
    result.latency_p50_us = static_cast<uint64_t>(
        static_cast<double>(latencies[latencies.size() / 2]) * us_per_cycle);
    result.latency_p90_us = static_cast<uint64_t>(
        static_cast<double>(latencies[latencies.size() * 9 / 10]) * us_per_cycle);
  }
  return result;
}

}  // namespace asbestos::bench
