// IPC microbenchmarks: message round-trips through the kernel's Figure-4
// checks, as a function of receiver label size — the per-message mechanism
// behind Figure 9's "Kernel IPC" line — plus the zero-copy payload plane:
// payload-size sweeps (small words vs 4 KiB vs 64 KiB) and a 1→K fan-out
// pair that proves K receivers share one refcounted buffer instead of K
// copies (see src/kernel/payload.h).
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_ipc.json (google-benchmark JSON)
// into the working directory so the perf trajectory is tracked across PRs.
// `--smoke` shrinks every measurement to a sanity-check run for CI.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/payload.h"
#include "src/obs/metrics.h"
#include "src/obs/reset.h"
#include "src/sim/cycles.h"

namespace asbestos {
namespace {

class Sink : public ProcessCode {
 public:
  void HandleMessage(ProcessContext&, const Message&) override {}
};

struct PingPongWorld {
  explicit PingPongWorld(size_t receiver_label_entries) : kernel(42) {
    SpawnArgs rargs;
    rargs.name = "receiver";
    // Give the receiver a wide receive label, like netd's after N users.
    Label recv(kDefaultReceiveLevel);
    for (size_t i = 0; i < receiver_label_entries; ++i) {
      recv.Set(Handle::FromValue(1000 + i * 3), Level::kL3);
    }
    rargs.recv_label = recv;
    rx = kernel.CreateProcess(std::make_unique<Sink>(), rargs);
    kernel.WithProcessContext(rx, [&](ProcessContext& ctx) {
      port = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(port, Label::Top()) == Status::kOk);
    });
    SpawnArgs sargs;
    sargs.name = "sender";
    tx = kernel.CreateProcess(std::make_unique<Sink>(), sargs);
    kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
      taint = ctx.NewHandle();
    });
  }

  Kernel kernel;
  ProcessId rx = kNoProcess;
  ProcessId tx = kNoProcess;
  Handle port;
  Handle taint;
};

void BM_SendDeliverPlain(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  PingPongWorld world(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      ASB_ASSERT(ctx.Send(world.port, std::move(m)) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
  state.counters["virtual_cycles_per_msg"] = benchmark::Counter(
      static_cast<double>(GetCycleAccounting().total(Component::kKernelIpc)),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SendDeliverPlain)->Range(1, 1 << 13);

void BM_SendDeliverContaminating(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  // Contaminating sends force a real ES materialization and a merge against
  // the receiver's wide label — the slow path netd/idd exercise per message.
  PingPongWorld world(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      SendArgs args;
      args.contaminate = Label({{world.taint, Level::kL2}}, Level::kStar);
      ASB_ASSERT(ctx.Send(world.port, std::move(m), args) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
}
BENCHMARK(BM_SendDeliverContaminating)->Range(1, 1 << 13);

// Words-only messages (handle values, counts): the small-message floor the
// payload plane must not tax. Arg = word count.
void BM_SendDeliverSmallWords(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  PingPongWorld world(0);
  const std::vector<uint64_t> words(static_cast<size_t>(state.range(0)), 0x51u);
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      m.words = words;
      ASB_ASSERT(ctx.Send(world.port, std::move(m)) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_SendDeliverSmallWords)->Arg(1)->Arg(8);

void BM_SendDeliverWithPayload(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  PingPongWorld world(0);
  const Payload payload(std::string(static_cast<size_t>(state.range(0)), 'x'));
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      m.data = payload;  // refcount bump; send/enqueue/deliver move it
      ASB_ASSERT(ctx.Send(world.port, std::move(m)) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SendDeliverWithPayload)->Range(16, 1 << 16);

// 1→K fan-out, one buffer: the sender stamps the SAME Payload onto K
// messages, so every queue entry and every delivery shares one allocation.
// The payload.* counter deltas are the proof — bytes_shared_saved grows by
// (K-1)·size per iteration while cow_copies stays flat.
void BM_FanOutSharedPayload(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t fanout = static_cast<size_t>(state.range(0));
  const size_t bytes = 64 * 1024;
  PingPongWorld world(0);
  std::vector<Handle> ports;
  world.kernel.WithProcessContext(world.rx, [&](ProcessContext& ctx) {
    for (size_t k = 0; k < fanout; ++k) {
      Handle p = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(p, Label::Top()) == Status::kOk);
      ports.push_back(p);
    }
  });
  const Payload payload(std::string(bytes, 'x'));
  const PayloadStats before = GetPayloadStats();
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      for (Handle p : ports) {
        Message m;
        m.type = 1;
        m.data = payload;
        ASB_ASSERT(ctx.Send(p, std::move(m)) == Status::kOk);
      }
    });
    world.kernel.RunUntilIdle();
  }
  const PayloadStats after = GetPayloadStats();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * fanout * bytes));
  state.counters["fanout"] = static_cast<double>(fanout);
  // Bytes a copying design would have duplicated, per delivered message —
  // ≈ payload size when sharing works, 0 if a copy sneaks back in.
  state.counters["bytes_shared_saved_per_msg"] = benchmark::Counter(
      static_cast<double>(after.bytes_shared_saved - before.bytes_shared_saved) /
          static_cast<double>(fanout),
      benchmark::Counter::kAvgIterations);
  state.counters["payload_cow_copies"] =
      static_cast<double>(after.cow_copies - before.cow_copies);
}
BENCHMARK(BM_FanOutSharedPayload)->Arg(4)->Arg(16);

// The same fan-out with a fresh buffer per message — what the pre-Payload
// kernel did implicitly. The wall-clock and bytes_shared_saved gap against
// BM_FanOutSharedPayload is the K× copy reduction.
void BM_FanOutPrivatePayload(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const size_t fanout = static_cast<size_t>(state.range(0));
  const size_t bytes = 64 * 1024;
  PingPongWorld world(0);
  std::vector<Handle> ports;
  world.kernel.WithProcessContext(world.rx, [&](ProcessContext& ctx) {
    for (size_t k = 0; k < fanout; ++k) {
      Handle p = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(p, Label::Top()) == Status::kOk);
      ports.push_back(p);
    }
  });
  const std::string body(bytes, 'x');
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      for (Handle p : ports) {
        Message m;
        m.type = 1;
        m.data = std::string(body);  // deliberate per-message allocation
        ASB_ASSERT(ctx.Send(p, std::move(m)) == Status::kOk);
      }
    });
    world.kernel.RunUntilIdle();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * fanout * bytes));
  state.counters["fanout"] = static_cast<double>(fanout);
}
BENCHMARK(BM_FanOutPrivatePayload)->Arg(4)->Arg(16);

}  // namespace
}  // namespace asbestos

// Custom main instead of BENCHMARK_MAIN: default the run to writing
// BENCH_ipc.json (JSON results tracked across PRs) and translate the
// `--smoke` convenience flag into a minimal-time run for CI regression
// checks, where only "builds, runs, produces sane numbers" matters.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    // Exactly the output-file flag: --benchmark_out_format alone must not
    // suppress the default output file.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_ipc.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The unified metrics snapshot rides alongside the google-benchmark JSON
  // (same basename, .metrics.json suffix); see README "Observability".
  asbestos::obs::Registry::Get().WriteSnapshotFile("BENCH_ipc.metrics.json");
  return 0;
}
