// IPC microbenchmarks: message round-trips through the kernel's Figure-4
// checks, as a function of receiver label size — the per-message mechanism
// behind Figure 9's "Kernel IPC" line.
#include <benchmark/benchmark.h>

#include "src/kernel/kernel.h"
#include "src/sim/cycles.h"

namespace asbestos {
namespace {

class Sink : public ProcessCode {
 public:
  void HandleMessage(ProcessContext&, const Message&) override {}
};

struct PingPongWorld {
  explicit PingPongWorld(size_t receiver_label_entries) : kernel(42) {
    SpawnArgs rargs;
    rargs.name = "receiver";
    // Give the receiver a wide receive label, like netd's after N users.
    Label recv(kDefaultReceiveLevel);
    for (size_t i = 0; i < receiver_label_entries; ++i) {
      recv.Set(Handle::FromValue(1000 + i * 3), Level::kL3);
    }
    rargs.recv_label = recv;
    rx = kernel.CreateProcess(std::make_unique<Sink>(), rargs);
    kernel.WithProcessContext(rx, [&](ProcessContext& ctx) {
      port = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(port, Label::Top()) == Status::kOk);
    });
    SpawnArgs sargs;
    sargs.name = "sender";
    tx = kernel.CreateProcess(std::make_unique<Sink>(), sargs);
    kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
      taint = ctx.NewHandle();
    });
  }

  Kernel kernel;
  ProcessId rx = kNoProcess;
  ProcessId tx = kNoProcess;
  Handle port;
  Handle taint;
};

void BM_SendDeliverPlain(benchmark::State& state) {
  PingPongWorld world(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      ASB_ASSERT(ctx.Send(world.port, std::move(m)) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
  state.counters["virtual_cycles_per_msg"] = benchmark::Counter(
      static_cast<double>(GetCycleAccounting().total(Component::kKernelIpc)),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SendDeliverPlain)->Range(1, 1 << 13);

void BM_SendDeliverContaminating(benchmark::State& state) {
  // Contaminating sends force a real ES materialization and a merge against
  // the receiver's wide label — the slow path netd/idd exercise per message.
  PingPongWorld world(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      SendArgs args;
      args.contaminate = Label({{world.taint, Level::kL2}}, Level::kStar);
      ASB_ASSERT(ctx.Send(world.port, std::move(m), args) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
}
BENCHMARK(BM_SendDeliverContaminating)->Range(1, 1 << 13);

void BM_SendDeliverWithPayload(benchmark::State& state) {
  PingPongWorld world(0);
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    world.kernel.WithProcessContext(world.tx, [&](ProcessContext& ctx) {
      Message m;
      m.type = 1;
      m.data = payload;
      ASB_ASSERT(ctx.Send(world.port, std::move(m)) == Status::kOk);
    });
    world.kernel.RunUntilIdle();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SendDeliverWithPayload)->Range(16, 1 << 16);

}  // namespace
}  // namespace asbestos

BENCHMARK_MAIN();
