// Million-compartment scale: bytes-per-user must stay flat across decades
// of users (the tentpole claim — interned labels, dense handle tables,
// interned binding tables, and parked sessions make an idle user cost a
// compact record, not an event process).
//
// BM_ScaleUsers boots the full OKWS world at 10^3 / 10^4 / 10^5 users
// (10^6 with --full) with session parking and scale accounting ON, drives
// two passes over every user (login + resume-from-park), and reports the
// kernel's total bytes over distinct users. After the runs, main() asserts
// the flatness contract: bytes_per_user may grow at most 1.25× from 10^4 to
// 10^5 users. `--smoke` keeps CI to the 10^3/10^4 decades.
//
// The examples/ scenarios (mail-reader §5.5, MLS §5.2) ride along as a
// measured scenario matrix — each iteration re-proves the paper's flow
// outcomes (the harness aborts on violation) and publishes the counts.
//
// Results are machine-readable: unless the caller passes its own
// --benchmark_out, the run writes BENCH_scale.json plus the
// BENCH_scale.metrics.json registry snapshot.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "bench/okws_bench_harness.h"
#include "src/obs/metrics.h"
#include "src/obs/reset.h"

namespace asbestos {
namespace {

// bytes_per_user by decade, for the post-run flatness assertion.
std::map<uint64_t, double>& BytesPerUserByDecade() {
  static std::map<uint64_t, double> m;
  return m;
}

void BM_ScaleUsers(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const auto users = static_cast<uint64_t>(state.range(0));
  bench::OkwsRunResult result;
  for (auto _ : state) {
    bench::OkwsRunConfig config;
    config.sessions = users;
    config.total_connections = 2 * users;  // pass 1 logs in, pass 2 resumes
    config.min_connections = 0;
    config.service = "echo";
    config.park_idle_sessions = true;
    config.scale_accounting = true;
    result = bench::RunOkwsWorkload(config);
  }
  if (result.failures != 0 || result.connections_completed != 2 * users) {
    std::fprintf(stderr, "bench_scale: %llu users: %llu/%llu connections, %llu failures\n",
                 (unsigned long long)users,
                 (unsigned long long)result.connections_completed,
                 (unsigned long long)(2 * users), (unsigned long long)result.failures);
    std::abort();
  }
  const double bytes_per_user = result.BytesPerUser();
  BytesPerUserByDecade()[users] = bytes_per_user;
  state.counters["users"] = static_cast<double>(users);
  state.counters["bytes_per_user"] = bytes_per_user;
  state.counters["total_bytes"] = static_cast<double>(result.mem_after_bytes);
  state.counters["session_bytes"] = static_cast<double>(result.session_bytes);
  state.counters["binding_bytes"] = static_cast<double>(result.binding_bytes);
  state.counters["handle_table_bytes"] = static_cast<double>(result.handle_table_bytes);
  state.counters["session_parks"] = static_cast<double>(result.session_parks);
  state.counters["session_resumes"] = static_cast<double>(result.session_resumes);
  state.counters["throughput_conn_per_sec"] = result.throughput_conn_per_sec;
}

// The same world WITHOUT parking/scale accounting, at the smallest decade:
// the before/after anchor for the README table (an idle user keeps a full
// event process: state page + overlay slots + uW + EP record).
void BM_ScaleUsersUnparked(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  const auto users = static_cast<uint64_t>(state.range(0));
  bench::OkwsRunResult result;
  for (auto _ : state) {
    bench::OkwsRunConfig config;
    config.sessions = users;
    config.total_connections = 2 * users;
    config.min_connections = 0;
    config.service = "echo";
    result = bench::RunOkwsWorkload(config);
  }
  state.counters["users"] = static_cast<double>(users);
  state.counters["bytes_per_user"] = result.BytesPerUser();
  state.counters["total_bytes"] = static_cast<double>(result.mem_after_bytes);
}

void BM_MailReaderScenario(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  bench::MailReaderScenarioResult r;
  for (auto _ : state) {
    r = bench::RunMailReaderScenario();  // aborts on a §5.5 violation
  }
  state.counters["delivered"] = static_cast<double>(r.delivered);
  state.counters["blocked"] = static_cast<double>(r.blocked);
}

void BM_MlsScenario(benchmark::State& state) {
  obs::ResetAll();  // fresh obs state per benchmark: no cross-run bleed
  bench::MlsScenarioResult r;
  for (auto _ : state) {
    r = bench::RunMlsScenario();  // aborts on a §5.2 violation
  }
  state.counters["flows_allowed"] = static_cast<double>(r.flows_allowed);
  state.counters["flows_blocked"] = static_cast<double>(r.flows_blocked);
  state.counters["delivered"] = static_cast<double>(r.delivered);
  state.counters["blocked_drops"] = static_cast<double>(r.blocked_drops);
}
BENCHMARK(BM_MailReaderScenario);
BENCHMARK(BM_MlsScenario);

// The flatness contract the JSON is asserted against before it is written:
// per-user bytes may grow at most kMaxDecadeRatio from one measured decade
// to the next (fixed world overhead amortizes downward; only genuine
// per-user growth could push the ratio up).
constexpr double kMaxDecadeRatio = 1.25;

bool CheckFlatness() {
  const auto& by_decade = BytesPerUserByDecade();
  bool ok = true;
  const std::pair<uint64_t, uint64_t> decade_pairs[] = {
      {10000, 100000}, {100000, 1000000}};
  for (const auto& [lo, hi] : decade_pairs) {
    const auto l = by_decade.find(lo);
    const auto h = by_decade.find(hi);
    if (l == by_decade.end() || h == by_decade.end()) {
      continue;  // decade not measured in this mode
    }
    const double ratio = l->second > 0 ? h->second / l->second : 0;
    std::printf("bench_scale: bytes_per_user %llu -> %llu users: %.1f -> %.1f (%.3fx)\n",
                (unsigned long long)lo, (unsigned long long)hi, l->second, h->second,
                ratio);
    if (ratio > kMaxDecadeRatio) {
      std::fprintf(stderr,
                   "bench_scale: bytes_per_user grew %.3fx from %llu to %llu users "
                   "(contract: <= %.2fx)\n",
                   ratio, (unsigned long long)lo, (unsigned long long)hi,
                   kMaxDecadeRatio);
      ok = false;
    }
  }
  return ok;
}

}  // namespace
}  // namespace asbestos

// Custom main instead of BENCHMARK_MAIN: register the user decades for the
// selected mode, default the run to writing BENCH_scale.json, translate
// `--smoke`, and enforce the flatness contract before exiting.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 3);
  bool has_out = false;
  bool smoke = false;
  bool full = false;
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--full") {
      full = true;
      continue;
    }
    // Exactly the output-file flag: --benchmark_out_format alone must not
    // suppress the default output file.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
    args.emplace_back(arg);
  }
  if (!has_out) {
    args.emplace_back("--benchmark_out=BENCH_scale.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  if (smoke) {
    args.emplace_back("--benchmark_min_time=0.01");
  }

  // One boot per decade is the measurement; more iterations would only
  // re-boot identical worlds.
  auto* scale = benchmark::RegisterBenchmark("BM_ScaleUsers", asbestos::BM_ScaleUsers);
  scale->Unit(benchmark::kMillisecond)->Iterations(1);
  scale->Arg(1000)->Arg(10000);
  if (!smoke) {
    scale->Arg(100000);
  }
  if (full) {
    scale->Arg(1000000);
  }
  benchmark::RegisterBenchmark("BM_ScaleUsersUnparked", asbestos::BM_ScaleUsersUnparked)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1)
      ->Arg(1000);

  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) {
    argv2.push_back(a.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The unified metrics snapshot rides alongside the google-benchmark JSON
  // (same basename, .metrics.json suffix); see README "Observability".
  asbestos::obs::Registry::Get().WriteSnapshotFile("BENCH_scale.metrics.json");
  return asbestos::CheckFlatness() ? 0 : 1;
}
