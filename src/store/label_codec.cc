#include "src/store/label_codec.h"

namespace asbestos {
namespace codec {

namespace {

constexpr int kMaxVarintBytes = 10;  // ceil(64 / 7)

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Status ReadVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (*pos >= data.size()) {
      return Status::kBufferTooSmall;
    }
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    // The 10th byte may only contribute the final value bit.
    if (i == kMaxVarintBytes - 1 && (byte & 0xfe) != 0) {
      return Status::kInvalidArgs;
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return Status::kOk;
    }
    shift += 7;
  }
  return Status::kInvalidArgs;
}

void AppendString(std::string_view s, std::string* out) {
  AppendVarint(s.size(), out);
  out->append(s.data(), s.size());
}

Status ReadString(std::string_view data, size_t* pos, std::string_view* out) {
  uint64_t len = 0;
  const Status s = ReadVarint(data, pos, &len);
  if (!IsOk(s)) {
    return s;
  }
  if (len > data.size() - *pos) {
    return Status::kBufferTooSmall;
  }
  *out = data.substr(*pos, len);
  *pos += len;
  return Status::kOk;
}

void AppendLabel(const Label& label, std::string* out) {
  out->push_back(static_cast<char>(LevelOrdinal(label.default_level())));

  // First pass: count maximal runs of equal level over the ordered entries.
  uint64_t runs = 0;
  {
    Level run_level = Level::kL3;
    bool in_run = false;
    for (Label::EntryIter it = label.IterateEntries(); !it.done(); it.Advance()) {
      if (!in_run || it.level() != run_level) {
        ++runs;
        run_level = it.level();
        in_run = true;
      }
    }
  }
  AppendVarint(runs, out);

  // Second pass: emit each run as (len<<3)|level, then its handle deltas.
  Label::EntryIter it = label.IterateEntries();
  uint64_t prev = 0;
  while (!it.done()) {
    const Level run_level = it.level();
    // Collect the run extent by buffering its deltas.
    std::string deltas;
    uint64_t len = 0;
    while (!it.done() && it.level() == run_level) {
      AppendVarint(it.handle().value() - prev, &deltas);
      prev = it.handle().value();
      ++len;
      it.Advance();
    }
    AppendVarint((len << 3) | LevelOrdinal(run_level), out);
    out->append(deltas);
  }
}

Status ReadLabel(std::string_view data, size_t* pos, Label* out) {
  if (*pos >= data.size()) {
    return Status::kBufferTooSmall;
  }
  const uint8_t def_ordinal = static_cast<uint8_t>(data[*pos]);
  ++*pos;
  if (def_ordinal > LevelOrdinal(Level::kL3)) {
    return Status::kInvalidArgs;
  }
  const Level def = static_cast<Level>(def_ordinal);

  uint64_t runs = 0;
  Status s = ReadVarint(data, pos, &runs);
  if (!IsOk(s)) {
    return s;
  }
  // Decode through LabelBuilder: every entry is validated here — level, run
  // length, strict handle monotonicity (delta ≥ 1 keeps the stream sorted
  // and non-overlapping across runs), 61-bit overflow — and then appended to
  // a flat buffer that Build() memcpys into chunks. The previous per-entry
  // Label::Set path paid O(chunk) per entry (~7 MB/s on 4k-entry labels);
  // this is the near-memcpy recovery path bench_store's BM_UnpickleLabel
  // tracks. On any failure *out is untouched.
  LabelBuilder builder(def);
  uint64_t handle = 0;
  for (uint64_t r = 0; r < runs; ++r) {
    uint64_t header = 0;
    s = ReadVarint(data, pos, &header);
    if (!IsOk(s)) {
      return s;
    }
    const uint8_t level_ordinal = header & 0x7;
    const uint64_t len = header >> 3;
    // A canonical encoding never stores default-valued entries or empty runs.
    if (level_ordinal > LevelOrdinal(Level::kL3) || level_ordinal == def_ordinal || len == 0) {
      return Status::kInvalidArgs;
    }
    // Each delta is at least one byte, so a run longer than the remaining
    // buffer can never decode; failing here keeps a forged length from
    // driving a quadratic validate-per-entry loop over a short buffer.
    if (len > data.size() - *pos) {
      return Status::kBufferTooSmall;
    }
    const Level level = static_cast<Level>(level_ordinal);
    builder.Reserve(static_cast<size_t>(len));
    for (uint64_t i = 0; i < len; ++i) {
      uint64_t delta = 0;
      s = ReadVarint(data, pos, &delta);
      if (!IsOk(s)) {
        return s;
      }
      // Entries are strictly increasing, so a delta of zero (or one that
      // overflows the 61-bit handle space) marks corruption.
      if (delta == 0 || delta > Handle::kMaxValue - handle) {
        return Status::kInvalidArgs;
      }
      handle += delta;
      builder.Append(Handle::FromValue(handle), level);
    }
  }
  *out = builder.Build();
  return Status::kOk;
}

std::string PickleLabel(const Label& label) {
  std::string out;
  AppendLabel(label, &out);
  return out;
}

Status UnpickleLabel(std::string_view data, Label* out) {
  size_t pos = 0;
  const Status s = ReadLabel(data, &pos, out);
  if (!IsOk(s)) {
    return s;
  }
  return pos == data.size() ? Status::kOk : Status::kInvalidArgs;
}

}  // namespace codec
}  // namespace asbestos
