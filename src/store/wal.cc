#include "src/store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace asbestos {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

uint32_t ReadU32Le(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));  // the simulator only targets little-endian hosts
  return v;
}

void AppendU32Le(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      return Status::kBadState;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::kOk;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Wal::~Wal() { Close(); }

void Wal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::Open(const std::string& path,
                 const std::function<void(std::string_view)>& on_record) {
  if (fd_ >= 0) {
    return Status::kBadState;
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::kNotFound;
  }
  path_ = path;
  dirty_ = false;
  generation_ = 0;
  recovered_records_ = 0;
  dropped_tail_bytes_ = 0;
  appended_records_ = 0;

  // Read the whole log; WALs are bounded by compaction, so this stays small.
  std::string contents;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof(buf))) > 0) {
      contents.append(buf, static_cast<size_t>(n));
    }
    if (n < 0) {
      Close();
      return Status::kBadState;
    }
  }

  // Replay the valid prefix.
  size_t pos = 0;
  while (true) {
    if (contents.size() - pos < kFrameHeaderBytes) {
      break;  // clean EOF or torn header
    }
    const uint32_t len = ReadU32Le(contents.data() + pos);
    const uint32_t crc = ReadU32Le(contents.data() + pos + 4);
    if (contents.size() - pos - kFrameHeaderBytes < len) {
      break;  // torn payload
    }
    const std::string_view payload(contents.data() + pos + kFrameHeaderBytes, len);
    if (Crc32(payload) != crc) {
      break;  // corrupt frame: stop here, drop it and everything after
    }
    on_record(payload);
    ++recovered_records_;
    pos += kFrameHeaderBytes + len;
  }

  dropped_tail_bytes_ = contents.size() - pos;
  if (dropped_tail_bytes_ > 0 && ::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
    Close();
    return Status::kBadState;
  }
  if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) {
    Close();
    return Status::kBadState;
  }
  size_bytes_ = pos;
  return Status::kOk;
}

Status Wal::Append(std::string_view record) {
  if (fd_ < 0) {
    return Status::kBadState;
  }
  if (record.size() > UINT32_MAX) {
    return Status::kInvalidArgs;
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + record.size());
  AppendU32Le(static_cast<uint32_t>(record.size()), &frame);
  AppendU32Le(Crc32(record), &frame);
  frame.append(record.data(), record.size());
  const Status s = WriteAll(fd_, frame.data(), frame.size());
  if (!IsOk(s)) {
    // A partial write must not stay in the file: recovery stops at the first
    // torn frame, so leaving these bytes would silently discard every record
    // appended (and acknowledged) after the failure. Restore the last good
    // frame boundary.
    (void)::ftruncate(fd_, static_cast<off_t>(size_bytes_));
    (void)::lseek(fd_, static_cast<off_t>(size_bytes_), SEEK_SET);
    return s;
  }
  size_bytes_ += frame.size();
  ++appended_records_;
  dirty_ = true;
  return Status::kOk;
}

Status Wal::Sync() {
  const Status s = SyncDataOnly();
  if (!IsOk(s)) {
    return s;
  }
  dirty_ = false;
  return Status::kOk;
}

Status Wal::SyncDataOnly() const {
  if (fd_ < 0) {
    return Status::kBadState;
  }
  // fdatasync, not fsync: it flushes the data and every piece of metadata
  // needed to retrieve it (including the file size appends grow), skipping
  // only timestamps — which recovery never reads. On journaling filesystems
  // that regularly saves a journal commit per flush.
  return ::fdatasync(fd_) == 0 ? Status::kOk : Status::kBadState;
}

Status Wal::Reset() {
  if (fd_ < 0) {
    return Status::kBadState;
  }
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::kBadState;
  }
  size_bytes_ = 0;
  appended_records_ = 0;
  // Every (old generation, offset) pair now names discarded bytes; cursors
  // held by replication sources must notice and fall back to a snapshot.
  ++generation_;
  return Sync();
}

Status Wal::ReadAt(uint64_t offset, uint64_t max_bytes, std::string* out) const {
  out->clear();
  if (fd_ < 0) {
    return Status::kBadState;
  }
  if (offset >= size_bytes_ || max_bytes == 0) {
    return Status::kOk;  // at (or past) the tail: nothing to read
  }
  const uint64_t want = std::min(max_bytes, size_bytes_ - offset);
  out->resize(want);
  uint64_t got = 0;
  while (got < want) {
    const ssize_t n = ::pread(fd_, out->data() + got, want - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      out->clear();
      return Status::kBadState;
    }
    if (n == 0) {
      break;  // raced a truncate; return what is there
    }
    got += static_cast<uint64_t>(n);
  }
  out->resize(got);
  return Status::kOk;
}

}  // namespace asbestos
