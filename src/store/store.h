// DurableStore: a labeled key-value store that survives reboots.
//
// The paper's servers keep labeled state — file contents with secrecy and
// integrity compartments (§5.2–5.4), identity bindings (§7.4) — that must
// outlive a process or machine restart. DurableStore maps
//
//     key (string)  →  (value bytes, secrecy label, integrity label)
//
// and persists every mutation through a write-ahead log before applying it
// in memory, with periodic snapshot + log-truncation compaction:
//
//   <dir>/wal        CRC-framed mutation records (src/store/wal.h framing)
//   <dir>/snapshot   full image: "ASBSTOR1" magic, u32 crc, body
//
// Recovery loads the snapshot (if any), replays the log's valid prefix over
// it, and repairs a torn tail. Labels are pickled with the binary codec
// (src/store/label_codec.h), so secrecy and integrity survive bit-exactly —
// the property the file server's restart path depends on.
//
// In-memory bytes are tracked globally (GetStoreMemStats) and surface in
// KernelMemReport::store_bytes so Figure-6 style reporting covers the cost
// of durability. Label heap inside stored records is intentionally excluded
// here: src/labels already counts every live label rep and chunk, and the
// kernel report must not count them twice.
#ifndef SRC_STORE_STORE_H_
#define SRC_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/labels/label.h"
#include "src/store/wal.h"

namespace asbestos {

// Live in-memory bytes across all open stores (keys, values, fixed
// per-record overhead; label heap is counted by LabelMemStats).
struct StoreMemStats {
  int64_t live_bytes = 0;
  int64_t live_records = 0;
};

const StoreMemStats& GetStoreMemStats();

// Modeled per-record index overhead (map node, pointers, sizes).
constexpr uint64_t kStoreRecordOverheadBytes = 64;

struct StoreRecord {
  std::string value;
  Label secrecy = Label(Level::kStar);   // contamination applied to readers
  Label integrity = Label(Level::kL3);   // bound writers must prove via V
};

struct StoreOptions {
  std::string dir;
  // fsync the log after every mutation (true durability per append) versus
  // leaving syncs to the OS / explicit Sync() calls (faster, loses the
  // unsynced suffix on a crash — still never corrupts).
  bool sync_each_append = false;
  // Auto-compaction: once the log holds at least this many records AND at
  // least `compact_factor`× the live record count, fold it into a snapshot.
  uint64_t compact_min_log_records = 1024;
  uint64_t compact_factor = 4;
};

class DurableStore {
 public:
  // Opens the store rooted at opts.dir (created if missing) and recovers
  // its contents from snapshot + log.
  static Result<std::unique_ptr<DurableStore>> Open(StoreOptions opts);

  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // Logs then applies. Put overwrites; Erase of a missing key is kNotFound
  // and writes nothing.
  Status Put(std::string_view key, std::string_view value, const Label& secrecy,
             const Label& integrity);
  Status Erase(std::string_view key);

  const StoreRecord* Get(const std::string& key) const;
  const std::map<std::string, StoreRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  // Writes a fresh snapshot (atomically, via rename) and truncates the log.
  Status Compact();
  Status Sync();

  // --- Recovery / durability observability ---------------------------------
  uint64_t snapshot_records_loaded() const { return snapshot_records_loaded_; }
  uint64_t log_records_replayed() const { return log_records_replayed_; }
  uint64_t torn_tail_bytes_dropped() const { return torn_tail_bytes_dropped_; }
  uint64_t wal_bytes() const { return wal_.size_bytes(); }
  uint64_t compactions() const { return compactions_; }

 private:
  explicit DurableStore(StoreOptions opts) : opts_(std::move(opts)) {}

  Status Recover();
  Status LoadSnapshot();
  void ApplyLogRecord(std::string_view payload);
  void InsertRecord(std::string key, StoreRecord record);
  bool EraseRecord(const std::string& key);
  void MaybeAutoCompact();

  StoreOptions opts_;
  Wal wal_;
  std::map<std::string, StoreRecord> records_;
  uint64_t snapshot_records_loaded_ = 0;
  uint64_t log_records_replayed_ = 0;
  uint64_t torn_tail_bytes_dropped_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace asbestos

#endif  // SRC_STORE_STORE_H_
