// DurableStore: a labeled key-value store that survives reboots.
//
// The paper's servers keep labeled state — file contents with secrecy and
// integrity compartments (§5.2–5.4), identity bindings (§7.4) — that must
// outlive a process or machine restart. DurableStore maps
//
//     key (string)  →  (value bytes, secrecy label, integrity label)
//
// and persists every mutation through a write-ahead log before applying it
// in memory, with periodic snapshot + log-truncation compaction.
//
// The store is sharded: keys are spread by a stable hash over N independent
// (WAL, snapshot, map) shards, each recovering, compacting, and fsyncing on
// its own — a torn tail in one shard never blocks recovery of its siblings,
// and durable state spreads across logs (and, eventually, disks/cores):
//
//   shards == 1 (flat, the original layout — old stores open unchanged):
//     <dir>/wal        CRC-framed mutation records (src/store/wal.h framing)
//     <dir>/snapshot   full image: "ASBSTOR1" magic, u32 crc, body
//   shards == N > 1:
//     <dir>/shards             decimal shard count, stamped at creation
//     <dir>/shard-<k>/wal      shard k's log,      k in [0, N)
//     <dir>/shard-<k>/snapshot shard k's snapshot
//
// The shard count is fixed at creation (<dir>/shards) and re-adopted on
// every later open, so the key → shard mapping never shifts under existing
// data regardless of what shard count callers pass later.
//
// Durability is group-committed: Put/Erase append to the shard's log and
// mark it dirty, and Sync() fsyncs each dirty shard exactly once. Servers
// call Sync() at the end of each kernel pump iteration (ProcessCode::OnIdle)
// — one fsync per shard per batch instead of per mutation. A crash loses
// only the suffix appended since the last Sync(); it never corrupts, and
// recovery still replays each shard's valid log prefix and repairs its torn
// tail independently.
//
// Labels are pickled with the binary codec (src/store/label_codec.h), so
// secrecy and integrity survive bit-exactly — the property the file
// server's restart path depends on.
//
// In-memory bytes are tracked globally (GetStoreMemStats) and surface in
// KernelMemReport::store_bytes so Figure-6 style reporting covers the cost
// of durability. Label heap inside stored records is intentionally excluded
// here: src/labels already counts every live label rep and chunk, and the
// kernel report must not count them twice.
#ifndef SRC_STORE_STORE_H_
#define SRC_STORE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/labels/label.h"
#include "src/store/wal.h"

namespace asbestos {

// Live in-memory bytes across all open stores (keys, values, fixed
// per-record overhead; label heap is counted by LabelMemStats).
struct StoreMemStats {
  int64_t live_bytes = 0;
  int64_t live_records = 0;
};

const StoreMemStats& GetStoreMemStats();

// Durably replaces <dir>/<name>: writes a temp file, fsyncs it, renames it
// into place, and fsyncs the directory so the rename survives a power cut.
// Shared by the store's snapshot writer and the replication cursor
// checkpoint (src/replication/replica.cc).
Status WriteFileAtomically(const std::string& dir, const std::string& name,
                           std::string_view contents);

// Modeled per-record index overhead (map node, pointers, sizes).
constexpr uint64_t kStoreRecordOverheadBytes = 64;

// Shard counts beyond this are almost certainly a bug (the simulator's
// servers hold thousands of records, not billions).
constexpr uint32_t kStoreMaxShards = 256;

struct StoreRecord {
  std::string value;
  Label secrecy = Label(Level::kStar);   // contamination applied to readers
  Label integrity = Label(Level::kL3);   // bound writers must prove via V
};

struct StoreOptions {
  std::string dir;
  // Number of (WAL, snapshot, map) shards for a store created at this dir.
  // Ignored when the directory already holds a store: the count stamped at
  // creation wins, so the key → shard hash stays stable for the store's
  // whole life. 1 keeps the flat single-log layout.
  uint32_t shards = 1;
  // Per-shard auto-compaction: once a shard's log holds at least this many
  // records AND at least `compact_factor`× the shard's live record count,
  // fold it into that shard's snapshot.
  uint64_t compact_min_log_records = 1024;
  uint64_t compact_factor = 4;
  // Compaction-aware replication fan-out: keep up to this many bytes of the
  // compacted generation's WAL tail in memory, so a replication source can
  // stream a nearly-synced follower across the generation switch (and hand
  // it over with a kGenMark) instead of re-imaging it with a snapshot.
  // 0 (the default) retains nothing — compaction behaves exactly as before.
  uint64_t retain_wal_tail_bytes = 0;
};

class DurableStore {
 public:
  // Opens the store rooted at opts.dir (created if missing) and recovers
  // its contents from the shards' snapshots + logs.
  static Result<std::unique_ptr<DurableStore>> Open(StoreOptions opts);

  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // Logs then applies (to the key's shard). Put overwrites; Erase of a
  // missing key is kNotFound and writes nothing. Neither fsyncs: durability
  // of the append is pending until the next Sync().
  Status Put(std::string_view key, std::string_view value, const Label& secrecy,
             const Label& integrity);
  Status Erase(std::string_view key);

  const StoreRecord* Get(const std::string& key) const;
  // Visits every record, shard by shard (keys sorted within a shard, not
  // globally). Replaces the old records() accessor, which pinned the store
  // to a single map.
  void ForEach(const std::function<void(const std::string&, const StoreRecord&)>& fn) const;
  size_t size() const;

  // Writes a fresh snapshot per shard (atomically, via rename) and
  // truncates each shard's log.
  Status Compact();
  // Group commit: fsyncs every dirty shard's log exactly once and clears
  // the dirty marks. A no-op (and no syscalls) when nothing is dirty.
  // Multiple dirty shards flush concurrently when the observed per-shard
  // flush cost is high enough (device cache flush dominated) to repay the
  // thread churn; cheap flushes stay on a serial loop. Drains any pipelined
  // flush first, so on return EVERYTHING ever appended is durable.
  Status Sync();

  // Pipelined group commit: hands the dirty shards to a background flusher
  // and returns without waiting for the device, so the ~200µs flush round
  // trip overlaps the next kernel pump iteration instead of blocking it
  // (ProcessCode::OnIdle callers). The durability acknowledgement is
  // deferred by one call: each invocation first waits for the PREVIOUS
  // flush (usually already finished — a whole pump ran meanwhile) and
  // reports its outcome. A crash can lose the last TWO batches (the
  // in-flight one and the not-yet-started one) instead of one — recovery
  // semantics are otherwise identical. Sync(), the destructor, and Compact()
  // all drain the pipeline, so mixing modes is safe.
  Status SyncPipelined();
  // True while a background flush is running (test/observability hook).
  bool flush_in_flight() const { return inflight_ != nullptr; }

  // --- Replication hooks (src/replication) ----------------------------------
  // The WAL is the replication stream: each shard's log is a self-delimiting
  // sequence of CRC-framed mutation records, so a replica that replays a
  // shipped span through the SAME apply path as crash recovery reconstructs
  // records and labels bit-exactly. Positions are (generation, offset)
  // pairs: the generation advances when compaction resets the log, at which
  // point old offsets name discarded bytes and a snapshot must be shipped.

  // Current tail position of a shard's log.
  uint64_t shard_wal_generation(uint32_t shard) const;
  uint64_t shard_wal_offset(uint32_t shard) const;

  // Reads up to max_bytes of raw framed WAL bytes at (generation, offset).
  // kNotFound when that generation was compacted away (ship a snapshot) or
  // the offset is past the tail (a cursor from a lost future: resync).
  // This is the replication hub's shared read path: the hub's frame cache
  // fronts it so K followers at nearby offsets cost one pread, not K —
  // wal_read_calls() counts the reads that actually reached the log.
  Status ReadShardWal(uint32_t shard, uint64_t generation, uint64_t offset,
                      uint64_t max_bytes, std::string* out) const;

  // Number of ReadShardWal calls that hit the log (observability for the
  // replication frame cache: hub read requests minus this = reads saved).
  // Retained-tail reads are served from memory and intentionally NOT
  // counted: they never touch the log.
  uint64_t wal_read_calls() const { return wal_read_calls_; }

  // True when `shard` holds a retained previous-generation tail (see
  // StoreOptions::retain_wal_tail_bytes); reports its generation and the
  // [start, end) byte span still servable through ReadShardWal.
  bool ShardRetainedSpan(uint32_t shard, uint64_t* generation, uint64_t* start_offset,
                         uint64_t* end_offset) const;

  // Serializes the shard's live records into a snapshot image (the on-disk
  // snapshot format: magic, crc, body) and reports the WAL position the
  // image covers — a replica that installs it resumes streaming from there.
  Status ExportShardSnapshot(uint32_t shard, std::string* image, uint64_t* generation,
                             uint64_t* offset) const;

  // Replica apply: appends one raw WAL record payload (as shipped from the
  // primary's log) to the shard's own log and applies it in memory — the
  // exact code path crash recovery replays, so labels intern through the
  // canonical-rep table identically. The shard index must come from the
  // primary (both sides hash keys identically, so it already matches).
  // `trace_id` is the replication session's flow id: when the provenance
  // ledger is enabled, a Put record's secrecy adoption is journaled as a
  // kAdopt taint edge under it (src/obs/provenance.h). 0 means untraced.
  Status ApplyReplicatedRecord(uint32_t shard, std::string_view payload,
                               uint64_t trace_id = 0);

  // Replica catch-up: validates `image` (magic + crc), replaces the shard's
  // records with its contents, persists it as the shard's on-disk snapshot,
  // and resets the shard's log. After this the shard is bit-identical to the
  // primary shard the image was exported from.
  Status InstallShardSnapshot(uint32_t shard, std::string_view image);

  // --- Sharding / recovery / durability observability -----------------------
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  // The shard `key` routes to — stable across reboots (FNV-1a, not
  // std::hash, which the standard lets vary between runs).
  uint32_t ShardIndexOf(std::string_view key) const;
  uint32_t dirty_shard_count() const;

  uint64_t snapshot_records_loaded() const;  // summed across shards
  uint64_t log_records_replayed() const;
  uint64_t torn_tail_bytes_dropped() const;
  uint64_t wal_bytes() const;
  uint64_t compactions() const;

  // Per-shard view of the same counters, for tests and rebalancing tools.
  struct ShardStats {
    size_t records = 0;
    bool dirty = false;
    uint64_t wal_bytes = 0;
    uint64_t snapshot_records_loaded = 0;
    uint64_t log_records_replayed = 0;
    uint64_t torn_tail_bytes_dropped = 0;
    uint64_t compactions = 0;
  };
  ShardStats shard_stats(uint32_t shard) const;

 private:
  // One independent (WAL, snapshot, map) unit. All per-record state and
  // recovery/compaction counters live here; DurableStore routes and sums.
  struct Shard {
    std::string dir;
    Wal wal;
    std::map<std::string, StoreRecord> records;
    uint64_t snapshot_records_loaded = 0;
    uint64_t log_records_replayed = 0;
    uint64_t torn_tail_bytes_dropped = 0;
    uint64_t compactions = 0;
    // Previous generation's retained tail (retain_wal_tail_bytes > 0): the
    // log bytes in [retained_start, retained_end) of retained_generation,
    // kept in memory across one compaction so streaming followers ride
    // through the generation switch. Overwritten by the next compaction.
    bool retained_valid = false;
    uint64_t retained_generation = 0;
    uint64_t retained_start = 0;
    uint64_t retained_end = 0;
    std::string retained_tail;
  };

  // One round of pipelined flushing, owned by the main thread, executed by
  // one background thread. The thread touches ONLY `wals` (via
  // Wal::SyncDataOnly, which reads the immutable fd) and `result`; all Wal
  // bookkeeping (dirty flags) was updated by the main thread before launch.
  struct InflightFlush {
    std::thread thread;
    std::vector<const Wal*> wals;
    Status result = Status::kOk;  // written by the thread, read after join
  };

  explicit DurableStore(StoreOptions opts) : opts_(std::move(opts)) {}

  // Joins the background flush, if any, and folds its outcome into
  // deferred_flush_status_.
  void DrainInflight();

  Status RecoverShard(Shard& shard);
  Status LoadSnapshot(Shard& shard);
  std::string BuildShardSnapshotImage(const Shard& shard) const;
  Status LoadSnapshotImage(Shard& shard, std::string_view contents);
  void ClearShardRecords(Shard& shard);
  void ApplyLogRecord(Shard& shard, std::string_view payload);
  void InsertRecord(Shard& shard, std::string key, StoreRecord record);
  bool EraseRecord(Shard& shard, const std::string& key);
  Status CompactShard(Shard& shard);
  void MaybeAutoCompact(Shard& shard);

  // Concurrent flushes pay ~20µs of thread create/join per shard; below
  // this observed per-shard flush cost the serial loop is cheaper.
  static constexpr uint64_t kConcurrentFlushThresholdNs = 50'000;

  StoreOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable uint64_t wal_read_calls_ = 0;  // ReadShardWal invocations (see accessor)
  uint64_t flush_cost_ns_ = 0;  // moving average per-shard; 0 = unmeasured
  std::unique_ptr<InflightFlush> inflight_;
  // Outcome of the newest completed pipelined flush, reported (and reset) by
  // the next SyncPipelined()/Sync() — the one-call-deferred acknowledgement.
  Status deferred_flush_status_ = Status::kOk;
};

}  // namespace asbestos

#endif  // SRC_STORE_STORE_H_
