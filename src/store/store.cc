#include "src/store/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/hash.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/store/label_codec.h"

namespace asbestos {

namespace {

StoreMemStats g_store_mem;

// The struct stays the live storage of record (GetStoreMemStats hands out a
// reference tests hold across operations); the registry reads it at
// snapshot time. Registered once at static init, never unregistered.
[[maybe_unused]] const uint64_t g_store_mem_gauges =
    obs::Registry::Get().RegisterGauges([](obs::GaugeSink& sink) {
      sink.Set("store.mem.live_bytes", g_store_mem.live_bytes);
      sink.Set("store.mem.live_records", g_store_mem.live_records);
    });

constexpr char kSnapshotMagic[8] = {'A', 'S', 'B', 'S', 'T', 'O', 'R', '1'};
constexpr char kLogPut = 'P';
constexpr char kLogErase = 'E';
// Stamps the shard count at creation; see ResolveShardCount.
constexpr char kShardMetaName[] = "shards";

uint64_t RecordBytes(const std::string& key, const StoreRecord& r) {
  return key.size() + r.value.size() + kStoreRecordOverheadBytes;
}

// The key → shard mapping is part of the on-disk format (a record must be
// found in the shard whose log holds it), so the hash must be stable across
// runs and toolchains — FNV-1a from src/base/hash.h, whose header carries
// the format-stability warning.
uint64_t StableHash(std::string_view s) { return Fnv1a(s); }

// Shared body encoding for log Put records and snapshot entries.
void AppendRecordBody(std::string_view key, std::string_view value, const Label& secrecy,
                      const Label& integrity, std::string* out) {
  codec::AppendString(key, out);
  codec::AppendString(value, out);
  codec::AppendLabel(secrecy, out);
  codec::AppendLabel(integrity, out);
}

Status ReadRecordBody(std::string_view data, size_t* pos, std::string* key, StoreRecord* record) {
  std::string_view key_view;
  std::string_view value_view;
  Status s = codec::ReadString(data, pos, &key_view);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadString(data, pos, &value_view);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadLabel(data, pos, &record->secrecy);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadLabel(data, pos, &record->integrity);
  if (!IsOk(s)) {
    return s;
  }
  key->assign(key_view);
  record->value.assign(value_view);
  return Status::kOk;
}

}  // namespace

Status WriteFileAtomically(const std::string& dir, const std::string& name,
                           std::string_view contents) {
  const std::string tmp_path = dir + "/." + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::kBadState;
  }
  const char* p = contents.data();
  size_t n = contents.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::kBadState;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::kBadState;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::kBadState;
  }
  // The rename is only durable once the directory entry is; without this a
  // crash after Compact() truncates the log could lose the whole store.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::kBadState;
  }
  const bool dir_synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return dir_synced ? Status::kOk : Status::kBadState;
}

namespace {

// kNotFound: no such file (a legal empty base image). kBadState: the file
// exists but could not be read — callers must NOT treat that as absence, or
// an EMFILE/EIO at boot would silently discard the snapshot's contents.
Status ReadWholeFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return errno == ENOENT ? Status::kNotFound : Status::kBadState;
  }
  out->clear();
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return n == 0 ? Status::kOk : Status::kBadState;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// fsyncs a directory so entries created inside it (shard dirs, O_CREAT'd
// logs) survive a power cut. fdatasync on a log fd persists the file's data
// and inode but NOT the dentry naming it; without this, Sync() could report
// records durable inside a file the reboot cannot find.
Status SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::kBadState;
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  return synced ? Status::kOk : Status::kBadState;
}

// The shard count is part of the on-disk format: changing it would silently
// strand every record in the shard its old hash chose. Creation stamps the
// count into <dir>/shards; every later open re-adopts the stamp, so
// opts.shards is only a request for *new* stores.
//
// Legacy stores (PR 1's flat <dir>/wal + <dir>/snapshot, no stamp) adopt
// count 1 and keep their flat layout.
Result<uint32_t> ResolveShardCount(const std::string& dir, uint32_t requested) {
  const std::string meta_path = dir + "/" + kShardMetaName;
  std::string contents;
  const Status read = ReadWholeFile(meta_path, &contents);
  if (IsOk(read)) {
    uint64_t count = 0;
    for (char c : contents) {
      if (c == '\n') {
        break;
      }
      if (c < '0' || c > '9' || count > kStoreMaxShards) {
        return Status::kInvalidArgs;
      }
      count = count * 10 + static_cast<uint64_t>(c - '0');
    }
    if (count == 0 || count > kStoreMaxShards) {
      return Status::kInvalidArgs;
    }
    return static_cast<uint32_t>(count);
  }
  if (read != Status::kNotFound) {
    return read;  // stamp exists but is unreadable: refuse to guess
  }
  if (FileExists(dir + "/wal") || FileExists(dir + "/snapshot")) {
    return 1u;  // pre-sharding store: flat layout, no stamp
  }
  if (requested == 0 || requested > kStoreMaxShards) {
    return Status::kInvalidArgs;
  }
  if (requested > 1) {
    const std::string stamp = std::to_string(requested) + "\n";
    const Status s = WriteFileAtomically(dir, kShardMetaName, stamp);
    if (!IsOk(s)) {
      return s;
    }
  }
  return requested;
}

}  // namespace

const StoreMemStats& GetStoreMemStats() { return g_store_mem; }

Result<std::unique_ptr<DurableStore>> DurableStore::Open(StoreOptions opts) {
  if (opts.dir.empty()) {
    return Status::kInvalidArgs;
  }
  if (::mkdir(opts.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::kNotFound;
  }
  auto resolved = ResolveShardCount(opts.dir, opts.shards);
  if (!resolved.ok()) {
    return resolved.status();
  }
  const uint32_t shard_count = resolved.value();
  std::unique_ptr<DurableStore> store(new DurableStore(std::move(opts)));
  for (uint32_t k = 0; k < shard_count; ++k) {
    auto shard = std::make_unique<Shard>();
    if (shard_count == 1) {
      shard->dir = store->opts_.dir;  // flat layout, PR-1 compatible
    } else {
      shard->dir = store->opts_.dir + "/shard-" + std::to_string(k);
      if (::mkdir(shard->dir.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::kBadState;
      }
    }
    const Status s = store->RecoverShard(*shard);
    if (!IsOk(s)) {
      return s;
    }
    // Persist the dentries this open may have created (the shard dir and
    // its O_CREAT'd wal) before any append can be acknowledged as durable.
    const Status dir_sync = SyncDir(shard->dir);
    if (!IsOk(dir_sync)) {
      return dir_sync;
    }
    store->shards_.push_back(std::move(shard));
  }
  if (shard_count > 1) {
    const Status root_sync = SyncDir(store->opts_.dir);  // shard-<k> dentries
    if (!IsOk(root_sync)) {
      return root_sync;
    }
  }
  return store;
}

DurableStore::~DurableStore() {
  // A background flush still references the shard WALs; finish it before
  // they are torn down. This is also what makes "destroy the store, then
  // reopen the directory" a correct reboot: everything pipelined is on disk
  // once the destructor returns. A failure here has no later call to
  // surface through — and it means appends the pipeline took responsibility
  // for are NOT durable — so it is fatal, exactly like the ASB_ASSERT every
  // OnIdle hook applies to the acknowledgements it does receive.
  DrainInflight();
  ASB_ASSERT(IsOk(deferred_flush_status_) && "final pipelined flush failed: batch lost");
  for (const auto& shard : shards_) {
    for (const auto& [key, record] : shard->records) {
      g_store_mem.live_bytes -= static_cast<int64_t>(RecordBytes(key, record));
      g_store_mem.live_records -= 1;
    }
  }
}

uint32_t DurableStore::ShardIndexOf(std::string_view key) const {
  return static_cast<uint32_t>(StableHash(key) % shards_.size());
}

void DurableStore::InsertRecord(Shard& shard, std::string key, StoreRecord record) {
  // Callers erase any existing record first so accounting stays exact.
  const uint64_t bytes = RecordBytes(key, record);
  const bool inserted = shard.records.emplace(std::move(key), std::move(record)).second;
  ASB_ASSERT(inserted);
  g_store_mem.live_records += 1;
  g_store_mem.live_bytes += static_cast<int64_t>(bytes);
}

bool DurableStore::EraseRecord(Shard& shard, const std::string& key) {
  auto it = shard.records.find(key);
  if (it == shard.records.end()) {
    return false;
  }
  g_store_mem.live_bytes -= static_cast<int64_t>(RecordBytes(it->first, it->second));
  g_store_mem.live_records -= 1;
  shard.records.erase(it);
  return true;
}

void DurableStore::ApplyLogRecord(Shard& shard, std::string_view payload) {
  if (payload.empty()) {
    return;  // unknown/corrupt record payloads are skipped, not fatal
  }
  size_t pos = 1;
  switch (payload[0]) {
    case kLogPut: {
      std::string key;
      StoreRecord record;
      if (IsOk(ReadRecordBody(payload, &pos, &key, &record)) && pos == payload.size()) {
        EraseRecord(shard, key);  // refund old accounting before replacing
        InsertRecord(shard, std::move(key), std::move(record));
      }
      return;
    }
    case kLogErase: {
      std::string_view key;
      if (IsOk(codec::ReadString(payload, &pos, &key)) && pos == payload.size()) {
        EraseRecord(shard, std::string(key));
      }
      return;
    }
    default:
      return;
  }
}

Status DurableStore::LoadSnapshot(Shard& shard) {
  std::string contents;
  const Status read = ReadWholeFile(shard.dir + "/snapshot", &contents);
  if (read == Status::kNotFound) {
    return Status::kOk;  // no snapshot yet: empty base image
  }
  if (!IsOk(read)) {
    return read;  // exists but unreadable: refuse to boot without it
  }
  return LoadSnapshotImage(shard, contents);
}

Status DurableStore::LoadSnapshotImage(Shard& shard, std::string_view contents) {
  // Header: magic + u32 crc(body).
  if (contents.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(contents.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::kInvalidArgs;
  }
  uint32_t crc;
  std::memcpy(&crc, contents.data() + sizeof(kSnapshotMagic), sizeof(crc));
  const std::string_view body(contents.data() + sizeof(kSnapshotMagic) + 4,
                              contents.size() - sizeof(kSnapshotMagic) - 4);
  if (Crc32(body) != crc) {
    return Status::kInvalidArgs;
  }
  size_t pos = 0;
  uint64_t count = 0;
  Status s = codec::ReadVarint(body, &pos, &count);
  if (!IsOk(s)) {
    return s;
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    StoreRecord record;
    s = ReadRecordBody(body, &pos, &key, &record);
    if (!IsOk(s)) {
      return s;
    }
    InsertRecord(shard, std::move(key), std::move(record));
  }
  shard.snapshot_records_loaded = count;
  return pos == body.size() ? Status::kOk : Status::kInvalidArgs;
}

Status DurableStore::RecoverShard(Shard& shard) {
  const Status snap = LoadSnapshot(shard);
  if (!IsOk(snap)) {
    return snap;
  }
  const Status s = shard.wal.Open(
      shard.dir + "/wal", [this, &shard](std::string_view payload) { ApplyLogRecord(shard, payload); });
  if (!IsOk(s)) {
    return s;
  }
  shard.log_records_replayed = shard.wal.recovered_records();
  shard.torn_tail_bytes_dropped = shard.wal.dropped_tail_bytes();
  return Status::kOk;
}

Status DurableStore::Put(std::string_view key, std::string_view value, const Label& secrecy,
                         const Label& integrity) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  std::string payload(1, kLogPut);
  AppendRecordBody(key, value, secrecy, integrity, &payload);
  const Status s = shard.wal.Append(payload);
  if (!IsOk(s)) {
    return s;
  }
  StoreRecord record;
  record.value.assign(value);
  record.secrecy = secrecy;
  record.integrity = integrity;
  EraseRecord(shard, std::string(key));
  InsertRecord(shard, std::string(key), std::move(record));
  MaybeAutoCompact(shard);
  return Status::kOk;
}

Status DurableStore::Erase(std::string_view key) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  const std::string k(key);
  if (shard.records.find(k) == shard.records.end()) {
    return Status::kNotFound;
  }
  std::string payload(1, kLogErase);
  codec::AppendString(key, &payload);
  const Status s = shard.wal.Append(payload);
  if (!IsOk(s)) {
    return s;
  }
  EraseRecord(shard, k);
  MaybeAutoCompact(shard);
  return Status::kOk;
}

const StoreRecord* DurableStore::Get(const std::string& key) const {
  const Shard& shard = *shards_[ShardIndexOf(key)];
  auto it = shard.records.find(key);
  return it == shard.records.end() ? nullptr : &it->second;
}

void DurableStore::ForEach(
    const std::function<void(const std::string&, const StoreRecord&)>& fn) const {
  for (const auto& shard : shards_) {
    for (const auto& [key, record] : shard->records) {
      fn(key, record);
    }
  }
}

size_t DurableStore::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->records.size();
  }
  return n;
}

std::string DurableStore::BuildShardSnapshotImage(const Shard& shard) const {
  std::string body;
  codec::AppendVarint(shard.records.size(), &body);
  for (const auto& [key, record] : shard.records) {
    AppendRecordBody(key, record.value, record.secrecy, record.integrity, &body);
  }
  std::string image(kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint32_t crc = Crc32(body);
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  image.append(body);
  return image;
}

Status DurableStore::CompactShard(Shard& shard) {
  Status s = WriteFileAtomically(shard.dir, "snapshot", BuildShardSnapshotImage(shard));
  if (!IsOk(s)) {
    return s;
  }
  // Capture the outgoing generation's tail before the log vanishes, so
  // replication sources can stream nearly-synced followers across the
  // generation switch (ReadShardWal serves the span from memory; see
  // StoreOptions::retain_wal_tail_bytes). Read straight off the Wal — this
  // is not a replication read and must not perturb wal_read_calls().
  shard.retained_valid = false;
  shard.retained_tail.clear();
  if (opts_.retain_wal_tail_bytes > 0 && shard.wal.size_bytes() > 0) {
    const uint64_t end = shard.wal.size_bytes();
    const uint64_t start =
        end > opts_.retain_wal_tail_bytes ? end - opts_.retain_wal_tail_bytes : 0;
    std::string tail;
    if (IsOk(shard.wal.ReadAt(start, end - start, &tail)) &&
        tail.size() == end - start) {
      shard.retained_valid = true;
      shard.retained_generation = shard.wal.generation();
      shard.retained_start = start;
      shard.retained_end = end;
      shard.retained_tail = std::move(tail);
    }
  }
  // Only once the snapshot is durably in place may the log be dropped.
  s = shard.wal.Reset();
  if (!IsOk(s)) {
    return s;
  }
  // The replayed prefix now lives in the snapshot; without this reset the
  // auto-compaction threshold would stay permanently exceeded after a large
  // recovery and every subsequent mutation would rewrite the snapshot.
  shard.log_records_replayed = 0;
  ++shard.compactions;
  return Status::kOk;
}

Status DurableStore::Compact() {
  // Not required for correctness (truncating a log whose flush is in flight
  // is well-defined, and the snapshot supersedes the log), but draining
  // keeps the pipeline's error reporting in order.
  DrainInflight();
  for (const auto& shard : shards_) {
    const Status s = CompactShard(*shard);
    if (!IsOk(s)) {
      return s;
    }
  }
  return Status::kOk;
}

void DurableStore::DrainInflight() {
  if (inflight_ == nullptr) {
    return;
  }
  inflight_->thread.join();
  if (!IsOk(inflight_->result) && IsOk(deferred_flush_status_)) {
    deferred_flush_status_ = inflight_->result;
  }
  inflight_.reset();
}

Status DurableStore::SyncPipelined() {
  // Wait for the previous round (a whole pump iteration usually ran while
  // it flushed, so this join is almost always immediate) and pick up its
  // outcome: the acknowledgement deferred by one call.
  DrainInflight();
  const Status acked = deferred_flush_status_;
  deferred_flush_status_ = Status::kOk;

  auto flush = std::make_unique<InflightFlush>();
  for (const auto& shard : shards_) {
    if (shard->wal.dirty()) {
      // Clearing the mark here transfers responsibility for everything
      // appended so far to this round's flusher; appends landing while it
      // runs re-dirty the log and belong to the next round.
      shard->wal.ClearDirty();
      flush->wals.push_back(&shard->wal);
    }
  }
  if (flush->wals.empty()) {
    return acked;
  }
  static obs::Counter& syncs = obs::Registry::Get().counter("store.sync_pipelined_calls");
  static obs::Counter& wal_syncs = obs::Registry::Get().counter("store.wal_syncs");
  syncs.Add();
  wal_syncs.Add(flush->wals.size());
  InflightFlush* raw = flush.get();
  flush->thread = std::thread([raw]() {
    for (const Wal* wal : raw->wals) {
      const Status s = wal->SyncDataOnly();
      if (!IsOk(s) && IsOk(raw->result)) {
        raw->result = s;
      }
    }
  });
  inflight_ = std::move(flush);
  return acked;
}

Status DurableStore::Sync() {
  // Everything-durable-on-return semantics require the pipeline drained; a
  // pipelined-flush failure surfaces here rather than vanishing.
  DrainInflight();
  if (!IsOk(deferred_flush_status_)) {
    const Status s = deferred_flush_status_;
    deferred_flush_status_ = Status::kOk;
    return s;
  }
  // Group commit touches only shards with pending appends.
  std::vector<Shard*> dirty;
  for (const auto& shard : shards_) {
    if (shard->wal.dirty()) {
      dirty.push_back(shard.get());
    }
  }
  if (dirty.empty()) {
    return Status::kOk;
  }
  static obs::Counter& syncs = obs::Registry::Get().counter("store.sync_calls");
  static obs::Counter& wal_syncs = obs::Registry::Get().counter("store.wal_syncs");
  syncs.Add();
  wal_syncs.Add(dirty.size());
  Status result = Status::kOk;
  const auto start = std::chrono::steady_clock::now();
  const bool concurrent =
      dirty.size() > 1 && flush_cost_ns_ >= kConcurrentFlushThresholdNs;
  if (!concurrent) {
    // Cheap flushes (tmpfs, NVMe with a fast cache) or a single shard:
    // thread create/join (~20µs each) would cost more than it hides.
    for (Shard* shard : dirty) {
      const Status s = shard->wal.Sync();
      if (!IsOk(s)) {
        result = s;
      }
    }
  } else {
    // Expensive flushes: each one waits on the storage device's cache
    // flush (~hundreds of µs on virtualized disks), so issuing them
    // serially multiplies that latency by the shard count while the device
    // could have absorbed one combined flush. All threads join before
    // returning, so the durability point — "everything appended before
    // this Sync" — is exactly what the serial loop gives.
    std::vector<Status> results(dirty.size(), Status::kOk);
    std::vector<std::thread> flushers;
    flushers.reserve(dirty.size() - 1);
    for (size_t i = 1; i < dirty.size(); ++i) {
      flushers.emplace_back(
          [&results, &dirty, i]() { results[i] = dirty[i]->wal.Sync(); });
    }
    results[0] = dirty[0]->wal.Sync();
    for (std::thread& t : flushers) {
      t.join();
    }
    for (const Status s : results) {
      if (!IsOk(s)) {
        result = s;
      }
    }
  }
  // Track the observed per-shard flush cost (3/4-weighted moving average)
  // to pick the dispatch mode next time. The first Sync after Open always
  // runs serially (cost 0) and seeds the estimate with real hardware.
  // Concurrent rounds overlap their flushes, so the whole elapsed wall time
  // approximates ONE device flush — dividing it by the shard count there
  // would understate the cost ~N× and flip the mode back to serial, making
  // the dispatch oscillate between a fast and a stalling regime.
  const uint64_t elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  const uint64_t per_shard_ns = concurrent ? elapsed_ns : elapsed_ns / dirty.size();
  flush_cost_ns_ =
      flush_cost_ns_ == 0 ? per_shard_ns : (flush_cost_ns_ * 3 + per_shard_ns) / 4;
  return result;
}

uint32_t DurableStore::dirty_shard_count() const {
  uint32_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->wal.dirty() ? 1 : 0;
  }
  return n;
}

uint64_t DurableStore::snapshot_records_loaded() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->snapshot_records_loaded;
  }
  return n;
}

uint64_t DurableStore::log_records_replayed() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->log_records_replayed;
  }
  return n;
}

uint64_t DurableStore::torn_tail_bytes_dropped() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->torn_tail_bytes_dropped;
  }
  return n;
}

uint64_t DurableStore::wal_bytes() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->wal.size_bytes();
  }
  return n;
}

uint64_t DurableStore::compactions() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->compactions;
  }
  return n;
}

DurableStore::ShardStats DurableStore::shard_stats(uint32_t shard_index) const {
  ASB_ASSERT(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  ShardStats stats;
  stats.records = shard.records.size();
  stats.dirty = shard.wal.dirty();
  stats.wal_bytes = shard.wal.size_bytes();
  stats.snapshot_records_loaded = shard.snapshot_records_loaded;
  stats.log_records_replayed = shard.log_records_replayed;
  stats.torn_tail_bytes_dropped = shard.torn_tail_bytes_dropped;
  stats.compactions = shard.compactions;
  return stats;
}

uint64_t DurableStore::shard_wal_generation(uint32_t shard) const {
  ASB_ASSERT(shard < shards_.size());
  return shards_[shard]->wal.generation();
}

uint64_t DurableStore::shard_wal_offset(uint32_t shard) const {
  ASB_ASSERT(shard < shards_.size());
  return shards_[shard]->wal.size_bytes();
}

Status DurableStore::ReadShardWal(uint32_t shard, uint64_t generation, uint64_t offset,
                                  uint64_t max_bytes, std::string* out) const {
  out->clear();
  if (shard >= shards_.size()) {
    return Status::kInvalidArgs;
  }
  const Shard& s = *shards_[shard];
  const Wal& wal = s.wal;
  if (generation != wal.generation() || offset > wal.size_bytes()) {
    // The previous generation's tail may still be retained in memory
    // (compaction-aware fan-out): serve it like log bytes, without touching
    // the log or its read counter.
    if (s.retained_valid && generation == s.retained_generation &&
        offset >= s.retained_start && offset <= s.retained_end) {
      const uint64_t avail = s.retained_end - offset;
      out->assign(s.retained_tail, static_cast<size_t>(offset - s.retained_start),
                  static_cast<size_t>(avail < max_bytes ? avail : max_bytes));
      return Status::kOk;
    }
    // The span this cursor wants no longer exists (compacted away) or never
    // existed here (a cursor from some other history): snapshot territory.
    return Status::kNotFound;
  }
  wal_read_calls_ += 1;
  static obs::Counter& reads = obs::Registry::Get().counter("store.wal_read_calls");
  reads.Add();
  return wal.ReadAt(offset, max_bytes, out);
}

Status DurableStore::ExportShardSnapshot(uint32_t shard, std::string* image,
                                         uint64_t* generation, uint64_t* offset) const {
  if (shard >= shards_.size()) {
    return Status::kInvalidArgs;
  }
  const Shard& s = *shards_[shard];
  // The in-memory map already reflects every appended record, so the image
  // covers the log up to its current tail: a replica installing it resumes
  // streaming from exactly (generation, tail).
  *image = BuildShardSnapshotImage(s);
  *generation = s.wal.generation();
  *offset = s.wal.size_bytes();
  return Status::kOk;
}

Status DurableStore::ApplyReplicatedRecord(uint32_t shard, std::string_view payload,
                                           uint64_t trace_id) {
  if (shard >= shards_.size()) {
    return Status::kInvalidArgs;
  }
  Shard& s = *shards_[shard];
  const Status st = s.wal.Append(payload);
  if (!IsOk(st)) {
    return st;
  }
  // Same apply path as crash recovery: unknown or corrupt payloads are
  // skipped, Put/Erase payloads reconstruct records and labels bit-exactly.
  ApplyLogRecord(s, payload);
  if (obs::ProvenanceLedger::enabled() && !payload.empty() &&
      payload[0] == kLogPut) {
    // Journal the label adoption: the replica's shard takes on the record's
    // secrecy exactly as shipped. The re-parse only runs when the ledger is
    // on, and the work stats are pinned so the forensics decode never skews
    // the Figure-9 label-work counters.
    const LabelWorkStats baseline = GetLabelWorkStats();
    size_t pos = 1;
    std::string key;
    StoreRecord record;
    if (IsOk(ReadRecordBody(payload, &pos, &key, &record)) &&
        pos == payload.size()) {
      obs::ProvenanceLedger::Get().RecordEdge(
          obs::EdgeKind::kAdopt, "store.shard" + std::to_string(shard),
          "primary", 0, record.secrecy.rep_id(), record.secrecy, trace_id);
    }
    GetLabelWorkStats() = baseline;
  }
  MaybeAutoCompact(s);
  return Status::kOk;
}

void DurableStore::ClearShardRecords(Shard& shard) {
  for (const auto& [key, record] : shard.records) {
    g_store_mem.live_bytes -= static_cast<int64_t>(RecordBytes(key, record));
    g_store_mem.live_records -= 1;
  }
  shard.records.clear();
}

Status DurableStore::InstallShardSnapshot(uint32_t shard, std::string_view image) {
  if (shard >= shards_.size()) {
    return Status::kInvalidArgs;
  }
  Shard& s = *shards_[shard];
  // Parse into a scratch shard first: a corrupt image must not destroy the
  // replica's current records.
  Shard scratch;
  const Status parsed = LoadSnapshotImage(scratch, image);
  if (!IsOk(parsed)) {
    ClearShardRecords(scratch);
    return parsed;
  }
  // Persist the image before adopting it, mirroring CompactShard's ordering
  // (snapshot durably in place, then the log may be dropped).
  Status st = WriteFileAtomically(s.dir, "snapshot", image);
  if (!IsOk(st)) {
    ClearShardRecords(scratch);
    return st;
  }
  st = s.wal.Reset();
  if (!IsOk(st)) {
    ClearShardRecords(scratch);
    return st;
  }
  ClearShardRecords(s);
  s.records = std::move(scratch.records);
  scratch.records.clear();
  s.snapshot_records_loaded = scratch.snapshot_records_loaded;
  s.log_records_replayed = 0;
  // The image replaced whatever history the retained tail belonged to.
  s.retained_valid = false;
  s.retained_tail.clear();
  return Status::kOk;
}

bool DurableStore::ShardRetainedSpan(uint32_t shard, uint64_t* generation,
                                     uint64_t* start_offset, uint64_t* end_offset) const {
  if (shard >= shards_.size() || !shards_[shard]->retained_valid) {
    return false;
  }
  const Shard& s = *shards_[shard];
  *generation = s.retained_generation;
  *start_offset = s.retained_start;
  *end_offset = s.retained_end;
  return true;
}

void DurableStore::MaybeAutoCompact(Shard& shard) {
  const uint64_t log_records = shard.wal.appended_records() + shard.log_records_replayed;
  if (log_records >= opts_.compact_min_log_records &&
      log_records >= opts_.compact_factor * (shard.records.size() + 1)) {
    // Compaction failure is not fatal to the in-memory state; the log simply
    // keeps growing until the next attempt.
    (void)CompactShard(shard);
  }
}

}  // namespace asbestos
