#include "src/store/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/panic.h"
#include "src/store/label_codec.h"

namespace asbestos {

namespace {

StoreMemStats g_store_mem;

constexpr char kSnapshotMagic[8] = {'A', 'S', 'B', 'S', 'T', 'O', 'R', '1'};
constexpr char kLogPut = 'P';
constexpr char kLogErase = 'E';

uint64_t RecordBytes(const std::string& key, const StoreRecord& r) {
  return key.size() + r.value.size() + kStoreRecordOverheadBytes;
}

// Shared body encoding for log Put records and snapshot entries.
void AppendRecordBody(std::string_view key, std::string_view value, const Label& secrecy,
                      const Label& integrity, std::string* out) {
  codec::AppendString(key, out);
  codec::AppendString(value, out);
  codec::AppendLabel(secrecy, out);
  codec::AppendLabel(integrity, out);
}

Status ReadRecordBody(std::string_view data, size_t* pos, std::string* key, StoreRecord* record) {
  std::string_view key_view;
  std::string_view value_view;
  Status s = codec::ReadString(data, pos, &key_view);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadString(data, pos, &value_view);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadLabel(data, pos, &record->secrecy);
  if (!IsOk(s)) {
    return s;
  }
  s = codec::ReadLabel(data, pos, &record->integrity);
  if (!IsOk(s)) {
    return s;
  }
  key->assign(key_view);
  record->value.assign(value_view);
  return Status::kOk;
}

Status WriteFileAtomically(const std::string& dir, const std::string& name,
                           std::string_view contents) {
  const std::string tmp_path = dir + "/." + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::kBadState;
  }
  const char* p = contents.data();
  size_t n = contents.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::kBadState;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::kBadState;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::kBadState;
  }
  // The rename is only durable once the directory entry is; without this a
  // crash after Compact() truncates the log could lose the whole store.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::kBadState;
  }
  const bool dir_synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return dir_synced ? Status::kOk : Status::kBadState;
}

// kNotFound: no such file (a legal empty base image). kBadState: the file
// exists but could not be read — callers must NOT treat that as absence, or
// an EMFILE/EIO at boot would silently discard the snapshot's contents.
Status ReadWholeFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return errno == ENOENT ? Status::kNotFound : Status::kBadState;
  }
  out->clear();
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return n == 0 ? Status::kOk : Status::kBadState;
}

}  // namespace

const StoreMemStats& GetStoreMemStats() { return g_store_mem; }

Result<std::unique_ptr<DurableStore>> DurableStore::Open(StoreOptions opts) {
  if (opts.dir.empty()) {
    return Status::kInvalidArgs;
  }
  if (::mkdir(opts.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::kNotFound;
  }
  std::unique_ptr<DurableStore> store(new DurableStore(std::move(opts)));
  const Status s = store->Recover();
  if (!IsOk(s)) {
    return s;
  }
  return store;
}

DurableStore::~DurableStore() {
  for (const auto& [key, record] : records_) {
    g_store_mem.live_bytes -= static_cast<int64_t>(RecordBytes(key, record));
    g_store_mem.live_records -= 1;
  }
}

void DurableStore::InsertRecord(std::string key, StoreRecord record) {
  // Callers erase any existing record first so accounting stays exact.
  const uint64_t bytes = RecordBytes(key, record);
  const bool inserted = records_.emplace(std::move(key), std::move(record)).second;
  ASB_ASSERT(inserted);
  g_store_mem.live_records += 1;
  g_store_mem.live_bytes += static_cast<int64_t>(bytes);
}

bool DurableStore::EraseRecord(const std::string& key) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return false;
  }
  g_store_mem.live_bytes -= static_cast<int64_t>(RecordBytes(it->first, it->second));
  g_store_mem.live_records -= 1;
  records_.erase(it);
  return true;
}

void DurableStore::ApplyLogRecord(std::string_view payload) {
  if (payload.empty()) {
    return;  // unknown/corrupt record payloads are skipped, not fatal
  }
  size_t pos = 1;
  switch (payload[0]) {
    case kLogPut: {
      std::string key;
      StoreRecord record;
      if (IsOk(ReadRecordBody(payload, &pos, &key, &record)) && pos == payload.size()) {
        EraseRecord(key);  // refund old accounting before replacing
        InsertRecord(std::move(key), std::move(record));
      }
      return;
    }
    case kLogErase: {
      std::string_view key;
      if (IsOk(codec::ReadString(payload, &pos, &key)) && pos == payload.size()) {
        EraseRecord(std::string(key));
      }
      return;
    }
    default:
      return;
  }
}

Status DurableStore::LoadSnapshot() {
  std::string contents;
  const Status read = ReadWholeFile(opts_.dir + "/snapshot", &contents);
  if (read == Status::kNotFound) {
    return Status::kOk;  // no snapshot yet: empty base image
  }
  if (!IsOk(read)) {
    return read;  // exists but unreadable: refuse to boot without it
  }
  // Header: magic + u32 crc(body).
  if (contents.size() < sizeof(kSnapshotMagic) + 4 ||
      std::memcmp(contents.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::kInvalidArgs;
  }
  uint32_t crc;
  std::memcpy(&crc, contents.data() + sizeof(kSnapshotMagic), sizeof(crc));
  const std::string_view body(contents.data() + sizeof(kSnapshotMagic) + 4,
                              contents.size() - sizeof(kSnapshotMagic) - 4);
  if (Crc32(body) != crc) {
    return Status::kInvalidArgs;
  }
  size_t pos = 0;
  uint64_t count = 0;
  Status s = codec::ReadVarint(body, &pos, &count);
  if (!IsOk(s)) {
    return s;
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    StoreRecord record;
    s = ReadRecordBody(body, &pos, &key, &record);
    if (!IsOk(s)) {
      return s;
    }
    InsertRecord(std::move(key), std::move(record));
  }
  snapshot_records_loaded_ = count;
  return pos == body.size() ? Status::kOk : Status::kInvalidArgs;
}

Status DurableStore::Recover() {
  const Status snap = LoadSnapshot();
  if (!IsOk(snap)) {
    return snap;
  }
  const Status s =
      wal_.Open(opts_.dir + "/wal", [this](std::string_view payload) { ApplyLogRecord(payload); });
  if (!IsOk(s)) {
    return s;
  }
  log_records_replayed_ = wal_.recovered_records();
  torn_tail_bytes_dropped_ = wal_.dropped_tail_bytes();
  return Status::kOk;
}

Status DurableStore::Put(std::string_view key, std::string_view value, const Label& secrecy,
                         const Label& integrity) {
  std::string payload(1, kLogPut);
  AppendRecordBody(key, value, secrecy, integrity, &payload);
  Status s = wal_.Append(payload);
  if (!IsOk(s)) {
    return s;
  }
  if (opts_.sync_each_append) {
    s = wal_.Sync();
    if (!IsOk(s)) {
      return s;
    }
  }
  StoreRecord record;
  record.value.assign(value);
  record.secrecy = secrecy;
  record.integrity = integrity;
  EraseRecord(std::string(key));
  InsertRecord(std::string(key), std::move(record));
  MaybeAutoCompact();
  return Status::kOk;
}

Status DurableStore::Erase(std::string_view key) {
  const std::string k(key);
  if (records_.find(k) == records_.end()) {
    return Status::kNotFound;
  }
  std::string payload(1, kLogErase);
  codec::AppendString(key, &payload);
  Status s = wal_.Append(payload);
  if (!IsOk(s)) {
    return s;
  }
  if (opts_.sync_each_append) {
    s = wal_.Sync();
    if (!IsOk(s)) {
      return s;
    }
  }
  EraseRecord(k);
  MaybeAutoCompact();
  return Status::kOk;
}

const StoreRecord* DurableStore::Get(const std::string& key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

Status DurableStore::Compact() {
  std::string body;
  codec::AppendVarint(records_.size(), &body);
  for (const auto& [key, record] : records_) {
    AppendRecordBody(key, record.value, record.secrecy, record.integrity, &body);
  }
  std::string image(kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint32_t crc = Crc32(body);
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  image.append(body);
  Status s = WriteFileAtomically(opts_.dir, "snapshot", image);
  if (!IsOk(s)) {
    return s;
  }
  // Only once the snapshot is durably in place may the log be dropped.
  s = wal_.Reset();
  if (!IsOk(s)) {
    return s;
  }
  // The replayed prefix now lives in the snapshot; without this reset the
  // auto-compaction threshold would stay permanently exceeded after a large
  // recovery and every subsequent mutation would rewrite the snapshot.
  log_records_replayed_ = 0;
  ++compactions_;
  return Status::kOk;
}

Status DurableStore::Sync() { return wal_.Sync(); }

void DurableStore::MaybeAutoCompact() {
  const uint64_t log_records = wal_.appended_records() + log_records_replayed_;
  if (log_records >= opts_.compact_min_log_records &&
      log_records >= opts_.compact_factor * (records_.size() + 1)) {
    // Compaction failure is not fatal to the in-memory state; the log simply
    // keeps growing until the next attempt.
    (void)Compact();
  }
}

}  // namespace asbestos
