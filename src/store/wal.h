// Append-only write-ahead log with CRC-framed records and torn-tail repair.
//
// Frame layout (little-endian fixed-width header, then the payload):
//
//   ┌──────────────┬──────────────┬──────────────────────┐
//   │ len: u32 LE  │ crc32: u32 LE│ payload (len bytes)  │
//   └──────────────┴──────────────┴──────────────────────┘
//
// The crc covers the payload only; the length is validated against the bytes
// actually present. Recovery scans frames from the start and stops at the
// first frame that is truncated (fewer bytes than the header promises) or
// corrupt (CRC mismatch) — everything before it is the valid prefix, and the
// file is truncated back to that prefix so subsequent appends start from a
// clean frame boundary. This is exactly the crash contract a simulated
// "power cut" mid-append produces: a prefix of whole records survives, the
// torn record vanishes.
#ifndef SRC_STORE_WAL_H_
#define SRC_STORE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/base/status.h"

namespace asbestos {

// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/Ethernet polynomial).
uint32_t Crc32(std::string_view data);

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if missing) the log at `path`. Replays every valid
  // record through `on_record`, repairs a torn tail, and leaves the log
  // positioned for appends. kBadState if already open.
  Status Open(const std::string& path, const std::function<void(std::string_view)>& on_record);

  // Appends one framed record and marks the log dirty. Append itself only
  // guarantees ordering within the file; durability requires Sync() — either
  // immediately (per-append durability) or batched at the end of a pump
  // iteration (group commit, the DurableStore default).
  Status Append(std::string_view record);

  // fsyncs the log file and clears the dirty flag.
  Status Sync();

  // The device-flush half of Sync() alone: fdatasyncs the file WITHOUT
  // touching the dirty flag or any other member. Safe to call from a
  // background flusher thread while the owning thread keeps appending — the
  // fd value is immutable while open and concurrent write/fdatasync on one
  // fd is well-defined; the caller clears the dirty flag on its own thread
  // (ClearDirty) before handing the flush off. See DurableStore's pipelined
  // group commit.
  Status SyncDataOnly() const;

  // Clears the dirty flag without flushing: the pipelined committer clears
  // it when it *takes responsibility* for the flush, so appends that land
  // during the in-flight flush re-dirty the log for the next round.
  void ClearDirty() { dirty_ = false; }

  // Truncates the log to empty (after a snapshot made its contents
  // redundant), advances the generation, and syncs.
  Status Reset();

  // Reads up to `max_bytes` raw framed bytes starting at byte `offset`
  // (pread; never disturbs the append position). Returns the bytes actually
  // present — fewer than max_bytes near the tail, empty at it. Offsets are
  // only meaningful within one generation: Reset() discards the addressed
  // bytes, so callers must pair every offset with generation().
  Status ReadAt(uint64_t offset, uint64_t max_bytes, std::string* out) const;

  // How many times this log has been reset (compacted) since open. A
  // (generation, offset) pair names a stable position in the log's history:
  // replication cursors use it to detect that the bytes they wanted were
  // compacted away and a snapshot must be shipped instead.
  uint64_t generation() const { return generation_; }

  void Close();
  bool is_open() const { return fd_ >= 0; }

  // True when appends have landed since the last Sync()/Reset(): the group
  // commit batcher fsyncs exactly the dirty logs, once each.
  bool dirty() const { return dirty_; }

  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t appended_records() const { return appended_records_; }
  // Recovery observability: how much survived, how much was torn away.
  uint64_t recovered_records() const { return recovered_records_; }
  uint64_t dropped_tail_bytes() const { return dropped_tail_bytes_; }

 private:
  int fd_ = -1;
  std::string path_;
  bool dirty_ = false;
  uint64_t generation_ = 0;
  uint64_t size_bytes_ = 0;
  uint64_t appended_records_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t dropped_tail_bytes_ = 0;
};

}  // namespace asbestos

#endif  // SRC_STORE_WAL_H_
