// Binary label pickling (the durable twin of Label::ToString/Parse).
//
// The paper's persistent services (the file server of §5.2–5.4, the OKWS
// identity stack of §7.4–7.6) must write labels to storage and read them
// back losslessly across reboots. The text form is for humans; this codec is
// the storage form: compact, canonical, and strict about corrupt input.
//
// Encoded layout (all integers LEB128 varints unless noted):
//
//   ┌────────────┬───────────┬──────── R runs ────────────────────────────┐
//   │ default:u8 │ runs R    │ hdr=(len<<3)|level │ len handle deltas │ … │
//   └────────────┴───────────┴────────────────────────────────────────────┘
//
// Explicit entries are emitted in increasing handle order and grouped into
// maximal runs of equal level; each run stores its level once in the low 3
// bits of its header. Handles are delta-encoded (first delta from 0), so a
// dense compartment range costs ~1 byte per entry and a large ⋆-rich label
// (netd's or idd's send label) pays for its level bytes once per run, not
// once per entry — the binary twin of the chunk extrema trick in src/labels.
//
// Decoding is strict: truncated input returns kBufferTooSmall, corrupt input
// (bad level, level equal to the default, zero-length run, zero delta,
// handle overflow past 61 bits, oversized varint) returns kInvalidArgs.
// Decoders never panic on untrusted bytes.
#ifndef SRC_STORE_LABEL_CODEC_H_
#define SRC_STORE_LABEL_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/labels/label.h"

namespace asbestos {
namespace codec {

// --- Primitives shared by the label codec, the WAL, and the snapshot ------

// LEB128: 7 value bits per byte, high bit = continuation. At most 10 bytes.
void AppendVarint(uint64_t v, std::string* out);
// Reads one varint at *pos, advancing it. kBufferTooSmall when the buffer
// ends mid-varint; kInvalidArgs when the encoding exceeds 10 bytes or
// overflows 64 bits.
Status ReadVarint(std::string_view data, size_t* pos, uint64_t* out);

// Varint length prefix followed by the raw bytes.
void AppendString(std::string_view s, std::string* out);
Status ReadString(std::string_view data, size_t* pos, std::string_view* out);

// --- Labels ----------------------------------------------------------------

void AppendLabel(const Label& label, std::string* out);
Status ReadLabel(std::string_view data, size_t* pos, Label* out);

// Whole-buffer forms. Unpickle rejects trailing bytes (kInvalidArgs).
std::string PickleLabel(const Label& label);
Status UnpickleLabel(std::string_view data, Label* out);

}  // namespace codec
}  // namespace asbestos

#endif  // SRC_STORE_LABEL_CODEC_H_
