// Label levels: the ordered set [⋆, 0, 1, 2, 3] (paper Section 5.1).
//
// ⋆ ("star") is the lowest, most privileged level: a process with PS(h) = ⋆
// holds declassification privilege for compartment h. 3 is the highest, least
// privileged level. Defaults differ between label kinds: send labels default
// to 1 and receive labels to 2, which is what lets Asbestos express both
// "deny by default" (taint at 3) and "allow by default" (taint at 2) policies
// without rewriting every label in the system.
#ifndef SRC_LABELS_LEVEL_H_
#define SRC_LABELS_LEVEL_H_

#include <cstdint>

namespace asbestos {

enum class Level : uint8_t {
  kStar = 0,  // ⋆: declassification privilege
  kL0 = 1,    // integrity / capability level
  kL1 = 2,    // default send level (absence of taint)
  kL2 = 3,    // default receive level / "partial taint"
  kL3 = 4,    // full taint / right to be tainted arbitrarily
};

constexpr Level kLevelStar = Level::kStar;
constexpr Level kLevel0 = Level::kL0;
constexpr Level kLevel1 = Level::kL1;
constexpr Level kLevel2 = Level::kL2;
constexpr Level kLevel3 = Level::kL3;

// Paper defaults: send labels default to 1, receive labels to 2.
constexpr Level kDefaultSendLevel = Level::kL1;
constexpr Level kDefaultReceiveLevel = Level::kL2;

constexpr uint8_t LevelOrdinal(Level l) { return static_cast<uint8_t>(l); }

constexpr bool LevelLeq(Level a, Level b) { return LevelOrdinal(a) <= LevelOrdinal(b); }

constexpr Level LevelMax(Level a, Level b) { return LevelLeq(a, b) ? b : a; }

constexpr Level LevelMin(Level a, Level b) { return LevelLeq(a, b) ? a : b; }

// "*", "0", "1", "2" or "3".
const char* LevelName(Level l);

// Parses one of the five level names; returns false on anything else.
bool LevelFromName(char c, Level* out);

}  // namespace asbestos

#endif  // SRC_LABELS_LEVEL_H_
