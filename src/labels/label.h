// Asbestos labels (paper Section 5).
//
// A label is a total function from 61-bit handles to levels [⋆,0,1,2,3],
// represented sparsely: an explicit sorted entry list plus a default level
// that applies to every handle not mentioned. The partial order, join and
// meet are pointwise:
//
//   L1 ⊑ L2  iff  L1(h) ≤ L2(h) for all h
//   (L1 ⊔ L2)(h) = max(L1(h), L2(h))      (least upper bound, "Lub")
//   (L1 ⊓ L2)(h) = min(L1(h), L2(h))      (greatest lower bound, "Glb")
//   L⋆(h) = ⋆ if L(h) = ⋆, else 3         (stars-only label, "StarsOnly")
//
// Representation follows the paper's kernel implementation (Section 5.6):
// a label points to a sorted array of chunks, each a sorted array of up to
// 64 packed 8-byte entries (61-bit handle in the upper bits, level in the
// low 3 bits). Labels and chunks are reference counted and updated
// copy-on-write, so entities can share label memory; each chunk and each
// label caches the minimum and maximum of its levels, which makes common
// comparisons O(1). Worst-case ⊑/⊔/⊓ is linear in the entry count — this
// linearity is what produces the performance shape of paper Figure 9.
//
// On top of copy-on-write sharing, completed constructions are hash-consed
// (src/labels/intern.h): extensionally equal labels built through
// LabelBuilder::Build, Lub/Glb/StarsOnly merges, or Parse share one
// immutable canonical rep with a stable 64-bit identity (rep_id), so
// repeated recovery/derivation of the same label costs one allocation and
// equality between canonical labels is a pointer comparison.
//
// All operations update global work counters (entries visited, fast-path
// hits) that the simulator's cycle accounting consumes, and global memory
// counters that the Figure-6 memory accounting consumes.
#ifndef SRC_LABELS_LABEL_H_
#define SRC_LABELS_LABEL_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/labels/handle.h"
#include "src/labels/level.h"

namespace asbestos {

namespace internal {
struct LabelRep;

// Intrusive reference-counted pointer to a label representation.
class LabelRepRef {
 public:
  LabelRepRef() : rep_(nullptr) {}
  explicit LabelRepRef(LabelRep* rep) : rep_(rep) {}  // adopts one reference
  LabelRepRef(const LabelRepRef& other);
  LabelRepRef(LabelRepRef&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  LabelRepRef& operator=(const LabelRepRef& other);
  LabelRepRef& operator=(LabelRepRef&& other) noexcept;
  ~LabelRepRef();

  LabelRep* get() const { return rep_; }
  LabelRep* operator->() const { return rep_; }

 private:
  LabelRep* rep_;
};
}  // namespace internal

// Cumulative counters of label-algebra work, used by cycle accounting.
struct LabelWorkStats {
  uint64_t ops = 0;              // algebra operations performed
  uint64_t entries_visited = 0;  // label entries touched across all ops
  uint64_t fast_path_hits = 0;   // ops resolved by min/max caching alone
};

LabelWorkStats& GetLabelWorkStats();
void ResetLabelWorkStats();

// Live label memory, maintained by rep/chunk constructors and destructors.
// Shared chunks are counted once, so this is true live heap usage.
struct LabelMemStats {
  int64_t live_bytes = 0;
  int64_t live_reps = 0;
  int64_t live_chunks = 0;
};

const LabelMemStats& GetLabelMemStats();

class LabelBuilder;

class Label {
 public:
  // Default-constructed label is {3} (top: no restriction as a bound, full
  // taint as a contamination source). Prefer the named factories below.
  Label();
  explicit Label(Level default_level);
  Label(std::initializer_list<std::pair<Handle, Level>> entries, Level default_level);

  static Label Top() { return Label(Level::kL3); }     // {3}
  static Label Bottom() { return Label(Level::kStar); }  // {⋆}
  static Label DefaultSend() { return Label(kDefaultSendLevel); }        // {1}
  static Label DefaultReceive() { return Label(kDefaultReceiveLevel); }  // {2}

  Label(const Label&) = default;
  Label(Label&&) noexcept = default;
  Label& operator=(const Label&) = default;
  Label& operator=(Label&&) noexcept = default;

  // --- Point queries -------------------------------------------------------
  Level default_level() const;
  Level Get(Handle h) const;      // L(h), falling back to the default
  bool HasExplicit(Handle h) const;
  size_t entry_count() const;
  // Cached extrema over the default level and all explicit entries.
  Level min_level() const;
  Level max_level() const;
  // Histogram of explicit entries by level (O(1); maintained incrementally).
  // These power the asymmetric fast paths: operations between a huge label
  // and a small one can often be decided wholesale from the histogram plus
  // point lookups, without scanning the huge side.
  uint64_t CountEntriesAtLevel(Level l) const;
  uint64_t CountEntriesAbove(Level l) const;  // strictly above
  // Lowest level among explicit entries / among non-⋆ explicit entries;
  // Level::kL3 when there are none (harmless for ≤ comparisons).
  Level EntryMinLevel() const;
  Level EntryMaxLevel() const;  // kStar when no entries
  Level MinNonStarEntryLevel() const;

  // --- Mutation (copy-on-write; O(chunk) + O(#chunks)) ---------------------
  // Sets L(h) = l. Setting a handle to the default level removes its entry.
  void Set(Handle h, Level l);

  // --- Algebra -------------------------------------------------------------
  bool Leq(const Label& other) const;                   // this ⊑ other
  static Label Lub(const Label& a, const Label& b);     // a ⊔ b
  static Label Glb(const Label& a, const Label& b);     // a ⊓ b
  Label StarsOnly() const;                              // L⋆
  bool Equals(const Label& other) const;                // extensional equality

  // --- Canonical identity (src/labels/intern.h) ----------------------------
  // Stable 64-bit identity of this label's current content. Equal ids imply
  // extensionally equal labels, forever: canonical (hash-consed) reps are
  // immutable and share one id per content, and an in-place mutation of a
  // private rep assigns a fresh id. The kernel's check cache keys on these.
  uint64_t rep_id() const;
  // True when this label shares the canonical (interned, immutable) rep for
  // its content. Two canonical labels are equal iff their ids are equal.
  bool rep_canonical() const;

  // this ← this ⊔ other / this ⊓ other, sharing representation when one
  // side already dominates. These are the kernel's contamination hot path.
  // When a merge actually runs (the fast no-op paths did not decide), the
  // result is re-keyed through the intern table (Canonicalize below): the
  // kernel's receive/send labels converge to canonical reps even though
  // they mutate in place, so steady-state OKWS traffic re-presents the
  // same rep ids and the flow-check verdict cache keeps hitting.
  void JoinInPlace(const Label& other);
  void MeetInPlace(const Label& other);

  // Re-keys this label to the canonical (hash-consed) rep for its content:
  // a live extensionally-equal canonical rep is shared, otherwise this
  // label's own rep is registered as canonical. Afterwards rep_id() is the
  // stable content id every other canonical construction of this content
  // yields. O(entry count); invisible to LabelWorkStats like all interning.
  void Canonicalize();

  friend bool operator==(const Label& a, const Label& b) { return a.Equals(b); }
  friend bool operator!=(const Label& a, const Label& b) { return !a.Equals(b); }

  // --- Introspection -------------------------------------------------------
  // Explicit entries in increasing handle order (never contains the default).
  std::vector<std::pair<Handle, Level>> Entries() const;

  // Lightweight in-order reader over explicit entries. Valid only while the
  // label it came from is alive and unmodified. Used by the kernel to fuse
  // multi-label checks (e.g. the full Figure-4 delivery rule) into a single
  // k-way merge without materializing intermediate labels.
  class EntryIter {
   public:
    bool done() const;
    Handle handle() const;
    Level level() const;
    void Advance();

   private:
    friend class Label;
    explicit EntryIter(const internal::LabelRep* rep);
    void SkipToValid();

    const internal::LabelRep* rep_;
    size_t chunk_ = 0;
    uint16_t index_ = 0;
  };

  EntryIter IterateEntries() const;

  // Reader over explicit entries with level ≠ ⋆, skipping all-⋆ chunks via
  // their cached extrema. A huge ⋆-rich label (netd's or idd's send label)
  // with a handful of non-⋆ entries iterates in O(#non-⋆ + #chunks): ⋆
  // entries are below everything and can never violate a ≤-check, so most
  // kernel predicates only need the non-⋆ ones.
  class NonStarIter {
   public:
    bool done() const;
    Handle handle() const;
    Level level() const;
    void Advance();

   private:
    friend class Label;
    explicit NonStarIter(const internal::LabelRep* rep);
    void SkipToValid();

    const internal::LabelRep* rep_;
    size_t chunk_ = 0;
    uint16_t index_ = 0;
  };

  NonStarIter IterateNonStarEntries() const;

  // Visits explicit entries in increasing handle order.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [h, l] : Entries()) {
      fn(h, l);
    }
  }

  // Heap bytes attributable to this label (rep + chunks, shared chunks
  // counted in full). The smallest label is roughly 300 bytes (§5.6).
  uint64_t heap_bytes() const;

  // "{5 *, 9 3, 1}": entries as "<handle-decimal> <level>", then the default.
  std::string ToString() const;
  // Parses ToString()'s format. Returns false on malformed input.
  static bool Parse(std::string_view text, Label* out);

  // Checks representation invariants (sorted, deduped, no default-valued
  // entries, correct cached extrema). Test-only; panics on violation.
  void CheckRep() const;

 private:
  friend class LabelBuilder;

  explicit Label(internal::LabelRepRef rep) : rep_(std::move(rep)) {}

  internal::LabelRep* MutableRep();

  internal::LabelRepRef rep_;
};

// Bulk construction from entries already in increasing handle order — the
// unpickle fast path. Label::Set costs O(chunk) per entry (binary search,
// memmove, extrema recompute), which is why rebuilding a 4k-entry ⋆-rich
// label from storage used to crawl at ~7 MB/s; the builder accumulates
// packed entries in a flat buffer and memcpys them into chunks once, so an
// n-entry label builds in O(n).
//
// Preconditions are asserted, not reported: every Append must carry a valid
// handle strictly greater than the previous one and a level different from
// the default. Decoders of untrusted bytes (src/store/label_codec.cc)
// validate their input *before* appending; the builder panicking means a
// validation layer above it is broken, never that input was malformed.
class LabelBuilder {
 public:
  explicit LabelBuilder(Level default_level) : default_level_(default_level) {}

  void Append(Handle h, Level l);

  // Grows the internal buffer ahead of `n` further Appends.
  void Reserve(size_t n) { entries_.reserve(entries_.size() + n); }

  size_t entry_count() const { return entries_.size(); }

  // Packs the accumulated entries into a label. Resets the builder to empty
  // so it can be reused for the next label (recovery decodes thousands).
  Label Build();

 private:
  Level default_level_;
  uint64_t last_packed_ = 0;  // previous packed entry; handles compare shifted
  uint64_t level_counts_[5] = {};
  std::vector<uint64_t> entries_;  // packed (handle << 3) | level
};

}  // namespace asbestos

#endif  // SRC_LABELS_LABEL_H_
