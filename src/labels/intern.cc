#include "src/labels/intern.h"

#include <unordered_map>
#include <vector>

#include "src/base/hash.h"
#include "src/base/panic.h"
#include "src/obs/metrics.h"

namespace asbestos {

namespace {

LabelInternStats g_intern;

// hash → live canonical reps with that structural hash (collision chain;
// almost always a single element). Weak pointers: reps unregister on free.
using InternTable = std::unordered_map<uint64_t, std::vector<internal::LabelRep*>>;

InternTable& Table() {
  static InternTable* table = new InternTable();  // never destroyed: reps may
  return *table;                                  // outlive static teardown
}

}  // namespace

const LabelInternStats& GetLabelInternStats() { return g_intern; }

namespace {
// Metrics-plane window onto the live intern stats (the struct stays the
// storage of record; see src/obs/metrics.h).
[[maybe_unused]] const uint64_t g_intern_gauges =
    obs::Registry::Get().RegisterGauges([](obs::GaugeSink& sink) {
      sink.Set("labels.intern.probes", g_intern.probes);
      sink.Set("labels.intern.hits", g_intern.hits);
      sink.Set("labels.intern.misses", g_intern.misses);
      sink.Set("labels.intern.bytes_saved", g_intern.bytes_saved);
      sink.Set("labels.intern.live_canonical", g_intern.live_canonical);
    });
}  // namespace

void ResetLabelInternStats() {
  const int64_t live = g_intern.live_canonical;
  g_intern = LabelInternStats();
  g_intern.live_canonical = live;
}

namespace internal {

uint64_t InternNextRepId() {
  static uint64_t next = 0;
  return ++next;
}

uint64_t InternHashEntries(uint8_t default_ordinal, const uint64_t* entries, size_t count) {
  // Word-at-a-time (src/base/hash.h): this runs on every completed label
  // construction, so per-entry cost matters. In-memory only — unlike the
  // store's shard routing, this may change freely.
  uint64_t h = HashMix64(kFnv1aOffsetBasis, default_ordinal);
  for (size_t i = 0; i < count; ++i) {
    h = HashMix64(h, entries[i]);
  }
  return h;
}

LabelRep* InternLookup(uint64_t hash, InternMatchFn match, const void* ctx) {
  g_intern.probes += 1;
  auto it = Table().find(hash);
  if (it == Table().end()) {
    return nullptr;
  }
  for (LabelRep* rep : it->second) {
    if (match(rep, ctx)) {
      return rep;
    }
  }
  return nullptr;
}

void InternInsert(uint64_t hash, LabelRep* rep) {
  Table()[hash].push_back(rep);
  g_intern.misses += 1;
  g_intern.live_canonical += 1;
}

void InternErase(uint64_t hash, const LabelRep* rep) {
  auto it = Table().find(hash);
  ASB_ASSERT(it != Table().end() && "canonical rep missing from intern table");
  std::vector<LabelRep*>& chain = it->second;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] == rep) {
      chain[i] = chain.back();
      chain.pop_back();
      if (chain.empty()) {
        Table().erase(it);
      }
      g_intern.live_canonical -= 1;
      return;
    }
  }
  ASB_PANIC("canonical rep missing from its intern bucket");
}

void InternNoteDedup(uint64_t bytes_saved) {
  g_intern.hits += 1;
  g_intern.bytes_saved += bytes_saved;
}

}  // namespace internal
}  // namespace asbestos
