// Hash-consing of label representations (the canonical-rep layer).
//
// The paper makes labels ref-counted, copy-on-write, and immutable (§5.6) so
// entities can share label memory; this layer takes the next step and makes
// extensionally equal labels share ONE canonical rep. Every construction
// that finishes a label from sorted entries (LabelBuilder::Build — and
// through it codec::ReadLabel — plus the merge paths of Lub/Glb/StarsOnly
// and Label::Parse) probes a global structural-hash table before allocating:
// on a hit the existing canonical rep is shared, on a miss the fresh rep is
// registered as canonical. Store recovery of N records carrying the same
// label therefore allocates one rep, and the kernel can treat label identity
// as a pointer comparison.
//
// Identity contract (what the kernel's check cache relies on):
//   * every rep carries a 64-bit id, unique since process start;
//   * an id value refers to exactly one extensional label content, forever:
//     canonical reps are immutable (copy-on-write clones them before any
//     mutation), and non-canonical reps get a FRESH id on every in-place
//     mutation — so a (rep id → anything derived from its content) cache
//     never needs invalidation, only capacity eviction;
//   * two simultaneously-live canonical reps are structurally distinct,
//     which makes canonical-vs-canonical equality a pointer/id comparison.
//
// The table holds weak references: a canonical rep unregisters itself when
// its last owner drops it, so interning never pins dead labels. Table index
// overhead is accounted separately (KernelMemReport) from the label heap the
// reps themselves occupy (LabelMemStats).
//
// Cost accounting: the intern machinery itself (hashing, probing, table
// upkeep) is invisible to the work counters (LabelWorkStats) — it is an
// implementation artifact the paper's linear cost model must not see. Note
// one deliberate interaction: the label algebra's pre-existing
// pointer-identity fast paths (Lub/Glb/Leq on `a == b`, sanctioned by §5.6's
// "entities share label memory, so common comparisons are O(1)") fire more
// often once equal constructions share a rep, and charge as the fast-path
// hits they always were. The *check cache* (src/kernel/label_checks.h) makes
// the stronger guarantee: cached-vs-uncached charged cycles are
// bit-identical, because hits replay the recorded uncached cost.
#ifndef SRC_LABELS_INTERN_H_
#define SRC_LABELS_INTERN_H_

#include <cstddef>
#include <cstdint>

namespace asbestos {

// Cumulative interning counters. `hits` are constructions that reused a live
// canonical rep instead of allocating (`bytes_saved` sums the rep + chunk
// heap they avoided); `misses` registered a new canonical rep.
struct LabelInternStats {
  uint64_t probes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_saved = 0;
  int64_t live_canonical = 0;  // reps currently registered in the table
};

const LabelInternStats& GetLabelInternStats();
// Zeroes the counters; live_canonical tracks live state and is preserved.
void ResetLabelInternStats();

namespace internal {

struct LabelRep;  // defined in label.cc

// Monotonic rep-id source (never reuses a value; 0 is never issued).
uint64_t InternNextRepId();

// FNV-1a over the default level and the packed entry array — the structural
// hash the intern table buckets on.
uint64_t InternHashEntries(uint8_t default_ordinal, const uint64_t* entries, size_t count);

// Probes the table bucket for `hash`, calling `match` on each candidate
// until it returns true. Returns the matching canonical rep (caller must
// take its own reference) or nullptr. Counts a probe; the caller reports the
// outcome via InternNoteDedup (hit) or InternInsert (miss).
using InternMatchFn = bool (*)(const LabelRep* candidate, const void* ctx);
LabelRep* InternLookup(uint64_t hash, InternMatchFn match, const void* ctx);

// Registers `rep` as the canonical rep for `hash` (a miss).
void InternInsert(uint64_t hash, LabelRep* rep);
// Unregisters a canonical rep (called from the rep's free path).
void InternErase(uint64_t hash, const LabelRep* rep);
// Records a dedup hit and the heap bytes it avoided allocating.
void InternNoteDedup(uint64_t bytes_saved);

}  // namespace internal
}  // namespace asbestos

#endif  // SRC_LABELS_INTERN_H_
