#include "src/labels/label.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/base/panic.h"
#include "src/base/strings.h"
#include "src/labels/intern.h"

namespace asbestos {

namespace {

LabelWorkStats g_work;
LabelMemStats g_mem;

// Packed entry: 61-bit handle in the upper bits, level ordinal in the low 3.
// Handles are unique, so sorting by packed value sorts by handle.
uint64_t PackEntry(Handle h, Level l) { return (h.value() << 3) | LevelOrdinal(l); }
Handle EntryHandle(uint64_t e) { return Handle::FromValue(e >> 3); }
Level EntryLevel(uint64_t e) { return static_cast<Level>(e & 0x7); }

}  // namespace

namespace internal {

// A chunk: sorted array of up to kChunkMaxEntries packed entries, reference
// counted for copy-on-write sharing between labels.
struct Chunk {
  int32_t refcount = 1;
  uint16_t size = 0;
  uint16_t capacity = 0;
  Level min_level = Level::kL3;  // over entries only; meaningless when empty
  Level max_level = Level::kStar;
  std::unique_ptr<uint64_t[]> entries;
};

namespace {

constexpr uint16_t kChunkMaxEntries = 64;
constexpr uint16_t kChunkMinCapacity = 32;

uint64_t ChunkBytes(uint16_t capacity) {
  // Struct + entry storage + the label's pointer slot referencing it.
  return sizeof(Chunk) + static_cast<uint64_t>(capacity) * sizeof(uint64_t) + sizeof(void*);
}

Chunk* NewChunk(uint16_t capacity) {
  auto* c = new Chunk();
  c->capacity = capacity;
  c->entries = std::make_unique<uint64_t[]>(capacity);
  g_mem.live_bytes += static_cast<int64_t>(ChunkBytes(capacity));
  g_mem.live_chunks += 1;
  return c;
}

void UnrefChunk(Chunk* c) {
  if (--c->refcount == 0) {
    g_mem.live_bytes -= static_cast<int64_t>(ChunkBytes(c->capacity));
    g_mem.live_chunks -= 1;
    delete c;
  }
}

Chunk* RefChunk(Chunk* c) {
  ++c->refcount;
  return c;
}

void RecomputeChunkExtrema(Chunk* c) {
  Level lo = Level::kL3;
  Level hi = Level::kStar;
  for (uint16_t i = 0; i < c->size; ++i) {
    const Level l = EntryLevel(c->entries[i]);
    lo = LevelMin(lo, l);
    hi = LevelMax(hi, l);
  }
  c->min_level = lo;
  c->max_level = hi;
}

Handle ChunkFirstHandle(const Chunk* c) { return EntryHandle(c->entries[0]); }

}  // namespace

struct LabelRep {
  int32_t refcount = 1;
  Level default_level = Level::kL3;
  Level min_level = Level::kL3;  // over default and all entries
  Level max_level = Level::kL3;
  // Content-snapshot identity (see intern.h): assigned at creation, and
  // re-assigned on every in-place mutation, so a given id value names one
  // extensional content forever.
  uint64_t id = 0;
  uint64_t struct_hash = 0;  // valid only when in_table
  // Canonical reps are immutable: MutableRep clones them even at refcount 1.
  bool interned = false;
  bool in_table = false;  // registered in the intern table (unlike the
                          // per-level shared default singletons)
  uint64_t level_counts[5] = {};  // explicit entries per level
  std::vector<Chunk*> chunks;

  ~LabelRep() {
    for (Chunk* c : chunks) {
      UnrefChunk(c);
    }
  }
};

namespace {

constexpr uint64_t kRepBytes = sizeof(LabelRep);

LabelRep* NewRep(Level default_level) {
  auto* rep = new LabelRep();
  rep->default_level = default_level;
  rep->min_level = default_level;
  rep->max_level = default_level;
  rep->id = InternNextRepId();
  g_mem.live_bytes += static_cast<int64_t>(kRepBytes);
  g_mem.live_reps += 1;
  return rep;
}

void FreeRep(LabelRep* rep) {
  if (rep->in_table) {
    InternErase(rep->struct_hash, rep);
  }
  g_mem.live_bytes -= static_cast<int64_t>(kRepBytes);
  g_mem.live_reps -= 1;
  delete rep;
}

uint64_t RepHeapBytes(const LabelRep* rep) {
  uint64_t bytes = kRepBytes;
  for (const Chunk* c : rep->chunks) {
    bytes += ChunkBytes(c->capacity);
  }
  return bytes;
}

void RecomputeRepExtrema(LabelRep* rep) {
  Level lo = rep->default_level;
  Level hi = rep->default_level;
  for (const Chunk* c : rep->chunks) {
    lo = LevelMin(lo, c->min_level);
    hi = LevelMax(hi, c->max_level);
  }
  rep->min_level = lo;
  rep->max_level = hi;
}

// Shallow rep clone: shares chunks, used to unshare before mutation.
LabelRep* CloneRep(const LabelRep* rep) {
  LabelRep* copy = NewRep(rep->default_level);
  copy->min_level = rep->min_level;
  copy->max_level = rep->max_level;
  for (int i = 0; i < 5; ++i) {
    copy->level_counts[i] = rep->level_counts[i];
  }
  copy->chunks.reserve(rep->chunks.size());
  for (Chunk* c : rep->chunks) {
    copy->chunks.push_back(RefChunk(c));
  }
  return copy;
}

Chunk* CloneChunkWithCapacity(const Chunk* c, uint16_t capacity) {
  ASB_ASSERT(capacity >= c->size);
  Chunk* copy = NewChunk(capacity);
  copy->size = c->size;
  copy->min_level = c->min_level;
  copy->max_level = c->max_level;
  std::memcpy(copy->entries.get(), c->entries.get(), c->size * sizeof(uint64_t));
  return copy;
}

// Sequential reader over a rep's entries in increasing handle order.
class Cursor {
 public:
  explicit Cursor(const LabelRep* rep) : rep_(rep) { SkipToValid(); }

  bool done() const { return chunk_ >= rep_->chunks.size(); }
  uint64_t entry() const { return rep_->chunks[chunk_]->entries[index_]; }
  void Advance() {
    ++index_;
    SkipToValid();
  }

 private:
  void SkipToValid() {
    while (chunk_ < rep_->chunks.size() && index_ >= rep_->chunks[chunk_]->size) {
      ++chunk_;
      index_ = 0;
    }
  }

  const LabelRep* rep_;
  size_t chunk_ = 0;
  uint16_t index_ = 0;
};

// Entry-less default labels ({⋆}, {1}, {2}, {3}) are ubiquitous — every
// SendArgs default, every fresh vnode — so they share one immutable
// representation per level. Copy-on-write unshares on first mutation; the
// `interned` mark makes the immutability explicit (MutableRep always clones
// canonical reps), so these singletons behave exactly like table-interned
// reps without occupying the table.
LabelRepRef SharedDefaultRep(Level default_level) {
  static LabelRep* cache[5] = {};
  LabelRep*& slot = cache[LevelOrdinal(default_level)];
  if (slot == nullptr) {
    slot = NewRep(default_level);  // one live ref owned by the cache
    slot->interned = true;
  }
  ++slot->refcount;
  return LabelRepRef(slot);
}

// Packs sorted entries into a fresh rep: chunked memcpy, one extrema pass.
// Shared by the merge builders below and LabelBuilder's bulk path.
LabelRepRef PackSortedEntries(Level default_level, const uint64_t* entries, size_t count,
                              const uint64_t level_counts[5]) {
  LabelRep* rep = NewRep(default_level);
  size_t i = 0;
  while (i < count) {
    const size_t n = std::min<size_t>(kChunkMaxEntries, count - i);
    const uint16_t capacity = n <= kChunkMinCapacity ? kChunkMinCapacity : kChunkMaxEntries;
    Chunk* c = NewChunk(capacity);
    c->size = static_cast<uint16_t>(n);
    std::memcpy(c->entries.get(), entries + i, n * sizeof(uint64_t));
    RecomputeChunkExtrema(c);
    rep->chunks.push_back(c);
    i += n;
  }
  RecomputeRepExtrema(rep);
  for (int l = 0; l < 5; ++l) {
    rep->level_counts[l] = level_counts[l];
  }
  return LabelRepRef(rep);
}

// Structural comparison of a canonical-rep candidate against a flat sorted
// entry array — the intern probe's equality check.
struct FlatMatchCtx {
  Level default_level;
  const uint64_t* entries;
  size_t count;
  const uint64_t* level_counts;
};

bool MatchRepAgainstFlat(const LabelRep* rep, const void* vctx) {
  const auto* ctx = static_cast<const FlatMatchCtx*>(vctx);
  if (rep->default_level != ctx->default_level) {
    return false;
  }
  // Histogram mismatch (which implies count mismatch) rejects in O(1).
  for (int i = 0; i < 5; ++i) {
    if (rep->level_counts[i] != ctx->level_counts[i]) {
      return false;
    }
  }
  Cursor c(rep);
  for (size_t i = 0; i < ctx->count; ++i, c.Advance()) {
    if (c.done() || c.entry() != ctx->entries[i]) {
      return false;
    }
  }
  return c.done();
}

// The hash-consing funnel (see intern.h): every completed construction from
// sorted entries lands here. A live canonical rep with the same content is
// shared; otherwise the freshly packed rep is registered as canonical.
// Deliberately invisible to LabelWorkStats — interning changes wall-clock
// and memory, never the charged label-algebra cost.
LabelRepRef InternSortedEntries(Level default_level, const uint64_t* entries, size_t count,
                                const uint64_t level_counts[5]) {
  if (count == 0) {
    return SharedDefaultRep(default_level);  // per-level canonical singleton
  }
  const uint64_t hash = InternHashEntries(LevelOrdinal(default_level), entries, count);
  const FlatMatchCtx ctx{default_level, entries, count, level_counts};
  if (LabelRep* canonical = InternLookup(hash, MatchRepAgainstFlat, &ctx)) {
    InternNoteDedup(RepHeapBytes(canonical));  // same layout a fresh pack would use
    ++canonical->refcount;
    return LabelRepRef(canonical);
  }
  LabelRepRef rep = PackSortedEntries(default_level, entries, count, level_counts);
  rep.get()->struct_hash = hash;
  rep.get()->interned = true;
  rep.get()->in_table = true;
  InternInsert(hash, rep.get());
  return rep;
}

// Accumulates sorted packed entries and packs them into chunks.
class RepBuilder {
 public:
  explicit RepBuilder(Level default_level) : default_level_(default_level) {}

  void Append(Handle h, Level l) {
    if (l == default_level_) {
      return;  // entries never duplicate the default
    }
    level_counts_[LevelOrdinal(l)] += 1;
    entries_.push_back(PackEntry(h, l));
  }

  LabelRepRef Finish() {
    return InternSortedEntries(default_level_, entries_.data(), entries_.size(), level_counts_);
  }

 private:
  Level default_level_;
  uint64_t level_counts_[5] = {};
  std::vector<uint64_t> entries_;
};

}  // namespace

LabelRepRef::LabelRepRef(const LabelRepRef& other) : rep_(other.rep_) {
  if (rep_ != nullptr) {
    ++rep_->refcount;
  }
}

LabelRepRef& LabelRepRef::operator=(const LabelRepRef& other) {
  if (this == &other) {
    return *this;
  }
  LabelRep* old = rep_;
  rep_ = other.rep_;
  if (rep_ != nullptr) {
    ++rep_->refcount;
  }
  if (old != nullptr && --old->refcount == 0) {
    FreeRep(old);
  }
  return *this;
}

LabelRepRef& LabelRepRef::operator=(LabelRepRef&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  LabelRep* old = rep_;
  rep_ = other.rep_;
  other.rep_ = nullptr;
  if (old != nullptr && --old->refcount == 0) {
    FreeRep(old);
  }
  return *this;
}

LabelRepRef::~LabelRepRef() {
  if (rep_ != nullptr && --rep_->refcount == 0) {
    FreeRep(rep_);
  }
}

}  // namespace internal

using internal::Chunk;
using internal::LabelRep;
using internal::LabelRepRef;

LabelWorkStats& GetLabelWorkStats() { return g_work; }
void ResetLabelWorkStats() { g_work = LabelWorkStats(); }
const LabelMemStats& GetLabelMemStats() { return g_mem; }

Label::Label() : rep_(internal::SharedDefaultRep(Level::kL3)) {}

Label::Label(Level default_level) : rep_(internal::SharedDefaultRep(default_level)) {}

Label::Label(std::initializer_list<std::pair<Handle, Level>> entries, Level default_level)
    : Label(default_level) {
  for (const auto& [h, l] : entries) {
    Set(h, l);
  }
}

Level Label::default_level() const { return rep_->default_level; }
size_t Label::entry_count() const {
  size_t n = 0;
  for (const Chunk* c : rep_->chunks) {
    n += c->size;
  }
  return n;
}
Level Label::min_level() const { return rep_->min_level; }
Level Label::max_level() const { return rep_->max_level; }

uint64_t Label::CountEntriesAtLevel(Level l) const {
  return rep_->level_counts[LevelOrdinal(l)];
}

uint64_t Label::CountEntriesAbove(Level l) const {
  uint64_t n = 0;
  for (int i = LevelOrdinal(l) + 1; i < 5; ++i) {
    n += rep_->level_counts[i];
  }
  return n;
}

Level Label::EntryMinLevel() const {
  for (int i = 0; i < 5; ++i) {
    if (rep_->level_counts[i] != 0) {
      return static_cast<Level>(i);
    }
  }
  return Level::kL3;
}

Level Label::EntryMaxLevel() const {
  for (int i = 4; i >= 0; --i) {
    if (rep_->level_counts[i] != 0) {
      return static_cast<Level>(i);
    }
  }
  return Level::kStar;
}

Level Label::MinNonStarEntryLevel() const {
  for (int i = 1; i < 5; ++i) {
    if (rep_->level_counts[i] != 0) {
      return static_cast<Level>(i);
    }
  }
  return Level::kL3;
}

namespace {

// Index of the chunk that could contain h: the last chunk whose first handle
// is <= h. Returns SIZE_MAX when h precedes every chunk.
size_t FindChunkIndex(const LabelRep* rep, Handle h) {
  size_t lo = 0;
  size_t hi = rep->chunks.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (internal::ChunkFirstHandle(rep->chunks[mid]) <= h) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? SIZE_MAX : lo - 1;
}

// Index of the first entry in c with handle >= h.
uint16_t LowerBoundInChunk(const Chunk* c, Handle h) {
  const uint64_t key = h.value() << 3;
  const uint64_t* begin = c->entries.get();
  const uint64_t* end = begin + c->size;
  // Levels occupy the low 3 bits, so compare on the handle part only.
  const uint64_t* it = std::lower_bound(begin, end, key,
                                        [](uint64_t e, uint64_t k) { return (e >> 3) < (k >> 3); });
  return static_cast<uint16_t>(it - begin);
}

}  // namespace

Level Label::Get(Handle h) const {
  g_work.entries_visited += 1;
  const LabelRep* rep = rep_.get();
  const size_t ci = FindChunkIndex(rep, h);
  if (ci == SIZE_MAX) {
    return rep->default_level;
  }
  const Chunk* c = rep->chunks[ci];
  const uint16_t i = LowerBoundInChunk(c, h);
  if (i < c->size && EntryHandle(c->entries[i]) == h) {
    return EntryLevel(c->entries[i]);
  }
  return rep->default_level;
}

bool Label::HasExplicit(Handle h) const {
  const LabelRep* rep = rep_.get();
  const size_t ci = FindChunkIndex(rep, h);
  if (ci == SIZE_MAX) {
    return false;
  }
  const Chunk* c = rep->chunks[ci];
  const uint16_t i = LowerBoundInChunk(c, h);
  return i < c->size && EntryHandle(c->entries[i]) == h;
}

uint64_t Label::rep_id() const { return rep_->id; }
bool Label::rep_canonical() const { return rep_->interned; }

LabelRep* Label::MutableRep() {
  LabelRep* rep = rep_.get();
  // Canonical reps are immutable even when this label is their only owner:
  // the intern table and the check cache both key on their identity, so
  // mutating one in place would corrupt every future lookup.
  if (rep->refcount > 1 || rep->interned) {
    rep_ = LabelRepRef(internal::CloneRep(rep));
    rep = rep_.get();
  }
  return rep;
}

void Label::Set(Handle h, Level l) {
  ASB_ASSERT(h.valid());
  LabelRep* rep = rep_.get();
  size_t ci = FindChunkIndex(rep, h);

  // Locate an existing entry without unsharing yet.
  bool exists = false;
  uint16_t pos = 0;
  if (ci != SIZE_MAX) {
    const Chunk* c = rep->chunks[ci];
    pos = LowerBoundInChunk(c, h);
    exists = pos < c->size && EntryHandle(c->entries[pos]) == h;
    if (exists && EntryLevel(c->entries[pos]) == l) {
      return;  // no change
    }
  }
  if (!exists && l == rep->default_level) {
    return;  // absent and equal to default: nothing to record
  }

  rep = MutableRep();
  g_work.entries_visited += 1;
  // The content is about to change in place: retire the old snapshot id so
  // anything keyed on it (the kernel's check cache) can never match stale
  // content. Cheap, and harmless when MutableRep just cloned.
  rep->id = internal::InternNextRepId();

  if (exists) {
    // Unshare the chunk, then overwrite or remove in place.
    Chunk*& slot = rep->chunks[ci];
    if (slot->refcount > 1) {
      Chunk* copy = internal::CloneChunkWithCapacity(slot, slot->capacity);
      internal::UnrefChunk(slot);
      slot = copy;
    }
    Chunk* c = slot;
    g_work.entries_visited += c->size;
    rep->level_counts[LevelOrdinal(EntryLevel(c->entries[pos]))] -= 1;
    if (l == rep->default_level) {
      std::memmove(&c->entries[pos], &c->entries[pos + 1],
                   (c->size - pos - 1) * sizeof(uint64_t));
      --c->size;
      if (c->size == 0) {
        internal::UnrefChunk(c);
        rep->chunks.erase(rep->chunks.begin() + static_cast<ptrdiff_t>(ci));
      } else {
        internal::RecomputeChunkExtrema(c);
      }
    } else {
      rep->level_counts[LevelOrdinal(l)] += 1;
      c->entries[pos] = PackEntry(h, l);
      internal::RecomputeChunkExtrema(c);
    }
    internal::RecomputeRepExtrema(rep);
    return;
  }

  // Insertion path.
  rep->level_counts[LevelOrdinal(l)] += 1;
  if (rep->chunks.empty()) {
    Chunk* c = internal::NewChunk(internal::kChunkMinCapacity);
    c->entries[0] = PackEntry(h, l);
    c->size = 1;
    internal::RecomputeChunkExtrema(c);
    rep->chunks.push_back(c);
    internal::RecomputeRepExtrema(rep);
    return;
  }
  if (ci == SIZE_MAX) {
    ci = 0;  // h precedes every chunk; insert at the front of the first one
  }

  Chunk*& slot = rep->chunks[ci];
  // Grow or split a full chunk before inserting.
  if (slot->size == slot->capacity) {
    if (slot->capacity < internal::kChunkMaxEntries) {
      Chunk* bigger = internal::CloneChunkWithCapacity(slot, internal::kChunkMaxEntries);
      internal::UnrefChunk(slot);
      slot = bigger;
    } else {
      // Split 64 entries into two chunks of 32.
      Chunk* left = internal::NewChunk(internal::kChunkMaxEntries);
      Chunk* right = internal::NewChunk(internal::kChunkMaxEntries);
      const uint16_t half = slot->size / 2;
      left->size = half;
      right->size = static_cast<uint16_t>(slot->size - half);
      std::memcpy(left->entries.get(), slot->entries.get(), half * sizeof(uint64_t));
      std::memcpy(right->entries.get(), slot->entries.get() + half,
                  right->size * sizeof(uint64_t));
      internal::RecomputeChunkExtrema(left);
      internal::RecomputeChunkExtrema(right);
      internal::UnrefChunk(slot);
      rep->chunks[ci] = left;
      rep->chunks.insert(rep->chunks.begin() + static_cast<ptrdiff_t>(ci) + 1, right);
      if (h >= internal::ChunkFirstHandle(right)) {
        ++ci;
      }
    }
  }

  Chunk*& target = rep->chunks[ci];
  if (target->refcount > 1) {
    Chunk* copy = internal::CloneChunkWithCapacity(target, target->capacity);
    internal::UnrefChunk(target);
    target = copy;
  }
  Chunk* c = target;
  const uint16_t ins = LowerBoundInChunk(c, h);
  g_work.entries_visited += c->size;
  std::memmove(&c->entries[ins + 1], &c->entries[ins], (c->size - ins) * sizeof(uint64_t));
  c->entries[ins] = PackEntry(h, l);
  ++c->size;
  internal::RecomputeChunkExtrema(c);
  internal::RecomputeRepExtrema(rep);
}

namespace {

// The asymmetric fast paths engage when one side is a handful of entries and
// the other is huge (netd/idd/ok-dbproxy labels grow with the user count).
// The real merge would be linear in the huge side; these compute the same
// result via chunk sharing and point lookups, while callers keep *charging*
// the linear cost (the paper's implementation is linear, §5.6/§9.3; our
// cycle accounting must stay faithful to it).
constexpr size_t kAsymmetricSmallLimit = 24;
constexpr size_t kAsymmetricBigFactor = 8;

bool AsymmetricShapes(size_t small_count, size_t big_count) {
  return small_count <= kAsymmetricSmallLimit &&
         big_count >= kAsymmetricBigFactor * (small_count + 8);
}

}  // namespace

bool Label::Leq(const Label& other) const {
  g_work.ops += 1;
  const LabelRep* a = rep_.get();
  const LabelRep* b = other.rep_.get();
  if (a == b) {
    g_work.fast_path_hits += 1;
    return true;
  }
  // Min/max pruning (§5.6): if every level in A is below every level in B,
  // no entry scan is needed.
  if (LevelLeq(a->max_level, b->min_level)) {
    g_work.fast_path_hits += 1;
    return true;
  }
  // Handles mentioned in neither label compare default-to-default, and there
  // are unboundedly many of them, so this check is decisive.
  if (!LevelLeq(a->default_level, b->default_level)) {
    return false;
  }
  // Asymmetric small ⊑ big: if our default is below every entry of the big
  // side, only our explicit entries need point checks. (Charged as a scan.)
  if (AsymmetricShapes(entry_count(), other.entry_count()) &&
      LevelLeq(a->default_level, other.EntryMinLevel())) {
    g_work.entries_visited += entry_count() + other.entry_count();
    for (EntryIter it = IterateEntries(); !it.done(); it.Advance()) {
      if (!LevelLeq(it.level(), other.Get(it.handle()))) {
        return false;
      }
    }
    return true;
  }
  // Asymmetric big ⊑ small: valid wholesale when every big entry is below
  // the small side's default; the small side's entries get point checks.
  if (AsymmetricShapes(other.entry_count(), entry_count()) &&
      LevelLeq(EntryMaxLevel(), b->default_level)) {
    g_work.entries_visited += entry_count() + other.entry_count();
    for (EntryIter it = other.IterateEntries(); !it.done(); it.Advance()) {
      if (!LevelLeq(Get(it.handle()), it.level())) {
        return false;
      }
    }
    return true;
  }
  internal::Cursor ca(a);
  internal::Cursor cb(b);
  while (!ca.done() || !cb.done()) {
    g_work.entries_visited += 1;
    if (cb.done() || (!ca.done() && EntryHandle(ca.entry()) < EntryHandle(cb.entry()))) {
      // Handle only in A: compare against B's default.
      if (!LevelLeq(EntryLevel(ca.entry()), b->default_level)) {
        return false;
      }
      ca.Advance();
    } else if (ca.done() || EntryHandle(cb.entry()) < EntryHandle(ca.entry())) {
      // Handle only in B: A's default applies.
      if (!LevelLeq(a->default_level, EntryLevel(cb.entry()))) {
        return false;
      }
      cb.Advance();
    } else {
      if (!LevelLeq(EntryLevel(ca.entry()), EntryLevel(cb.entry()))) {
        return false;
      }
      ca.Advance();
      cb.Advance();
    }
  }
  return true;
}

Label Label::Lub(const Label& a, const Label& b) {
  g_work.ops += 1;
  const LabelRep* ra = a.rep_.get();
  const LabelRep* rb = b.rep_.get();
  // Fast paths: if one label dominates the other everywhere (by extrema),
  // the result is the dominating label, shared without copying.
  if (ra == rb || LevelLeq(rb->max_level, ra->min_level)) {
    g_work.fast_path_hits += 1;
    return a;
  }
  if (LevelLeq(ra->max_level, rb->min_level)) {
    g_work.fast_path_hits += 1;
    return b;
  }
  // Asymmetric small ⊔ big: when the small side's default is below
  // everything in the big side, big-only entries and the default are
  // unchanged, so the result is the big label with the small side's entries
  // folded in pointwise. Account the work as if the big side were scanned.
  {
    const Label& small = a.entry_count() <= b.entry_count() ? a : b;
    const Label& big = a.entry_count() <= b.entry_count() ? b : a;
    if (AsymmetricShapes(small.entry_count(), big.entry_count()) &&
        LevelLeq(small.default_level(), big.min_level())) {
      g_work.entries_visited += big.entry_count() + small.entry_count();
      Label result = big;
      for (Label::EntryIter it = small.IterateEntries(); !it.done(); it.Advance()) {
        result.Set(it.handle(), LevelMax(big.Get(it.handle()), it.level()));
      }
      return result;
    }
  }
  const Level def = LevelMax(ra->default_level, rb->default_level);
  internal::RepBuilder out(def);
  internal::Cursor ca(ra);
  internal::Cursor cb(rb);
  while (!ca.done() || !cb.done()) {
    g_work.entries_visited += 1;
    if (cb.done() || (!ca.done() && EntryHandle(ca.entry()) < EntryHandle(cb.entry()))) {
      out.Append(EntryHandle(ca.entry()), LevelMax(EntryLevel(ca.entry()), rb->default_level));
      ca.Advance();
    } else if (ca.done() || EntryHandle(cb.entry()) < EntryHandle(ca.entry())) {
      out.Append(EntryHandle(cb.entry()), LevelMax(EntryLevel(cb.entry()), ra->default_level));
      cb.Advance();
    } else {
      out.Append(EntryHandle(ca.entry()),
                 LevelMax(EntryLevel(ca.entry()), EntryLevel(cb.entry())));
      ca.Advance();
      cb.Advance();
    }
  }
  return Label(out.Finish());
}

Label Label::Glb(const Label& a, const Label& b) {
  g_work.ops += 1;
  const LabelRep* ra = a.rep_.get();
  const LabelRep* rb = b.rep_.get();
  if (ra == rb || LevelLeq(ra->max_level, rb->min_level)) {
    g_work.fast_path_hits += 1;
    return a;
  }
  if (LevelLeq(rb->max_level, ra->min_level)) {
    g_work.fast_path_hits += 1;
    return b;
  }
  // Asymmetric small ⊓ big (dual of the ⊔ fast path): valid when the small
  // default sits above everything in the big label.
  {
    const Label& small = a.entry_count() <= b.entry_count() ? a : b;
    const Label& big = a.entry_count() <= b.entry_count() ? b : a;
    if (AsymmetricShapes(small.entry_count(), big.entry_count()) &&
        LevelLeq(big.max_level(), small.default_level())) {
      g_work.entries_visited += big.entry_count() + small.entry_count();
      Label result = big;
      for (Label::EntryIter it = small.IterateEntries(); !it.done(); it.Advance()) {
        result.Set(it.handle(), LevelMin(big.Get(it.handle()), it.level()));
      }
      return result;
    }
  }
  const Level def = LevelMin(ra->default_level, rb->default_level);
  internal::RepBuilder out(def);
  internal::Cursor ca(ra);
  internal::Cursor cb(rb);
  while (!ca.done() || !cb.done()) {
    g_work.entries_visited += 1;
    if (cb.done() || (!ca.done() && EntryHandle(ca.entry()) < EntryHandle(cb.entry()))) {
      out.Append(EntryHandle(ca.entry()), LevelMin(EntryLevel(ca.entry()), rb->default_level));
      ca.Advance();
    } else if (ca.done() || EntryHandle(cb.entry()) < EntryHandle(ca.entry())) {
      out.Append(EntryHandle(cb.entry()), LevelMin(EntryLevel(cb.entry()), ra->default_level));
      cb.Advance();
    } else {
      out.Append(EntryHandle(ca.entry()),
                 LevelMin(EntryLevel(ca.entry()), EntryLevel(cb.entry())));
      ca.Advance();
      cb.Advance();
    }
  }
  return Label(out.Finish());
}

Label Label::StarsOnly() const {
  g_work.ops += 1;
  const LabelRep* rep = rep_.get();
  const bool default_is_star = rep->default_level == Level::kStar;
  const Level def = default_is_star ? Level::kStar : Level::kL3;
  if (rep->chunks.empty()) {
    g_work.fast_path_hits += 1;
    return Label(def);
  }
  internal::RepBuilder out(def);
  internal::Cursor c(rep);
  while (!c.done()) {
    g_work.entries_visited += 1;
    const Level l = EntryLevel(c.entry());
    if (default_is_star) {
      // Unmentioned handles are ⋆; explicit non-star entries become 3.
      if (l != Level::kStar) {
        out.Append(EntryHandle(c.entry()), Level::kL3);
      }
    } else {
      if (l == Level::kStar) {
        out.Append(EntryHandle(c.entry()), Level::kStar);
      }
    }
    c.Advance();
  }
  return Label(out.Finish());
}

bool Label::Equals(const Label& other) const {
  const LabelRep* a = rep_.get();
  const LabelRep* b = other.rep_.get();
  // Shared-rep fast path: COW copies and hash-consed constructions compare
  // in O(1), whatever their size.
  if (a == b) {
    return true;
  }
  // Two simultaneously-live canonical reps are structurally distinct by the
  // intern invariant, so distinct pointers decide inequality in O(1) too.
  if (a->interned && b->interned) {
    return false;
  }
  if (a->default_level != b->default_level || a->min_level != b->min_level ||
      a->max_level != b->max_level) {
    return false;
  }
  for (int i = 0; i < 5; ++i) {
    if (a->level_counts[i] != b->level_counts[i]) {
      return false;
    }
  }
  // Entry walk with whole-chunk skipping: a COW clone that diverged in one
  // chunk still shares the others, and pointer-identical chunks at a chunk
  // boundary are equal without touching their entries.
  size_t ai = 0;
  size_t bi = 0;
  uint16_t aj = 0;
  uint16_t bj = 0;
  const auto& achunks = a->chunks;
  const auto& bchunks = b->chunks;
  for (;;) {
    while (ai < achunks.size() && aj >= achunks[ai]->size) {
      ++ai;
      aj = 0;
    }
    while (bi < bchunks.size() && bj >= bchunks[bi]->size) {
      ++bi;
      bj = 0;
    }
    const bool a_done = ai >= achunks.size();
    const bool b_done = bi >= bchunks.size();
    if (a_done || b_done) {
      return a_done && b_done;
    }
    if (aj == 0 && bj == 0 && achunks[ai] == bchunks[bi]) {
      ++ai;
      ++bi;
      continue;
    }
    if (achunks[ai]->entries[aj] != bchunks[bi]->entries[bj]) {
      return false;
    }
    ++aj;
    ++bj;
  }
}

void Label::JoinInPlace(const Label& other) {
  // Fast no-op: everything in `other` is already below everything here.
  if (LevelLeq(other.rep_->max_level, rep_->min_level)) {
    g_work.ops += 1;
    g_work.fast_path_hits += 1;
    return;
  }
  if (other.Leq(*this)) {
    return;  // accurate containment check avoids allocating a new rep
  }
  *this = Lub(*this, other);
  // The merge ran: re-key the result to its canonical rep. Lub's builder
  // path already interned; this covers the asymmetric Set-based path, whose
  // private rep would otherwise take a fresh id on every contamination and
  // starve the kernel's check cache (ROADMAP: live-path hit rate).
  Canonicalize();
}

void Label::MeetInPlace(const Label& other) {
  if (LevelLeq(rep_->max_level, other.rep_->min_level)) {
    g_work.ops += 1;
    g_work.fast_path_hits += 1;
    return;
  }
  if (Leq(other)) {
    return;
  }
  *this = Glb(*this, other);
  Canonicalize();
}

void Label::Canonicalize() {
  internal::LabelRep* rep = rep_.get();
  if (rep->interned) {
    return;  // already canonical (or a shared default singleton)
  }
  std::vector<uint64_t> entries;
  entries.reserve(entry_count());
  internal::Cursor c(rep);
  while (!c.done()) {
    entries.push_back(c.entry());
    c.Advance();
  }
  if (entries.empty()) {
    rep_ = internal::SharedDefaultRep(rep->default_level);
    return;
  }
  const uint64_t hash = internal::InternHashEntries(
      LevelOrdinal(rep->default_level), entries.data(), entries.size());
  const internal::FlatMatchCtx ctx{rep->default_level, entries.data(), entries.size(),
                                   rep->level_counts};
  if (internal::LabelRep* canonical =
          internal::InternLookup(hash, internal::MatchRepAgainstFlat, &ctx)) {
    internal::InternNoteDedup(internal::RepHeapBytes(canonical));
    ++canonical->refcount;
    rep_ = internal::LabelRepRef(canonical);  // drops the private rep
    return;
  }
  // No live twin: this very rep becomes the canonical one — no copy, just
  // the immutability promise (future mutations clone, per MutableRep).
  rep->struct_hash = hash;
  rep->interned = true;
  rep->in_table = true;
  internal::InternInsert(hash, rep);
}

Label::EntryIter::EntryIter(const internal::LabelRep* rep) : rep_(rep) { SkipToValid(); }

void Label::EntryIter::SkipToValid() {
  while (chunk_ < rep_->chunks.size() && index_ >= rep_->chunks[chunk_]->size) {
    ++chunk_;
    index_ = 0;
  }
}

bool Label::EntryIter::done() const { return chunk_ >= rep_->chunks.size(); }

Handle Label::EntryIter::handle() const {
  return EntryHandle(rep_->chunks[chunk_]->entries[index_]);
}

Level Label::EntryIter::level() const {
  return EntryLevel(rep_->chunks[chunk_]->entries[index_]);
}

void Label::EntryIter::Advance() {
  ++index_;
  SkipToValid();
}

Label::EntryIter Label::IterateEntries() const { return EntryIter(rep_.get()); }

Label::NonStarIter::NonStarIter(const internal::LabelRep* rep) : rep_(rep) { SkipToValid(); }

void Label::NonStarIter::SkipToValid() {
  while (chunk_ < rep_->chunks.size()) {
    const Chunk* c = rep_->chunks[chunk_];
    // Whole-chunk skip: the cached extrema say every entry here is ⋆.
    if (index_ == 0 && c->max_level == Level::kStar) {
      ++chunk_;
      continue;
    }
    while (index_ < c->size && EntryLevel(c->entries[index_]) == Level::kStar) {
      ++index_;
    }
    if (index_ < c->size) {
      return;
    }
    ++chunk_;
    index_ = 0;
  }
}

bool Label::NonStarIter::done() const { return chunk_ >= rep_->chunks.size(); }

Handle Label::NonStarIter::handle() const {
  return EntryHandle(rep_->chunks[chunk_]->entries[index_]);
}

Level Label::NonStarIter::level() const {
  return EntryLevel(rep_->chunks[chunk_]->entries[index_]);
}

void Label::NonStarIter::Advance() {
  ++index_;
  SkipToValid();
}

Label::NonStarIter Label::IterateNonStarEntries() const { return NonStarIter(rep_.get()); }

std::vector<std::pair<Handle, Level>> Label::Entries() const {
  std::vector<std::pair<Handle, Level>> out;
  out.reserve(entry_count());
  internal::Cursor c(rep_.get());
  while (!c.done()) {
    out.emplace_back(EntryHandle(c.entry()), EntryLevel(c.entry()));
    c.Advance();
  }
  return out;
}

uint64_t Label::heap_bytes() const { return internal::RepHeapBytes(rep_.get()); }

std::string Label::ToString() const {
  std::string out = "{";
  internal::Cursor c(rep_.get());
  while (!c.done()) {
    out += StrFormat("%llu %s, ", static_cast<unsigned long long>(EntryHandle(c.entry()).value()),
                     LevelName(EntryLevel(c.entry())));
    c.Advance();
  }
  out += LevelName(rep_->default_level);
  out += "}";
  return out;
}

bool Label::Parse(std::string_view text, Label* out) {
  std::string_view s = Trim(text);
  if (s.size() < 3 || s.front() != '{' || s.back() != '}') {
    return false;
  }
  s = s.substr(1, s.size() - 2);
  const std::vector<std::string> parts = Split(s, ',');
  if (parts.empty()) {
    return false;
  }
  const std::string_view def_part = Trim(parts.back());
  Level def;
  if (def_part.size() != 1 || !LevelFromName(def_part[0], &def)) {
    return false;
  }
  // Build through LabelBuilder so parsed labels land on the hash-consing
  // path: re-parsing a label the process already holds shares its canonical
  // rep instead of allocating a twin. Validation happens before each Append
  // (the builder asserts, it does not report).
  LabelBuilder builder(def);
  uint64_t prev_handle = 0;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    const std::string_view entry = Trim(parts[i]);
    const size_t space = entry.rfind(' ');
    if (space == std::string_view::npos) {
      return false;
    }
    uint64_t handle_value = 0;
    if (!ParseUint64(Trim(entry.substr(0, space)), &handle_value) ||
        handle_value == 0 || handle_value > Handle::kMaxValue) {
      return false;
    }
    // ToString emits strictly increasing handles; duplicated or reordered
    // entries mark corrupt input (the binary codec in src/store rejects the
    // same shapes), so refuse them rather than silently last-one-wins.
    if (handle_value <= prev_handle) {
      return false;
    }
    prev_handle = handle_value;
    const std::string_view level_part = Trim(entry.substr(space + 1));
    Level l;
    if (level_part.size() != 1 || !LevelFromName(level_part[0], &l)) {
      return false;
    }
    if (l != def) {  // a default-valued entry parses as a no-op, as Set did
      builder.Append(Handle::FromValue(handle_value), l);
    }
  }
  *out = builder.Build();
  return true;
}

void LabelBuilder::Append(Handle h, Level l) {
  ASB_ASSERT(h.valid());
  ASB_ASSERT(l != default_level_ && "builder entries must differ from the default");
  const uint64_t packed = PackEntry(h, l);
  // Levels live in the low 3 bits, so shifted comparison orders by handle;
  // strict inequality also rejects duplicates.
  ASB_ASSERT((entries_.empty() || (packed >> 3) > (last_packed_ >> 3)) &&
             "builder entries must arrive in strictly increasing handle order");
  last_packed_ = packed;
  level_counts_[LevelOrdinal(l)] += 1;
  entries_.push_back(packed);
}

Label LabelBuilder::Build() {
  Label result(internal::InternSortedEntries(default_level_, entries_.data(), entries_.size(),
                                             level_counts_));
  entries_.clear();
  last_packed_ = 0;
  for (int l = 0; l < 5; ++l) {
    level_counts_[l] = 0;
  }
  return result;
}

void Label::CheckRep() const {
  const LabelRep* rep = rep_.get();
  ASB_ASSERT(rep != nullptr);
  ASB_ASSERT(rep->refcount >= 1);
  Level lo = rep->default_level;
  Level hi = rep->default_level;
  Handle prev = Handle::Invalid();
  for (const Chunk* c : rep->chunks) {
    ASB_ASSERT(c->refcount >= 1);
    ASB_ASSERT(c->size >= 1);
    ASB_ASSERT(c->size <= c->capacity);
    Level clo = Level::kL3;
    Level chi = Level::kStar;
    for (uint16_t i = 0; i < c->size; ++i) {
      const Handle h = EntryHandle(c->entries[i]);
      const Level l = EntryLevel(c->entries[i]);
      ASB_ASSERT(h.valid());
      ASB_ASSERT(prev < h && "entries must be strictly increasing");
      ASB_ASSERT(l != rep->default_level && "entries must differ from the default");
      prev = h;
      clo = LevelMin(clo, l);
      chi = LevelMax(chi, l);
    }
    ASB_ASSERT(c->min_level == clo);
    ASB_ASSERT(c->max_level == chi);
    lo = LevelMin(lo, clo);
    hi = LevelMax(hi, chi);
  }
  ASB_ASSERT(rep->min_level == lo);
  ASB_ASSERT(rep->max_level == hi);
  uint64_t counts[5] = {};
  for (const Chunk* c : rep->chunks) {
    for (uint16_t i = 0; i < c->size; ++i) {
      counts[LevelOrdinal(EntryLevel(c->entries[i]))] += 1;
    }
  }
  for (int i = 0; i < 5; ++i) {
    ASB_ASSERT(rep->level_counts[i] == counts[i]);
  }
}

}  // namespace asbestos
