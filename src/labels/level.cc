#include "src/labels/level.h"

namespace asbestos {

const char* LevelName(Level l) {
  switch (l) {
    case Level::kStar:
      return "*";
    case Level::kL0:
      return "0";
    case Level::kL1:
      return "1";
    case Level::kL2:
      return "2";
    case Level::kL3:
      return "3";
  }
  return "?";
}

bool LevelFromName(char c, Level* out) {
  switch (c) {
    case '*':
      *out = Level::kStar;
      return true;
    case '0':
      *out = Level::kL0;
      return true;
    case '1':
      *out = Level::kL1;
      return true;
    case '2':
      *out = Level::kL2;
      return true;
    case '3':
      *out = Level::kL3;
      return true;
    default:
      return false;
  }
}

}  // namespace asbestos
