#include "src/crypto/feistel61.h"

#include "src/base/panic.h"

namespace asbestos {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Feistel61::Feistel61(uint64_t key) {
  // Blowfish fills its S-boxes with digits of pi keyed by XOR; we fill them
  // from a keyed SplitMix64 stream, which gives the same structural property
  // (key-dependent, dense, fixed tables).
  uint64_t state = key ^ 0xa5b35705ULL;  // domain-separate from other users of the key
  for (auto& k : round_keys_) {
    k = static_cast<uint32_t>(SplitMix64(&state));
  }
  for (auto& box : sbox_) {
    for (auto& entry : box) {
      entry = static_cast<uint32_t>(SplitMix64(&state));
    }
  }
}

uint32_t Feistel61::RoundF(uint32_t half, uint32_t round_key) const {
  // Blowfish-style F: key-mix then four byte-indexed S-box lookups combined
  // with add/xor/add.
  const uint32_t x = half ^ round_key;
  const uint32_t a = (x >> 24) & 0xff;
  const uint32_t b = (x >> 16) & 0xff;
  const uint32_t c = (x >> 8) & 0xff;
  const uint32_t d = x & 0xff;
  return ((sbox_[0][a] + sbox_[1][b]) ^ sbox_[2][c]) + sbox_[3][d];
}

uint64_t Feistel61::EncryptOnce62(uint64_t x) const {
  uint32_t left = static_cast<uint32_t>((x >> 31) & kHalfMask);
  uint32_t right = static_cast<uint32_t>(x & kHalfMask);
  for (int r = 0; r < kRounds; ++r) {
    const uint32_t next_left = right;
    right = (left ^ RoundF(right, round_keys_[r])) & kHalfMask;
    left = next_left;
  }
  return (static_cast<uint64_t>(left) << 31) | right;
}

uint64_t Feistel61::DecryptOnce62(uint64_t y) const {
  uint32_t left = static_cast<uint32_t>((y >> 31) & kHalfMask);
  uint32_t right = static_cast<uint32_t>(y & kHalfMask);
  for (int r = kRounds - 1; r >= 0; --r) {
    const uint32_t next_right = left;
    left = (right ^ RoundF(left, round_keys_[r])) & kHalfMask;
    right = next_right;
  }
  return (static_cast<uint64_t>(left) << 31) | right;
}

uint64_t Feistel61::Encrypt(uint64_t x) const {
  ASB_ASSERT(x < kDomain);
  // Cycle walking: the 62-bit permutation restricted to [0, 2^61) is still a
  // permutation of that set if we keep applying it until we land inside.
  uint64_t y = EncryptOnce62(x);
  while (y >= kDomain) {
    y = EncryptOnce62(y);
  }
  return y;
}

uint64_t Feistel61::Decrypt(uint64_t y) const {
  ASB_ASSERT(y < kDomain);
  uint64_t x = DecryptOnce62(y);
  while (x >= kDomain) {
    x = DecryptOnce62(x);
  }
  return x;
}

void HandleSequence::SkipPast(uint64_t handle_value) {
  ASB_ASSERT(handle_value != 0 && handle_value < Feistel61::kDomain);
  const uint64_t consumed = cipher_.Decrypt(handle_value);
  if (consumed >= counter_) {
    counter_ = consumed + 1;
  }
}

uint64_t HandleSequence::Next() {
  // Handle value 0 is reserved as "invalid"; since the cipher is a bijection,
  // at most one counter value maps to 0 and we simply skip it.
  for (;;) {
    ASB_ASSERT(counter_ < Feistel61::kDomain && "61-bit handle space exhausted");
    const uint64_t h = cipher_.Encrypt(counter_++);
    if (h != 0) {
      return h;
    }
  }
}

}  // namespace asbestos
