// A 61-bit block cipher for handle generation.
//
// Asbestos names compartments and ports with 61-bit handles. The kernel
// generates them by encrypting an incrementing counter, so the sequence is
// non-repeating (bijection) yet unpredictable, which closes the covert
// channel that a visible allocation counter would open (paper Sections 4, 8).
// The paper derives its cipher from Blowfish; we use a balanced 62-bit
// Feistel network with a Blowfish-style S-box round function and restrict it
// to the 61-bit domain by cycle walking (re-encrypting until the value falls
// inside the domain), which preserves the bijection exactly.
#ifndef SRC_CRYPTO_FEISTEL61_H_
#define SRC_CRYPTO_FEISTEL61_H_

#include <cstdint>

namespace asbestos {

class Feistel61 {
 public:
  static constexpr int kBits = 61;
  static constexpr uint64_t kDomain = 1ULL << kBits;  // values in [0, kDomain)

  explicit Feistel61(uint64_t key);

  // Bijective map on [0, kDomain). Input must be inside the domain.
  uint64_t Encrypt(uint64_t x) const;
  uint64_t Decrypt(uint64_t y) const;

 private:
  static constexpr int kRounds = 16;
  static constexpr uint64_t kHalfMask = (1ULL << 31) - 1;  // 31-bit halves

  uint32_t RoundF(uint32_t half, uint32_t round_key) const;
  uint64_t EncryptOnce62(uint64_t x) const;
  uint64_t DecryptOnce62(uint64_t y) const;

  uint32_t round_keys_[kRounds];
  uint32_t sbox_[4][256];
};

// Generates the kernel's handle-value sequence: encrypted counter, skipping
// the reserved value 0. Deterministic for a given key.
class HandleSequence {
 public:
  explicit HandleSequence(uint64_t key) : cipher_(key) {}

  uint64_t Next();
  uint64_t generated_count() const { return counter_; }

  // Marks a handle value minted by a previous boot (same key) as consumed:
  // decrypts it back to its counter position and advances past it, so the
  // sequence can never re-issue a value that durable storage still names.
  // Counter positions skipped over belonged to the old boot's other handles,
  // which are dead and harmless to retire. This is what makes the handle
  // space "boot-key-stable" for the durable stores in src/store.
  void SkipPast(uint64_t handle_value);

 private:
  Feistel61 cipher_;
  uint64_t counter_ = 0;
};

}  // namespace asbestos

#endif  // SRC_CRYPTO_FEISTEL61_H_
