// Minimal HTTP/1.0-1.1 message handling shared by OKWS and the baselines.
#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace asbestos {

struct HttpRequest {
  std::string method;
  std::string path;       // path component only, query string stripped
  std::string version;    // "HTTP/1.0" etc.
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;

  // Returns the header value or "" when absent (names case-insensitive).
  std::string Header(std::string_view name) const;
  std::string Query(std::string_view name) const;
};

// Incremental request parser: feed bytes as they arrive off a connection.
class HttpRequestParser {
 public:
  enum class State { kIncomplete, kComplete, kError };

  // Appends bytes and re-evaluates. Once kComplete or kError, further input
  // is ignored.
  State Feed(std::string_view bytes);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  // Bytes consumed by the complete request (headers + body), for peeking
  // parsers that must know where the request ends.
  size_t consumed_bytes() const { return consumed_; }

 private:
  State TryParse();

  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kIncomplete;
  size_t consumed_ = 0;
};

// Percent- and plus-decodes a URL component.
std::string UrlDecode(std::string_view text);

// Parses "a=1&b=2" into a map with decoded keys/values.
std::map<std::string, std::string> ParseQueryString(std::string_view text);

// Builds a full response with Content-Length and standard headers.
std::string BuildHttpResponse(int status, std::string_view reason,
                              const std::vector<std::pair<std::string, std::string>>& headers,
                              std::string_view body);

// Incremental response reader for client drivers: detects completion via
// Content-Length.
class HttpResponseReader {
 public:
  enum class State { kIncomplete, kComplete, kError };
  State Feed(std::string_view bytes);
  State state() const { return state_; }
  int status() const { return status_; }
  const std::string& body() const { return body_; }

 private:
  std::string buffer_;
  State state_ = State::kIncomplete;
  int status_ = 0;
  std::string body_;
};

}  // namespace asbestos

#endif  // SRC_HTTP_HTTP_H_
