#include "src/http/http.h"

#include "src/base/strings.h"

namespace asbestos {

std::string HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) {
      return v;
    }
  }
  return "";
}

std::string HttpRequest::Query(std::string_view name) const {
  auto it = query.find(std::string(name));
  return it == query.end() ? "" : it->second;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < text.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') {
          return h - '0';
        }
        if (h >= 'a' && h <= 'f') {
          return h - 'a' + 10;
        }
        if (h >= 'A' && h <= 'F') {
          return h - 'A' + 10;
        }
        return -1;
      };
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view text) {
  std::map<std::string, std::string> out;
  for (const std::string& pair : Split(text, '&')) {
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out[UrlDecode(pair)] = "";
    } else {
      out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return out;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view bytes) {
  if (state_ != State::kIncomplete) {
    return state_;
  }
  buffer_.append(bytes);
  state_ = TryParse();
  return state_;
}

HttpRequestParser::State HttpRequestParser::TryParse() {
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // Guard against unbounded header growth from a hostile client.
    return buffer_.size() > 64 * 1024 ? State::kError : State::kIncomplete;
  }
  const std::string_view head = std::string_view(buffer_).substr(0, header_end);
  const std::vector<std::string> lines = Split(head, '\n');
  if (lines.empty()) {
    return State::kError;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string_view request_line = Trim(lines[0]);
  const std::vector<std::string> parts = Split(request_line, ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty()) {
    return State::kError;
  }
  request_ = HttpRequest();
  request_.method = parts[0];
  request_.version = parts[2];
  const std::string& target = parts[1];
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request_.path = UrlDecode(target);
  } else {
    request_.path = UrlDecode(target.substr(0, qmark));
    request_.query = ParseQueryString(std::string_view(target).substr(qmark + 1));
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = Trim(lines[i]);
    if (line.empty()) {
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return State::kError;
    }
    std::string name(Trim(line.substr(0, colon)));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    request_.headers[name] = std::string(Trim(line.substr(colon + 1)));
  }

  uint64_t content_length = 0;
  const std::string cl = request_.Header("content-length");
  if (!cl.empty() && !ParseUint64(cl, &content_length)) {
    return State::kError;
  }
  const size_t body_start = header_end + 4;
  if (buffer_.size() < body_start + content_length) {
    return State::kIncomplete;
  }
  request_.body = buffer_.substr(body_start, content_length);
  consumed_ = body_start + content_length;
  return State::kComplete;
}

std::string BuildHttpResponse(int status, std::string_view reason,
                              const std::vector<std::pair<std::string, std::string>>& headers,
                              std::string_view body) {
  std::string out = StrFormat("HTTP/1.0 %d %.*s\r\n", status, static_cast<int>(reason.size()),
                              reason.data());
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  out.append(body);
  return out;
}

HttpResponseReader::State HttpResponseReader::Feed(std::string_view bytes) {
  if (state_ != State::kIncomplete) {
    return state_;
  }
  buffer_.append(bytes);
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return state_;
  }
  // Status line: HTTP/x.y CODE REASON.
  const std::vector<std::string> lines = Split(std::string_view(buffer_).substr(0, header_end), '\n');
  const std::vector<std::string> status_parts = Split(Trim(lines[0]), ' ');
  if (status_parts.size() < 2) {
    state_ = State::kError;
    return state_;
  }
  uint64_t code = 0;
  if (!ParseUint64(status_parts[1], &code)) {
    state_ = State::kError;
    return state_;
  }
  uint64_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = Trim(lines[i]);
    const size_t colon = line.find(':');
    if (colon != std::string::npos &&
        EqualsIgnoreCase(Trim(line.substr(0, colon)), "content-length")) {
      if (!ParseUint64(Trim(line.substr(colon + 1)), &content_length)) {
        state_ = State::kError;
        return state_;
      }
    }
  }
  if (buffer_.size() >= header_end + 4 + content_length) {
    status_ = static_cast<int>(code);
    body_ = buffer_.substr(header_end + 4, content_length);
    state_ = State::kComplete;
  }
  return state_;
}

}  // namespace asbestos
