#include "src/replication/link.h"

#include <algorithm>

#include "src/base/panic.h"

namespace asbestos {

ReplicationLink::ReplicationLink(SimNet* primary_net, uint16_t primary_port,
                                 SimNet* follower_net, uint16_t follower_port)
    : primary_net_(primary_net),
      follower_net_(follower_net),
      primary_port_(primary_port),
      follower_port_(follower_port) {
  TryConnect();
}

void ReplicationLink::TryConnect() {
  if (p_conn_ == kNoConn) {
    p_conn_ = primary_net_->ClientConnect(primary_port_);
  }
  if (f_conn_ == kNoConn) {
    f_conn_ = follower_net_->ClientConnect(follower_port_);
  }
}

void ReplicationLink::Disconnect() {
  if (p_conn_ != kNoConn) {
    primary_net_->ClientClose(p_conn_);
    p_conn_ = kNoConn;
  }
  if (f_conn_ != kNoConn) {
    follower_net_->ClientClose(f_conn_);
    f_conn_ = kNoConn;
  }
  to_follower_.clear();
  to_primary_.clear();
}

bool ReplicationLink::Reconnect() {
  Disconnect();
  TryConnect();
  return connected();
}

uint64_t ReplicationLink::FerryChunk(std::string* buffer, SimNet* dst, ConnId dst_conn) {
  if (buffer->empty() || dst_conn == kNoConn) {
    return 0;
  }
  const uint64_t n =
      max_chunk_ == 0 ? buffer->size() : std::min<uint64_t>(max_chunk_, buffer->size());
  dst->ClientSend(dst_conn, std::string_view(*buffer).substr(0, n));
  buffer->erase(0, n);
  return n;
}

uint64_t ReplicationLink::Step() {
  if (paused_) {
    return 0;  // the wire stalls in place; nothing drained, nothing delivered
  }
  TryConnect();
  // Drain first, then notice server-side FINs: a closed connection (an
  // endpoint's busy refusal, a follower ending its session) is redialed on
  // the next step, as a link daemon watching its sockets would.
  if (p_conn_ != kNoConn) {
    to_follower_ += primary_net_->ClientTakeReceived(p_conn_);
    if (primary_net_->ClientSeesClosed(p_conn_)) {
      primary_net_->ClientClose(p_conn_);
      p_conn_ = kNoConn;
    }
  }
  if (f_conn_ != kNoConn) {
    to_primary_ += follower_net_->ClientTakeReceived(f_conn_);
    if (follower_net_->ClientSeesClosed(f_conn_)) {
      follower_net_->ClientClose(f_conn_);
      f_conn_ = kNoConn;
    }
  }
  uint64_t moved = 0;
  const uint64_t pf = FerryChunk(&to_follower_, follower_net_, f_conn_);
  const uint64_t fp = FerryChunk(&to_primary_, primary_net_, p_conn_);
  bytes_to_follower_ += pf;
  bytes_to_primary_ += fp;
  moved = pf + fp;
  return moved;
}

FsPrimaryWorld::FsPrimaryWorld(uint64_t boot_key, const FileServerOptions& fs_options,
                               SpawnArgs fs_spawn_args)
    : kernel_(boot_key) {
  auto netd_code = std::make_unique<NetdProcess>(&net_);
  netd_ = netd_code.get();
  SpawnArgs nargs;
  nargs.name = "netd";
  nargs.component = Component::kNetwork;
  netd_pid_ = kernel_.CreateProcess(std::move(netd_code), std::move(nargs));

  auto fs_code = std::make_unique<FileServerProcess>(fs_options);
  fs_ = fs_code.get();
  if (fs_spawn_args.name.empty()) {
    fs_spawn_args.name = "fs";
  }
  // The boot loader hands the file server netd's control port so its
  // replication endpoint can attach a listener.
  fs_spawn_args.env["netd_ctl"] = netd_->control_port().value();
  fs_pid_ = kernel_.CreateProcess(std::move(fs_code), std::move(fs_spawn_args));
}

void FsPrimaryWorld::Pump() {
  kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
  kernel_.RunUntilIdle();
}

FollowerWorld::FollowerWorld(uint64_t boot_key, uint16_t tcp_port, StoreOptions store_opts,
                             FollowerOptions options, uint16_t read_tcp_port)
    : kernel_(boot_key) {
  auto netd_code = std::make_unique<NetdProcess>(&net_);
  netd_ = netd_code.get();
  SpawnArgs nargs;
  nargs.name = "netd";
  nargs.component = Component::kNetwork;
  netd_pid_ = kernel_.CreateProcess(std::move(netd_code), std::move(nargs));

  auto follower_code = std::make_unique<FollowerProcess>(std::move(store_opts), options);
  follower_ = follower_code.get();
  SpawnArgs fargs;
  fargs.name = "follower";
  fargs.component = Component::kOther;
  fargs.env = {{"netd_ctl", netd_->control_port().value()}, {"tcp_port", tcp_port}};
  if (read_tcp_port != 0) {
    fargs.env["read_tcp_port"] = read_tcp_port;
  }
  follower_pid_ = kernel_.CreateProcess(std::move(follower_code), std::move(fargs));
}

void FollowerWorld::Pump() {
  kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
  kernel_.RunUntilIdle();
}

Status FollowerWorld::Promote() {
  Status s = Status::kOk;
  kernel_.WithProcessContext(follower_pid_,
                             [&](ProcessContext& ctx) { s = follower_->Promote(ctx); });
  Pump();  // drain the session-close traffic
  return s;
}

ReplicationFleet::ReplicationFleet(uint64_t boot_key, const FileServerOptions& fs_options)
    : primary_port_(fs_options.replication.listen_tcp_port) {
  ASB_ASSERT(fs_options.replication.enabled());
  primary_ = std::make_unique<FsPrimaryWorld>(boot_key, fs_options);
  primary_->Pump();  // attach the listener before any follower dials
}

size_t ReplicationFleet::AddFollower(uint64_t boot_key, uint16_t tcp_port,
                                     StoreOptions store_opts, FollowerOptions options,
                                     uint16_t read_tcp_port) {
  followers_.push_back(std::make_unique<FollowerWorld>(boot_key, tcp_port,
                                                       std::move(store_opts), options,
                                                       read_tcp_port));
  // Each follower machine is its own kernel publishing the same
  // kernel.stats.* / kernel.mem.* gauge names; prefix them by fleet index so
  // a fleet metrics snapshot carries every machine instead of whichever
  // world's gauge group happened to run last. The primary keeps the bare
  // names (it is "the" machine in single-world benches).
  followers_.back()->kernel().SetMetricsPrefix(
      "replica" + std::to_string(followers_.size()) + ".");
  followers_.back()->Pump();
  ASB_ASSERT(primary_ != nullptr && "followers join a live primary");
  links_.push_back(std::make_unique<ReplicationLink>(&primary_->net(), primary_port_,
                                                     &followers_.back()->net(), tcp_port));
  return followers_.size() - 1;
}

void ReplicationFleet::Pump() {
  for (auto& link : links_) {
    link->Step();
  }
  if (primary_ != nullptr) {
    primary_->Pump();
  }
  for (auto& follower : followers_) {
    follower->Pump();
  }
}

bool ReplicationFleet::PumpUntilSynced(int max_iters) {
  for (int i = 0; i < max_iters; ++i) {
    Pump();
    if (primary_ == nullptr || primary_->fs()->replication() == nullptr) {
      return false;
    }
    const ReplicationHub* hub = primary_->fs()->replication()->hub();
    if (hub != nullptr && hub->session_count() == followers_.size() &&
        hub->AllFullySynced()) {
      return true;
    }
  }
  return false;
}

void ReplicationFleet::KillPrimary() {
  links_.clear();  // the wire dies with the rack
  primary_.reset();
}

int ReplicationFleet::auto_promoted_count() const {
  int n = 0;
  for (const auto& follower : followers_) {
    if (follower->follower()->auto_promoted()) {
      ++n;
    }
  }
  return n;
}

ReadClient::ReadClient(SimNet* net, uint16_t read_port, uint64_t auth_token)
    : net_(net), port_(read_port), auth_token_(auth_token) {
  TryConnect();
}

void ReadClient::TryConnect() {
  if (conn_ == kNoConn) {
    conn_ = net_->ClientConnect(port_);
    rx_.clear();
  }
}

bool ReadClient::Read(const std::string& key, const Label& clearance,
                      const replwire::ReadCursorToken& token,
                      const std::function<void()>& pump, ReadResult* out,
                      int max_iters) {
  TryConnect();
  if (conn_ == kNoConn) {
    return false;
  }
  const uint64_t cookie = next_cookie_++;
  replwire::WireMessage req;
  req.type = replwire::kReadReq;
  req.token = auth_token_;
  req.cookie = cookie;
  req.key = key;
  req.cursor = token;
  req.label = clearance;
  std::string wire;
  replwire::AppendFrame(req, &wire);
  net_->ClientSend(conn_, wire);
  replwire::WireMessage resp;
  for (int i = 0; i < max_iters; ++i) {
    pump();
    rx_ += net_->ClientTakeReceived(conn_);
    for (;;) {
      const replwire::FrameParse p = replwire::ConsumeFrame(&rx_, &resp);
      if (p == replwire::FrameParse::kNeedMore) {
        break;
      }
      if (p == replwire::FrameParse::kCorrupt || resp.type != replwire::kReadResp) {
        net_->ClientClose(conn_);
        conn_ = kNoConn;
        return false;
      }
      if (resp.cookie != cookie) {
        continue;  // an answer to an abandoned earlier read
      }
      out->status = static_cast<ReadStatus>(resp.read_status);
      out->value = resp.payload.str();
      out->secrecy = resp.label;
      out->staleness_cycles = resp.staleness;
      out->applied = resp.cursor;
      return true;
    }
    if (net_->ClientSeesClosed(conn_)) {
      net_->ClientClose(conn_);
      conn_ = kNoConn;
      return false;
    }
  }
  return false;
}

int ReplicationFleet::auto_promoted_index() const {
  for (size_t i = 0; i < followers_.size(); ++i) {
    if (followers_[i]->follower()->auto_promoted()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace asbestos
