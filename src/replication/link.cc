#include "src/replication/link.h"

#include <algorithm>

namespace asbestos {

ReplicationLink::ReplicationLink(SimNet* primary_net, uint16_t primary_port,
                                 SimNet* follower_net, uint16_t follower_port)
    : primary_net_(primary_net),
      follower_net_(follower_net),
      primary_port_(primary_port),
      follower_port_(follower_port) {
  TryConnect();
}

void ReplicationLink::TryConnect() {
  if (p_conn_ == kNoConn) {
    p_conn_ = primary_net_->ClientConnect(primary_port_);
  }
  if (f_conn_ == kNoConn) {
    f_conn_ = follower_net_->ClientConnect(follower_port_);
  }
}

void ReplicationLink::Disconnect() {
  if (p_conn_ != kNoConn) {
    primary_net_->ClientClose(p_conn_);
    p_conn_ = kNoConn;
  }
  if (f_conn_ != kNoConn) {
    follower_net_->ClientClose(f_conn_);
    f_conn_ = kNoConn;
  }
  to_follower_.clear();
  to_primary_.clear();
}

bool ReplicationLink::Reconnect() {
  Disconnect();
  TryConnect();
  return connected();
}

uint64_t ReplicationLink::FerryChunk(std::string* buffer, SimNet* dst, ConnId dst_conn) {
  if (buffer->empty() || dst_conn == kNoConn) {
    return 0;
  }
  const uint64_t n =
      max_chunk_ == 0 ? buffer->size() : std::min<uint64_t>(max_chunk_, buffer->size());
  dst->ClientSend(dst_conn, std::string_view(*buffer).substr(0, n));
  buffer->erase(0, n);
  return n;
}

uint64_t ReplicationLink::Step() {
  TryConnect();
  if (p_conn_ != kNoConn) {
    to_follower_ += primary_net_->ClientTakeReceived(p_conn_);
  }
  if (f_conn_ != kNoConn) {
    to_primary_ += follower_net_->ClientTakeReceived(f_conn_);
  }
  uint64_t moved = 0;
  const uint64_t pf = FerryChunk(&to_follower_, follower_net_, f_conn_);
  const uint64_t fp = FerryChunk(&to_primary_, primary_net_, p_conn_);
  bytes_to_follower_ += pf;
  bytes_to_primary_ += fp;
  moved = pf + fp;
  return moved;
}

FsPrimaryWorld::FsPrimaryWorld(uint64_t boot_key, const FileServerOptions& fs_options,
                               SpawnArgs fs_spawn_args)
    : kernel_(boot_key) {
  auto netd_code = std::make_unique<NetdProcess>(&net_);
  netd_ = netd_code.get();
  SpawnArgs nargs;
  nargs.name = "netd";
  nargs.component = Component::kNetwork;
  netd_pid_ = kernel_.CreateProcess(std::move(netd_code), std::move(nargs));

  auto fs_code = std::make_unique<FileServerProcess>(fs_options);
  fs_ = fs_code.get();
  if (fs_spawn_args.name.empty()) {
    fs_spawn_args.name = "fs";
  }
  // The boot loader hands the file server netd's control port so its
  // replication endpoint can attach a listener.
  fs_spawn_args.env["netd_ctl"] = netd_->control_port().value();
  fs_pid_ = kernel_.CreateProcess(std::move(fs_code), std::move(fs_spawn_args));
}

void FsPrimaryWorld::Pump() {
  kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
  kernel_.RunUntilIdle();
}

FollowerWorld::FollowerWorld(uint64_t boot_key, uint16_t tcp_port, StoreOptions store_opts,
                             uint64_t auth_token)
    : kernel_(boot_key) {
  auto netd_code = std::make_unique<NetdProcess>(&net_);
  netd_ = netd_code.get();
  SpawnArgs nargs;
  nargs.name = "netd";
  nargs.component = Component::kNetwork;
  netd_pid_ = kernel_.CreateProcess(std::move(netd_code), std::move(nargs));

  auto follower_code = std::make_unique<FollowerProcess>(std::move(store_opts), auth_token);
  follower_ = follower_code.get();
  SpawnArgs fargs;
  fargs.name = "follower";
  fargs.component = Component::kOther;
  fargs.env = {{"netd_ctl", netd_->control_port().value()}, {"tcp_port", tcp_port}};
  follower_pid_ = kernel_.CreateProcess(std::move(follower_code), std::move(fargs));
}

void FollowerWorld::Pump() {
  kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
  kernel_.RunUntilIdle();
}

Status FollowerWorld::Promote() {
  Status s = Status::kOk;
  kernel_.WithProcessContext(follower_pid_,
                             [&](ProcessContext& ctx) { s = follower_->Promote(ctx); });
  Pump();  // drain the session-close traffic
  return s;
}

}  // namespace asbestos
