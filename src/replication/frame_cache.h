// FrameCache: the replication hub's bounded shared WAL-read cache.
//
// K followers streaming at nearby offsets each need the same raw WAL spans.
// Without sharing, every follower session costs one ReadShardWal (a pread)
// per batch — the primary's disk pays K times for one log. The cache keys
// read spans by (shard, generation, offset): positions are immutable within
// a generation (the WAL is append-only; compaction starts a new generation),
// so a cached span can never go stale — at worst it is SHORTER than what the
// log now holds, which the lookup detects and treats as a miss.
//
// Eviction is LRU by total payload bytes. Sessions in lockstep hit the same
// entry; a straggler a few batches behind still hits as long as its span is
// within the byte budget; a follower in snapshot catch-up bypasses the cache
// entirely (images ship whole from the store).
#ifndef SRC_REPLICATION_FRAME_CACHE_H_
#define SRC_REPLICATION_FRAME_CACHE_H_

#include <cstdint>
#include <list>
#include <map>

#include "src/kernel/payload.h"

namespace asbestos {

struct FrameCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;       // current resident payload bytes
  uint64_t hit_bytes = 0;   // span bytes served without touching the WAL
};

class FrameCache {
 public:
  explicit FrameCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  // Hands out a refcounted view of the cached span for (shard, generation,
  // offset) — no byte copy, the caller shares the resident buffer — and
  // returns true when the entry can satisfy a read of up to `want_bytes`:
  // either it holds at least that much, or it already extends to `tail_off`
  // (the shard's current log tail — there is nothing more to read anyway).
  // A shorter entry is a miss: the log grew past what was cached, and the
  // caller should re-read and Insert the longer span.
  bool Lookup(uint32_t shard, uint64_t generation, uint64_t offset, uint64_t want_bytes,
              uint64_t tail_off, Payload* span);

  // Caches `span` (sharing its buffer, no copy) as the bytes at (shard,
  // generation, offset), replacing any shorter entry at the same position,
  // then evicts LRU entries until the byte budget holds. A zero-capacity
  // cache stores nothing.
  void Insert(uint32_t shard, uint64_t generation, uint64_t offset, const Payload& span);

  const FrameCacheStats& stats() const { return stats_; }

 private:
  struct Key {
    uint32_t shard;
    uint64_t generation;
    uint64_t offset;
    bool operator<(const Key& o) const {
      if (shard != o.shard) return shard < o.shard;
      if (generation != o.generation) return generation < o.generation;
      return offset < o.offset;
    }
  };
  struct Entry {
    Key key;
    Payload span;
  };

  void EvictToBudget();

  uint64_t max_bytes_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  FrameCacheStats stats_;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_FRAME_CACHE_H_
