#include "src/replication/source.h"

#include "src/base/panic.h"

namespace asbestos {

using replwire::WireMessage;

ReplicationSource::ReplicationSource(const DurableStore* store, uint64_t source_id,
                                     uint64_t auth_token)
    : store_(store), source_id_(source_id), auth_token_(auth_token) {
  cursors_.resize(store_->shard_count());
}

std::string ReplicationSource::SessionHello() {
  for (Cursor& c : cursors_) {
    c = Cursor();
  }
  WireMessage hello;
  hello.type = replwire::kHello;
  hello.token = auth_token_;
  hello.source_id = source_id_;
  hello.shard_count = store_->shard_count();
  std::string out;
  replwire::AppendFrame(hello, &out);
  return out;
}

void ReplicationSource::ShipSnapshot(uint32_t shard, std::string* out, size_t* frames) {
  WireMessage m;
  m.type = replwire::kSnapshot;
  m.shard = shard;
  ASB_ASSERT(IsOk(store_->ExportShardSnapshot(shard, &m.payload, &m.generation, &m.offset)));
  Cursor& c = cursors_[shard];
  c.force_snapshot = false;
  c.shipped_gen = m.generation;
  c.shipped_off = m.offset;
  stats_.snapshots_shipped += 1;
  stats_.bytes_shipped += m.payload.size();
  replwire::AppendFrame(m, out);
  *frames += 1;
}

size_t ReplicationSource::PollFrames(uint64_t max_batch_bytes, uint64_t max_total_bytes,
                                     std::string* out) {
  size_t frames = 0;
  for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
    if (out->size() >= max_total_bytes) {
      break;  // budget spent; the remainder ships next pump
    }
    Cursor& c = cursors_[shard];
    if (c.await_resume) {
      continue;  // the follower has not told us where it is yet
    }
    // The follower's position is unusable (unknown history), or compaction
    // moved the log out from under the cursor: catch up by image.
    if (c.force_snapshot || c.shipped_gen != store_->shard_wal_generation(shard) ||
        c.shipped_off > store_->shard_wal_offset(shard)) {
      ShipSnapshot(shard, out, &frames);
      continue;
    }
    while (c.shipped_off < store_->shard_wal_offset(shard) &&
           out->size() < max_total_bytes) {
      std::string span;
      const Status s = store_->ReadShardWal(shard, c.shipped_gen, c.shipped_off,
                                            max_batch_bytes, &span);
      if (!IsOk(s)) {
        ShipSnapshot(shard, out, &frames);  // raced a compaction
        break;
      }
      // Ship whole WAL frames only; if one frame alone exceeds the batch
      // limit it ships as an oversized SINGLETON — exactly that frame, not
      // everything to the log tail — rather than fragmenting.
      uint64_t take = replwire::WalFramePrefix(span, max_batch_bytes);
      if (take == 0) {
        // The first frame alone exceeds the batch limit: its header names
        // its exact size, so re-read precisely that frame and ship it as an
        // oversized singleton — never the whole remaining log.
        const uint64_t need = replwire::FirstWalFrameBytes(span);
        ASB_ASSERT(need > 0 && "batch limit smaller than a WAL frame header");
        const Status big =
            store_->ReadShardWal(shard, c.shipped_gen, c.shipped_off, need, &span);
        if (!IsOk(big)) {
          ShipSnapshot(shard, out, &frames);  // raced a compaction
          break;
        }
        take = need;
        ASB_ASSERT(take == span.size());
      }
      WireMessage m;
      m.type = replwire::kBatch;
      m.shard = shard;
      m.generation = c.shipped_gen;
      m.offset = c.shipped_off;
      m.payload = span.substr(0, take);
      c.shipped_off += take;
      stats_.batches_shipped += 1;
      stats_.bytes_shipped += take;
      replwire::AppendFrame(m, out);
      ++frames;
    }
  }
  return frames;
}

void ReplicationSource::HandleAck(const WireMessage& ack) {
  if (ack.token != auth_token_ || ack.shard >= cursors_.size()) {
    return;  // unauthenticated or nonsense ack: the shard stays unshipped
  }
  Cursor& c = cursors_[ack.shard];
  const uint32_t shard = static_cast<uint32_t>(ack.shard);
  const bool ours = ack.source_id == source_id_ &&
                    ack.generation == store_->shard_wal_generation(shard) &&
                    ack.offset <= store_->shard_wal_offset(shard);
  if (c.await_resume) {
    c.await_resume = false;
    if (ours) {
      // Warm resume: the follower already mirrors our history up to here.
      c.shipped_gen = c.acked_gen = ack.generation;
      c.shipped_off = c.acked_off = ack.offset;
    } else {
      // Unknown position (fresh follower, other primary's history, or a
      // span compaction discarded): image it on the next poll.
      c.force_snapshot = true;
    }
    return;
  }
  if (!ours) {
    // Mid-session the follower should only ever ack our own stream; a
    // foreign ack means it fell behind a compaction between our polls.
    c.force_snapshot = true;
    return;
  }
  // A rewind is warranted only when the ack shows NO progress — the
  // follower re-acked a position it had already reached, meaning it
  // dropped what we sent after it (a gap, or duplicates it skipped). An
  // in-order ack that merely trails `shipped` is the normal pipelined
  // case (several batches in flight) and must NOT trigger retransmission.
  const bool no_progress =
      ack.generation == c.acked_gen && ack.offset <= c.acked_off;
  c.acked_gen = ack.generation;
  c.acked_off = ack.offset;
  if (no_progress && c.shipped_gen == ack.generation && ack.offset < c.shipped_off) {
    c.shipped_off = ack.offset;  // go back and retransmit from its position
    stats_.rewinds += 1;
  }
}

bool ReplicationSource::FullySynced() const {
  for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
    const Cursor& c = cursors_[shard];
    if (c.await_resume || c.acked_gen != store_->shard_wal_generation(shard) ||
        c.acked_off != store_->shard_wal_offset(shard)) {
      return false;
    }
  }
  return true;
}

}  // namespace asbestos
