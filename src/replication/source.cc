#include "src/replication/source.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/replication/read_gate.h"
#include "src/sim/cycles.h"

namespace asbestos {

using replwire::WireMessage;

namespace {

// Hub/session ship-plane counters live in the process-wide registry (not
// only in per-instance stats) so a bench snapshot taken after the world is
// torn down still carries the repl.* family.
obs::Counter& BatchCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.batches_shipped");
  return c;
}
obs::Counter& SnapshotCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.snapshots_shipped");
  return c;
}
obs::Counter& HeartbeatCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.heartbeats_sent");
  return c;
}
obs::Counter& ShippedBytesCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.bytes_shipped");
  return c;
}
obs::Counter& RewindCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.rewinds");
  return c;
}

}  // namespace

// --- FollowerSession ---------------------------------------------------------

FollowerSession::FollowerSession(ReplicationHub* hub, uint64_t session_id)
    : hub_(hub), session_id_(session_id) {
  cursors_.resize(hub_->store()->shard_count());
}

std::string FollowerSession::SessionHello() {
  for (Cursor& c : cursors_) {
    c = Cursor();
  }
  follower_id_ = 0;
  // The replication analogue of netd accept: a session's flow trace starts
  // at hello, and every frame it ever ships carries this id.
  trace_id_ = obs::TraceRing::Get().MintTraceId();
  if (obs::TraceRing::enabled()) {
    // Control-plane span: the stream carries only WAL bytes the follower is
    // entitled to replay, so the session trace itself is public (⊥).
    obs::TraceRing::Get().Emit(trace_id_, "repl", "repl.hello",
                               "session=" + std::to_string(session_id_),
                               Label::Bottom());
  }
  WireMessage hello;
  hello.type = replwire::kHello;
  hello.token = hub_->auth_token();
  hello.source_id = hub_->source_id();
  hello.shard_count = hub_->store()->shard_count();
  hello.lease_until = hub_->LeaseDeadline();
  hello.trace_id = trace_id_;
  std::string out;
  replwire::AppendFrame(hello, &out);
  last_send_cycles_ = GetCycleAccounting().now();
  hello_cycles_ = last_send_cycles_;
  last_lease_stamped_ = hello.lease_until;
  return out;
}

void FollowerSession::ShipSnapshot(uint32_t shard, uint64_t lease_until,
                                   uint64_t successor_id, std::string* out, size_t* frames) {
  // The ship span's stack rides the frame (prof_ctx) so the follower's
  // apply span nests under it in the merged flamegraph.
  obs::ProfSpan ship_span;
  if (obs::CycleProfiler::enabled()) {
    ship_span.Begin("repl.ship.snapshot");
  }
  WireMessage m;
  m.type = replwire::kSnapshot;
  m.shard = shard;
  // Snapshots refresh the lease like batches do: a designated successor
  // crawling through a long catch-up must not see its lease starve under a
  // live primary (images can outlast a whole lease interval on the wire).
  m.lease_until = lease_until;
  m.successor_id = successor_id;
  m.trace_id = trace_id_;
  if (obs::CycleProfiler::enabled()) {
    m.prof_ctx = obs::CycleProfiler::Get().current_stack();
  }
  std::string image;
  ASB_ASSERT(IsOk(hub_->store()->ExportShardSnapshot(shard, &image, &m.generation,
                                                     &m.offset)));
  m.payload = std::move(image);  // adopt the image's storage, no copy
  Cursor& c = cursors_[shard];
  c.force_snapshot = false;
  c.shipped_gen = m.generation;
  c.shipped_off = m.offset;
  stats_.snapshots_shipped += 1;
  stats_.bytes_shipped += m.payload.size();
  SnapshotCounter().Add();
  ShippedBytesCounter().Add(m.payload.size());
  if (obs::TraceRing::enabled() && trace_id_ != 0) {
    obs::TraceRing::Get().Emit(trace_id_, "repl", "repl.ship",
                               "snapshot shard=" + std::to_string(shard),
                               Label::Bottom());
  }
  replwire::AppendFrame(m, out);
  *frames += 1;
}

bool FollowerSession::ShipBatchSpan(uint32_t shard, uint64_t gen, uint64_t end_off,
                                    uint64_t max_batch_bytes, uint64_t max_total_bytes,
                                    uint64_t lease_until, uint64_t successor_id,
                                    std::string* out, size_t* frames) {
  Cursor& c = cursors_[shard];
  obs::ProfSpan ship_span;
  if (obs::CycleProfiler::enabled()) {
    ship_span.Begin("repl.ship.batch");
  }
  while (c.shipped_off < end_off && out->size() < max_total_bytes) {
    Payload span;
    const Status s = hub_->ReadSpan(shard, gen, c.shipped_off, max_batch_bytes, &span);
    if (!IsOk(s)) {
      return false;  // the span vanished under us (raced a compaction)
    }
    // Ship whole WAL frames only; if one frame alone exceeds the batch
    // limit it ships as an oversized SINGLETON — exactly that frame, not
    // everything to the log tail — rather than fragmenting.
    uint64_t take = replwire::WalFramePrefix(span, max_batch_bytes);
    if (take == 0) {
      // The first frame alone exceeds the batch limit: its header names
      // its exact size, so re-read precisely that frame and ship it as an
      // oversized singleton — never the whole remaining log.
      const uint64_t need = replwire::FirstWalFrameBytes(span);
      ASB_ASSERT(need > 0 && "batch limit smaller than a WAL frame header");
      const Status big = hub_->ReadSpan(shard, gen, c.shipped_off, need, &span);
      if (!IsOk(big)) {
        return false;  // raced a compaction
      }
      take = need;
      ASB_ASSERT(span.size() >= take);
    }
    WireMessage m;
    m.type = replwire::kBatch;
    m.shard = shard;
    m.generation = gen;
    m.offset = c.shipped_off;
    m.lease_until = lease_until;
    m.successor_id = successor_id;
    m.trace_id = trace_id_;
    if (obs::CycleProfiler::enabled()) {
      m.prof_ctx = obs::CycleProfiler::Get().current_stack();
    }
    m.payload = span.substr(0, take);
    c.shipped_off += take;
    stats_.batches_shipped += 1;
    stats_.bytes_shipped += take;
    BatchCounter().Add();
    ShippedBytesCounter().Add(take);
    if (obs::TraceRing::enabled() && trace_id_ != 0) {
      obs::TraceRing::Get().Emit(
          trace_id_, "repl", "repl.ship",
          "batch shard=" + std::to_string(shard) + " off=" + std::to_string(m.offset),
          Label::Bottom());
    }
    replwire::AppendFrame(m, out);
    *frames += 1;
  }
  return true;
}

size_t FollowerSession::PollFrames(uint64_t max_batch_bytes, uint64_t max_total_bytes,
                                   std::string* out) {
  const DurableStore* store = hub_->store();
  // One stamp per poll: these cannot change mid-call (single-threaded, no
  // acks processed here), and SuccessorId walks every session's cursors.
  const uint64_t lease_until = hub_->LeaseDeadline();
  const uint64_t successor_id = hub_->SuccessorId();
  size_t frames = 0;
  for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
    if (out->size() >= max_total_bytes) {
      break;  // budget spent; the remainder ships next pump
    }
    Cursor& c = cursors_[shard];
    if (c.await_resume) {
      continue;  // the follower has not told us where it is yet
    }
    // The follower's position is unusable (unknown history), or compaction
    // moved the log out from under the cursor: catch up by image — UNLESS
    // the store retained the compacted generation's tail and the cursor sits
    // inside it, in which case the session streams the retained span to its
    // end and hands the follower across the generation switch with one
    // kGenMark. A fully-synced follower rides through a compaction without
    // ever seeing a snapshot.
    if (c.force_snapshot || c.shipped_gen != store->shard_wal_generation(shard) ||
        c.shipped_off > store->shard_wal_offset(shard)) {
      uint64_t rgen = 0;
      uint64_t rstart = 0;
      uint64_t rend = 0;
      const bool retained =
          !c.force_snapshot && store->ShardRetainedSpan(shard, &rgen, &rstart, &rend) &&
          c.shipped_gen == rgen && rgen + 1 == store->shard_wal_generation(shard) &&
          c.shipped_off >= rstart && c.shipped_off <= rend;
      if (!retained) {
        ShipSnapshot(shard, lease_until, successor_id, out, &frames);
        continue;
      }
      if (!ShipBatchSpan(shard, rgen, rend, max_batch_bytes, max_total_bytes,
                         lease_until, successor_id, out, &frames)) {
        ShipSnapshot(shard, lease_until, successor_id, out, &frames);
        continue;
      }
      if (c.shipped_off < rend || out->size() >= max_total_bytes) {
        continue;  // budget spent mid-span; the rest (and the mark) ship later
      }
      WireMessage mark;
      mark.type = replwire::kGenMark;
      mark.shard = shard;
      mark.generation = rgen;
      mark.offset = rend;
      mark.lease_until = lease_until;
      mark.successor_id = successor_id;
      mark.trace_id = trace_id_;
      replwire::AppendFrame(mark, out);
      ++frames;
      stats_.gen_marks_sent += 1;
      if (obs::TraceRing::enabled() && trace_id_ != 0) {
        obs::TraceRing::Get().Emit(
            trace_id_, "repl", "repl.ship",
            "genmark shard=" + std::to_string(shard) + " gen=" + std::to_string(rgen),
            Label::Bottom());
      }
      c.shipped_gen = rgen + 1;
      c.shipped_off = 0;
      // Fall through: the new generation's bytes (if any) ship below.
    }
    if (!ShipBatchSpan(shard, c.shipped_gen, store->shard_wal_offset(shard),
                       max_batch_bytes, max_total_bytes, lease_until, successor_id, out,
                       &frames)) {
      ShipSnapshot(shard, lease_until, successor_id, out, &frames);  // raced a compaction
    }
  }
  if (frames > 0) {
    last_send_cycles_ = GetCycleAccounting().now();
    last_lease_stamped_ = lease_until;
  }
  return frames;
}

void FollowerSession::AppendHeartbeat(std::string* out) {
  WireMessage hb;
  hb.type = replwire::kHeartbeat;
  hb.lease_until = hub_->LeaseDeadline();
  hb.successor_id = hub_->SuccessorId();
  hb.trace_id = trace_id_;
  replwire::AppendFrame(hb, out);
  stats_.heartbeats_sent += 1;
  HeartbeatCounter().Add();
  last_send_cycles_ = GetCycleAccounting().now();
  last_lease_stamped_ = hb.lease_until;
}

void FollowerSession::HandleAck(const WireMessage& ack) {
  if (ack.token != hub_->auth_token() || ack.shard >= cursors_.size()) {
    return;  // unauthenticated or nonsense ack: the shard stays unshipped
  }
  if (ack.follower_id != 0) {
    follower_id_ = ack.follower_id;
  }
  last_ack_cycles_ = GetCycleAccounting().now();
  static obs::Gauge& lag_gauge = obs::Registry::Get().gauge("repl.apply_lag_cycles");
  lag_gauge.Set(static_cast<double>(ApplyLagCycles()));
  const DurableStore* store = hub_->store();
  Cursor& c = cursors_[ack.shard];
  const uint32_t shard = static_cast<uint32_t>(ack.shard);
  // An ack names a servable position in our history when it sits in the
  // live generation — or inside the retained previous-generation tail,
  // which PollFrames can still stream (compaction-aware hand-off).
  uint64_t rgen = 0;
  uint64_t rstart = 0;
  uint64_t rend = 0;
  const bool in_retained = store->ShardRetainedSpan(shard, &rgen, &rstart, &rend) &&
                           ack.generation == rgen && ack.offset >= rstart &&
                           ack.offset <= rend;
  const bool ours = ack.source_id == hub_->source_id() &&
                    ((ack.generation == store->shard_wal_generation(shard) &&
                      ack.offset <= store->shard_wal_offset(shard)) ||
                     in_retained);
  if (c.await_resume) {
    c.await_resume = false;
    if (ours) {
      // Warm resume: the follower already mirrors our history up to here.
      c.shipped_gen = c.acked_gen = ack.generation;
      c.shipped_off = c.acked_off = ack.offset;
    } else {
      // Unknown position (fresh follower, other primary's history, or a
      // span compaction discarded): image it on the next poll.
      c.force_snapshot = true;
    }
    return;
  }
  if (!ours) {
    // Mid-session the follower should only ever ack our own stream; a
    // foreign ack means it fell behind a compaction between our polls.
    c.force_snapshot = true;
    return;
  }
  // A rewind is warranted only when the ack shows NO progress — the
  // follower re-acked a position it had already reached, meaning it
  // dropped what we sent after it (a gap, or duplicates it skipped). An
  // in-order ack that merely trails `shipped` is the normal pipelined
  // case (several batches in flight) and must NOT trigger retransmission.
  const bool no_progress =
      ack.generation == c.acked_gen && ack.offset <= c.acked_off;
  c.acked_gen = ack.generation;
  c.acked_off = ack.offset;
  if (no_progress && c.shipped_gen == ack.generation && ack.offset < c.shipped_off) {
    c.shipped_off = ack.offset;  // go back and retransmit from its position
    stats_.rewinds += 1;
    RewindCounter().Add();
  }
}

bool FollowerSession::FullySynced() const {
  const DurableStore* store = hub_->store();
  for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
    const Cursor& c = cursors_[shard];
    if (c.await_resume || c.acked_gen != store->shard_wal_generation(shard) ||
        c.acked_off != store->shard_wal_offset(shard)) {
      return false;
    }
  }
  return true;
}

uint64_t FollowerSession::ApplyLagCycles() const {
  if (FullySynced()) {
    return 0;
  }
  const uint64_t now = GetCycleAccounting().now();
  const uint64_t since = last_ack_cycles_ != 0 ? last_ack_cycles_ : hello_cycles_;
  return now >= since ? now - since : 0;
}

uint64_t FollowerSession::LeaseRemainingCycles() const {
  const uint64_t now = GetCycleAccounting().now();
  return last_lease_stamped_ > now ? last_lease_stamped_ - now : 0;
}

bool FollowerSession::CaughtUp() const {
  const DurableStore* store = hub_->store();
  for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
    const Cursor& c = cursors_[shard];
    if (c.await_resume || c.force_snapshot ||
        c.acked_gen != store->shard_wal_generation(shard)) {
      return false;
    }
  }
  return true;
}

// --- ReplicationHub ----------------------------------------------------------

ReplicationHub::ReplicationHub(const DurableStore* store, uint64_t source_id, Tuning tuning)
    : store_(store),
      source_id_(source_id),
      tuning_(tuning),
      cache_(tuning.frame_cache_bytes) {
  // Per-process hub ordinal, so two hubs in one simulation (e.g. a promoted
  // follower re-publishing) get distinct gauge namespaces.
  static uint64_t hub_ordinal = 0;
  const std::string prefix = "repl.hub" + std::to_string(hub_ordinal++) + ".";
  obs_gauge_group_ =
      obs::Registry::Get().RegisterGauges([this, prefix](obs::GaugeSink& sink) {
        const HubDebugStatus st = DebugStatus();
        sink.Set(prefix + "sessions", static_cast<uint64_t>(st.sessions.size()));
        sink.Set(prefix + "successor_id", st.successor_id);
        sink.Set(prefix + "frame_cache.hits", st.cache.hits);
        sink.Set(prefix + "frame_cache.misses", st.cache.misses);
        sink.Set(prefix + "frame_cache.evictions", st.cache.evictions);
        sink.Set(prefix + "frame_cache.bytes", st.cache.bytes);
        sink.Set(prefix + "frame_cache.hit_bytes", st.cache.hit_bytes);
        uint64_t max_lag = 0;
        uint64_t min_lease = 0;
        bool have_lease = false;
        for (const HubDebugStatus::Session& s : st.sessions) {
          const std::string sp = prefix + "session" + std::to_string(s.session_id) + ".";
          sink.Set(sp + "follower_id", s.follower_id);
          sink.Set(sp + "apply_lag_cycles", s.apply_lag_cycles);
          sink.Set(sp + "lease_remaining_cycles", s.lease_remaining_cycles);
          sink.Set(sp + "caught_up", static_cast<uint64_t>(s.caught_up ? 1 : 0));
          sink.Set(sp + "fully_synced", static_cast<uint64_t>(s.fully_synced ? 1 : 0));
          sink.Set(sp + "batches_shipped", s.stats.batches_shipped);
          sink.Set(sp + "snapshots_shipped", s.stats.snapshots_shipped);
          sink.Set(sp + "reads_served", s.reads_served);
          sink.Set(sp + "reads_refused_stale_lease", s.reads_refused_stale_lease);
          sink.Set(sp + "reads_refused_cursor_lag", s.reads_refused_cursor_lag);
          sink.Set(sp + "reads_access_denied", s.reads_access_denied);
          max_lag = std::max(max_lag, s.apply_lag_cycles);
          if (!have_lease || s.lease_remaining_cycles < min_lease) {
            min_lease = s.lease_remaining_cycles;
            have_lease = true;
          }
        }
        sink.Set(prefix + "max_apply_lag_cycles", max_lag);
        sink.Set(prefix + "min_lease_remaining_cycles", min_lease);
        sink.Set(prefix + "reads_served", st.reads_served);
        sink.Set(prefix + "reads_refused_stale_lease", st.reads_refused_stale_lease);
        sink.Set(prefix + "reads_refused_cursor_lag", st.reads_refused_cursor_lag);
        sink.Set(prefix + "read_staleness_p99_cycles", st.read_staleness_p99_cycles);
      });
}

ReplicationHub::ReplicationHub(const DurableStore* store, uint64_t source_id)
    : ReplicationHub(store, source_id, Tuning()) {}

ReplicationHub::~ReplicationHub() {
  // Only drop the gauge group. Recomputing lag here would walk the store's
  // WAL tails, and callers may tear the store down before the hub (the
  // bench fixtures do); the persistent repl.apply_lag_cycles gauge already
  // holds the value from the last ack.
  obs::Registry::Get().UnregisterGauges(obs_gauge_group_);
}

FollowerSession* ReplicationHub::OpenSession() {
  sessions_.emplace_back(new FollowerSession(this, next_session_id_++));
  return sessions_.back().get();
}

void ReplicationHub::CloseSession(FollowerSession* session) {
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == session) {
      // Lease fencing: a departed follower may still be holding a
      // designation that names it, valid until the last lease we stamped
      // for it runs out. Until then the designation must NOT move — a
      // re-designation racing the departed designee's own expiry check
      // would let two followers promote. Remember the id and its deadline;
      // SuccessorId() keeps honoring it until the deadline passes.
      if (session->follower_id() != 0 && session->last_lease_stamped() != 0) {
        retired_designees_.push_back(
            RetiredDesignee{session->follower_id(), session->last_lease_stamped()});
      }
      sessions_.erase(it);
      return;
    }
  }
}

bool ReplicationHub::AllFullySynced() const {
  if (sessions_.empty()) {
    return false;
  }
  for (const auto& s : sessions_) {
    if (!s->FullySynced()) {
      return false;
    }
  }
  return true;
}

uint64_t ReplicationHub::LeaseDeadline() const {
  if (tuning_.lease_interval_cycles == 0) {
    return 0;
  }
  return GetCycleAccounting().now() + tuning_.lease_interval_cycles;
}

uint64_t ReplicationHub::heartbeat_interval_cycles() const {
  if (tuning_.heartbeat_interval_cycles != 0) {
    return tuning_.heartbeat_interval_cycles;
  }
  return tuning_.lease_interval_cycles / 4;
}

HubDebugStatus ReplicationHub::DebugStatus() const {
  HubDebugStatus st;
  st.source_id = source_id_;
  st.successor_id = SuccessorId();
  st.cache = cache_.stats();
  // Fold the process-global read-plane scoreboard in (the counters live in
  // read_gate.cc so they survive any one gate; this is the one-stop view).
  obs::Registry& reg = obs::Registry::Get();
  st.reads_served = reg.counter("repl.reads_served").value();
  st.reads_refused_stale_lease = reg.counter("repl.reads_refused_stale_lease").value();
  st.reads_refused_cursor_lag = reg.counter("repl.reads_refused_cursor_lag").value();
  st.read_staleness_p99_cycles =
      reg.histogram("repl.read_staleness_cycles").ApproxQuantile(0.99);
  for (const auto& s : sessions_) {
    HubDebugStatus::Session out;
    out.session_id = s->session_id();
    out.follower_id = s->follower_id();
    out.trace_id = s->trace_id();
    out.caught_up = s->CaughtUp();
    out.fully_synced = s->FullySynced();
    out.apply_lag_cycles = s->ApplyLagCycles();
    out.lease_remaining_cycles = s->LeaseRemainingCycles();
    out.stats = s->stats();
    if (out.follower_id != 0) {
      const std::string fp = "repl.follower" + std::to_string(out.follower_id) + ".";
      out.reads_served = reg.counter(fp + "reads_served").value();
      out.reads_refused_stale_lease =
          reg.counter(fp + "reads_refused_stale_lease").value();
      out.reads_refused_cursor_lag =
          reg.counter(fp + "reads_refused_cursor_lag").value();
      out.reads_access_denied = reg.counter(fp + "reads_access_denied").value();
    }
    for (const FollowerSession::Cursor& c : s->cursors_) {
      HubDebugStatus::ShardCursor sc;
      sc.await_resume = c.await_resume;
      sc.force_snapshot = c.force_snapshot;
      sc.shipped_gen = c.shipped_gen;
      sc.shipped_off = c.shipped_off;
      sc.acked_gen = c.acked_gen;
      sc.acked_off = c.acked_off;
      out.shards.push_back(sc);
    }
    st.sessions.push_back(std::move(out));
  }
  return st;
}

uint64_t ReplicationHub::SuccessorId() const {
  const uint64_t now = GetCycleAccounting().now();
  uint64_t best = 0;
  for (const auto& s : sessions_) {
    if (s->follower_id() == 0 || !s->CaughtUp()) {
      continue;
    }
    if (best == 0 || s->follower_id() < best) {
      best = s->follower_id();
    }
  }
  // Departed followers stay in the computation until their last stamped
  // lease has provably expired (see CloseSession) — a live session with the
  // same id (reconnect) simply coincides with its own retirement entry.
  for (auto it = retired_designees_.begin(); it != retired_designees_.end();) {
    if (now > it->lease_until) {
      it = retired_designees_.erase(it);  // its lease is over; it cannot act
      continue;
    }
    if (best == 0 || it->id < best) {
      best = it->id;
    }
    ++it;
  }
  return best;
}

FollowerSession* ReplicationHub::RouteRead(const std::string& routing_key,
                                           const replwire::ReadCursorToken& token) const {
  FollowerSession* best = nullptr;
  uint64_t best_score = 0;
  for (const auto& s : sessions_) {
    if (s->follower_id() == 0 || s->LeaseRemainingCycles() == 0) {
      continue;  // anonymous mirror, or its lease stamp already ran out
    }
    if (!token.empty()) {
      if (token.shard >= s->cursors_.size()) {
        continue;
      }
      const FollowerSession::Cursor& c = s->cursors_[token.shard];
      replwire::ReadCursorToken acked;
      acked.source_id = c.await_resume ? 0 : source_id_;
      acked.shard = token.shard;
      acked.generation = c.acked_gen;
      acked.offset = c.acked_off;
      if (!ReadGate::CursorCovers(acked, token)) {
        continue;  // this follower would refuse with cursor-lag anyway
      }
    }
    // Rendezvous (highest-random-weight) hash: FNV-1a over the routing key,
    // folded with the follower id. Deterministic, no shared table, and a
    // membership change only remaps the keys that scored highest on the
    // changed node.
    uint64_t h = 1469598103934665603ULL;
    for (const char ch : routing_key) {
      h = (h ^ static_cast<uint8_t>(ch)) * 1099511628211ULL;
    }
    h = (h ^ s->follower_id()) * 1099511628211ULL;
    if (best == nullptr || h > best_score) {
      best = s.get();
      best_score = h;
    }
  }
  return best;
}

Status ReplicationHub::ReadSpan(uint32_t shard, uint64_t generation, uint64_t offset,
                                uint64_t max_bytes, Payload* span) {
  // Reads target the live generation — or the retained previous-generation
  // tail during a compaction hand-off, whose fixed end is its "tail". Spans
  // cached before the compaction stay valid for retained-gen reads (same
  // generation, same immutable bytes), so a ride-through usually never
  // touches the store at all.
  uint64_t tail = store_->shard_wal_offset(shard);
  if (generation != store_->shard_wal_generation(shard)) {
    uint64_t rgen = 0;
    uint64_t rstart = 0;
    uint64_t rend = 0;
    if (store_->ShardRetainedSpan(shard, &rgen, &rstart, &rend) && generation == rgen) {
      tail = rend;
    }
  }
  if (cache_.Lookup(shard, generation, offset, max_bytes, tail, span)) {
    return Status::kOk;
  }
  std::string bytes;
  const Status s = store_->ReadShardWal(shard, generation, offset, max_bytes, &bytes);
  if (IsOk(s)) {
    *span = Payload(std::move(bytes));  // adopt the read's storage, no copy
    cache_.Insert(shard, generation, offset, *span);
  }
  return s;
}

}  // namespace asbestos
