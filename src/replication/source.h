// ReplicationSource: tails a primary DurableStore's per-shard WALs and
// emits wire frames for one follower session.
//
// The source keeps two cursors per shard into the primary's WAL history:
//
//   shipped  — everything at or below this (generation, offset) has been
//              handed to the transport this session;
//   acked    — everything at or below this has been applied (and logged)
//              by the follower.
//
// Shipping is go-back-N over a reliable byte stream: batches are emitted in
// order from `shipped`, and an ack that does not extend the shipped prefix
// rewinds `shipped` to the follower's position (duplicates are cheap — the
// follower skips batches below its cursor idempotently). When the span a
// cursor needs has been compacted away (the WAL generation advanced), the
// source ships a whole-shard snapshot instead and resumes streaming from
// the position the snapshot covers — catch-up is compaction-safe by
// construction.
//
// A session starts with kHello and then WAITS, per shard, for the
// follower's resume ack: a follower that already mirrors this source
// (matching source_id) resumes mid-stream; anything else (fresh follower,
// follower of a dead primary, re-following old primary) acks a position the
// source does not recognize and gets a snapshot. The source never trusts a
// cursor it cannot prove is into its own history.
#ifndef SRC_REPLICATION_SOURCE_H_
#define SRC_REPLICATION_SOURCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/replication/wire.h"
#include "src/store/store.h"

namespace asbestos {

struct ReplicationSourceStats {
  uint64_t batches_shipped = 0;
  uint64_t snapshots_shipped = 0;
  uint64_t bytes_shipped = 0;  // payload bytes (batch spans + images)
  uint64_t rewinds = 0;        // acks that moved `shipped` backwards
};

class ReplicationSource {
 public:
  // `source_id` names this primary's WAL history; a fresh nonce per store
  // open (the owning process mints it from the kernel's RNG-backed handle
  // space or any per-boot unique value). `auth_token` is the session shared
  // secret: acks carrying a different token are ignored outright, so an
  // unauthenticated peer never advances past await-resume and receives no
  // data. The store must outlive the source.
  ReplicationSource(const DurableStore* store, uint64_t source_id, uint64_t auth_token = 0);

  uint64_t source_id() const { return source_id_; }

  // Starts (or restarts) a follower session: resets every shard to
  // await-resume and returns the kHello frame to send first.
  std::string SessionHello();

  // Appends to `out` the next frames to ship: at most `max_batch_bytes` of
  // WAL span per batch frame (snapshots ship whole), stopping once `out`
  // reaches `max_total_bytes` (the rest ships on a later poll). Returns the
  // number of frames appended. Shards still awaiting their resume ack emit
  // nothing.
  size_t PollFrames(uint64_t max_batch_bytes, uint64_t max_total_bytes, std::string* out);

  // Feeds a follower ack back into the cursors.
  void HandleAck(const replwire::WireMessage& ack);

  // True when every shard's acked cursor matches the primary's WAL tail —
  // the follower mirrors everything appended so far.
  bool FullySynced() const;

  const ReplicationSourceStats& stats() const { return stats_; }

 private:
  struct Cursor {
    bool await_resume = true;    // no ack seen this session yet
    bool force_snapshot = false; // the follower's position is unusable
    uint64_t shipped_gen = 0;
    uint64_t shipped_off = 0;
    uint64_t acked_gen = 0;
    uint64_t acked_off = 0;
  };

  // Emits a snapshot frame for the shard and points `shipped` at the
  // position the image covers.
  void ShipSnapshot(uint32_t shard, std::string* out, size_t* frames);

  const DurableStore* store_;
  uint64_t source_id_;
  uint64_t auth_token_;
  std::vector<Cursor> cursors_;
  ReplicationSourceStats stats_;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_SOURCE_H_
