// ReplicationHub and FollowerSession: the primary-side shipping plane,
// refactored from the old point-to-point ReplicationSource into a fan-out
// hub serving K followers from one WAL.
//
// The split:
//
//   ReplicationHub      one per primary store — owns the shared frame cache
//                       (one WAL read feeds every follower at that span),
//                       mints sessions, computes the lease deadline and the
//                       deterministic successor designation.
//   FollowerSession     one per connected follower — its own go-back-N
//                       cursor set, hello/resume state, snapshot catch-up,
//                       and lease/heartbeat stamps. All WAL reads go through
//                       the hub's cache.
//
// Each session keeps two cursors per shard into the primary's WAL history:
//
//   shipped  — everything at or below this (generation, offset) has been
//              handed to the transport this session;
//   acked    — everything at or below this has been applied (and logged)
//              by the follower.
//
// Shipping is go-back-N over a reliable byte stream: batches are emitted in
// order from `shipped`, and an ack that does not extend the shipped prefix
// rewinds `shipped` to the follower's position (duplicates are cheap — the
// follower skips batches below its cursor idempotently). When the span a
// cursor needs has been compacted away (the WAL generation advanced), the
// session ships a whole-shard snapshot instead and resumes streaming from
// the position the snapshot covers — catch-up is compaction-safe by
// construction, and one straggler being imaged never stalls its siblings:
// every other session keeps streaming batches through the shared cache.
//
// A session starts with kHello and then WAITS, per shard, for the
// follower's resume ack: a follower that already mirrors this source
// (matching source_id) resumes mid-stream; anything else (fresh follower,
// follower of a dead primary, re-following old primary) acks a position the
// session does not recognize and gets a snapshot. The session never trusts
// a cursor it cannot prove is into its own history.
//
// Leases (automatic failover): with lease stamping enabled, every batch the
// hub ships carries `lease_until = now + lease_interval` on the virtual
// clock plus the current successor designation — the LOWEST follower id
// among sessions that are caught up (resumed on every shard, no snapshot
// pending, acked into the current generation). An idle primary refreshes
// the lease with explicit kHeartbeat frames. Followers act on expiry; see
// src/replication/follower.h.
#ifndef SRC_REPLICATION_SOURCE_H_
#define SRC_REPLICATION_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/replication/frame_cache.h"
#include "src/replication/wire.h"
#include "src/store/store.h"

namespace asbestos {

class ReplicationHub;

struct FollowerSessionStats {
  uint64_t batches_shipped = 0;
  uint64_t snapshots_shipped = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t bytes_shipped = 0;  // payload bytes (batch spans + images)
  uint64_t rewinds = 0;        // acks that moved `shipped` backwards
  uint64_t gen_marks_sent = 0; // compaction hand-offs (no snapshot needed)
};

class FollowerSession {
 public:
  // Starts (or restarts) the follower session: resets every shard to
  // await-resume and returns the kHello frame to send first.
  std::string SessionHello();

  // Appends to `out` the next frames to ship: at most `max_batch_bytes` of
  // WAL span per batch frame (snapshots ship whole), stopping once `out`
  // reaches `max_total_bytes` (the rest ships on a later poll). Returns the
  // number of frames appended. Shards still awaiting their resume ack emit
  // nothing.
  size_t PollFrames(uint64_t max_batch_bytes, uint64_t max_total_bytes, std::string* out);

  // Appends one kHeartbeat frame carrying a fresh lease + successor stamp.
  // The endpoint calls this when a poll shipped nothing and the heartbeat
  // interval has elapsed since this session last heard from us.
  void AppendHeartbeat(std::string* out);

  // Feeds a follower ack back into the cursors.
  void HandleAck(const replwire::WireMessage& ack);

  // True when every shard's acked cursor matches the primary's WAL tail —
  // the follower mirrors everything appended so far.
  bool FullySynced() const;

  // True when the follower is in steady streaming state on every shard:
  // resumed, no snapshot pending, acked into the current generation. This is
  // the successor-eligibility test — deliberately NOT FullySynced(), which
  // no follower satisfies mid-burst; a caught-up follower may trail the tail
  // by in-flight batches, and go-back-N replays those from its own log on
  // promote day (it simply never applies them — they die with the wire).
  bool CaughtUp() const;

  uint64_t session_id() const { return session_id_; }
  // Flow-trace id of this session, minted at SessionHello and stamped on
  // every frame the session ships (see src/obs/trace.h).
  uint64_t trace_id() const { return trace_id_; }
  // Virtual-clock stamp of the last authenticated ack from this follower
  // (0 before the first ack).
  uint64_t last_ack_cycles() const { return last_ack_cycles_; }
  // Cycles the follower's applied state trails the primary: 0 when fully
  // synced, otherwise now minus the last authenticated ack (now minus the
  // hello send when no ack has arrived yet).
  uint64_t ApplyLagCycles() const;
  // Virtual cycles until the newest lease stamped for this follower runs
  // out (0 when lease stamping is off or the lease already expired).
  uint64_t LeaseRemainingCycles() const;
  // The follower's self-declared failover id, learned from its acks
  // (0 until an authenticated ack carries one).
  uint64_t follower_id() const { return follower_id_; }
  // Virtual-clock stamp of the last frames handed to the transport.
  uint64_t last_send_cycles() const { return last_send_cycles_; }
  // The newest lease deadline ever stamped on this session's frames — the
  // latest moment its follower could act on a designation it heard from us
  // (the hub's fencing horizon when the session closes).
  uint64_t last_lease_stamped() const { return last_lease_stamped_; }
  const FollowerSessionStats& stats() const { return stats_; }

 private:
  friend class ReplicationHub;

  struct Cursor {
    bool await_resume = true;    // no ack seen this session yet
    bool force_snapshot = false; // the follower's position is unusable
    uint64_t shipped_gen = 0;
    uint64_t shipped_off = 0;
    uint64_t acked_gen = 0;
    uint64_t acked_off = 0;
  };

  FollowerSession(ReplicationHub* hub, uint64_t session_id);

  // Emits a snapshot frame for the shard (lease-stamped like a batch) and
  // points `shipped` at the position the image covers.
  void ShipSnapshot(uint32_t shard, uint64_t lease_until, uint64_t successor_id,
                    std::string* out, size_t* frames);

  // Streams whole-frame batches of generation `gen` from `shipped` toward
  // `end_off` (the live tail, or a retained span's end), honoring the batch
  // and total byte budgets. False when a read failed (the span vanished
  // under us — the caller ships a snapshot instead).
  bool ShipBatchSpan(uint32_t shard, uint64_t gen, uint64_t end_off,
                     uint64_t max_batch_bytes, uint64_t max_total_bytes,
                     uint64_t lease_until, uint64_t successor_id, std::string* out,
                     size_t* frames);

  ReplicationHub* hub_;
  uint64_t session_id_;
  uint64_t follower_id_ = 0;
  std::vector<Cursor> cursors_;
  uint64_t last_send_cycles_ = 0;
  uint64_t last_lease_stamped_ = 0;
  uint64_t last_ack_cycles_ = 0;
  uint64_t hello_cycles_ = 0;
  uint64_t trace_id_ = 0;
  FollowerSessionStats stats_;
};

// Point-in-time replication health, one entry per live session. Everything
// a failover post-mortem needs: where each follower is per shard, how far
// behind it is on the virtual clock, and how long its lease has left.
struct HubDebugStatus {
  struct ShardCursor {
    bool await_resume = false;
    bool force_snapshot = false;
    uint64_t shipped_gen = 0;
    uint64_t shipped_off = 0;
    uint64_t acked_gen = 0;
    uint64_t acked_off = 0;
  };
  struct Session {
    uint64_t session_id = 0;
    uint64_t follower_id = 0;
    uint64_t trace_id = 0;
    bool caught_up = false;
    bool fully_synced = false;
    uint64_t apply_lag_cycles = 0;
    uint64_t lease_remaining_cycles = 0;
    FollowerSessionStats stats;
    std::vector<ShardCursor> shards;
    // Per-follower read-plane scoreboard, keyed by follower_id (the
    // repl.follower<id>.* counters from src/replication/read_gate.cc): how
    // many reads THIS follower answered, and how many it bounced for each
    // refusal reason. Zero for anonymous sessions (follower_id == 0).
    uint64_t reads_served = 0;
    uint64_t reads_refused_stale_lease = 0;
    uint64_t reads_refused_cursor_lag = 0;
    uint64_t reads_access_denied = 0;
  };
  uint64_t source_id = 0;
  uint64_t successor_id = 0;
  FrameCacheStats cache;
  std::vector<Session> sessions;
  // Fleet-wide read-plane scoreboard (process-global counters from
  // src/replication/read_gate.cc, snapshotted here for one-stop health).
  uint64_t reads_served = 0;
  uint64_t reads_refused_stale_lease = 0;
  uint64_t reads_refused_cursor_lag = 0;
  uint64_t read_staleness_p99_cycles = 0;
};

class ReplicationHub {
 public:
  struct Tuning {
    // Session shared secret: acks carrying a different token are ignored
    // outright, so an unauthenticated peer never advances past await-resume
    // and receives no data. 0 = unauthenticated closed testbed.
    uint64_t auth_token = 0;
    // Byte budget of the shared frame cache; 0 disables caching.
    uint64_t frame_cache_bytes = 256 * 1024;
    // Lease stamped on shipped traffic: deadline = now + this many virtual
    // cycles. 0 disables lease stamping (and heartbeats) entirely. See
    // ReplicationOptions::lease_interval_cycles for the sizing bounds.
    uint64_t lease_interval_cycles = 50'000'000;
    // Idle-primary lease refresh period; 0 = lease_interval / 4.
    uint64_t heartbeat_interval_cycles = 0;
  };

  // `source_id` names this primary's WAL history; a fresh nonce per store
  // open (the owning process mints it from the kernel's RNG-backed handle
  // space or any per-boot unique value). The store must outlive the hub.
  // The two-arg form runs with default tuning.
  ReplicationHub(const DurableStore* store, uint64_t source_id, Tuning tuning);
  ReplicationHub(const DurableStore* store, uint64_t source_id);
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  // Mints a session for one newly connected follower. The hub owns it; the
  // pointer stays valid until CloseSession. Capacity limits are the
  // endpoint's job (it refuses with kBusy) — the hub itself is unbounded.
  FollowerSession* OpenSession();
  void CloseSession(FollowerSession* session);

  size_t session_count() const { return sessions_.size(); }
  const std::vector<std::unique_ptr<FollowerSession>>& sessions() const { return sessions_; }

  // True when at least one follower is connected and EVERY session is fully
  // synced to the WAL tail.
  bool AllFullySynced() const;

  // The lease deadline to stamp right now: now + lease_interval (0 when
  // lease stamping is disabled).
  uint64_t LeaseDeadline() const;
  uint64_t heartbeat_interval_cycles() const;
  bool lease_enabled() const { return tuning_.lease_interval_cycles != 0; }

  // Deterministic successor designation: the lowest nonzero follower id
  // among caught-up sessions; 0 when no session qualifies.
  uint64_t SuccessorId() const;

  // Advisory read routing: the session whose follower should serve a read
  // for `routing_key` under `token`'s read-your-writes bound, or nullptr
  // when no follower qualifies (serve at the primary). Eligible sessions
  // hold an unexpired lease stamp and an acked cursor covering the token;
  // among them the pick is rendezvous-hashed on (routing_key, follower_id),
  // so one user's session reads stick to one follower (its flow-check
  // verdict cache stays hot) while users spread across the fleet, and a
  // follower joining or leaving only moves the keys that hashed to it.
  // Advisory only: the follower's own ReadGate re-decides authoritatively.
  FollowerSession* RouteRead(const std::string& routing_key,
                             const replwire::ReadCursorToken& token) const;

  // Shared WAL read path: serves (shard, generation, offset, ≤max_bytes)
  // from the frame cache, falling back to DurableStore::ReadShardWal and
  // caching the result. `generation` must be the shard's CURRENT generation
  // (cursor-vs-generation divergence is handled by the caller shipping a
  // snapshot instead). The returned span may exceed max_bytes on a cache
  // hit; callers slice at WAL frame boundaries anyway. The out-param is a
  // refcounted view sharing the cache's buffer — K follower sessions
  // streaming the same span hold one allocation between them.
  Status ReadSpan(uint32_t shard, uint64_t generation, uint64_t offset, uint64_t max_bytes,
                  Payload* span);

  uint64_t source_id() const { return source_id_; }
  uint64_t auth_token() const { return tuning_.auth_token; }
  const DurableStore* store() const { return store_; }
  const FrameCacheStats& cache_stats() const { return cache_.stats(); }

  // Replication/lease health surface: cursors, lag, and lease state for
  // every live session. Also exported as gauges (repl.hub<k>.*) while the
  // hub is alive.
  HubDebugStatus DebugStatus() const;

 private:
  // A follower whose session closed while it might still act on a
  // designation naming it (its last stamped lease has not yet expired).
  // SuccessorId() keeps honoring these so a re-designation can never race
  // the departed designee's own expiry check into a double promote.
  struct RetiredDesignee {
    uint64_t id;
    uint64_t lease_until;
  };

  const DurableStore* store_;
  uint64_t source_id_;
  Tuning tuning_;
  FrameCache cache_;
  std::vector<std::unique_ptr<FollowerSession>> sessions_;
  mutable std::vector<RetiredDesignee> retired_designees_;  // pruned in SuccessorId
  uint64_t next_session_id_ = 1;
  // Metrics gauge group publishing DebugStatus() under repl.hub<k>.* while
  // this hub lives (k = per-process hub instance number).
  uint64_t obs_gauge_group_ = 0;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_SOURCE_H_
