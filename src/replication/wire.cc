#include "src/replication/wire.h"

#include <cstring>

#include "src/store/label_codec.h"
#include "src/store/wal.h"

namespace asbestos {
namespace replwire {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc (WAL framing)

uint32_t ReadU32Le(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32Le(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

std::string EncodePayload(const WireMessage& msg) {
  std::string p;
  codec::AppendVarint(msg.type, &p);
  switch (msg.type) {
    case kHello:
      codec::AppendVarint(msg.token, &p);
      codec::AppendVarint(msg.source_id, &p);
      codec::AppendVarint(msg.shard_count, &p);
      codec::AppendVarint(msg.lease_until, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kBatch:
      codec::AppendVarint(msg.shard, &p);
      codec::AppendVarint(msg.generation, &p);
      codec::AppendVarint(msg.offset, &p);
      codec::AppendVarint(msg.lease_until, &p);
      codec::AppendVarint(msg.successor_id, &p);
      codec::AppendString(msg.payload, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kSnapshot:
      codec::AppendVarint(msg.shard, &p);
      codec::AppendVarint(msg.generation, &p);
      codec::AppendVarint(msg.offset, &p);
      codec::AppendVarint(msg.lease_until, &p);
      codec::AppendVarint(msg.successor_id, &p);
      codec::AppendString(msg.payload, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kAck:
      codec::AppendVarint(msg.token, &p);
      codec::AppendVarint(msg.shard, &p);
      codec::AppendVarint(msg.source_id, &p);
      codec::AppendVarint(msg.generation, &p);
      codec::AppendVarint(msg.offset, &p);
      codec::AppendVarint(msg.follower_id, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kHeartbeat:
      codec::AppendVarint(msg.lease_until, &p);
      codec::AppendVarint(msg.successor_id, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kBusy:
      codec::AppendVarint(msg.retry_after, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kGenMark:
      codec::AppendVarint(msg.shard, &p);
      codec::AppendVarint(msg.generation, &p);
      codec::AppendVarint(msg.offset, &p);
      codec::AppendVarint(msg.lease_until, &p);
      codec::AppendVarint(msg.successor_id, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kReadReq:
      codec::AppendVarint(msg.token, &p);
      codec::AppendVarint(msg.cookie, &p);
      codec::AppendString(msg.key, &p);
      codec::AppendVarint(msg.cursor.source_id, &p);
      codec::AppendVarint(msg.cursor.shard, &p);
      codec::AppendVarint(msg.cursor.generation, &p);
      codec::AppendVarint(msg.cursor.offset, &p);
      codec::AppendLabel(msg.label, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    case kReadResp:
      codec::AppendVarint(msg.cookie, &p);
      codec::AppendVarint(msg.read_status, &p);
      codec::AppendVarint(msg.staleness, &p);
      codec::AppendVarint(msg.cursor.source_id, &p);
      codec::AppendVarint(msg.cursor.shard, &p);
      codec::AppendVarint(msg.cursor.generation, &p);
      codec::AppendVarint(msg.cursor.offset, &p);
      codec::AppendLabel(msg.label, &p);
      codec::AppendString(msg.payload, &p);
      codec::AppendVarint(msg.trace_id, &p);
      codec::AppendString(msg.prof_ctx, &p);
      break;
    default:
      break;
  }
  return p;
}

Status DecodePayload(std::string_view p, WireMessage* msg) {
  *msg = WireMessage();
  size_t pos = 0;
  Status s = codec::ReadVarint(p, &pos, &msg->type);
  if (!IsOk(s)) {
    return s;
  }
  std::string_view bytes;
  switch (msg->type) {
    case kHello:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->token)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->source_id)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->shard_count)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->lease_until))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kBatch:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->offset)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->lease_until)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->successor_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->payload = Payload(bytes);  // one copy out of the rx buffer, then shared
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kSnapshot:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->offset)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->lease_until)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->successor_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->payload = Payload(bytes);  // one copy out of the rx buffer, then shared
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kAck:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->token)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->source_id)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->offset)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->follower_id))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kHeartbeat:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->lease_until)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->successor_id))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kBusy:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->retry_after))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kGenMark:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->offset)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->lease_until)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->successor_id))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kReadReq:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->token)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cookie)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->key.assign(bytes);
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.source_id)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.offset)) ||
          !IsOk(s = codec::ReadLabel(p, &pos, &msg->label))) {
        return s;
      }
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    case kReadResp:
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->cookie)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->read_status)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->staleness)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.source_id)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.shard)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.generation)) ||
          !IsOk(s = codec::ReadVarint(p, &pos, &msg->cursor.offset)) ||
          !IsOk(s = codec::ReadLabel(p, &pos, &msg->label)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->payload = Payload(bytes);  // one copy out of the rx buffer, then shared
      if (!IsOk(s = codec::ReadVarint(p, &pos, &msg->trace_id)) ||
          !IsOk(s = codec::ReadString(p, &pos, &bytes))) {
        return s;
      }
      msg->prof_ctx.assign(bytes);
      break;
    default:
      return Status::kInvalidArgs;  // unknown frame type: poison the session
  }
  return pos == p.size() ? Status::kOk : Status::kInvalidArgs;
}

}  // namespace

void AppendFrame(const WireMessage& msg, std::string* out) {
  const std::string payload = EncodePayload(msg);
  AppendU32Le(static_cast<uint32_t>(payload.size()), out);
  AppendU32Le(Crc32(payload), out);
  out->append(payload);
}

FrameParse ConsumeFrame(std::string* buffer, WireMessage* msg) {
  if (buffer->size() < kFrameHeaderBytes) {
    return FrameParse::kNeedMore;
  }
  const uint32_t len = ReadU32Le(buffer->data());
  const uint32_t crc = ReadU32Le(buffer->data() + 4);
  if (buffer->size() - kFrameHeaderBytes < len) {
    return FrameParse::kNeedMore;
  }
  const std::string_view payload(buffer->data() + kFrameHeaderBytes, len);
  if (Crc32(payload) != crc) {
    return FrameParse::kCorrupt;
  }
  if (!IsOk(DecodePayload(payload, msg))) {
    return FrameParse::kCorrupt;
  }
  buffer->erase(0, kFrameHeaderBytes + len);
  return FrameParse::kFrame;
}

uint64_t FirstWalFrameBytes(std::string_view span) {
  if (span.size() < kFrameHeaderBytes) {
    return 0;
  }
  return kFrameHeaderBytes + static_cast<uint64_t>(ReadU32Le(span.data()));
}

uint64_t WalFramePrefix(std::string_view span, uint64_t max_bytes) {
  uint64_t end = 0;
  while (span.size() - end >= kFrameHeaderBytes) {
    const uint32_t len = ReadU32Le(span.data() + end);
    const uint64_t frame = kFrameHeaderBytes + static_cast<uint64_t>(len);
    if (span.size() - end < frame || end + frame > max_bytes) {
      break;
    }
    end += frame;
  }
  return end;
}

Status ForEachWalRecord(std::string_view batch,
                        const std::function<Status(std::string_view)>& fn) {
  size_t pos = 0;
  while (pos < batch.size()) {
    if (batch.size() - pos < kFrameHeaderBytes) {
      return Status::kInvalidArgs;
    }
    const uint32_t len = ReadU32Le(batch.data() + pos);
    const uint32_t crc = ReadU32Le(batch.data() + pos + 4);
    if (batch.size() - pos - kFrameHeaderBytes < len) {
      return Status::kInvalidArgs;
    }
    const std::string_view payload(batch.data() + pos + kFrameHeaderBytes, len);
    if (Crc32(payload) != crc) {
      return Status::kInvalidArgs;
    }
    const Status s = fn(payload);
    if (!IsOk(s)) {
      return s;
    }
    pos += kFrameHeaderBytes + len;
  }
  return Status::kOk;
}

}  // namespace replwire
}  // namespace asbestos
