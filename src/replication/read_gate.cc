#include "src/replication/read_gate.h"

#include "src/kernel/label_checks.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/sim/costs.h"
#include "src/sim/cycles.h"

namespace asbestos {

namespace {

// Registry-owned counters (create-on-first-use, cached): the read plane's
// scoreboard, independent of any one gate's lifetime. Surfaced by
// ReplicationHub::DebugStatus and the bench metrics snapshot.
obs::Counter& ReadsServed() {
  static obs::Counter& c = obs::Registry::Get().counter("repl.reads_served");
  return c;
}
obs::Counter& RefusedStaleLease() {
  static obs::Counter& c =
      obs::Registry::Get().counter("repl.reads_refused_stale_lease");
  return c;
}
obs::Counter& RefusedCursorLag() {
  static obs::Counter& c =
      obs::Registry::Get().counter("repl.reads_refused_cursor_lag");
  return c;
}
obs::CycleHistogram& StalenessHistogram() {
  static obs::CycleHistogram& h =
      obs::Registry::Get().histogram("repl.read_staleness_cycles");
  return h;
}

// Per-follower breakout of the same scoreboard (satellite: DebugStatus
// forensics without grepping traces). Keyed by the follower's configured
// id; the primary's gate does not contribute (its refusal modes cannot
// fire). Cold enough that the registry's map lookup per bump is fine.
obs::Counter& FollowerCounter(uint64_t follower_id, const char* field) {
  return obs::Registry::Get().counter("repl.follower" +
                                      std::to_string(follower_id) + "." + field);
}

}  // namespace

const char* ReadStatusName(ReadStatus s) {
  switch (s) {
    case ReadStatus::kOk:
      return "ok";
    case ReadStatus::kNotFound:
      return "not_found";
    case ReadStatus::kAccessDenied:
      return "access_denied";
    case ReadStatus::kRefusedStaleLease:
      return "refused_stale_lease";
    case ReadStatus::kRefusedCursorLag:
      return "refused_cursor_lag";
    case ReadStatus::kRefusedExpired:
      return "refused_expired";
  }
  return "unknown";
}

bool ReadGate::CursorCovers(const replwire::ReadCursorToken& applied,
                            const replwire::ReadCursorToken& token) {
  if (token.empty()) {
    return true;  // the session never wrote: nothing to wait for
  }
  if (applied.source_id != token.source_id) {
    return false;  // a different (or no) history: the token means nothing here
  }
  // Generations only advance once everything before the switch is applied
  // (snapshot install or kGenMark hand-off), so a later generation covers
  // every earlier token outright.
  return applied.generation > token.generation ||
         (applied.generation == token.generation && applied.offset >= token.offset);
}

std::string ReadGate::GateName() const {
  return replica_ != nullptr
             ? "follower" + std::to_string(replica_->follower_id())
             : std::string("primary");
}

ReadResult ReadGate::Admit(const replwire::ReadCursorToken& token,
                           uint64_t trace_id) const {
  ReadResult r;
  if (replica_ != nullptr) {
    const uint64_t now = GetCycleAccounting().now();
    const uint64_t heard = replica_->last_heard_cycles();
    r.staleness_cycles = heard == 0 ? now : now - heard;
    const uint32_t shard =
        token.empty() ? 0 : static_cast<uint32_t>(token.shard);
    if (shard < replica_->store()->shard_count()) {
      r.applied = replica_->applied_cursor(shard);
    }
    // Lease freshness bounds ALL reads, token or not: an expired (or never
    // granted) lease means unbounded staleness, which the contract forbids.
    if (replica_->lease_until() == 0 || replica_->LeaseExpired(now)) {
      r.status = ReadStatus::kRefusedStaleLease;
      RefusedStaleLease().Add();
      FollowerCounter(replica_->follower_id(), "reads_refused_stale_lease")
          .Add();
      if (obs::ProvenanceLedger::enabled()) {
        obs::ProvenanceLedger::Get().RecordRefusal(
            "read_gate.stale_lease", GateName(),
            "lease expired: staleness " + std::to_string(r.staleness_cycles) +
                " cycles, retry at primary",
            0, Level::kStar, Level::kStar, Label::Bottom(), Label::Bottom(),
            trace_id);
      }
      return r;
    }
    if (!CursorCovers(r.applied, token)) {
      r.status = ReadStatus::kRefusedCursorLag;
      RefusedCursorLag().Add();
      FollowerCounter(replica_->follower_id(), "reads_refused_cursor_lag")
          .Add();
      if (obs::ProvenanceLedger::enabled()) {
        obs::ProvenanceLedger::Get().RecordRefusal(
            "read_gate.cursor_lag", GateName(),
            "applied cursor gen " + std::to_string(r.applied.generation) +
                " off " + std::to_string(r.applied.offset) +
                " trails token gen " + std::to_string(token.generation) +
                " off " + std::to_string(token.offset),
            0, Level::kStar, Level::kStar, Label::Bottom(), Label::Bottom(),
            trace_id);
      }
      return r;
    }
  } else {
    // Primary mode: the primary minted every token it will ever see, and
    // its tail is by definition at or past all of them. Reads here are the
    // K=1 baseline; staleness is identically zero.
    r.staleness_cycles = 0;
    r.applied.source_id = source_id_;
    if (!token.empty() && token.shard < primary_->shard_count()) {
      const uint32_t shard = static_cast<uint32_t>(token.shard);
      r.applied.shard = shard;
      r.applied.generation = primary_->shard_wal_generation(shard);
      r.applied.offset = primary_->shard_wal_offset(shard);
    }
  }
  r.status = ReadStatus::kOk;
  return r;
}

ReadResult ReadGate::Serve(const std::string& key, const Label& clearance,
                           const replwire::ReadCursorToken& token,
                           uint64_t trace_id) const {
  Charge(costs::kReadServeCycles);
  ReadResult r = Admit(token, trace_id);
  if (r.status != ReadStatus::kOk) {
    return r;
  }
  const StoreRecord* rec = nullptr;
  if (replica_ != nullptr) {
    // The epoch-pinned view makes the no-race property checkable: if an
    // apply ever interleaved here, the view's Get would assert instead of
    // returning a half-applied record.
    const ReplicaStore::ReadView view = replica_->read_view();
    rec = view.Get(key);
  } else {
    rec = primary_->Get(key);
  }
  if (rec == nullptr) {
    r.status = ReadStatus::kNotFound;
    StalenessHistogram().Record(r.staleness_cycles);
    return r;
  }
  if (liveness_ && !liveness_(key, *rec)) {
    r.status = ReadStatus::kRefusedExpired;
    if (obs::ProvenanceLedger::enabled()) {
      // Gated by the record's secrecy: that the key EXISTS (expired or not)
      // is as secret as its contents.
      obs::ProvenanceLedger::Get().RecordRefusal(
          "read_gate.expired", GateName(),
          "record expired by the liveness filter", 0, Level::kStar,
          Level::kStar, rec->secrecy, clearance, trace_id);
    }
    StalenessHistogram().Record(r.staleness_cycles);
    return r;
  }
  // The flow check, and its cost, are the kernel IPC delivery check
  // verbatim: ES = the record's secrecy, receive bound = the reader's
  // clearance (QR), with no decontamination (DR = ⊥) and no verify/port
  // narrowing (V = pR = ⊤), i.e. ES ⊑ QR. Charged with the kernel's exact
  // formula to Component::kKernelIpc so a follower-served read's label
  // cycles are bit-identical to the primary's — and since verdicts are
  // cached by rep-id tuple, the per-session hot path is a table probe on
  // both sides (kernel/label_checks.h).
  uint64_t fused_work = 0;
  const bool ok = CheckDeliveryAllowed(rec->secrecy, clearance, Label::Bottom(),
                                       Label::Top(), Label::Top(), &fused_work);
  ChargeTo(Component::kKernelIpc,
           fused_work * costs::kLabelEntryCycles + costs::kLabelOpBaseCycles);
  if (!ok) {
    r.status = ReadStatus::kAccessDenied;
    if (replica_ != nullptr) {
      FollowerCounter(replica_->follower_id(), "reads_access_denied").Add();
    }
    if (obs::ProvenanceLedger::enabled()) {
      const DeliveryRefusal why =
          ExplainDeliveryRefusal(rec->secrecy, clearance, Label::Bottom(),
                                 Label::Top(), Label::Top());
      obs::ProvenanceLedger::Get().RecordRefusal(
          "read_gate.access_denied", GateName(),
          std::string("record secrecy ") + LevelName(why.es_level) +
              " exceeds reader clearance " + LevelName(why.bound_level),
          why.handle, why.es_level, why.bound_level, rec->secrecy, clearance,
          trace_id);
    }
    StalenessHistogram().Record(r.staleness_cycles);
    return r;
  }
  r.status = ReadStatus::kOk;
  r.value = rec->value;
  r.secrecy = rec->secrecy;
  ReadsServed().Add();
  if (replica_ != nullptr) {
    FollowerCounter(replica_->follower_id(), "reads_served").Add();
  }
  StalenessHistogram().Record(r.staleness_cycles);
  return r;
}

}  // namespace asbestos
