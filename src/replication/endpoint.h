// ReplicationEndpoint: the primary-side shipping plane, embedded in any
// store-owning process (file server, idd, ok-demux).
//
// The endpoint attaches a netd listener on its own TCP port — replication
// rides the same user-level network server as every other byte leaving the
// machine (paper §7.7), as labeled kernel messages: LISTEN proves the
// owner's identity to netd via its verification label, connection grants
// arrive as kNotifyConn with uC ⋆, batches leave as kWrite messages, and
// follower acks come back through kRead replies.
//
// Shipping piggybacks on the group-commit pipeline: the owner calls
// PumpShip from its OnIdle hook right after SyncPipelined, so the batch
// whose flush was just handed to the device is the same batch handed to
// the wire — one pump iteration, one flush, one ship. OnIdle sends are
// self-limiting: a pump with no new appends polls zero frames and sends
// nothing, so the kernel's idle loop quiesces.
//
// One follower session at a time: a second connection while one is live is
// refused (closed immediately). A dropped follower reconnects and resumes
// via the hello/ack handshake (see ReplicationSource).
#ifndef SRC_REPLICATION_ENDPOINT_H_
#define SRC_REPLICATION_ENDPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/replication/source.h"

namespace asbestos {

struct ReplicationOptions {
  // TCP port the endpoint listens on for follower connections; 0 disables
  // replication entirely (the owner never constructs an endpoint).
  uint16_t listen_tcp_port = 0;
  // Largest WAL span per kBatch frame (one oversized record still ships
  // whole) and largest kWrite per pump (the rest ships next pump).
  uint64_t max_batch_bytes = 64 * 1024;
  uint64_t max_write_bytes = 256 * 1024;
  // Session shared secret, configured identically on the follower. The
  // source ships nothing to a peer whose acks carry a different token, and
  // a follower refuses a hello with one — so a stray client that merely
  // connects to either port gets no labeled data. 0 (default) means an
  // unauthenticated closed testbed; the token travels in cleartext (the
  // simulated wire models no cryptography), so it is a capability in the
  // handle-value sense, not a defense against a wire eavesdropper.
  uint64_t auth_token = 0;

  bool enabled() const { return listen_tcp_port != 0; }
};

class ReplicationEndpoint {
 public:
  // The store must outlive the endpoint.
  ReplicationEndpoint(const DurableStore* store, ReplicationOptions options);

  // Attaches the netd listener. `self_verify` is the owner's verification
  // handle value (0 when the world runs netd without listener checks); the
  // source id is minted from a fresh kernel handle — per-boot unique, so a
  // follower can never mistake one boot's WAL history for another's.
  void Start(ProcessContext& ctx, Handle netd_ctl, uint64_t self_verify);

  // Consumes messages addressed to the endpoint's ports. Owners call this
  // first in HandleMessage; true means the message was replication-plane.
  bool HandleMessage(ProcessContext& ctx, const Message& msg);

  // Ships pending WAL spans/snapshots to the connected follower. Call from
  // OnIdle after the store sync.
  void PumpShip(ProcessContext& ctx);

  bool follower_connected() const { return conn_.valid(); }
  const ReplicationSource* source() const { return source_.get(); }

 private:
  void DropSession(ProcessContext& ctx, bool close_conn);
  void IssueRead(ProcessContext& ctx);

  const DurableStore* store_;
  ReplicationOptions options_;
  std::unique_ptr<ReplicationSource> source_;
  Handle notify_port_;
  Handle conn_;     // live follower connection's uC (invalid = none)
  std::string rx_;  // buffered ack bytes awaiting a whole frame
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_ENDPOINT_H_
