// ReplicationEndpoint: the primary-side shipping plane, embedded in any
// store-owning process (file server, idd, ok-demux, ok-dbproxy).
//
// The endpoint attaches a netd listener on its own TCP port — replication
// rides the same user-level network server as every other byte leaving the
// machine (paper §7.7), as labeled kernel messages: LISTEN proves the
// owner's identity to netd via its verification label, connection grants
// arrive as kNotifyConn with uC ⋆, batches leave as kWrite messages, and
// follower acks come back through kRead replies.
//
// Shipping piggybacks on the group-commit pipeline: the owner calls
// PumpShip from its OnIdle hook right after SyncPipelined, so the batch
// whose flush was just handed to the device is the same batch handed to
// the wire — one pump iteration, one flush, one ship. OnIdle sends are
// self-limiting: a pump with no new appends polls zero frames and sends
// nothing, so the kernel's idle loop quiesces. (With leases enabled, an
// idle session still gets a kHeartbeat once per heartbeat interval — but
// only when the virtual clock has actually advanced, so a world with no
// traffic at all still quiesces.)
//
// Fan-out: up to `max_followers` concurrent follower sessions, each with
// its own FollowerSession cursor set in the shared ReplicationHub (read
// replies demux by connection cookie). A connection beyond capacity is
// told so explicitly — one kBusy frame with a back-off hint — before the
// close, so the refused follower waits instead of hot-reconnecting. A
// dropped follower reconnects and resumes via the hello/ack handshake.
#ifndef SRC_REPLICATION_ENDPOINT_H_
#define SRC_REPLICATION_ENDPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/replication/source.h"

namespace asbestos {

struct ReplicationOptions {
  // TCP port the endpoint listens on for follower connections; 0 disables
  // replication entirely (the owner never constructs an endpoint).
  uint16_t listen_tcp_port = 0;
  // Concurrent follower sessions served; a connection beyond this gets one
  // kBusy frame and a close.
  uint32_t max_followers = 4;
  // Largest WAL span per kBatch frame (one oversized record still ships
  // whole) and largest kWrite per pump PER FOLLOWER (the rest ships next
  // pump).
  uint64_t max_batch_bytes = 64 * 1024;
  uint64_t max_write_bytes = 256 * 1024;
  // Session shared secret, configured identically on the follower. The
  // hub ships nothing to a peer whose acks carry a different token, and
  // a follower refuses a hello with one — so a stray client that merely
  // connects to either port gets no labeled data. 0 (default) means an
  // unauthenticated closed testbed; the token travels in cleartext (the
  // simulated wire models no cryptography), so it is a capability in the
  // handle-value sense, not a defense against a wire eavesdropper.
  uint64_t auth_token = 0;
  // Shared frame cache budget: K followers at nearby offsets are fed from
  // one WAL read instead of K. 0 disables the cache.
  uint64_t frame_cache_bytes = 256 * 1024;
  // Lease/heartbeat protocol (automatic failover). Shipped traffic carries
  // lease_until = now + lease_interval_cycles on the virtual clock; an idle
  // session is refreshed with kHeartbeat every heartbeat interval (default
  // lease/4). lease_interval_cycles = 0 disables stamping. Sizing bounds:
  // the lease must dwarf the cycles one loaded pump iteration burns (~1.5M
  // through netd with several followers) or a stamp is stale before it
  // crosses the wire, and the heartbeat interval must stay well above the
  // ~110k cycles one heartbeat itself charges, or the idle loop would
  // re-arm itself every pump.
  uint64_t lease_interval_cycles = 50'000'000;
  uint64_t heartbeat_interval_cycles = 0;  // 0 = lease_interval / 4
  // Back-off hint carried in kBusy refusals.
  uint64_t busy_retry_cycles = 2'000'000;

  bool enabled() const { return listen_tcp_port != 0; }
};

class ReplicationEndpoint {
 public:
  // The store must outlive the endpoint.
  ReplicationEndpoint(const DurableStore* store, ReplicationOptions options);

  // Attaches the netd listener. `self_verify` is the owner's verification
  // handle value (0 when the world runs netd without listener checks); the
  // source id is minted from a fresh kernel handle — per-boot unique, so a
  // follower can never mistake one boot's WAL history for another's.
  void Start(ProcessContext& ctx, Handle netd_ctl, uint64_t self_verify);

  // Consumes messages addressed to the endpoint's ports. Owners call this
  // first in HandleMessage; true means the message was replication-plane.
  bool HandleMessage(ProcessContext& ctx, const Message& msg);

  // Ships pending WAL spans/snapshots (and due heartbeats) to every
  // connected follower. Call from OnIdle after the store sync.
  void PumpShip(ProcessContext& ctx);

  bool follower_connected() const { return !conns_.empty(); }
  size_t follower_count() const { return conns_.size(); }
  uint64_t busy_refusals() const { return busy_refusals_; }
  const ReplicationHub* hub() const { return hub_.get(); }

 private:
  struct Conn {
    Handle uc;                 // the connection's capability port
    FollowerSession* session;  // owned by the hub
    std::string rx;            // buffered ack bytes awaiting a whole frame
  };

  void RefuseBusy(ProcessContext& ctx, Handle uc);
  void DropSession(ProcessContext& ctx, uint64_t uc_value, bool close_conn);
  void IssueRead(ProcessContext& ctx, const Conn& conn);

  const DurableStore* store_;
  ReplicationOptions options_;
  std::unique_ptr<ReplicationHub> hub_;
  Handle notify_port_;
  std::map<uint64_t, Conn> conns_;  // uC handle value → live follower session
  uint64_t busy_refusals_ = 0;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_ENDPOINT_H_
