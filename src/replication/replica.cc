#include "src/replication/replica.h"

#include <cstdio>

#include "src/base/panic.h"
#include "src/base/strings.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/sim/cycles.h"

namespace asbestos {

using replwire::WireMessage;

namespace {

constexpr char kCursorFileName[] = "replcursor";

}  // namespace

Result<std::unique_ptr<ReplicaStore>> ReplicaStore::Open(StoreOptions opts,
                                                         ReplicaOptions options) {
  auto store = DurableStore::Open(opts);
  if (!store.ok()) {
    return store.status();
  }
  std::unique_ptr<ReplicaStore> replica(new ReplicaStore(opts.dir));
  replica->options_ = options;
  replica->store_ = store.take();
  replica->cursors_.resize(replica->store_->shard_count());
  replica->LoadCursorFile();
  return replica;
}

void ReplicaStore::LoadCursorFile() {
  FILE* f = ::fopen((dir_ + "/" + kCursorFileName).c_str(), "r");
  if (f == nullptr) {
    return;  // cold replica: every shard acks the unknown position
  }
  for (Cursor& c : cursors_) {
    unsigned long long src = 0;
    unsigned long long gen = 0;
    unsigned long long off = 0;
    if (::fscanf(f, "%llu %llu %llu", &src, &gen, &off) != 3) {
      // Short or malformed file: drop everything read so far — a partial
      // cursor set must not mix histories.
      for (Cursor& reset : cursors_) {
        reset = Cursor();
      }
      break;
    }
    c.source_id = src;
    c.generation = gen;
    c.offset = off;
  }
  ::fclose(f);
}

Status ReplicaStore::Checkpoint() {
  if (store_ == nullptr) {
    return Status::kOk;  // promoted and taken; nothing left to pin
  }
  // Order matters: the cursor may only ever name durably-applied history.
  const Status s = store_->Sync();
  if (!IsOk(s)) {
    return s;
  }
  std::string body;
  for (const Cursor& c : cursors_) {
    body += StrFormat("%llu %llu %llu\n", static_cast<unsigned long long>(c.source_id),
                      static_cast<unsigned long long>(c.generation),
                      static_cast<unsigned long long>(c.offset));
  }
  // Best-effort: losing the cursor costs a snapshot resync, never
  // correctness, so a write failure is not surfaced.
  (void)WriteFileAtomically(dir_, kCursorFileName, body);
  return Status::kOk;
}

void ReplicaStore::AppendAck(uint32_t shard, std::string* out) const {
  const Cursor& c = cursors_[shard];
  WireMessage ack;
  ack.type = replwire::kAck;
  ack.token = options_.auth_token;
  ack.shard = shard;
  ack.source_id = c.source_id;
  ack.generation = c.generation;
  ack.offset = c.offset;
  ack.follower_id = options_.follower_id;
  replwire::AppendFrame(ack, out);
}

void ReplicaStore::TrackLease(const WireMessage& msg) {
  // Leases only move forward: a reordered frame carrying an older deadline
  // must not shorten a lease a newer frame already extended.
  if (msg.lease_until > lease_until_) {
    lease_until_ = msg.lease_until;
  }
  if (msg.type != replwire::kHello && msg.successor_id != successor_id_) {
    successor_id_ = msg.successor_id;
  }
  last_heard_cycles_ = GetCycleAccounting().now();
}

const StoreRecord* ReplicaStore::ReadView::Get(const std::string& key) const {
  ASB_ASSERT(owner_->read_epoch_ == epoch_ && "read view outlived an apply");
  return owner_->store_ == nullptr ? nullptr : owner_->store_->Get(key);
}

Status ReplicaStore::HandleFrame(const WireMessage& msg, std::string* ack_out) {
  if (promoted_) {
    return Status::kBadState;  // a promoted store takes writes, not batches
  }
  switch (msg.type) {
    case replwire::kHello: {
      if (msg.token != options_.auth_token) {
        return Status::kAccessDenied;  // not our primary; poison session
      }
      if (msg.shard_count != store_->shard_count()) {
        return Status::kInvalidArgs;  // layouts must match; poison session
      }
      session_source_ = msg.source_id;
      session_trace_id_ = msg.trace_id;
      // A fresh session supersedes the dead one's lease bookkeeping.
      lease_until_ = 0;
      successor_id_ = 0;
      TrackLease(msg);
      // Resume handshake: tell the source where this replica stands. A
      // cursor into some other primary's history acks as-is; the source
      // will not recognize it and ships a snapshot.
      for (uint32_t shard = 0; shard < cursors_.size(); ++shard) {
        AppendAck(shard, ack_out);
      }
      return Status::kOk;
    }
    case replwire::kBatch: {
      if (msg.shard >= cursors_.size() || session_source_ == 0) {
        return Status::kOk;  // no session / nonsense shard: drop
      }
      TrackLease(msg);
      Cursor& c = cursors_[static_cast<uint32_t>(msg.shard)];
      const bool in_sequence = c.source_id == session_source_ &&
                               c.generation == msg.generation && c.offset == msg.offset;
      if (!in_sequence) {
        const bool duplicate = c.source_id == session_source_ &&
                               c.generation == msg.generation && msg.offset < c.offset;
        (duplicate ? stats_.duplicates_skipped : stats_.gaps_ignored) += 1;
        // Re-ack the real position either way; the source rewinds to it
        // (duplicate) or falls back to a snapshot (gap / unknown history).
        AppendAck(static_cast<uint32_t>(msg.shard), ack_out);
        return Status::kOk;
      }
      // The apply span adopts the primary's ship stack as its parent (the
      // frame carries it in prof_ctx), so one merged flamegraph nests this
      // follower's apply work under the primary's pump/ship frames.
      obs::ProfSpan apply_span;
      if (obs::CycleProfiler::enabled()) {
        apply_span.BeginWithParent(msg.prof_ctx, "repl.apply.batch");
      }
      const Status s = replwire::ForEachWalRecord(
          msg.payload, [this, &msg](std::string_view record) {
            const Status applied = store_->ApplyReplicatedRecord(
                static_cast<uint32_t>(msg.shard), record, msg.trace_id);
            if (IsOk(applied)) {
              stats_.records_applied += 1;
            }
            return applied;
          });
      if (!IsOk(s)) {
        return s;  // framing corruption inside a batch poisons the session
      }
      c.offset += msg.payload.size();
      stats_.batches_applied += 1;
      read_epoch_ += 1;  // invalidate outstanding read views
      if (obs::TraceRing::enabled() && msg.trace_id != 0) {
        obs::TraceRing::Get().Emit(
            msg.trace_id, "replica", "repl.apply",
            "batch shard=" + std::to_string(msg.shard) + " off=" +
                std::to_string(c.offset),
            Label::Bottom());
      }
      AppendAck(static_cast<uint32_t>(msg.shard), ack_out);
      return Status::kOk;
    }
    case replwire::kSnapshot: {
      if (msg.shard >= cursors_.size() || session_source_ == 0) {
        return Status::kOk;
      }
      // Images refresh the lease like batches: a long catch-up must not
      // starve the designee's lease under a live primary.
      TrackLease(msg);
      obs::ProfSpan apply_span;
      if (obs::CycleProfiler::enabled()) {
        apply_span.BeginWithParent(msg.prof_ctx, "repl.apply.snapshot");
      }
      const Status s =
          store_->InstallShardSnapshot(static_cast<uint32_t>(msg.shard), msg.payload);
      if (!IsOk(s)) {
        return s;  // corrupt image: poison the session, keep current records
      }
      Cursor& c = cursors_[static_cast<uint32_t>(msg.shard)];
      c.source_id = session_source_;
      c.generation = msg.generation;
      c.offset = msg.offset;
      stats_.snapshots_installed += 1;
      read_epoch_ += 1;  // invalidate outstanding read views
      if (obs::TraceRing::enabled() && msg.trace_id != 0) {
        obs::TraceRing::Get().Emit(
            msg.trace_id, "replica", "repl.apply",
            "snapshot shard=" + std::to_string(msg.shard) + " gen=" +
                std::to_string(msg.generation),
            Label::Bottom());
      }
      AppendAck(static_cast<uint32_t>(msg.shard), ack_out);
      return Status::kOk;
    }
    case replwire::kHeartbeat: {
      if (session_source_ == 0) {
        return Status::kOk;  // no session: a stray heartbeat grants nothing
      }
      TrackLease(msg);
      stats_.heartbeats_seen += 1;
      return Status::kOk;
    }
    case replwire::kGenMark: {
      // Compaction hand-off (see wire.h): the primary retained the old
      // generation's tail, this follower applied ALL of it, and the mark
      // names exactly that end position. Advancing to (generation+1, 0) is
      // pure bookkeeping — the records are already applied — so a synced
      // follower rides through the compaction without a snapshot re-image.
      // Wal::Reset() advances generations by exactly one, which is why the
      // mark needs no explicit target. Anywhere else, re-ack the true
      // position and let the source fall back to a snapshot.
      if (msg.shard >= cursors_.size() || session_source_ == 0) {
        return Status::kOk;
      }
      TrackLease(msg);
      Cursor& c = cursors_[static_cast<uint32_t>(msg.shard)];
      if (c.source_id == session_source_ && c.generation == msg.generation &&
          c.offset == msg.offset) {
        c.generation += 1;
        c.offset = 0;
        stats_.gen_marks_applied += 1;
      } else {
        stats_.gaps_ignored += 1;
      }
      AppendAck(static_cast<uint32_t>(msg.shard), ack_out);
      return Status::kOk;
    }
    case replwire::kBusy: {
      // The primary is at capacity: record the back-off hint and tell the
      // caller to end the session quietly (it reconnects later instead of
      // hammering the refusal). A busy frame also PROVES a live primary —
      // any designation this replica still holds from an earlier session is
      // stale (the hub has re-designated around us), so drop the lease
      // bookkeeping rather than promote on it later.
      busy_retry_after_ = msg.retry_after;
      lease_until_ = 0;
      successor_id_ = 0;
      stats_.busy_signals += 1;
      return Status::kWouldBlock;
    }
    default:
      return Status::kOk;  // acks and future types are ignored by replicas
  }
}

Status ReplicaStore::Promote() {
  if (promoted_) {
    return Status::kOk;
  }
  // Drain the group-commit pipeline and pin the cursor: after this returns,
  // reopening the directory recovers exactly the applied history (the
  // single-node crash-recovery contract the promote tests assert).
  const Status s = Checkpoint();
  if (!IsOk(s)) {
    return s;
  }
  promoted_ = true;
  return Status::kOk;
}

std::unique_ptr<DurableStore> ReplicaStore::TakeStore() {
  ASB_ASSERT(promoted_ && "TakeStore before Promote");
  return std::move(store_);
}

}  // namespace asbestos
