// FollowerProcess: a hot-standby store fed over simnet/netd.
//
// The follower machine runs its own netd; this process attaches a listener
// on the replication TCP port and waits for the wire (the cross-machine
// ferry, ReplicationLink) to connect it to a primary's ReplicationEndpoint.
// Every byte then travels as labeled kernel messages: batches arrive as
// kRead replies, acks leave as kWrite messages, and the replica's group
// commit rides the same OnIdle hook as any primary store — a follower is a
// durable server whose only client is the primary's log.
//
// Promote() ends the follower role: the connection is closed, the replica
// drains its pipeline, and the underlying store — bit-identical to what
// single-node crash recovery of the shipped history would produce — can be
// adopted by a primary process (e.g. FileServerProcess re-opened on the
// same directory, with RecoverySpawnArgs re-granting privilege exactly as
// after a local reboot).
#ifndef SRC_REPLICATION_FOLLOWER_H_
#define SRC_REPLICATION_FOLLOWER_H_

#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/replication/replica.h"

namespace asbestos {

class FollowerProcess : public ProcessCode {
 public:
  // Opens the replica store immediately (panics if the directory is
  // corrupt, like every durable server here: a follower must not limp on
  // empty state it does not actually have). `auth_token` must match the
  // primary's ReplicationOptions::auth_token.
  explicit FollowerProcess(StoreOptions store_opts, uint64_t auth_token = 0);

  // env: "netd_ctl" (required), "tcp_port" (required), "self_verify"
  // (optional, for worlds whose netd checks listener identity).
  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit of everything applied this pump (pipelined).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  // Stops following (closes the live session, drains, checkpoints). The
  // world driver invokes this via Kernel::WithProcessContext — promotion is
  // a trusted operator action, like boot-time label assignment.
  Status Promote(ProcessContext& ctx);

  ReplicaStore* replica() { return replica_.get(); }
  const ReplicaStore* replica() const { return replica_.get(); }
  uint64_t sessions_accepted() const { return sessions_accepted_; }

 private:
  void IssueRead(ProcessContext& ctx);
  void EndSession(ProcessContext& ctx, bool close_conn);

  std::unique_ptr<ReplicaStore> replica_;
  Handle notify_port_;
  Handle conn_;     // live session's uC (invalid = none)
  std::string rx_;  // buffered stream bytes awaiting a whole frame
  uint64_t sessions_accepted_ = 0;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_FOLLOWER_H_
