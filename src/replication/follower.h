// FollowerProcess: a hot-standby store fed over simnet/netd.
//
// The follower machine runs its own netd; this process attaches a listener
// on the replication TCP port and waits for the wire (the cross-machine
// ferry, ReplicationLink) to connect it to a primary's ReplicationEndpoint.
// Every byte then travels as labeled kernel messages: batches arrive as
// kRead replies, acks leave as kWrite messages, and the replica's group
// commit rides the same OnIdle hook as any primary store — a follower is a
// durable server whose only client is the primary's log.
//
// Automatic failover: a follower configured with a nonzero follower_id
// carries that id in its acks and tracks the primary's lease (the deadline
// stamped on every batch/heartbeat). Each OnIdle it charges one lease-check
// tick — the local failover timer — and when the lease runs out:
//   * if the PRIMARY'S OWN last designation named this follower (lowest id
//     among caught-up replicas), it promotes itself;
//   * otherwise it stands by for the designated successor's endpoint (or an
//     operator) — exactly one replica acts, with no follower-to-follower
//     traffic, because the designation was distributed by the primary while
//     it was still alive.
//
// Manual Promote() still exists and ends the follower role the same way:
// the connection is closed, the replica drains its pipeline, and the
// underlying store — bit-identical to what single-node crash recovery of
// the shipped history would produce — can be adopted by a primary process
// (e.g. FileServerProcess re-opened on the same directory, with
// RecoverySpawnArgs re-granting privilege exactly as after a local reboot).
//
// Busy back-off: a kBusy refusal from an at-capacity primary ends the
// session quietly and starts a back-off window (the refusal's retry hint,
// falling back to FollowerOptions::busy_backoff_cycles); connections
// arriving inside the window are closed unaccepted instead of burning a
// hello/resume round trip on the same refusal.
//
// Read plane: when the environment names a "read_tcp_port", the follower
// opens a SECOND listener and serves labeled reads (kReadReq → kReadResp)
// through a ReadGate over its replica — lease freshness bounds staleness,
// the request's cursor token gates read-your-writes, and the record's
// secrecy label is checked against the reader's clearance with the kernel's
// own delivery check (bit-identical cycles to a primary-side read). Read
// connections are independent of the replication session: they survive a
// primary outage and keep answering — with refusals — until the lease
// actually expires, which is exactly the contract.
#ifndef SRC_REPLICATION_FOLLOWER_H_
#define SRC_REPLICATION_FOLLOWER_H_

#include <map>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/replication/read_gate.h"
#include "src/replication/replica.h"

namespace asbestos {

struct FollowerOptions {
  // Session shared secret; must match the primary's
  // ReplicationOptions::auth_token.
  uint64_t auth_token = 0;
  // Failover identity carried in acks; 0 = mirror only, never auto-promote.
  uint64_t follower_id = 0;
  // Act on lease expiry when designated successor. Off only for worlds that
  // want lease observability without the promotion (operator drills).
  bool auto_promote = true;
  // Back-off window after a kBusy refusal that carried no hint.
  uint64_t busy_backoff_cycles = 2'000'000;
};

class FollowerProcess : public ProcessCode {
 public:
  // Opens the replica store immediately (panics if the directory is
  // corrupt, like every durable server here: a follower must not limp on
  // empty state it does not actually have).
  explicit FollowerProcess(StoreOptions store_opts, FollowerOptions options = FollowerOptions());

  // env: "netd_ctl" (required), "tcp_port" (required), "self_verify"
  // (optional, for worlds whose netd checks listener identity),
  // "read_tcp_port" (optional: opens the follower-read listener).
  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit of everything applied this pump (pipelined), then the
  // lease-expiry check (see the header comment).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  // Stops following (closes the live session, drains, checkpoints). The
  // world driver invokes this via Kernel::WithProcessContext — promotion is
  // a trusted operator action, like boot-time label assignment.
  Status Promote(ProcessContext& ctx);

  ReplicaStore* replica() { return replica_.get(); }
  const ReplicaStore* replica() const { return replica_.get(); }
  uint64_t sessions_accepted() const { return sessions_accepted_; }
  // True once a lease this follower tracked expired unrefreshed.
  bool lease_expired() const { return lease_expired_; }
  // True when the lease protocol promoted this follower (vs operator call).
  bool auto_promoted() const { return auto_promoted_; }
  uint64_t busy_signals() const { return busy_signals_; }
  uint64_t backoff_until_cycles() const { return backoff_until_cycles_; }
  uint64_t read_sessions_accepted() const { return read_sessions_accepted_; }

  // Extra per-record admission applied to follower-served reads, on top of
  // the label check — e.g. the demux session-expiry rule, so a follower
  // refuses a stale session by the same comparison the primary uses.
  void set_read_liveness_filter(ReadLivenessFilter filter) {
    read_gate_->set_liveness_filter(std::move(filter));
  }

 private:
  // One accepted read connection; keyed by the netd cookie we issue reads
  // with, so concurrent readers demux on the kReadR reply's cookie word.
  struct ReadConn {
    Handle uc;
    std::string rx;
  };

  void IssueRead(ProcessContext& ctx);
  void EndSession(ProcessContext& ctx, bool close_conn);
  void CheckLease(ProcessContext& ctx);
  void HandleReadPlane(ProcessContext& ctx, const Message& msg);
  void IssueReadConnRead(ProcessContext& ctx, uint64_t cookie);
  void CloseReadConn(ProcessContext& ctx, uint64_t cookie);
  void CloseAllReadConns(ProcessContext& ctx);

  std::unique_ptr<ReplicaStore> replica_;
  std::unique_ptr<ReadGate> read_gate_;
  FollowerOptions options_;
  Handle notify_port_;
  Handle conn_;     // live session's uC (invalid = none)
  std::string rx_;  // buffered stream bytes awaiting a whole frame
  Handle read_notify_port_;  // read-plane listener (invalid = plane off)
  std::map<uint64_t, ReadConn> read_conns_;
  uint64_t next_read_cookie_ = 1;
  uint64_t read_sessions_accepted_ = 0;
  uint64_t sessions_accepted_ = 0;
  uint64_t busy_signals_ = 0;
  uint64_t backoff_until_cycles_ = 0;
  bool lease_expired_ = false;
  bool auto_promoted_ = false;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_FOLLOWER_H_
