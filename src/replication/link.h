// ReplicationLink and the two-machine replication testbed.
//
// Two Asbestos machines (kernel + netd + SimNet each) cannot share a wire:
// each SimNet models one machine's LAN segment with its remote peers driven
// from outside, exactly like HttpLoadClient drives the OKWS worlds. The
// link IS that outside: it opens a client connection into each machine's
// netd (the primary's replication listener and the follower's) and ferries
// bytes between them every step — a stand-in for the switch between two
// server racks. Tests use its knobs to fragment deliveries (torn batches at
// the follower) and to sever one side (primary kill).
//
//   ┌────────────── primary ──────────────┐      ┌───────────── follower ────────────┐
//   │ FileServer ──OnIdle──▶ Endpoint     │      │ FollowerProcess ──▶ ReplicaStore  │
//   │      │ kWrite batches   ▲ kRead acks│      │   ▲ kRead batches   │ kWrite acks │
//   │      ▼                  │           │      │   │                 ▼             │
//   │            netd A                   │      │             netd B                │
//   └────────────┬─────▲──────────────────┘      └───────────────┬─────▲─────────────┘
//          SimNet A    │                                  SimNet B     │
//                ▼     │            ReplicationLink             ▼      │
//                └─────┴────────── (ferries bytes) ─────────────┴──────┘
#ifndef SRC_REPLICATION_LINK_H_
#define SRC_REPLICATION_LINK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/file_server.h"
#include "src/kernel/kernel.h"
#include "src/net/netd.h"
#include "src/net/simnet.h"
#include "src/replication/follower.h"
#include "src/replication/read_gate.h"

namespace asbestos {

class ReplicationLink {
 public:
  // Connects to both machines' listeners. Either connect may fail (port not
  // listening yet); Step() keeps retrying until both sides are up.
  ReplicationLink(SimNet* primary_net, uint16_t primary_port, SimNet* follower_net,
                  uint16_t follower_port);

  // Ferries pending bytes both ways. Returns the bytes moved this step.
  uint64_t Step();

  // Delivers at most this many bytes per ClientSend, fragmenting frames
  // across steps — the torn-batch-at-the-follower scenario. 0 = unlimited.
  void set_max_chunk(uint64_t n) { max_chunk_ = n; }

  // Stalls the wire without tearing it: while paused, Step() moves nothing
  // and buffers nothing, so the follower silently falls behind — the lag
  // injection the read-your-writes tests need (softer than Disconnect, which
  // ends the session and forces a resume on redial).
  void set_paused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }

  // Severs the wire (both directions); a later Reconnect() dials fresh
  // connections, as a restarted link daemon would.
  void Disconnect();
  bool Reconnect();

  bool connected() const { return p_conn_ != kNoConn && f_conn_ != kNoConn; }
  uint64_t bytes_to_follower() const { return bytes_to_follower_; }
  uint64_t bytes_to_primary() const { return bytes_to_primary_; }

 private:
  void TryConnect();
  // Moves one direction, honoring max_chunk_; leftover stays buffered here.
  uint64_t FerryChunk(std::string* buffer, SimNet* dst, ConnId dst_conn);

  SimNet* primary_net_;
  SimNet* follower_net_;
  uint16_t primary_port_;
  uint16_t follower_port_;
  ConnId p_conn_ = kNoConn;
  ConnId f_conn_ = kNoConn;
  std::string to_follower_;  // taken from primary, not yet delivered
  std::string to_primary_;
  uint64_t max_chunk_ = 0;
  bool paused_ = false;
  uint64_t bytes_to_follower_ = 0;
  uint64_t bytes_to_primary_ = 0;
};

// One primary machine: kernel, netd, and a persistent file server that
// ships its WAL from the replication listener. The file-server workload
// (CREATE/WRITE/UNLINK with secrecy/integrity compartments) is exactly the
// labeled state the promote tests compare bit-for-bit.
class FsPrimaryWorld {
 public:
  FsPrimaryWorld(uint64_t boot_key, const FileServerOptions& fs_options,
                 SpawnArgs fs_spawn_args = {});

  void Pump();

  Kernel& kernel() { return kernel_; }
  SimNet& net() { return net_; }
  FileServerProcess* fs() { return fs_; }
  ProcessId fs_pid() const { return fs_pid_; }

 private:
  SimNet net_;
  Kernel kernel_;
  NetdProcess* netd_ = nullptr;
  FileServerProcess* fs_ = nullptr;
  ProcessId netd_pid_ = kNoProcess;
  ProcessId fs_pid_ = kNoProcess;
};

// One follower machine: kernel, netd, and a FollowerProcess listening for
// the primary's stream. A nonzero read_tcp_port opens the follower-read
// listener alongside (served through the replica's ReadGate).
class FollowerWorld {
 public:
  FollowerWorld(uint64_t boot_key, uint16_t tcp_port, StoreOptions store_opts,
                FollowerOptions options = FollowerOptions(), uint16_t read_tcp_port = 0);

  void Pump();
  // Closes the session, drains, checkpoints; the store directory is now a
  // primary-grade image.
  Status Promote();

  Kernel& kernel() { return kernel_; }
  SimNet& net() { return net_; }
  FollowerProcess* follower() { return follower_; }

 private:
  SimNet net_;
  Kernel kernel_;
  NetdProcess* netd_ = nullptr;
  FollowerProcess* follower_ = nullptr;
  ProcessId netd_pid_ = kNoProcess;
  ProcessId follower_pid_ = kNoProcess;
};

// A K-replica topology under one driver: a primary FsPrimaryWorld fanning
// out to K FollowerWorlds, one ReplicationLink per follower (the per-rack
// wire). This is the acceptance-test and bench harness for the hub: add
// followers, pump everything, kill the primary, and watch the lease
// protocol pick exactly one successor.
class ReplicationFleet {
 public:
  // Boots the primary machine; fs_options.replication must be enabled.
  ReplicationFleet(uint64_t boot_key, const FileServerOptions& fs_options);

  // Boots one follower machine and dials its link. Returns its index. A
  // nonzero read_tcp_port additionally opens that follower's read listener.
  size_t AddFollower(uint64_t boot_key, uint16_t tcp_port, StoreOptions store_opts,
                     FollowerOptions options = FollowerOptions(),
                     uint16_t read_tcp_port = 0);

  // One driver step: ferry every link, pump the primary (if alive) and
  // every follower.
  void Pump();
  // Pumps until every follower session is fully synced (and every follower
  // is connected). False when max_iters ran out first.
  bool PumpUntilSynced(int max_iters = 5000);

  // Kills the primary machine mid-stream: links torn down with it (the
  // wire dies with the rack), follower worlds keep running.
  void KillPrimary();

  // Lease-failover observability: how many followers auto-promoted, and
  // the index of the first one (-1 when none).
  int auto_promoted_count() const;
  int auto_promoted_index() const;

  FsPrimaryWorld* primary() { return primary_.get(); }
  FollowerWorld* follower(size_t i) { return followers_[i].get(); }
  size_t follower_count() const { return followers_.size(); }
  ReplicationLink* link(size_t i) { return links_[i].get(); }

 private:
  uint16_t primary_port_;
  std::unique_ptr<FsPrimaryWorld> primary_;
  std::vector<std::unique_ptr<FollowerWorld>> followers_;
  std::vector<std::unique_ptr<ReplicationLink>> links_;
};

// Drives a follower's read listener from outside the machine, the way the
// link drives replication and HttpLoadClient drives OKWS: one client
// connection into the follower netd's read port, speaking kReadReq →
// kReadResp. Tests and benches use it to exercise the staleness contract
// end to end over real frames.
class ReadClient {
 public:
  ReadClient(SimNet* net, uint16_t read_port, uint64_t auth_token);

  // Sends one read and calls `pump` (the caller's world-pumping step) until
  // the matching response lands. False when the connection closed or
  // max_iters pumps passed without an answer; *out is untouched then.
  bool Read(const std::string& key, const Label& clearance,
            const replwire::ReadCursorToken& token, const std::function<void()>& pump,
            ReadResult* out, int max_iters = 2000);

  bool connected() const { return conn_ != kNoConn; }

 private:
  void TryConnect();

  SimNet* net_;
  uint16_t port_;
  uint64_t auth_token_;
  uint64_t next_cookie_ = 1;
  ConnId conn_ = kNoConn;
  std::string rx_;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_LINK_H_
