#include "src/replication/follower.h"

#include "src/base/panic.h"
#include "src/net/netd.h"

namespace asbestos {

FollowerProcess::FollowerProcess(StoreOptions store_opts, uint64_t auth_token) {
  auto replica = ReplicaStore::Open(std::move(store_opts), auth_token);
  ASB_ASSERT(replica.ok() && "follower replica store failed to open");
  replica_ = replica.take();
}

void FollowerProcess::Start(ProcessContext& ctx) {
  notify_port_ = ctx.NewPort(Label::Top());  // closed; netd gets ⋆ below
  const Handle netd_ctl = Handle::FromValue(ctx.GetEnv("netd_ctl"));
  ASB_ASSERT(netd_ctl.valid() && "follower needs the netd control port");

  Message listen;
  listen.type = netd_proto::kListen;
  listen.words = {ctx.GetEnv("tcp_port")};
  listen.reply_port = notify_port_;
  SendArgs args;
  if (ctx.HasEnv("self_verify")) {
    args.verify =
        Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
  }
  args.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
  ctx.Send(netd_ctl, std::move(listen), args);
}

void FollowerProcess::IssueRead(ProcessContext& ctx) {
  Message read;
  read.type = netd_proto::kRead;
  read.words = {0 /*cookie*/, 0 /*all*/, 0 /*no peek*/, 0};
  read.reply_port = notify_port_;
  ctx.Send(conn_, std::move(read));
}

void FollowerProcess::EndSession(ProcessContext& ctx, bool close_conn) {
  if (!conn_.valid()) {
    return;
  }
  if (close_conn) {
    Message close;
    close.type = netd_proto::kControl;
    close.words = {0, netd_proto::kControlOpClose};
    ctx.Send(conn_, std::move(close));
  }
  ASB_ASSERT(ctx.SetSendLevel(conn_, kDefaultSendLevel) == Status::kOk);
  conn_ = Handle();
  rx_.clear();
  // Session boundaries are quiet moments: pin the cursor so a restart
  // resumes warm instead of re-shipping snapshots.
  (void)replica_->Checkpoint();
}

void FollowerProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (msg.port != notify_port_) {
    return;
  }
  switch (msg.type) {
    case netd_proto::kNotifyConn: {
      if (msg.words.empty()) {
        return;
      }
      const Handle uc = Handle::FromValue(msg.words[0]);
      if (conn_.valid() || replica_->promoted()) {
        Message close;
        close.type = netd_proto::kControl;
        close.words = {0, netd_proto::kControlOpClose};
        ctx.Send(uc, std::move(close));
        ASB_ASSERT(ctx.SetSendLevel(uc, kDefaultSendLevel) == Status::kOk);
        return;
      }
      conn_ = uc;
      rx_.clear();
      ++sessions_accepted_;
      IssueRead(ctx);
      return;
    }
    case netd_proto::kReadR: {
      if (!conn_.valid()) {
        return;  // stale reply from an ended session
      }
      const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
      rx_.append(msg.data);
      std::string acks;
      replwire::WireMessage frame;
      for (;;) {
        const replwire::FrameParse p = replwire::ConsumeFrame(&rx_, &frame);
        if (p == replwire::FrameParse::kNeedMore) {
          break;  // torn frame: keep the prefix, await the rest
        }
        if (p == replwire::FrameParse::kCorrupt ||
            !IsOk(replica_->HandleFrame(frame, &acks))) {
          EndSession(ctx, /*close_conn=*/true);
          return;
        }
      }
      if (!acks.empty()) {
        Message write;
        write.type = netd_proto::kWrite;
        write.words = {0};
        write.data = std::move(acks);
        ctx.Send(conn_, std::move(write));
      }
      if (eof) {
        EndSession(ctx, /*close_conn=*/true);
      } else {
        IssueRead(ctx);
      }
      return;
    }
    default:
      return;
  }
}

void FollowerProcess::OnIdle(ProcessContext& ctx) {
  (void)ctx;
  ASB_ASSERT(replica_->SyncPipelined() == Status::kOk);
}

Status FollowerProcess::Promote(ProcessContext& ctx) {
  EndSession(ctx, /*close_conn=*/true);
  return replica_->Promote();
}

}  // namespace asbestos
