#include "src/replication/follower.h"

#include "src/base/panic.h"
#include "src/net/netd.h"
#include "src/sim/costs.h"
#include "src/sim/cycles.h"

namespace asbestos {

FollowerProcess::FollowerProcess(StoreOptions store_opts, FollowerOptions options)
    : options_(options) {
  ReplicaOptions ropts;
  ropts.auth_token = options.auth_token;
  ropts.follower_id = options.follower_id;
  auto replica = ReplicaStore::Open(std::move(store_opts), ropts);
  ASB_ASSERT(replica.ok() && "follower replica store failed to open");
  replica_ = replica.take();
  read_gate_ = std::make_unique<ReadGate>(replica_.get());
}

void FollowerProcess::Start(ProcessContext& ctx) {
  notify_port_ = ctx.NewPort(Label::Top());  // closed; netd gets ⋆ below
  const Handle netd_ctl = Handle::FromValue(ctx.GetEnv("netd_ctl"));
  ASB_ASSERT(netd_ctl.valid() && "follower needs the netd control port");

  Message listen;
  listen.type = netd_proto::kListen;
  listen.words = {ctx.GetEnv("tcp_port")};
  listen.reply_port = notify_port_;
  SendArgs args;
  if (ctx.HasEnv("self_verify")) {
    args.verify =
        Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
  }
  args.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
  ctx.Send(netd_ctl, std::move(listen), args);

  if (ctx.HasEnv("read_tcp_port")) {
    read_notify_port_ = ctx.NewPort(Label::Top());
    Message rlisten;
    rlisten.type = netd_proto::kListen;
    rlisten.words = {ctx.GetEnv("read_tcp_port")};
    rlisten.reply_port = read_notify_port_;
    SendArgs rargs;
    if (ctx.HasEnv("self_verify")) {
      rargs.verify =
          Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
    }
    rargs.decont_send = Label({{read_notify_port_, Level::kStar}}, Level::kL3);
    ctx.Send(netd_ctl, std::move(rlisten), rargs);
  }
}

void FollowerProcess::IssueRead(ProcessContext& ctx) {
  Message read;
  read.type = netd_proto::kRead;
  read.words = {0 /*cookie*/, 0 /*all*/, 0 /*no peek*/, 0};
  read.reply_port = notify_port_;
  ctx.Send(conn_, std::move(read));
}

void FollowerProcess::EndSession(ProcessContext& ctx, bool close_conn) {
  if (!conn_.valid()) {
    return;
  }
  if (close_conn) {
    Message close;
    close.type = netd_proto::kControl;
    close.words = {0, netd_proto::kControlOpClose};
    ctx.Send(conn_, std::move(close));
  }
  ASB_ASSERT(ctx.SetSendLevel(conn_, kDefaultSendLevel) == Status::kOk);
  conn_ = Handle();
  rx_.clear();
  // Session boundaries are quiet moments: pin the cursor so a restart
  // resumes warm instead of re-shipping snapshots.
  (void)replica_->Checkpoint();
}

void FollowerProcess::IssueReadConnRead(ProcessContext& ctx, uint64_t cookie) {
  const auto it = read_conns_.find(cookie);
  if (it == read_conns_.end()) {
    return;
  }
  Message read;
  read.type = netd_proto::kRead;
  read.words = {cookie, 0 /*all*/, 0 /*no peek*/, 0};
  read.reply_port = read_notify_port_;
  ctx.Send(it->second.uc, std::move(read));
}

void FollowerProcess::CloseReadConn(ProcessContext& ctx, uint64_t cookie) {
  const auto it = read_conns_.find(cookie);
  if (it == read_conns_.end()) {
    return;
  }
  Message close;
  close.type = netd_proto::kControl;
  close.words = {cookie, netd_proto::kControlOpClose};
  ctx.Send(it->second.uc, std::move(close));
  ASB_ASSERT(ctx.SetSendLevel(it->second.uc, kDefaultSendLevel) == Status::kOk);
  read_conns_.erase(it);
}

void FollowerProcess::CloseAllReadConns(ProcessContext& ctx) {
  while (!read_conns_.empty()) {
    CloseReadConn(ctx, read_conns_.begin()->first);
  }
}

void FollowerProcess::HandleReadPlane(ProcessContext& ctx, const Message& msg) {
  switch (msg.type) {
    case netd_proto::kNotifyConn: {
      if (msg.words.empty()) {
        return;
      }
      const Handle uc = Handle::FromValue(msg.words[0]);
      if (replica_->promoted()) {
        // Promotion ended the follower role; the read plane ends with it
        // (the adopting primary serves its own reads).
        Message close;
        close.type = netd_proto::kControl;
        close.words = {0, netd_proto::kControlOpClose};
        ctx.Send(uc, std::move(close));
        ASB_ASSERT(ctx.SetSendLevel(uc, kDefaultSendLevel) == Status::kOk);
        return;
      }
      const uint64_t cookie = next_read_cookie_++;
      read_conns_[cookie] = ReadConn{uc, std::string()};
      ++read_sessions_accepted_;
      IssueReadConnRead(ctx, cookie);
      return;
    }
    case netd_proto::kReadR: {
      if (msg.words.empty()) {
        return;
      }
      const uint64_t cookie = msg.words[0];
      const auto it = read_conns_.find(cookie);
      if (it == read_conns_.end()) {
        return;  // stale reply from a closed read connection
      }
      const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
      it->second.rx.append(msg.data);
      std::string tx;
      replwire::WireMessage frame;
      for (;;) {
        const replwire::FrameParse p = replwire::ConsumeFrame(&it->second.rx, &frame);
        if (p == replwire::FrameParse::kNeedMore) {
          break;
        }
        // A read connection speaks exactly one frame type, authenticated
        // with the replication session secret; anything else poisons it.
        if (p == replwire::FrameParse::kCorrupt ||
            frame.type != replwire::kReadReq ||
            frame.token != options_.auth_token) {
          CloseReadConn(ctx, cookie);
          return;
        }
        const ReadResult res =
            read_gate_->Serve(frame.key, frame.label, frame.cursor, frame.trace_id);
        replwire::WireMessage resp;
        resp.type = replwire::kReadResp;
        resp.cookie = frame.cookie;
        resp.read_status = static_cast<uint64_t>(res.status);
        resp.staleness = res.staleness_cycles;
        resp.cursor = res.applied;
        resp.label = res.secrecy;
        resp.payload = Payload(res.value);
        resp.trace_id = frame.trace_id;
        replwire::AppendFrame(resp, &tx);
      }
      if (!tx.empty()) {
        Message write;
        write.type = netd_proto::kWrite;
        write.words = {cookie};
        write.data = std::move(tx);
        ctx.Send(it->second.uc, std::move(write));
      }
      if (eof) {
        CloseReadConn(ctx, cookie);
      } else {
        IssueReadConnRead(ctx, cookie);
      }
      return;
    }
    default:
      return;
  }
}

void FollowerProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (read_notify_port_.valid() && msg.port == read_notify_port_) {
    HandleReadPlane(ctx, msg);
    return;
  }
  if (msg.port != notify_port_) {
    return;
  }
  switch (msg.type) {
    case netd_proto::kNotifyConn: {
      if (msg.words.empty()) {
        return;
      }
      const Handle uc = Handle::FromValue(msg.words[0]);
      const bool backing_off = GetCycleAccounting().now() < backoff_until_cycles_;
      if (conn_.valid() || replica_->promoted() || backing_off) {
        Message close;
        close.type = netd_proto::kControl;
        close.words = {0, netd_proto::kControlOpClose};
        ctx.Send(uc, std::move(close));
        ASB_ASSERT(ctx.SetSendLevel(uc, kDefaultSendLevel) == Status::kOk);
        return;
      }
      conn_ = uc;
      rx_.clear();
      ++sessions_accepted_;
      IssueRead(ctx);
      return;
    }
    case netd_proto::kReadR: {
      if (!conn_.valid()) {
        return;  // stale reply from an ended session
      }
      const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
      rx_.append(msg.data);
      std::string acks;
      replwire::WireMessage frame;
      for (;;) {
        const replwire::FrameParse p = replwire::ConsumeFrame(&rx_, &frame);
        if (p == replwire::FrameParse::kNeedMore) {
          break;  // torn frame: keep the prefix, await the rest
        }
        if (p == replwire::FrameParse::kCorrupt) {
          EndSession(ctx, /*close_conn=*/true);
          return;
        }
        const Status s = replica_->HandleFrame(frame, &acks);
        if (s == Status::kWouldBlock) {
          // Explicit kBusy refusal: back off instead of hot-reconnecting.
          ++busy_signals_;
          const uint64_t wait = replica_->busy_retry_after() != 0
                                    ? replica_->busy_retry_after()
                                    : options_.busy_backoff_cycles;
          backoff_until_cycles_ = GetCycleAccounting().now() + wait;
          EndSession(ctx, /*close_conn=*/true);
          return;
        }
        if (!IsOk(s)) {
          EndSession(ctx, /*close_conn=*/true);
          return;
        }
      }
      if (!acks.empty()) {
        Message write;
        write.type = netd_proto::kWrite;
        write.words = {0};
        write.data = std::move(acks);
        ctx.Send(conn_, std::move(write));
      }
      if (eof) {
        EndSession(ctx, /*close_conn=*/true);
      } else {
        IssueRead(ctx);
      }
      return;
    }
    default:
      return;
  }
}

void FollowerProcess::CheckLease(ProcessContext& ctx) {
  if (replica_->promoted() || replica_->lease_until() == 0) {
    return;
  }
  // The local failover timer tick: while a lease is being tracked, the
  // clock must keep moving toward the deadline even after the primary (and
  // all the traffic that used to advance it) is gone.
  ctx.ChargeCycles(costs::kLeaseCheckCycles);
  const uint64_t now = GetCycleAccounting().now();
  if (!replica_->LeaseExpired(now)) {
    return;
  }
  lease_expired_ = true;
  if (!options_.auto_promote || options_.follower_id == 0 ||
      replica_->successor_id() != options_.follower_id) {
    return;  // not the designated successor: stand by
  }
  // The primary's own last designation names us: take over. Exactly one
  // replica passes this test — the designation was computed once, by the
  // primary, and distributed to everyone before it died.
  EndSession(ctx, /*close_conn=*/true);
  CloseAllReadConns(ctx);
  ASB_ASSERT(replica_->Promote() == Status::kOk);
  auto_promoted_ = true;
}

void FollowerProcess::OnIdle(ProcessContext& ctx) {
  ASB_ASSERT(replica_->SyncPipelined() == Status::kOk);
  CheckLease(ctx);
}

Status FollowerProcess::Promote(ProcessContext& ctx) {
  EndSession(ctx, /*close_conn=*/true);
  CloseAllReadConns(ctx);
  return replica_->Promote();
}

}  // namespace asbestos
