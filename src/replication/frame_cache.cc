#include "src/replication/frame_cache.h"

#include "src/obs/metrics.h"

namespace {
// Process-wide mirrors of the per-instance stats, so a metrics snapshot
// taken after every hub is gone still carries the frame-cache family.
asbestos::obs::Counter& HitCounter() {
  static asbestos::obs::Counter& c =
      asbestos::obs::Registry::Get().counter("repl.frame_cache.hits");
  return c;
}
asbestos::obs::Counter& MissCounter() {
  static asbestos::obs::Counter& c =
      asbestos::obs::Registry::Get().counter("repl.frame_cache.misses");
  return c;
}
asbestos::obs::Counter& EvictionCounter() {
  static asbestos::obs::Counter& c =
      asbestos::obs::Registry::Get().counter("repl.frame_cache.evictions");
  return c;
}
asbestos::obs::Counter& HitBytesCounter() {
  static asbestos::obs::Counter& c =
      asbestos::obs::Registry::Get().counter("repl.frame_cache.hit_bytes");
  return c;
}
}  // namespace

namespace asbestos {

bool FrameCache::Lookup(uint32_t shard, uint64_t generation, uint64_t offset,
                        uint64_t want_bytes, uint64_t tail_off, Payload* span) {
  const Key key{shard, generation, offset};
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    MissCounter().Add();
    return false;
  }
  Entry& e = *it->second;
  const bool covers_request = e.span.size() >= want_bytes;
  const bool covers_tail = offset + e.span.size() == tail_off;
  if (!covers_request && !covers_tail) {
    // The log grew past this entry since it was cached; serving it would
    // shrink every follower's batches to the stalest reader's view.
    stats_.misses += 1;
    MissCounter().Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits += 1;
  stats_.hit_bytes += e.span.size();
  HitCounter().Add();
  HitBytesCounter().Add(e.span.size());
  *span = e.span;  // refcount bump: caller and cache share one buffer
  return true;
}

void FrameCache::Insert(uint32_t shard, uint64_t generation, uint64_t offset,
                        const Payload& span) {
  if (max_bytes_ == 0 || span.size() > max_bytes_) {
    return;  // cache disabled, or a span no budget could hold
  }
  const Key key{shard, generation, offset};
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->span.size() >= span.size()) {
      return;  // the resident entry is at least as long; keep it
    }
    stats_.bytes -= it->second->span.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, span});
  index_[key] = lru_.begin();
  stats_.bytes += span.size();
  EvictToBudget();
}

void FrameCache::EvictToBudget() {
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.span.size();
    stats_.evictions += 1;
    EvictionCounter().Add();
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace asbestos
