#include "src/replication/frame_cache.h"

namespace asbestos {

bool FrameCache::Lookup(uint32_t shard, uint64_t generation, uint64_t offset,
                        uint64_t want_bytes, uint64_t tail_off, std::string* span) {
  const Key key{shard, generation, offset};
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses += 1;
    return false;
  }
  Entry& e = *it->second;
  const bool covers_request = e.span.size() >= want_bytes;
  const bool covers_tail = offset + e.span.size() == tail_off;
  if (!covers_request && !covers_tail) {
    // The log grew past this entry since it was cached; serving it would
    // shrink every follower's batches to the stalest reader's view.
    stats_.misses += 1;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits += 1;
  stats_.hit_bytes += e.span.size();
  *span = e.span;
  return true;
}

void FrameCache::Insert(uint32_t shard, uint64_t generation, uint64_t offset,
                        const std::string& span) {
  if (max_bytes_ == 0 || span.size() > max_bytes_) {
    return;  // cache disabled, or a span no budget could hold
  }
  const Key key{shard, generation, offset};
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->span.size() >= span.size()) {
      return;  // the resident entry is at least as long; keep it
    }
    stats_.bytes -= it->second->span.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, span});
  index_[key] = lru_.begin();
  stats_.bytes += span.size();
  EvictToBudget();
}

void FrameCache::EvictToBudget() {
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.span.size();
    stats_.evictions += 1;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace asbestos
