// Replication wire format: label-preserving WAL shipping between stores.
//
// The durable store's WAL is already a self-delimiting, CRC-framed record
// stream with labels pickled inside every Put record (src/store/wal.h,
// src/store/label_codec.h), so replication ships those bytes verbatim: a
// follower that replays a shipped span through the same apply path as crash
// recovery reconstructs records, secrecy labels, and integrity labels
// bit-exactly, interning labels through the canonical-rep table as it goes.
//
// The stream between a primary and a follower is a sequence of frames with
// the same framing as the WAL itself:
//
//   ┌──────────────┬───────────────┬──────────────────────┐
//   │ len: u32 LE  │ crc32: u32 LE │ payload (len bytes)  │
//   └──────────────┴───────────────┴──────────────────────┘
//
// so a torn TCP read is detected exactly like a torn log tail: the parser
// waits for the rest of the frame, and a CRC mismatch poisons the session
// (the follower re-syncs on reconnect). Frame payloads are codec varints:
//
//   kHello     token, source_id, shard_count,   primary → follower, once
//              lease_until
//   kBatch     shard, generation, start_offset, primary → follower
//              lease_until, successor_id,
//              raw WAL bytes (whole frames)
//   kSnapshot  shard, generation, offset,       primary → follower, catch-up
//              lease_until, successor_id,
//              snapshot image (disk format)
//   kAck       token, shard, source_id,         follower → primary
//              generation, applied offset,
//              follower_id
//   kHeartbeat lease_until, successor_id        primary → follower, when idle
//   kBusy      retry_after_cycles               primary → follower, then close
//   kGenMark   shard, from-generation,          primary → follower, at compaction
//              from-offset, lease_until,
//              successor_id
//   kReadReq   token, cookie, key,              reader → follower
//              cursor token, clearance label
//   kReadResp  cookie, read status, staleness,  follower → reader
//              applied cursor, secrecy label,
//              value bytes
//
// kGenMark is the compaction hand-off for fully-synced followers: when the
// primary compacts a shard but retains the old generation's WAL tail
// (StoreOptions::retain_wal_tail_bytes), a follower that has applied the
// retained span to its end receives one kGenMark naming that end position
// and atomically advances its cursor to (generation+1, 0) — no snapshot
// re-image. A follower anywhere else re-acks its true cursor and the source
// falls back to a snapshot as before.
//
// kReadReq/kReadResp are the follower-read plane (see src/replication/
// read_gate.h): a labeled read carries the session's cursor token — the
// (source, shard, generation, offset) ack position stamped at its last
// write — and the reader's clearance label. The follower answers only when
// its lease is fresh AND its applied cursor covers the token; refusals name
// the reason so the client retries at the primary.
//
// Lease stamping (automatic failover): every kHello/kBatch/kSnapshot/
// kHeartbeat from a live primary carries `lease_until`, a virtual-clock
// deadline by which the primary promises to have spoken again, and
// kBatch/kSnapshot/kHeartbeat also carry
// `successor_id` — the follower id the primary currently designates to take
// over (deterministically: the LOWEST follower id among caught-up replicas).
// A follower whose lease expires without refresh and whose own id matches
// the last designation promotes itself; every other follower waits. Acks
// carry the follower's configured id so the primary can designate.
//
// kBusy is the explicit over-capacity refusal: an endpoint already serving
// its configured maximum of followers writes one kBusy frame (with a
// back-off hint in virtual cycles) before closing, so the refused follower
// pauses instead of hot-reconnecting into the same refusal.
//
// `token` is the session's shared secret (ReplicationOptions::auth_token):
// the follower refuses a hello whose token differs from its own, and the
// source ignores acks whose token differs — and since nothing ships until
// a shard's resume ack arrives, an unauthenticated peer that connects to
// either side receives no labeled data, only a hello header. Both sides
// must be configured with the same value; 0 (the default) means an
// unauthenticated closed testbed.
//
// Positions are per-shard (generation, offset) pairs into the PRIMARY's WAL
// history: offsets advance within a generation, and compaction starts a new
// generation whose offsets restart at 0 (old spans are gone — the source
// ships a snapshot instead). Acks carry the source_id so a source never
// mistakes a cursor into some other primary's history for its own.
#ifndef SRC_REPLICATION_WIRE_H_
#define SRC_REPLICATION_WIRE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/kernel/payload.h"
#include "src/labels/label.h"

namespace asbestos {
namespace replwire {

enum MessageType : uint64_t {
  kHello = 1,
  kBatch = 2,
  kSnapshot = 3,
  kAck = 4,
  kHeartbeat = 5,
  kBusy = 6,
  kGenMark = 7,
  kReadReq = 8,
  kReadResp = 9,
};

// A session's read-your-writes position: the primary's per-shard WAL cursor
// at the session's last acknowledged write. A follower may answer a read
// carrying this token only when its applied cursor for the shard covers it —
// same source, and either a later generation (compaction only ever advances
// a fully-applied cursor) or the same generation at `offset` or beyond.
// source_id == 0 is the empty token: the session never wrote, any fresh
// follower may answer.
struct ReadCursorToken {
  uint64_t source_id = 0;
  uint64_t shard = 0;
  uint64_t generation = 0;
  uint64_t offset = 0;

  bool empty() const { return source_id == 0; }
};

struct WireMessage {
  uint64_t type = 0;
  uint64_t token = 0;        // kHello, kAck: session shared secret
  uint64_t source_id = 0;    // kHello, kAck
  uint64_t shard_count = 0;  // kHello
  uint64_t shard = 0;        // kBatch, kSnapshot, kAck, kGenMark
  uint64_t generation = 0;   // kBatch, kSnapshot, kAck, kGenMark
  uint64_t offset = 0;       // kBatch: span start; kSnapshot/kAck: position covered
  uint64_t lease_until = 0;  // kHello/kBatch/kHeartbeat/kGenMark: lease deadline
  uint64_t successor_id = 0; // kBatch/kHeartbeat/kGenMark: designated failover id
  uint64_t follower_id = 0;  // kAck: the follower's configured id (0 = bystander)
  uint64_t retry_after = 0;  // kBusy: suggested back-off in virtual cycles
  uint64_t cookie = 0;       // kReadReq/kReadResp: request id, echoed verbatim
  uint64_t read_status = 0;  // kReadResp: ReadStatus (src/replication/read_gate.h)
  uint64_t staleness = 0;    // kReadResp: cycles since the follower last heard
  ReadCursorToken cursor;    // kReadReq: the session token; kReadResp: applied
  Label label = Label::Bottom();  // kReadReq: clearance; kReadResp: value secrecy
  std::string key;           // kReadReq: the store key to read
  // Flow-trace id of the session (src/obs/trace.h), minted at hello and
  // stamped on every subsequent frame so replication traffic can be
  // followed end to end like an OKWS request. Carried by every frame type;
  // 0 means untraced. Purely observational: no protocol decision reads it.
  uint64_t trace_id = 0;
  // Sender's cycle-profiler span stack at frame build time (src/obs/
  // profiler.h), empty when profiling is off. The receiver opens its apply
  // span WITH this parent context so one merged flamegraph nests follower
  // work under the primary's ship stack. Carried by every frame type after
  // trace_id (one length byte when empty); like trace_id it is purely
  // observational.
  std::string prof_ctx;
  // kBatch: raw WAL frames; kSnapshot: image. A refcounted buffer view
  // (src/kernel/payload.h): the hub's frame cache, each follower session's
  // outgoing batch, and the kernel queue entry all share one buffer, so a
  // K-follower fan-out of a WAL span is one allocation end to end.
  Payload payload;
};

// Serializes `msg` as one CRC-framed wire frame appended to `out`.
void AppendFrame(const WireMessage& msg, std::string* out);

// Incremental frame parser outcomes for a byte-stream transport.
enum class FrameParse {
  kFrame,     // one complete frame consumed; *msg is valid
  kNeedMore,  // the buffer ends mid-frame: keep the bytes, wait for more
  kCorrupt,   // CRC or payload decode failure: the session is poisoned
};

// Attempts to consume one frame from the front of `buffer`. On kFrame the
// frame's bytes are erased from the buffer and *msg is filled; on kNeedMore
// the buffer is untouched; on kCorrupt the buffer contents are undefined
// (callers drop the session).
FrameParse ConsumeFrame(std::string* buffer, WireMessage* msg);

// Splits a raw WAL byte span (as read by DurableStore::ReadShardWal) at
// whole-frame boundaries: returns the largest prefix length ≤ max_bytes that
// ends on a frame boundary (0 when even the first frame exceeds max_bytes —
// the caller ships that one frame alone; WAL frames are never re-fragmented).
uint64_t WalFramePrefix(std::string_view span, uint64_t max_bytes);

// Total byte length (header + payload) of the first WAL frame in `span`, as
// named by its header — the frame itself may extend past the span. 0 when
// the span is shorter than a frame header.
uint64_t FirstWalFrameBytes(std::string_view span);

// Walks the WAL frames inside a kBatch payload, invoking `fn(payload)` per
// record. kInvalidArgs on any framing/CRC violation (a batch is shipped
// whole, so unlike log recovery a torn interior is corruption, not a crash).
Status ForEachWalRecord(std::string_view batch,
                        const std::function<Status(std::string_view)>& fn);

}  // namespace replwire
}  // namespace asbestos

#endif  // SRC_REPLICATION_WIRE_H_
