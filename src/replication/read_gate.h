// ReadGate: per-request admission for follower-served labeled reads.
//
// A follower is allowed to answer a read only when two independent bounds
// hold (ISSUE 8, ROADMAP "Follower reads"):
//
//   1. Lease freshness — the follower's lease (`lease_until`, stamped by the
//      primary on every kHello/kBatch/kHeartbeat; see src/replication/
//      wire.h) has not expired against the virtual clock. An expired lease
//      means the primary may have moved on without us: the follower refuses
//      ALL reads (kRefusedStaleLease) rather than serve unboundedly stale
//      data. The lease interval is therefore the user-visible staleness
//      bound: a served read is never staler than one lease interval plus
//      apply lag.
//
//   2. Read-your-writes — the request carries the session's cursor token
//      (the primary (generation, offset) ack position stamped into the
//      session at its last write). A follower whose applied cursor for the
//      token's shard trails the token refuses (kRefusedCursorLag) with its
//      applied position as the retry-at-primary hint. Generations only
//      advance once fully applied (snapshot install or kGenMark hand-off),
//      so `applied.generation > token.generation` always covers the token.
//
// Admitted reads are label-checked with the SAME fused flow check the
// kernel's IPC delivery path runs — CheckDeliveryAllowed with the record's
// secrecy as the effective send label and the reader's clearance as the
// receive bound — and the charged cycles use the kernel's exact formula
// (fused work × kLabelEntryCycles + kLabelOpBaseCycles, attributed to
// Component::kKernelIpc), so a follower-served read costs bit-identical
// label cycles to the primary answering the same request. The verdict cache
// and interned labels make the repeated-session hot path a table probe on
// both sides.
//
// The gate also runs in PRIMARY mode (a DurableStore instead of a replica):
// the primary is the source of all tokens, so admission always passes and
// staleness is zero — this is the K=1 baseline the fan-out bench compares
// against, and it keeps routing inert when no followers exist.
#ifndef SRC_REPLICATION_READ_GATE_H_
#define SRC_REPLICATION_READ_GATE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/labels/label.h"
#include "src/replication/replica.h"
#include "src/replication/wire.h"
#include "src/store/store.h"

namespace asbestos {

// Wire-stable verdict codes (carried in kReadResp.read_status).
enum class ReadStatus : uint64_t {
  kOk = 0,
  kNotFound = 1,           // admitted, key absent at the applied cursor
  kAccessDenied = 2,       // admitted, but the flow check refused the reader
  kRefusedStaleLease = 3,  // lease expired: retry at the primary
  kRefusedCursorLag = 4,   // applied cursor trails the token: retry at primary
  kRefusedExpired = 5,     // record exists but the liveness filter killed it
};

const char* ReadStatusName(ReadStatus s);

struct ReadResult {
  ReadStatus status = ReadStatus::kNotFound;
  std::string value;                     // kOk only
  Label secrecy = Label(Level::kStar);   // kOk only: the record's compartment
  // Cycles since the serving store last heard from the primary (0 on the
  // primary itself) — the realized staleness of this answer.
  uint64_t staleness_cycles = 0;
  // The serving store's applied cursor for the token's shard: the
  // retry-at-primary hint on refusal, the covered proof on success.
  replwire::ReadCursorToken applied;
};

// Domain-specific record liveness (satellite: the demux session table must
// enforce expiry identically on follower and primary). Returns false when
// the record must be treated as dead: the gate answers kRefusedExpired and
// never leaks the stale bytes.
using ReadLivenessFilter =
    std::function<bool(const std::string& key, const StoreRecord& record)>;

class ReadGate {
 public:
  // Follower mode: admission from the replica's lease and applied cursors;
  // serving goes through the replica's epoch-pinned read view so a serve
  // never races ApplyReplicatedRecord.
  explicit ReadGate(const ReplicaStore* replica) : replica_(replica) {}

  // Primary mode: `source_id` is the hub's source id (tokens it minted are
  // covered by definition). Admission always passes; staleness is zero.
  ReadGate(const DurableStore* store, uint64_t source_id)
      : primary_(store), source_id_(source_id) {}

  // Optional per-domain liveness hook (see ReadLivenessFilter).
  void set_liveness_filter(ReadLivenessFilter f) { liveness_ = std::move(f); }

  // Decides and (when admitted) serves one labeled read. Charges the label
  // check exactly as the kernel IPC path would, plus the base serve cost.
  // `trace_id` is the request's flow id, stamped onto refusal-forensics
  // records (src/obs/provenance.h); 0 means untraced.
  ReadResult Serve(const std::string& key, const Label& clearance,
                   const replwire::ReadCursorToken& token,
                   uint64_t trace_id = 0) const;

  // Admission alone (no lookup, no label check, no cycle charges): the
  // demux router uses this shape against ack-reported cursors to pick a
  // follower *likely* to answer; the follower's own gate re-decides
  // authoritatively.
  static bool CursorCovers(const replwire::ReadCursorToken& applied,
                           const replwire::ReadCursorToken& token);

 private:
  ReadResult Admit(const replwire::ReadCursorToken& token,
                   uint64_t trace_id) const;
  // "follower<id>" or "primary": the provenance subject and counter scope.
  std::string GateName() const;

  const ReplicaStore* replica_ = nullptr;  // follower mode
  const DurableStore* primary_ = nullptr;  // primary mode
  uint64_t source_id_ = 0;                 // primary mode
  ReadLivenessFilter liveness_;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_READ_GATE_H_
