// ReplicaStore: a follower's durable store fed by a replication stream.
//
// The replica owns a DurableStore of its own and applies shipped WAL
// records through DurableStore::ApplyReplicatedRecord — the exact apply
// path local crash recovery replays — so records, secrecy labels, and
// integrity labels land bit-identically to a primary that recovered the
// same history, and Promote() is nothing more than draining the pipeline:
// the store IS a primary store the moment batches stop.
//
// Apply is idempotent and in-order per shard:
//   * a batch at exactly the expected (generation, offset) applies and
//     advances the cursor;
//   * a batch at or below the cursor is a duplicate: skipped, re-acked;
//   * a gap or generation mismatch is ignored and the current position
//     re-acked — the go-back-N source rewinds (or ships a snapshot).
// Reordered and duplicated delivery therefore converge to the same state
// as in-order delivery, which the edge-case tests exercise directly.
//
// Cursor durability: the per-shard primary cursor is checkpointed to
// <dir>/replcursor only when everything it covers is durably applied
// (after a full Sync) — a crashed follower whose cursor lags simply
// re-receives records it already holds (idempotent), while a cursor that
// ran AHEAD of durable state would silently lose the difference, so the
// checkpoint never does. A follower with no usable cursor (fresh dir, or
// following a primary with a different source_id) acks an unknown position
// and is caught up by snapshot.
//
// Lease bookkeeping: the replica records the newest lease deadline and
// successor designation stamped on incoming kHello/kBatch/kHeartbeat
// frames, and carries its configured follower id in every ack. It never
// ACTS on expiry itself — the owning FollowerProcess polls LeaseExpired()
// from its OnIdle hook and decides whether this replica is the designated
// successor (src/replication/follower.h).
#ifndef SRC_REPLICATION_REPLICA_H_
#define SRC_REPLICATION_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/replication/wire.h"
#include "src/store/store.h"

namespace asbestos {

struct ReplicaStoreStats {
  uint64_t batches_applied = 0;
  uint64_t records_applied = 0;
  uint64_t snapshots_installed = 0;
  uint64_t duplicates_skipped = 0;  // batches at/below the cursor
  uint64_t gaps_ignored = 0;        // batches past the cursor or wrong gen
  uint64_t heartbeats_seen = 0;     // kHeartbeat frames (lease refreshes)
  uint64_t busy_signals = 0;        // kBusy refusals from an at-capacity primary
  uint64_t gen_marks_applied = 0;   // compaction hand-offs ridden through
};

struct ReplicaOptions {
  // Must match the primary's ReplicationOptions::auth_token: a hello
  // carrying a different token poisons the session before any state is
  // accepted.
  uint64_t auth_token = 0;
  // This replica's failover identity, carried in every ack so the primary
  // can designate a successor (lowest caught-up id wins). 0 = bystander:
  // the replica mirrors but never participates in automatic failover.
  uint64_t follower_id = 0;
};

class ReplicaStore {
 public:
  // Opens (or creates) the replica's own durable store and loads any
  // checkpointed cursor.
  static Result<std::unique_ptr<ReplicaStore>> Open(StoreOptions opts,
                                                    ReplicaOptions options = ReplicaOptions());

  // Handles one parsed wire frame from the primary. Ack frames to send
  // back (if any) are appended to `ack_out`. kInvalidArgs poisons the
  // session (shard-count mismatch); kBadState after Promote();
  // kWouldBlock on a kBusy refusal (end the session and back off).
  Status HandleFrame(const replwire::WireMessage& msg, std::string* ack_out);

  // Group commit of everything applied this pump (see DurableStore); a full
  // checkpoint also persists the cursor. A no-op after TakeStore() — the
  // promoted owner syncs for itself, but the shell may still be pumped.
  Status SyncPipelined() { return store_ == nullptr ? Status::kOk : store_->SyncPipelined(); }
  Status Checkpoint();

  // Ends the follower role: drains and checkpoints the store, then refuses
  // every further frame. The store is now a primary store — reopening its
  // directory recovers exactly what single-node crash recovery would.
  Status Promote();
  bool promoted() const { return promoted_; }

  // Releases the underlying store to the promoted primary (the replica is
  // an empty shell afterwards). Promote() first.
  std::unique_ptr<DurableStore> TakeStore();

  DurableStore* store() { return store_.get(); }
  const DurableStore* store() const { return store_.get(); }
  const ReplicaStoreStats& stats() const { return stats_; }
  uint64_t session_source() const { return session_source_; }
  uint64_t follower_id() const { return options_.follower_id; }
  // Flow-trace id the current session's kHello carried (0 = no session, or
  // an untraced primary). Frames the replica applies are spanned under it.
  uint64_t session_trace_id() const { return session_trace_id_; }

  // --- Lease state (automatic failover; see src/replication/follower.h) ------
  // The newest lease deadline heard from the primary (kHello/kBatch/
  // kHeartbeat); 0 = no lease in effect.
  uint64_t lease_until() const { return lease_until_; }
  // The successor the primary last designated; 0 = none.
  uint64_t successor_id() const { return successor_id_; }
  // True when a tracked lease has run out: the primary has not spoken by
  // its own deadline.
  bool LeaseExpired(uint64_t now_cycles) const {
    return lease_until_ != 0 && now_cycles > lease_until_;
  }
  // The back-off hint from the last kBusy refusal (0 = never refused).
  uint64_t busy_retry_after() const { return busy_retry_after_; }

  // --- Follower reads (src/replication/read_gate.h) --------------------------
  // The applied position for one shard, in cursor-token form: what the read
  // gate compares a session's token against, and what acks already carry to
  // the primary for routing.
  replwire::ReadCursorToken applied_cursor(uint32_t shard) const {
    replwire::ReadCursorToken t;
    const Cursor& c = cursors_[shard];
    t.source_id = c.source_id;
    t.shard = shard;
    t.generation = c.generation;
    t.offset = c.offset;
    return t;
  }
  // Virtual-clock instant of the newest frame heard from the primary
  // (0 = never): `now - last_heard` is the realized staleness a served
  // read reports.
  uint64_t last_heard_cycles() const { return last_heard_cycles_; }

  // An epoch-pinned window onto the replica's records: Get() asserts no
  // apply landed since the view was taken, so a serve can never interleave
  // with ApplyReplicatedRecord half-applying a batch. Views are meant to be
  // taken per request and dropped before control returns to the pump.
  class ReadView {
   public:
    const StoreRecord* Get(const std::string& key) const;

   private:
    friend class ReplicaStore;
    ReadView(const ReplicaStore* owner, uint64_t epoch)
        : owner_(owner), epoch_(epoch) {}
    const ReplicaStore* owner_;
    uint64_t epoch_;
  };
  ReadView read_view() const { return ReadView(this, read_epoch_); }
  uint64_t read_epoch() const { return read_epoch_; }

 private:
  struct Cursor {
    uint64_t source_id = 0;  // 0 = never synced to anyone
    uint64_t generation = 0;
    uint64_t offset = 0;
  };

  explicit ReplicaStore(std::string dir) : dir_(std::move(dir)) {}

  void AppendAck(uint32_t shard, std::string* out) const;
  void LoadCursorFile();
  void TrackLease(const replwire::WireMessage& msg);

  std::string dir_;
  std::unique_ptr<DurableStore> store_;
  std::vector<Cursor> cursors_;
  ReplicaOptions options_;
  uint64_t session_source_ = 0;  // from kHello; 0 = no session yet
  uint64_t session_trace_id_ = 0;  // from kHello; the session's flow trace
  uint64_t lease_until_ = 0;
  uint64_t successor_id_ = 0;
  uint64_t busy_retry_after_ = 0;
  uint64_t last_heard_cycles_ = 0;
  uint64_t read_epoch_ = 0;  // bumped per mutating apply; pins ReadViews
  bool promoted_ = false;
  ReplicaStoreStats stats_;
};

}  // namespace asbestos

#endif  // SRC_REPLICATION_REPLICA_H_
