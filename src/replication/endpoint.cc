#include "src/replication/endpoint.h"

#include "src/base/panic.h"
#include "src/net/netd.h"
#include "src/sim/cycles.h"

namespace asbestos {

ReplicationEndpoint::ReplicationEndpoint(const DurableStore* store,
                                         ReplicationOptions options)
    : store_(store), options_(options) {
  ASB_ASSERT(options_.enabled());
  ASB_ASSERT(options_.max_followers > 0);
}

void ReplicationEndpoint::Start(ProcessContext& ctx, Handle netd_ctl,
                                uint64_t self_verify) {
  // A fresh handle value is unique and unpredictable for this boot — the
  // right shape for a source id naming this boot's WAL history.
  ReplicationHub::Tuning tuning;
  tuning.auth_token = options_.auth_token;
  tuning.frame_cache_bytes = options_.frame_cache_bytes;
  tuning.lease_interval_cycles = options_.lease_interval_cycles;
  tuning.heartbeat_interval_cycles = options_.heartbeat_interval_cycles;
  hub_ = std::make_unique<ReplicationHub>(store_, ctx.NewHandle().value(), tuning);
  notify_port_ = ctx.NewPort(Label::Top());  // closed; netd gets ⋆ below

  Message listen;
  listen.type = netd_proto::kListen;
  listen.words = {options_.listen_tcp_port};
  listen.reply_port = notify_port_;
  SendArgs args;
  if (self_verify != 0) {
    args.verify = Label({{Handle::FromValue(self_verify), Level::kL0}}, Level::kL3);
  }
  args.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
  ctx.Send(netd_ctl, std::move(listen), args);
}

void ReplicationEndpoint::IssueRead(ProcessContext& ctx, const Conn& conn) {
  Message read;
  // The cookie names the connection: every session's read replies land on
  // the one notify port, and the cookie is how they demux back to a session.
  read.type = netd_proto::kRead;
  read.words = {conn.uc.value() /*cookie*/, 0 /*all*/, 0 /*no peek*/, 0};
  read.reply_port = notify_port_;
  ctx.Send(conn.uc, std::move(read));
}

void ReplicationEndpoint::RefuseBusy(ProcessContext& ctx, Handle uc) {
  // Explicit refusal: one kBusy frame with a back-off hint, THEN the close.
  // A silently dropped follower cannot tell "at capacity" from "crashed"
  // and would hot-reconnect into the same refusal.
  replwire::WireMessage busy;
  busy.type = replwire::kBusy;
  busy.retry_after = options_.busy_retry_cycles;
  Message write;
  write.type = netd_proto::kWrite;
  write.words = {0};
  std::string busy_frame;
  replwire::AppendFrame(busy, &busy_frame);
  write.data = std::move(busy_frame);
  ctx.Send(uc, std::move(write));
  Message close;
  close.type = netd_proto::kControl;
  close.words = {0, netd_proto::kControlOpClose};
  ctx.Send(uc, std::move(close));
  ASB_ASSERT(ctx.SetSendLevel(uc, kDefaultSendLevel) == Status::kOk);
  busy_refusals_ += 1;
}

void ReplicationEndpoint::DropSession(ProcessContext& ctx, uint64_t uc_value,
                                      bool close_conn) {
  auto it = conns_.find(uc_value);
  if (it == conns_.end()) {
    return;
  }
  if (close_conn) {
    Message close;
    close.type = netd_proto::kControl;
    close.words = {0, netd_proto::kControlOpClose};
    ctx.Send(it->second.uc, std::move(close));
  }
  // Release the per-connection capability, as demux does on handoff.
  ASB_ASSERT(ctx.SetSendLevel(it->second.uc, kDefaultSendLevel) == Status::kOk);
  hub_->CloseSession(it->second.session);
  conns_.erase(it);
}

bool ReplicationEndpoint::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (!notify_port_.valid() || msg.port != notify_port_) {
    return false;
  }
  switch (msg.type) {
    case netd_proto::kListenR:
      return true;
    case netd_proto::kNotifyConn: {
      if (msg.words.empty()) {
        return true;
      }
      const Handle uc = Handle::FromValue(msg.words[0]);
      if (conns_.size() >= options_.max_followers) {
        RefuseBusy(ctx, uc);
        return true;
      }
      Conn conn;
      conn.uc = uc;
      conn.session = hub_->OpenSession();
      // Session opening move: hello first, then wait for resume acks.
      Message hello;
      hello.type = netd_proto::kWrite;
      hello.words = {0};
      hello.data = conn.session->SessionHello();
      ctx.Send(uc, std::move(hello));
      IssueRead(ctx, conn);
      conns_.emplace(uc.value(), std::move(conn));
      return true;
    }
    case netd_proto::kReadR: {
      const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
      auto it = conns_.find(cookie);
      if (it == conns_.end()) {
        return true;  // stale reply from a dropped session
      }
      Conn& conn = it->second;
      const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
      conn.rx.append(msg.data);
      replwire::WireMessage frame;
      for (;;) {
        const replwire::FrameParse p = replwire::ConsumeFrame(&conn.rx, &frame);
        if (p == replwire::FrameParse::kNeedMore) {
          break;
        }
        if (p == replwire::FrameParse::kCorrupt) {
          DropSession(ctx, cookie, /*close_conn=*/true);
          return true;
        }
        if (frame.type == replwire::kAck) {
          conn.session->HandleAck(frame);
        }
      }
      if (eof) {
        DropSession(ctx, cookie, /*close_conn=*/true);
      } else {
        IssueRead(ctx, conn);
      }
      return true;
    }
    case netd_proto::kWriteR:
    case netd_proto::kControlR:
      return true;
    default:
      return false;
  }
}

void ReplicationEndpoint::PumpShip(ProcessContext& ctx) {
  if (hub_ == nullptr) {
    return;
  }
  const uint64_t now = GetCycleAccounting().now();
  const uint64_t hb_interval = hub_->heartbeat_interval_cycles();
  for (auto& [uc_value, conn] : conns_) {
    std::string out;
    const size_t frames =
        conn.session->PollFrames(options_.max_batch_bytes, options_.max_write_bytes, &out);
    if (frames == 0 && hub_->lease_enabled() &&
        now - conn.session->last_send_cycles() >= hb_interval) {
      // Idle session, lease running down: refresh it. Gated on the clock,
      // so a world with no traffic at all still quiesces.
      conn.session->AppendHeartbeat(&out);
    }
    if (out.empty()) {
      continue;  // nothing new: the idle loop quiesces
    }
    Message write;
    write.type = netd_proto::kWrite;
    write.words = {0};
    write.data = std::move(out);
    ctx.Send(conn.uc, std::move(write));
  }
}

}  // namespace asbestos
