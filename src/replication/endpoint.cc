#include "src/replication/endpoint.h"

#include "src/base/panic.h"
#include "src/net/netd.h"

namespace asbestos {

ReplicationEndpoint::ReplicationEndpoint(const DurableStore* store,
                                         ReplicationOptions options)
    : store_(store), options_(options) {
  ASB_ASSERT(options_.enabled());
}

void ReplicationEndpoint::Start(ProcessContext& ctx, Handle netd_ctl,
                                uint64_t self_verify) {
  // A fresh handle value is unique and unpredictable for this boot — the
  // right shape for a source id naming this boot's WAL history.
  source_ = std::make_unique<ReplicationSource>(store_, ctx.NewHandle().value(),
                                                options_.auth_token);
  notify_port_ = ctx.NewPort(Label::Top());  // closed; netd gets ⋆ below

  Message listen;
  listen.type = netd_proto::kListen;
  listen.words = {options_.listen_tcp_port};
  listen.reply_port = notify_port_;
  SendArgs args;
  if (self_verify != 0) {
    args.verify = Label({{Handle::FromValue(self_verify), Level::kL0}}, Level::kL3);
  }
  args.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
  ctx.Send(netd_ctl, std::move(listen), args);
}

void ReplicationEndpoint::IssueRead(ProcessContext& ctx) {
  Message read;
  read.type = netd_proto::kRead;
  read.words = {0 /*cookie*/, 0 /*all*/, 0 /*no peek*/, 0};
  read.reply_port = notify_port_;
  ctx.Send(conn_, std::move(read));
}

void ReplicationEndpoint::DropSession(ProcessContext& ctx, bool close_conn) {
  if (!conn_.valid()) {
    return;
  }
  if (close_conn) {
    Message close;
    close.type = netd_proto::kControl;
    close.words = {0, netd_proto::kControlOpClose};
    ctx.Send(conn_, std::move(close));
  }
  // Release the per-connection capability, as demux does on handoff.
  ASB_ASSERT(ctx.SetSendLevel(conn_, kDefaultSendLevel) == Status::kOk);
  conn_ = Handle();
  rx_.clear();
}

bool ReplicationEndpoint::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (!notify_port_.valid() || msg.port != notify_port_) {
    return false;
  }
  switch (msg.type) {
    case netd_proto::kListenR:
      return true;
    case netd_proto::kNotifyConn: {
      if (msg.words.empty()) {
        return true;
      }
      const Handle uc = Handle::FromValue(msg.words[0]);
      if (conn_.valid()) {
        // One follower at a time: refuse the newcomer outright.
        Message close;
        close.type = netd_proto::kControl;
        close.words = {0, netd_proto::kControlOpClose};
        ctx.Send(uc, std::move(close));
        ASB_ASSERT(ctx.SetSendLevel(uc, kDefaultSendLevel) == Status::kOk);
        return true;
      }
      conn_ = uc;
      rx_.clear();
      // Session opening move: hello first, then wait for resume acks.
      Message hello;
      hello.type = netd_proto::kWrite;
      hello.words = {0};
      hello.data = source_->SessionHello();
      ctx.Send(conn_, std::move(hello));
      IssueRead(ctx);
      return true;
    }
    case netd_proto::kReadR: {
      if (!conn_.valid()) {
        return true;  // stale reply from a dropped session
      }
      const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
      rx_.append(msg.data);
      replwire::WireMessage frame;
      for (;;) {
        const replwire::FrameParse p = replwire::ConsumeFrame(&rx_, &frame);
        if (p == replwire::FrameParse::kNeedMore) {
          break;
        }
        if (p == replwire::FrameParse::kCorrupt) {
          DropSession(ctx, /*close_conn=*/true);
          return true;
        }
        if (frame.type == replwire::kAck) {
          source_->HandleAck(frame);
        }
      }
      if (eof) {
        DropSession(ctx, /*close_conn=*/true);
      } else {
        IssueRead(ctx);
      }
      return true;
    }
    case netd_proto::kWriteR:
    case netd_proto::kControlR:
      return true;
    default:
      return false;
  }
}

void ReplicationEndpoint::PumpShip(ProcessContext& ctx) {
  if (!conn_.valid() || source_ == nullptr) {
    return;
  }
  std::string out;
  if (source_->PollFrames(options_.max_batch_bytes, options_.max_write_bytes, &out) == 0) {
    return;  // nothing new: the idle loop quiesces
  }
  Message write;
  write.type = netd_proto::kWrite;
  write.words = {0};
  write.data = std::move(out);
  ctx.Send(conn_, std::move(write));
}

}  // namespace asbestos
