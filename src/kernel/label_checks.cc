#include "src/kernel/label_checks.h"

#include <array>
#include <cstddef>

#include "src/base/hash.h"
#include "src/obs/metrics.h"

namespace asbestos {

namespace {

constexpr size_t kFusedSmallLimit = 96;  // combined entries for plain merges
constexpr size_t kSparseHighLimit = 64;  // max non-⋆ entries for the sparse path
constexpr size_t kWalkLimit = 64;        // bound labels walked pointwise

Level BoundAt(Level qr, Level dr, Level v, Level pr) {
  return LevelMin(LevelMin(LevelMax(qr, dr), v), pr);
}

// Full k-way merge over the five labels' explicit entries: the literal
// linear evaluation, used for small inputs and as the fallback.
bool CheckDeliveryFullMerge(const Label& es, const Label& qr, const Label& dr, const Label& v,
                            const Label& pr, uint64_t* work) {
  Label::EntryIter iters[5] = {es.IterateEntries(), qr.IterateEntries(), dr.IterateEntries(),
                               v.IterateEntries(), pr.IterateEntries()};
  const Level defaults[5] = {es.default_level(), qr.default_level(), dr.default_level(),
                             v.default_level(), pr.default_level()};
  for (;;) {
    Handle h = Handle::Invalid();
    bool any = false;
    for (auto& it : iters) {
      if (!it.done() && (!any || it.handle() < h)) {
        h = it.handle();
        any = true;
      }
    }
    if (!any) {
      return true;
    }
    Level levels[5];
    for (int i = 0; i < 5; ++i) {
      if (!iters[i].done() && iters[i].handle() == h) {
        levels[i] = iters[i].level();
        iters[i].Advance();
        *work += 1;
      } else {
        levels[i] = defaults[i];
      }
    }
    if (!LevelLeq(levels[0], BoundAt(levels[1], levels[2], levels[3], levels[4]))) {
      return false;
    }
  }
}

bool NeedsContaminationFullMerge(const Label& es, const Label& qs, uint64_t* work) {
  Label::EntryIter ie = es.IterateEntries();
  Label::EntryIter iq = qs.IterateEntries();
  while (!ie.done() || !iq.done()) {
    *work += 1;
    Level le;
    Level lq;
    if (iq.done() || (!ie.done() && ie.handle() < iq.handle())) {
      le = ie.level();
      lq = qs.default_level();
      ie.Advance();
    } else if (ie.done() || iq.handle() < ie.handle()) {
      le = es.default_level();
      lq = iq.level();
      iq.Advance();
    } else {
      le = ie.level();
      lq = iq.level();
      ie.Advance();
      iq.Advance();
    }
    if (lq != Level::kStar && !LevelLeq(le, lq)) {
      return true;
    }
  }
  return false;
}

// --- Flow-check verdict cache ------------------------------------------------
//
// Direct-mapped, fixed capacity. Keys are rep-id tuples: ids name one
// extensional content forever (intern.h), so an entry is valid until
// displaced — there is no invalidation path at all. Each entry records, in
// addition to the verdict, the exact `work` and LabelWorkStats deltas the
// uncached evaluation produced, replayed verbatim on every hit so cycle
// accounting cannot tell the cache exists.

struct CacheStatsDeltas {
  uint64_t work = 0;            // the *work the evaluation added
  uint64_t entries_visited = 0;  // g_work.entries_visited delta (Get probes)
  uint64_t fast_path_hits = 0;   // g_work.fast_path_hits delta
};

// Two-way set-associative with MRU-at-way-0 ordering: a handful of hot
// tuples that collide into one set (the 64-session working set) would
// ping-pong a direct-mapped slot; two ways absorb that without the cost of
// a real LRU structure.
template <size_t KeyArity, size_t Slots>
struct CheckCache {
  static constexpr size_t kWays = 2;
  static constexpr size_t kSets = Slots / kWays;
  static_assert(Slots % kWays == 0, "slot count must split into sets");
  // The set index is a bitmask of the hash; a non-power-of-two set count
  // would silently make part of the cache unreachable.
  static_assert(kSets != 0 && (kSets & (kSets - 1)) == 0,
                "set count must be a power of two");

  struct Entry {
    std::array<uint64_t, KeyArity> key;
    bool valid = false;
    bool verdict = false;
    CacheStatsDeltas deltas;
  };

  std::array<Entry, Slots>* slots = nullptr;  // allocated on first use
  // Memo of the last slot a probe resolved to (always a way-0 slot: hits
  // and inserts both end at way 0). The batched delivery pump checks the
  // same (ES, QR, DR, V, pR) tuple back-to-back while draining one port;
  // this skips the hash for those repeats. Correctness needs no
  // invalidation: the memo re-verifies key and validity, and ReplayHit
  // replays the recorded costs either way, so accounting cannot tell.
  Entry* last = nullptr;

  // First entry of the key's set; the set is kWays consecutive entries.
  Entry* SetFor(const std::array<uint64_t, KeyArity>& key) {
    if (slots == nullptr) {
      slots = new std::array<Entry, Slots>();
    }
    uint64_t h = kFnv1aOffsetBasis;
    for (uint64_t k : key) {
      h = HashMix64(h, k);  // shared word mixer, src/base/hash.h
    }
    return &(*slots)[(h & (kSets - 1)) * kWays];
  }

  void Clear() {
    if (slots != nullptr) {
      for (Entry& e : *slots) {
        e.valid = false;
      }
    }
  }
};

LabelCheckCacheStats g_cache_stats;
bool g_cache_enabled = true;
CheckCache<5, kDeliveryCacheSlots> g_delivery_cache;
CheckCache<2, kContaminationCacheSlots> g_contamination_cache;

// Runs `eval` (the uncached check) while recording the LabelWorkStats and
// *work deltas it produces, then installs the result in `entry`.
template <typename Entry, typename EvalFn>
bool EvaluateAndInsert(Entry& entry, const std::array<uint64_t, std::tuple_size<decltype(entry.key)>::value>& key,
                       uint64_t* work, const EvalFn& eval) {
  const LabelWorkStats before = GetLabelWorkStats();
  uint64_t local_work = 0;
  const bool verdict = eval(&local_work);
  const LabelWorkStats& after = GetLabelWorkStats();
  g_cache_stats.misses += 1;
  if (entry.valid) {
    g_cache_stats.evictions += 1;
  }
  entry.key = key;
  entry.valid = true;
  entry.verdict = verdict;
  entry.deltas.work = local_work;
  entry.deltas.entries_visited = after.entries_visited - before.entries_visited;
  entry.deltas.fast_path_hits = after.fast_path_hits - before.fast_path_hits;
  *work += local_work;
  return verdict;
}

// Replays the recorded cost of the uncached evaluation (cycle-accounting
// fidelity), then returns the memoized verdict.
template <typename Entry>
bool ReplayHit(const Entry& entry, uint64_t* work) {
  g_cache_stats.hits += 1;
  *work += entry.deltas.work;
  LabelWorkStats& stats = GetLabelWorkStats();
  stats.entries_visited += entry.deltas.entries_visited;
  stats.fast_path_hits += entry.deltas.fast_path_hits;
  return entry.verdict;
}

bool CheckDeliveryAllowedUncached(const Label& es, const Label& qr, const Label& dr,
                                  const Label& v, const Label& pr, uint64_t* work);
bool NeedsContaminationUncached(const Label& es, const Label& qs, uint64_t* work);

}  // namespace

const LabelCheckCacheStats& GetLabelCheckCacheStats() { return g_cache_stats; }

namespace {
// Metrics-plane window onto the live cache stats. The struct remains the
// storage of record — tests bind references to it across operations — and
// the registry reads it only at snapshot time.
[[maybe_unused]] const uint64_t g_cache_stats_gauges =
    obs::Registry::Get().RegisterGauges([](obs::GaugeSink& sink) {
      sink.Set("kernel.label_cache.hits", g_cache_stats.hits);
      sink.Set("kernel.label_cache.misses", g_cache_stats.misses);
      sink.Set("kernel.label_cache.evictions", g_cache_stats.evictions);
    });
}  // namespace

void ResetLabelCheckCache() {
  g_delivery_cache.Clear();
  g_contamination_cache.Clear();
  g_cache_stats = LabelCheckCacheStats();
}

void SetLabelCheckCacheEnabled(bool enabled) { g_cache_enabled = enabled; }
bool LabelCheckCacheEnabled() { return g_cache_enabled; }

namespace {

// Probe-or-evaluate over one 2-way set: hits promote to way 0 (MRU), misses
// evaluate uncached and install over an invalid way or the LRU way 1.
template <typename Cache, size_t KeyArity, typename EvalFn>
bool CachedCheck(Cache& cache, const std::array<uint64_t, KeyArity>& key, uint64_t* work,
                 const EvalFn& eval) {
  // Front memo: a repeat of the immediately preceding tuple (the batched
  // pump's common case) resolves without hashing. Pointing at a way-0 slot
  // only, with the key re-checked, this is behaviorally identical to the
  // full probe below — same hit stats, same MRU order, same replayed costs.
  if (cache.last != nullptr && cache.last->valid && cache.last->key == key) {
    return ReplayHit(*cache.last, work);
  }
  auto* set = cache.SetFor(key);
  for (size_t way = 0; way < Cache::kWays; ++way) {
    if (set[way].valid && set[way].key == key) {
      if (way != 0) {
        std::swap(set[0], set[way]);
      }
      cache.last = &set[0];
      return ReplayHit(set[0], work);
    }
  }
  auto& victim = !set[0].valid ? set[0] : set[Cache::kWays - 1];
  const bool verdict = EvaluateAndInsert(victim, key, work, eval);
  if (&victim != &set[0]) {
    std::swap(set[0], victim);  // freshly inserted = most recently used
  }
  cache.last = &set[0];
  return verdict;
}

}  // namespace

bool CheckDeliveryAllowed(const Label& es, const Label& qr, const Label& dr, const Label& v,
                          const Label& pr, uint64_t* work) {
  if (!g_cache_enabled) {
    return CheckDeliveryAllowedUncached(es, qr, dr, v, pr, work);
  }
  const std::array<uint64_t, 5> key = {es.rep_id(), qr.rep_id(), dr.rep_id(), v.rep_id(),
                                       pr.rep_id()};
  return CachedCheck(g_delivery_cache, key, work, [&](uint64_t* w) {
    return CheckDeliveryAllowedUncached(es, qr, dr, v, pr, w);
  });
}

bool NeedsContamination(const Label& es, const Label& qs, uint64_t* work) {
  if (!g_cache_enabled) {
    return NeedsContaminationUncached(es, qs, work);
  }
  const std::array<uint64_t, 2> key = {es.rep_id(), qs.rep_id()};
  return CachedCheck(g_contamination_cache, key, work, [&](uint64_t* w) {
    return NeedsContaminationUncached(es, qs, w);
  });
}

namespace {

bool CheckDeliveryAllowedUncached(const Label& es, const Label& qr, const Label& dr,
                                  const Label& v, const Label& pr, uint64_t* work) {
  const Level bound_default =
      BoundAt(qr.default_level(), dr.default_level(), v.default_level(), pr.default_level());
  if (!LevelLeq(es.default_level(), bound_default)) {
    return false;  // decisive: unboundedly many unmentioned handles
  }
  // Extrema fast path: everything in ES is below everything in the bound.
  const Level bound_min =
      BoundAt(qr.min_level(), dr.min_level(), v.min_level(), pr.min_level());
  if (LevelLeq(es.max_level(), bound_min)) {
    GetLabelWorkStats().fast_path_hits += 1;
    return true;
  }

  const Label* bounds[4] = {&qr, &dr, &v, &pr};
  const size_t total = es.entry_count() + qr.entry_count() + dr.entry_count() +
                       v.entry_count() + pr.entry_count();
  if (total <= kFusedSmallLimit) {
    return CheckDeliveryFullMerge(es, qr, dr, v, pr, work);
  }
  // Charge the scan the paper's linear implementation performs, whatever
  // shortcut decides the answer below (§5.6/§9.3 cost fidelity).
  *work += total;

  // Sparse-high scheme. ⋆ entries in ES can never violate a ≤ bound, so if
  // ES has few non-⋆ entries (netd's and idd's send labels are ⋆ for every
  // user handle), checking ES reduces to point probes. Bound labels are
  // walked pointwise while small; huge ones (netd's receive label) are
  // covered wholesale through their cached minima.
  if (es.CountEntriesAbove(Level::kStar) <= kSparseHighLimit) {
    bool sound = true;
    // (a) every non-⋆ ES entry, pointwise.
    for (Label::NonStarIter it = es.IterateNonStarEntries(); !it.done(); it.Advance()) {
      const Handle h = it.handle();
      if (!LevelLeq(it.level(),
                    BoundAt(qr.Get(h), dr.Get(h), v.Get(h), pr.Get(h)))) {
        return false;
      }
    }
    // (b) handles explicit in small bound labels, pointwise (ES falls back
    // to its default or a ⋆ entry there; both handled by Get).
    bool any_deferred = false;
    for (const Label* b : bounds) {
      if (b->entry_count() > kWalkLimit) {
        any_deferred = true;
        continue;
      }
      for (Label::EntryIter it = b->IterateEntries(); !it.done(); it.Advance()) {
        const Handle h = it.handle();
        const Level es_h = es.Get(h);
        if (es_h == Level::kStar) {
          continue;
        }
        if (!LevelLeq(es_h, BoundAt(qr.Get(h), dr.Get(h), v.Get(h), pr.Get(h)))) {
          return false;
        }
      }
    }
    // (c) handles living only in deferred (huge) bound labels: ES is at its
    // default (non-⋆ ES entries were handled in (a)); the bound there is at
    // least the combination of every label's minimum, so one comparison
    // covers them all. If it fails we cannot decide wholesale.
    if (any_deferred) {
      Level floors[4];
      for (int i = 0; i < 4; ++i) {
        floors[i] = bounds[i]->entry_count() > kWalkLimit ? bounds[i]->min_level()
                                                          : bounds[i]->default_level();
      }
      if (!LevelLeq(es.default_level(),
                    BoundAt(floors[0], floors[1], floors[2], floors[3]))) {
        sound = false;
      }
    }
    if (sound) {
      return true;
    }
  }
  return CheckDeliveryFullMerge(es, qr, dr, v, pr, work);
}

}  // namespace

bool CheckDeliveryAllowedNaive(const Label& es, const Label& qr, const Label& dr,
                               const Label& v, const Label& pr) {
  return es.Leq(Label::Glb(Label::Glb(Label::Lub(qr, dr), v), pr));
}

namespace {

bool NeedsContaminationUncached(const Label& es, const Label& qs, uint64_t* work) {
  if (LevelLeq(es.max_level(), qs.min_level())) {
    GetLabelWorkStats().fast_path_hits += 1;
    return false;
  }
  if (qs.default_level() != Level::kStar &&
      !LevelLeq(es.default_level(), qs.default_level())) {
    return true;
  }
  const size_t total = es.entry_count() + qs.entry_count();
  if (total <= kFusedSmallLimit) {
    return NeedsContaminationFullMerge(es, qs, work);
  }
  *work += total;

  // Sparse-high scheme (see CheckDeliveryAllowed): ⋆ entries of ES never
  // contaminate, non-⋆ ones get point probes; QS's explicit entries are
  // walked while small or covered wholesale by the level histogram.
  if (es.CountEntriesAbove(Level::kStar) <= kSparseHighLimit) {
    for (Label::NonStarIter it = es.IterateNonStarEntries(); !it.done(); it.Advance()) {
      const Level lq = qs.Get(it.handle());
      if (lq != Level::kStar && !LevelLeq(it.level(), lq)) {
        return true;
      }
    }
    if (qs.entry_count() <= kWalkLimit) {
      for (Label::EntryIter it = qs.IterateEntries(); !it.done(); it.Advance()) {
        if (it.level() != Level::kStar && !LevelLeq(es.Get(it.handle()), it.level())) {
          return true;
        }
      }
      return false;
    }
    // Huge QS: its entries face ES's default (ES's non-⋆ entries were
    // handled above; its ⋆ entries are harmless).
    if (LevelLeq(es.default_level(), qs.MinNonStarEntryLevel())) {
      return false;
    }
  }
  return NeedsContaminationFullMerge(es, qs, work);
}

}  // namespace

bool NeedsContaminationNaive(const Label& es, const Label& qs) {
  Label after = qs;
  after.JoinInPlace(Label::Glb(es, qs.StarsOnly()));
  return !after.Equals(qs);
}

DeliveryRefusal ExplainDeliveryRefusal(const Label& es, const Label& qr,
                                       const Label& dr, const Label& v,
                                       const Label& pr) {
  // Explanation is observability, not delivery: shield the linear work
  // counters so the refusal's charged cost is identical with and without
  // the provenance ledger watching.
  LabelWorkStats saved = GetLabelWorkStats();
  DeliveryRefusal out;
  out.bound = Label::Glb(Label::Glb(Label::Lub(qr, dr), v), pr);

  // First violating handle in increasing handle order: merge-scan the
  // explicit entries of ES and the bound, each side falling back to the
  // other's default where it has no entry.
  std::vector<std::pair<Handle, Level>> es_e = es.Entries();
  std::vector<std::pair<Handle, Level>> b_e = out.bound.Entries();
  size_t i = 0;
  size_t j = 0;
  while (i < es_e.size() || j < b_e.size()) {
    Handle h;
    Level le;
    Level lb;
    if (j >= b_e.size() || (i < es_e.size() && es_e[i].first < b_e[j].first)) {
      h = es_e[i].first;
      le = es_e[i].second;
      lb = out.bound.default_level();
      ++i;
    } else if (i >= es_e.size() || b_e[j].first < es_e[i].first) {
      h = b_e[j].first;
      le = es.default_level();
      lb = b_e[j].second;
      ++j;
    } else {
      h = es_e[i].first;
      le = es_e[i].second;
      lb = b_e[j].second;
      ++i;
      ++j;
    }
    if (!LevelLeq(le, lb)) {
      out.handle = h.value();
      out.es_level = le;
      out.bound_level = lb;
      GetLabelWorkStats() = saved;
      return out;
    }
  }
  // No explicit entry violates: the defaults themselves must.
  out.handle = 0;
  out.es_level = es.default_level();
  out.bound_level = out.bound.default_level();
  GetLabelWorkStats() = saved;
  return out;
}

}  // namespace asbestos
