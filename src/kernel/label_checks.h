// Fused evaluation of the Figure-4 label rules for the kernel hot path.
//
// Requirement (1) of send — ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR — and the contamination
// predicate of Eq. (5) are evaluated without materializing intermediate
// labels. Each function reports the *entry visits a linear merge would have
// performed* through `work`, which the kernel charges as cycles: the paper's
// implementation is linear in label size (§5.6, §9.3) and the cost model
// stays faithful to it even where we compute the same answer faster
// (asymmetric small-versus-huge shapes resolved via level histograms and
// point lookups).
//
// On top of the fused evaluation sits a bounded memo cache keyed on the
// labels' rep ids (src/labels/intern.h). A rep id names one extensional
// content forever — canonical reps are immutable and in-place mutations
// re-key — so cached verdicts never need invalidation and are evicted only
// by capacity. The million-user OKWS hot path re-checks the same
// (ES, QR, DR, V, pR) tuple per request; with hash-consed labels those
// tuples hit the cache and the check collapses to a table probe.
//
// Charged-cycles fidelity: a cache hit replays exactly the `work` and
// LabelWorkStats deltas the uncached evaluation produced at insertion time
// (which are deterministic per id tuple), so Figure-9 cost curves are
// bit-identical with and without the cache; only wall-clock changes.
//
// The *Naive variants materialize the label algebra literally and exist as
// the reference semantics for property tests.
#ifndef SRC_KERNEL_LABEL_CHECKS_H_
#define SRC_KERNEL_LABEL_CHECKS_H_

#include <cstdint>

#include "src/labels/label.h"

namespace asbestos {

// True iff ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR.
bool CheckDeliveryAllowed(const Label& es, const Label& qr, const Label& dr, const Label& v,
                          const Label& pr, uint64_t* work);
bool CheckDeliveryAllowedNaive(const Label& es, const Label& qr, const Label& dr,
                               const Label& v, const Label& pr);

// True iff QS ⊔ (ES ⊓ QS⋆) differs from QS: some handle has QS(h) ≠ ⋆ and
// ES(h) > QS(h).
bool NeedsContamination(const Label& es, const Label& qs, uint64_t* work);
bool NeedsContaminationNaive(const Label& es, const Label& qs);

// Forensics for a FAILED delivery check: the first (lowest-handle) violating
// comparison and the materialized bound it exceeded. Only meaningful when
// CheckDeliveryAllowed returned false on the same labels. This is the slow,
// explanatory path — it materializes (QR ⊔ DR) ⊓ V ⊓ pR — and is invisible
// to LabelWorkStats/the verdict cache: explaining a refusal for the
// provenance ledger must not change the charged cost of refusing.
struct DeliveryRefusal {
  uint64_t handle = 0;  // first failing handle; 0 = the defaults already fail
  Level es_level = Level::kStar;     // ES at that handle (or ES default)
  Level bound_level = Level::kStar;  // bound at that handle (or its default)
  Label bound = Label::Top();        // (QR ⊔ DR) ⊓ V ⊓ pR
};
DeliveryRefusal ExplainDeliveryRefusal(const Label& es, const Label& qr,
                                       const Label& dr, const Label& v,
                                       const Label& pr);

// --- Flow-check verdict cache ------------------------------------------------

// Cumulative counters across both caches (delivery and contamination).
struct LabelCheckCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;      // ran the uncached evaluation and inserted
  uint64_t evictions = 0;   // insertions that displaced a live entry
};

const LabelCheckCacheStats& GetLabelCheckCacheStats();
// Drops every cached verdict and zeroes the stats.
void ResetLabelCheckCache();
// Benchmarks and fidelity tests flip this to measure the uncached baseline;
// the cache is enabled by default. Disabling does not drop entries.
void SetLabelCheckCacheEnabled(bool enabled);
bool LabelCheckCacheEnabled();

// Fixed capacities (entries), exposed for the eviction tests.
inline constexpr size_t kDeliveryCacheSlots = 4096;
inline constexpr size_t kContaminationCacheSlots = 4096;

}  // namespace asbestos

#endif  // SRC_KERNEL_LABEL_CHECKS_H_
