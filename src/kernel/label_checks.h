// Fused evaluation of the Figure-4 label rules for the kernel hot path.
//
// Requirement (1) of send — ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR — and the contamination
// predicate of Eq. (5) are evaluated without materializing intermediate
// labels. Each function reports the *entry visits a linear merge would have
// performed* through `work`, which the kernel charges as cycles: the paper's
// implementation is linear in label size (§5.6, §9.3) and the cost model
// stays faithful to it even where we compute the same answer faster
// (asymmetric small-versus-huge shapes resolved via level histograms and
// point lookups).
//
// The *Naive variants materialize the label algebra literally and exist as
// the reference semantics for property tests.
#ifndef SRC_KERNEL_LABEL_CHECKS_H_
#define SRC_KERNEL_LABEL_CHECKS_H_

#include <cstdint>

#include "src/labels/label.h"

namespace asbestos {

// True iff ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR.
bool CheckDeliveryAllowed(const Label& es, const Label& qr, const Label& dr, const Label& v,
                          const Label& pr, uint64_t* work);
bool CheckDeliveryAllowedNaive(const Label& es, const Label& qr, const Label& dr,
                               const Label& v, const Label& pr);

// True iff QS ⊔ (ES ⊓ QS⋆) differs from QS: some handle has QS(h) ≠ ⋆ and
// ES(h) > QS(h).
bool NeedsContamination(const Label& es, const Label& qs, uint64_t* work);
bool NeedsContaminationNaive(const Label& es, const Label& qs);

}  // namespace asbestos

#endif  // SRC_KERNEL_LABEL_CHECKS_H_
