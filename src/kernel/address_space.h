// Simulated virtual memory with copy-on-write page overlays (paper §6.2).
//
// A base process owns an AddressSpace: a sparse map from page number to
// reference-counted 4 KB pages, with zero-fill-on-demand (pages materialize
// on first write; reads of untouched pages return zeros). An event process
// does not get its own page table — it keeps only a PageOverlay, "a list of
// modified pages and the modified pages themselves". A running event process
// reads through to the base space and copies pages into its overlay on first
// write. ep_clean reverts address ranges by dropping overlay pages.
//
// Live page counts are tracked globally so Figure-6 memory measurements see
// real, COW-shared page populations.
#ifndef SRC_KERNEL_ADDRESS_SPACE_H_
#define SRC_KERNEL_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/base/status.h"
#include "src/kernel/memstats.h"

namespace asbestos {

struct SimPageStats {
  int64_t live_pages = 0;
};

const SimPageStats& GetSimPageStats();

namespace internal {

struct SimPage {
  SimPage();
  ~SimPage();
  SimPage(const SimPage&) = delete;
  SimPage& operator=(const SimPage&) = delete;

  int32_t refcount = 1;
  uint8_t bytes[kPageSize] = {};
};

class PageRef {
 public:
  PageRef() : page_(nullptr) {}
  explicit PageRef(SimPage* adopted) : page_(adopted) {}
  PageRef(const PageRef& other);
  PageRef(PageRef&& other) noexcept : page_(other.page_) { other.page_ = nullptr; }
  PageRef& operator=(const PageRef& other);
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef();

  SimPage* get() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

 private:
  SimPage* page_;
};

}  // namespace internal

// An event process's private memory: page number -> private page copy.
// std::map keeps iteration deterministic.
using PageOverlay = std::map<uint64_t, internal::PageRef>;

class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Reserves a contiguous range of n pages; returns its first virtual
  // address. Pages are zero-fill-on-demand.
  uint64_t AllocPages(uint64_t n);
  // Releases the pages covering [addr, addr + n*kPageSize).
  void FreePages(uint64_t addr, uint64_t n);

  // Reads through the optional overlay: overlay page, else base page, else
  // zeros. May cross page boundaries.
  void Read(const PageOverlay* overlay, uint64_t addr, void* out, uint64_t n) const;

  // Writes to the base space (overlay == nullptr) or copy-on-write into the
  // overlay. Returns the number of pages newly copied/created in the overlay
  // (0 for base writes), so callers can charge COW cycles.
  uint64_t Write(PageOverlay* overlay, uint64_t addr, const void* data, uint64_t n);

  // Number of live pages materialized in the base space.
  uint64_t base_page_count() const { return pages_.size(); }

 private:
  std::map<uint64_t, internal::PageRef> pages_;  // page number -> page
  uint64_t bump_ = 0x10;                         // next free page number
};

// Drops all overlay pages fully contained in [addr, addr + n bytes),
// reverting that range to the base process's contents (ep_clean). Returns
// pages dropped.
uint64_t OverlayClean(PageOverlay* overlay, uint64_t addr, uint64_t n);

}  // namespace asbestos

#endif  // SRC_KERNEL_ADDRESS_SPACE_H_
