// Asbestos messages and the optional send labels (paper Sections 4-5).
//
// Messaging is asynchronous and unreliable: send() reports success even when
// the message will never be delivered, because deliverability can only be
// judged at the instant of receipt (labels change in between), and because a
// failure notification would itself be an information leak. The four
// optional labels of the send system call:
//
//   C_S  contamination    raises the effective send label (no privilege)
//   D_S  decontaminate-send   lowers the receiver's send label (needs ⋆)
//   V    verification     proves an upper bound on the sender's send label
//   D_R  decontaminate-receive  raises the receiver's receive label (needs ⋆)
#ifndef SRC_KERNEL_MESSAGE_H_
#define SRC_KERNEL_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "src/kernel/ids.h"
#include "src/kernel/payload.h"
#include "src/labels/handle.h"
#include "src/labels/label.h"

namespace asbestos {

// Optional labels supplied to send. Defaults are the identity elements: the
// bottom label {⋆} for C_S and D_R, the top label {3} for D_S and V.
struct SendArgs {
  Label contaminate = Label::Bottom();      // C_S
  Label decont_send = Label::Top();         // D_S
  Label verify = Label::Top();              // V
  Label decont_receive = Label::Bottom();   // D_R
};

// What a receiver sees. Handle *values* may ride in `words` or `data`, but
// values confer no authority; privilege travels only through D_S/D_R.
struct Message {
  Handle port;                  // port the message was delivered on
  uint64_t type = 0;            // protocol-defined discriminator
  std::vector<uint64_t> words;  // small scalars: handle values, counts, ids
  // Payload bytes: a refcounted immutable buffer view (src/kernel/payload.h).
  // Send → enqueue → deliver → reply-forward moves a refcount, not bytes;
  // receivers that edit call data.Mutable() (copy-on-write) or data.str().
  Payload data;
  Handle reply_port;            // conventional reply destination (0 if none)
  Label verify = Label::Top();  // the sender's V label, delivered for analysis
  // Flow-trace id (src/obs/trace.h). 0 = untraced. Minted at the system
  // edge (netd accept, replication hello); the kernel stamps unset ids from
  // the trace of the message being handled, so the id propagates through
  // reply chains without per-process plumbing. Carries no authority and no
  // information a receiver couldn't already derive from delivery itself.
  uint64_t trace_id = 0;
};

inline uint64_t MessagePayloadBytes(const Message& m) {
  return m.data.size() + m.words.size() * sizeof(uint64_t);
}

}  // namespace asbestos

#endif  // SRC_KERNEL_MESSAGE_H_
