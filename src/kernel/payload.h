// Refcounted immutable payload buffers for message bodies.
//
// Labels got canonical reps in PR 3; message bodies get the same treatment
// here. A Payload is a view (offset, length) into an immutable, refcounted
// byte buffer (PayloadBuf). Copying a Payload bumps a refcount; slicing one
// (substr) shares the buffer and narrows the view; only Mutable() — the
// copy-on-write escape hatch for a receiver that actually edits bytes —
// copies. So the kernel's send → enqueue → deliver → reply-forward chain
// moves pointers, not bytes, and a 1→K fan-out of one body is one buffer in
// memory no matter how many queues it sits in (the kernel's queue_bytes
// accounting counts such a buffer once; see Kernel::MemReport).
//
// Ownership/COW rules:
//   * Buffers are immutable from construction. Nothing ever writes through
//     a shared buffer; aliasing a Payload can never change what a sibling
//     holder observes.
//   * Payload(std::string&&) adopts the string's storage without copying;
//     Payload(string_view / const char*) copies once at construction.
//   * substr() is O(1) and zero-copy: the sub-view pins the WHOLE
//     underlying buffer alive (like string_view into a retained string).
//   * Mutable() unshares: if the buffer has other holders (or the view is
//     a strict sub-range), the viewed bytes are copied into a fresh
//     exclusive buffer first. This is the only copy path, counted by
//     PayloadStats::cow_copies.
//
// The simulator is single-threaded, like the rest of src/kernel; refcounts
// are plain (non-atomic would be fine, but shared_ptr keeps it simple and
// the control block is one allocation with make_shared).
#ifndef SRC_KERNEL_PAYLOAD_H_
#define SRC_KERNEL_PAYLOAD_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace asbestos {

// Process-global sharing/COW counters (mirrored into the metrics registry
// as payload.* counters by payload.cc).
struct PayloadStats {
  uint64_t buffers_created = 0;     // distinct backing buffers allocated
  uint64_t shared_copies = 0;       // Payload copies that bumped a refcount
  uint64_t bytes_shared_saved = 0;  // bytes those copies did NOT memcpy
  uint64_t cow_copies = 0;          // Mutable() calls that had to copy
  uint64_t cow_bytes_copied = 0;    // bytes materialized by those copies
};

const PayloadStats& GetPayloadStats();
void ResetPayloadStats();

class Payload {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  Payload() = default;
  // Adopts the string's storage (no byte copy for rvalues).
  Payload(std::string s);  // NOLINT(google-explicit-constructor)
  // Copies once at the construction boundary.
  Payload(std::string_view s);  // NOLINT(google-explicit-constructor)
  Payload(const char* s);       // NOLINT(google-explicit-constructor)

  Payload(const Payload& other);
  Payload(Payload&& other) noexcept;
  Payload& operator=(const Payload& other);
  Payload& operator=(Payload&& other) noexcept;
  Payload& operator=(std::string s);
  Payload& operator=(std::string_view s);
  Payload& operator=(const char* s);
  ~Payload() = default;

  // --- Read view -----------------------------------------------------------
  // len_ == npos marks a view that tracks its (exclusive, offset-0) buffer's
  // size — the state Mutable() leaves behind, so edits through the returned
  // string (including resizes) are immediately visible here.
  size_t size() const { return len_ == npos ? buf_->size() : len_; }
  bool empty() const { return size() == 0; }
  std::string_view view() const {
    return buf_ ? std::string_view(buf_->data() + off_, size()) : std::string_view();
  }
  operator std::string_view() const { return view(); }  // NOLINT
  // Materializes a std::string copy of the viewed bytes. The implicit form
  // exists so the many `std::string x = msg.data;` consumer sites keep
  // working; it is an explicit byte copy at the consumer boundary, never on
  // the kernel path.
  std::string str() const { return std::string(view()); }
  operator std::string() const { return str(); }  // NOLINT
  const char* data() const { return buf_ ? buf_->data() + off_ : nullptr; }
  char operator[](size_t i) const { return (*buf_)[off_ + i]; }

  size_t find(char c, size_t pos = 0) const { return view().find(c, pos); }
  size_t find(std::string_view s, size_t pos = 0) const { return view().find(s, pos); }

  // Zero-copy sub-view sharing the same buffer (keeps the whole underlying
  // buffer alive; use str() on the result if the parent buffer is huge and
  // the slice must outlive it by a lot).
  Payload substr(size_t pos, size_t n = npos) const;

  // --- Copy-on-write mutation ----------------------------------------------
  // Returns an exclusively-owned mutable string holding this payload's
  // bytes, copying them out of a shared buffer first if needed. Afterwards
  // the view tracks the buffer, so edits through the returned pointer —
  // including resizes — are visible via size()/view(). The pointer is
  // invalidated by the next operation on this Payload (do not hold it
  // across a copy: writes through it would reach the new sibling too).
  // Sibling Payloads sharing the old buffer are unaffected.
  std::string* Mutable();
  void clear();

  // --- Identity (for unique-buffer accounting) ------------------------------
  // Stable identity of the backing buffer; nullptr when empty. Two Payloads
  // with the same id alias the same bytes.
  const void* buffer_id() const { return buf_.get(); }
  // Real size of the backing buffer (≥ size() for sub-views): what the
  // buffer actually holds in memory, counted once per unique id.
  size_t buffer_bytes() const { return buf_ ? buf_->size() : 0; }
  // Number of Payload views currently sharing the buffer (tests/benches).
  long use_count() const { return buf_.use_count(); }

 private:
  Payload(std::shared_ptr<std::string> buf, size_t off, size_t len)
      : buf_(std::move(buf)), off_(off), len_(len) {}

  // The buffer is logically immutable after construction; the non-const
  // element type exists only so Mutable() can hand back exclusively-owned
  // storage without reallocating.
  std::shared_ptr<std::string> buf_;
  size_t off_ = 0;
  size_t len_ = 0;
};

bool operator==(const Payload& a, const Payload& b);
bool operator==(const Payload& a, std::string_view b);
bool operator==(std::string_view a, const Payload& b);
bool operator==(const Payload& a, const std::string& b);
bool operator==(const std::string& a, const Payload& b);
bool operator==(const Payload& a, const char* b);
bool operator==(const char* a, const Payload& b);
inline bool operator!=(const Payload& a, const Payload& b) { return !(a == b); }
inline bool operator!=(const Payload& a, std::string_view b) { return !(a == b); }
inline bool operator!=(std::string_view a, const Payload& b) { return !(a == b); }
inline bool operator!=(const Payload& a, const std::string& b) { return !(a == b); }
inline bool operator!=(const std::string& a, const Payload& b) { return !(a == b); }
inline bool operator!=(const Payload& a, const char* b) { return !(a == b); }
inline bool operator!=(const char* a, const Payload& b) { return !(a == b); }

std::ostream& operator<<(std::ostream& os, const Payload& p);

}  // namespace asbestos

#endif  // SRC_KERNEL_PAYLOAD_H_
