// Generic launcher/boot protocol (paper §7.1).
//
// A launcher spawns system components, giving each a verification handle at
// level 0 in its send label. Components prove their identity exactly once,
// in Start() (before any receive destroys the level-0 entry — mandatory
// integrity, §5.4), by registering with a verification label. Ongoing trust
// then flows through port capabilities granted on the registration message.
#ifndef SRC_KERNEL_BOOTSTRAP_H_
#define SRC_KERNEL_BOOTSTRAP_H_

#include <cstdint>

namespace asbestos::boot_proto {

enum MessageType : uint64_t {
  kRegister = 90,  // component → launcher; data: component name; words:
                   // component-specific port values; V: {vX 0}; D_S grants
                   // the launcher the component's wire-port capability
  kReady = 91,     // component → launcher; data: component name
  kWire = 92,      // launcher → component wire port; data: wire name;
                   // words: [port/handle value]; D_S may grant capabilities
};

}  // namespace asbestos::boot_proto

#endif  // SRC_KERNEL_BOOTSTRAP_H_
