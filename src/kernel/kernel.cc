#include "src/kernel/kernel.h"

#include <algorithm>
#include <cstring>

#include "src/kernel/label_checks.h"

#include "src/base/panic.h"
#include "src/labels/intern.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/sim/costs.h"
#include "src/store/store.h"

namespace asbestos {

namespace {

// True for the identity decontaminate-send label {3}: meets with it are
// no-ops, which is the common case on the hot path.
bool IsTopLabel(const Label& l) {
  return l.default_level() == Level::kL3 && l.entry_count() == 0;
}

bool IsBottomLabel(const Label& l) {
  return l.default_level() == Level::kStar && l.entry_count() == 0;
}

// Locates the mapping containing `addr` in an event process, if any.
const MappedRegion* FindMapping(const EventProcess* ep, uint64_t addr) {
  if (ep == nullptr) {
    return nullptr;
  }
  for (const MappedRegion& m : ep->mappings) {
    if (addr >= m.base_addr && addr < m.base_addr + m.page_count * kPageSize) {
      return &m;
    }
  }
  return nullptr;
}

}  // namespace

// --- ProcessContext forwarding -------------------------------------------------

ProcessId ProcessContext::pid() const { return proc_->id; }
EpId ProcessContext::ep_id() const { return ep_ != nullptr ? ep_->id : kBaseContext; }
bool ProcessContext::in_new_ep() const { return new_ep_; }
const std::string& ProcessContext::name() const { return proc_->name; }

bool ProcessContext::HasEnv(const std::string& key) const {
  return proc_->env.count(key) != 0;
}

uint64_t ProcessContext::GetEnv(const std::string& key) const {
  auto it = proc_->env.find(key);
  return it == proc_->env.end() ? 0 : it->second;
}

const Label& ProcessContext::send_label() const {
  return ep_ != nullptr ? ep_->send_label : proc_->send_label;
}

const Label& ProcessContext::recv_label() const {
  return ep_ != nullptr ? ep_->recv_label : proc_->recv_label;
}

Handle ProcessContext::NewHandle() {
  Kernel::SyscallFrame f;
  kernel_->Dispatch(Kernel::Sys::kNewHandle, *proc_, ep_, f);
  return f.out_handle;
}

Handle ProcessContext::NewPort(const Label& port_label) {
  Kernel::SyscallFrame f;
  f.label = &port_label;
  kernel_->Dispatch(Kernel::Sys::kNewPort, *proc_, ep_, f);
  return f.out_handle;
}

Status ProcessContext::SetPortLabel(Handle port, const Label& label) {
  Kernel::SyscallFrame f;
  f.handle = port;
  f.label = &label;
  kernel_->Dispatch(Kernel::Sys::kSetPortLabel, *proc_, ep_, f);
  return f.status;
}

Result<Label> ProcessContext::GetPortLabel(Handle port) const {
  Kernel::Vnode* v = kernel_->FindLivePort(port);
  if (v == nullptr || !kernel_->ContextOwnsPort(*proc_, ep_, *v)) {
    return Status::kNotFound;
  }
  return v->port_label;
}

Status ProcessContext::TransferPort(Handle port, ProcessId new_owner) {
  Kernel::Vnode* v = kernel_->FindLivePort(port);
  if (v == nullptr || !kernel_->ContextOwnsPort(*proc_, ep_, *v)) {
    return Status::kNotFound;
  }
  Process* dest = kernel_->FindProcess(new_owner);
  if (dest == nullptr || dest->exited) {
    return Status::kNotFound;
  }
  auto& src_ports = ep_ != nullptr ? ep_->owned_ports : proc_->owned_ports;
  src_ports.erase(std::remove(src_ports.begin(), src_ports.end(), port), src_ports.end());
  v->owner = new_owner;
  v->owner_ep = kBaseContext;
  dest->owned_ports.push_back(port);
  if (!v->queue.empty()) {
    kernel_->EnqueuePendingPort(*dest, port);
  }
  return Status::kOk;
}

Status ProcessContext::ClosePort(Handle port) {
  Kernel::Vnode* v = kernel_->FindLivePort(port);
  if (v == nullptr || !kernel_->ContextOwnsPort(*proc_, ep_, *v)) {
    return Status::kNotFound;
  }
  auto& ports = ep_ != nullptr ? ep_->owned_ports : proc_->owned_ports;
  ports.erase(std::remove(ports.begin(), ports.end(), port), ports.end());
  kernel_->DissociatePort(*v);
  return Status::kOk;
}

Status ProcessContext::Send(Handle port, Message msg, const SendArgs& args) {
  Kernel::SyscallFrame f;
  f.handle = port;
  f.msg = &msg;  // moved from by the body
  f.send_args = &args;
  kernel_->Dispatch(Kernel::Sys::kSend, *proc_, ep_, f);
  return f.status;
}

Status ProcessContext::SetSendLevel(Handle h, Level level) {
  Kernel::SyscallFrame f;
  f.handle = h;
  f.level = level;
  kernel_->Dispatch(Kernel::Sys::kSetSendLevel, *proc_, ep_, f);
  return f.status;
}

Status ProcessContext::SetReceiveLevel(Handle h, Level level) {
  Kernel::SyscallFrame f;
  f.handle = h;
  f.level = level;
  kernel_->Dispatch(Kernel::Sys::kSetReceiveLevel, *proc_, ep_, f);
  return f.status;
}

void ProcessContext::SelfContaminate(const Label& add) {
  Label& qs = kernel_->ContextSendLabel(*proc_, ep_);
  const uint64_t pre_rep = obs::ProvenanceLedger::enabled() ? qs.rep_id() : 0;
  const LabelWorkStats baseline = GetLabelWorkStats();
  // QS ← QS ⊔ (add ⊓ QS⋆): contamination cannot strip the caller's ⋆ levels;
  // those are dropped only through SetSendLevel.
  Label capped = Label::Glb(add, qs.StarsOnly());
  qs.JoinInPlace(capped);
  kernel_->ChargeLabelWorkSince(baseline);
  if (obs::ProvenanceLedger::enabled()) {
    obs::ProvenanceLedger::Get().RecordEdge(
        obs::EdgeKind::kOrigin, proc_->name, "", pre_rep, qs.rep_id(), add,
        kernel_->current_trace_id_);
  }
}

Result<ProcessId> ProcessContext::Spawn(std::unique_ptr<ProcessCode> code, SpawnArgs args) {
  Kernel::SyscallFrame f;
  f.code = &code;
  f.spawn_args = &args;
  kernel_->Dispatch(Kernel::Sys::kSpawn, *proc_, ep_, f);
  if (f.status != Status::kOk) {
    return f.status;
  }
  return f.out_pid;
}

void ProcessContext::Exit() { proc_->exited = true; }

void ProcessContext::EnterEventRealm() { proc_->in_event_realm = true; }

Status ProcessContext::EpClean(uint64_t addr, uint64_t len) {
  if (ep_ == nullptr) {
    return Status::kBadState;
  }
  const uint64_t dropped = OverlayClean(&ep_->private_pages, addr, len);
  kernel_->mem_.overlay_page_slots -= dropped;
  ep_->ever_cleaned = true;
  return Status::kOk;
}

void ProcessContext::EpExit() {
  if (ep_ != nullptr) {
    ep_->exited = true;
  } else {
    // ep_exit from the base context is meaningless; treat as process exit.
    proc_->exited = true;
  }
}

uint64_t ProcessContext::AllocPages(uint64_t n) { return proc_->memory.AllocPages(n); }

void ProcessContext::FreePages(uint64_t addr, uint64_t n) { proc_->memory.FreePages(addr, n); }

void ProcessContext::ReadMem(uint64_t addr, void* out, uint64_t n) const {
  if (const MappedRegion* m = FindMapping(ep_, addr)) {
    const SharedRegion& region = proc_->shared_regions.at(m->region.value());
    uint64_t offset = addr - m->base_addr;
    ASB_ASSERT(offset + n <= m->page_count * kPageSize && "access crosses the mapping");
    uint8_t* dst = static_cast<uint8_t*>(out);
    while (n > 0) {
      const uint64_t page = offset / kPageSize;
      const uint64_t in_page = offset % kPageSize;
      const uint64_t chunk = std::min<uint64_t>(n, kPageSize - in_page);
      std::memcpy(dst, region.pages[page].get()->bytes + in_page, chunk);
      dst += chunk;
      offset += chunk;
      n -= chunk;
    }
    return;
  }
  proc_->memory.Read(ep_ != nullptr ? &ep_->private_pages : nullptr, addr, out, n);
}

void ProcessContext::WriteMem(uint64_t addr, const void* data, uint64_t n) {
  if (const MappedRegion* m = FindMapping(ep_, addr)) {
    SharedRegion& region = proc_->shared_regions.at(m->region.value());
    // Write-time check: the writer's taint must still fit under the region
    // label, or other mappers (contaminated only to the region label) would
    // observe higher-taint data. Failing writes vanish silently, like
    // undeliverable sends.
    const LabelWorkStats baseline = GetLabelWorkStats();
    const bool allowed = ep_->send_label.Leq(region.label);
    kernel_->ChargeLabelWorkSince(baseline);
    if (!allowed) {
      kernel_->stats_.shared_writes_dropped += 1;
      return;
    }
    uint64_t offset = addr - m->base_addr;
    ASB_ASSERT(offset + n <= m->page_count * kPageSize && "access crosses the mapping");
    const uint8_t* src = static_cast<const uint8_t*>(data);
    while (n > 0) {
      const uint64_t page = offset / kPageSize;
      const uint64_t in_page = offset % kPageSize;
      const uint64_t chunk = std::min<uint64_t>(n, kPageSize - in_page);
      std::memcpy(region.pages[page].get()->bytes + in_page, src, chunk);
      src += chunk;
      offset += chunk;
      n -= chunk;
    }
    return;
  }
  const uint64_t cow =
      proc_->memory.Write(ep_ != nullptr ? &ep_->private_pages : nullptr, addr, data, n);
  if (cow > 0) {
    kernel_->stats_.cow_pages_copied += cow;
    kernel_->mem_.overlay_page_slots += cow;
    ChargeTo(Component::kKernelIpc, cow * costs::kEpPageCowCycles);
    kernel_->UpdatePeak();
  }
}

Result<Handle> ProcessContext::ShareRegion(uint64_t addr, uint64_t n_pages,
                                           const Label& region_label) {
  if (ep_ == nullptr) {
    return Status::kBadState;  // shared regions exist between event processes
  }
  if (n_pages == 0 || addr % kPageSize != 0) {
    return Status::kInvalidArgs;
  }
  // Publishing data at region_label requires the data's taint to fit under
  // it — the exact condition a send's ES ⊑ V check would impose.
  const LabelWorkStats baseline = GetLabelWorkStats();
  const bool allowed = ep_->send_label.Leq(region_label);
  kernel_->ChargeLabelWorkSince(baseline);
  if (!allowed) {
    return Status::kAccessDenied;
  }
  Kernel::SyscallFrame nf;
  kernel_->Dispatch(Kernel::Sys::kNewHandle, *proc_, ep_, nf);
  const Handle h = nf.out_handle;
  SharedRegion region;
  region.handle = h;
  region.label = region_label;
  region.pages.reserve(n_pages);
  // Snapshot the creator's current view (overlay over base over zeros).
  for (uint64_t p = 0; p < n_pages; ++p) {
    auto* page = new internal::SimPage();
    proc_->memory.Read(&ep_->private_pages, addr + p * kPageSize, page->bytes, kPageSize);
    region.pages.emplace_back(page);
    ChargeTo(Component::kKernelIpc, costs::kEpPageCowCycles);
  }
  proc_->shared_regions.emplace(h.value(), std::move(region));
  kernel_->stats_.shared_regions_created += 1;
  kernel_->UpdatePeak();
  return h;
}

Status ProcessContext::MapSharedRegion(Handle region, uint64_t at_addr) {
  if (ep_ == nullptr) {
    return Status::kBadState;
  }
  auto it = proc_->shared_regions.find(region.value());
  if (it == proc_->shared_regions.end()) {
    return Status::kNotFound;
  }
  if (at_addr % kPageSize != 0) {
    return Status::kInvalidArgs;
  }
  if (FindMapping(ep_, at_addr) != nullptr) {
    return Status::kAlreadyExists;
  }
  // Mapping is receiving: the region's label must fit under this event
  // process's receive label, and contaminates its send label (Eq. 5 with the
  // region label as ES).
  const LabelWorkStats baseline = GetLabelWorkStats();
  const bool allowed = it->second.label.Leq(ep_->recv_label);
  if (!allowed) {
    kernel_->ChargeLabelWorkSince(baseline);
    return Status::kAccessDenied;
  }
  Label contam = Label::Glb(it->second.label, ep_->send_label.StarsOnly());
  ep_->send_label.JoinInPlace(contam);
  kernel_->ChargeLabelWorkSince(baseline);

  MappedRegion m;
  m.base_addr = at_addr;
  m.page_count = it->second.pages.size();
  m.region = region;
  ep_->mappings.push_back(m);
  ChargeTo(Component::kKernelIpc, costs::kEpSwitchCycles);
  return Status::kOk;
}

Status ProcessContext::UnmapSharedRegion(Handle region) {
  if (ep_ == nullptr) {
    return Status::kBadState;
  }
  for (auto it = ep_->mappings.begin(); it != ep_->mappings.end(); ++it) {
    if (it->region == region) {
      ep_->mappings.erase(it);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

void ProcessContext::ModelHeapBytes(int64_t delta) {
  proc_->modeled_heap_bytes += delta;
  ASB_ASSERT(proc_->modeled_heap_bytes >= 0);
  if (delta > 0) {
    kernel_->mem_.modeled_user_heap_bytes += static_cast<uint64_t>(delta);
  } else {
    kernel_->mem_.modeled_user_heap_bytes -= static_cast<uint64_t>(-delta);
  }
  kernel_->UpdatePeak();
}

void ProcessContext::ChargeCycles(uint64_t cycles) { ChargeTo(proc_->component, cycles); }

uint64_t ProcessContext::current_trace_id() const { return kernel_->current_trace_id_; }

// --- Kernel ---------------------------------------------------------------------

Kernel::Kernel(uint64_t boot_key) : handles_(boot_key) {
  obs_gauge_group_ = obs::Registry::Get().RegisterGauges([this](obs::GaugeSink& sink) {
    // Names are built at snapshot time so SetMetricsPrefix calls after
    // construction still take effect (fleets set prefixes post-boot).
    const std::string& p = metrics_prefix_;
    sink.Set(p + "kernel.stats.sends", stats_.sends);
    sink.Set(p + "kernel.stats.deliveries", stats_.deliveries);
    sink.Set(p + "kernel.stats.drops_no_port", stats_.drops_no_port);
    sink.Set(p + "kernel.stats.drops_privilege", stats_.drops_privilege);
    sink.Set(p + "kernel.stats.drops_dr_port", stats_.drops_dr_port);
    sink.Set(p + "kernel.stats.drops_label_check", stats_.drops_label_check);
    sink.Set(p + "kernel.stats.eps_created", stats_.eps_created);
    sink.Set(p + "kernel.stats.eps_destroyed", stats_.eps_destroyed);
    sink.Set(p + "kernel.stats.processes_created", stats_.processes_created);
    sink.Set(p + "kernel.stats.cow_pages_copied", stats_.cow_pages_copied);
    sink.Set(p + "kernel.stats.shared_regions_created", stats_.shared_regions_created);
    sink.Set(p + "kernel.stats.shared_writes_dropped", stats_.shared_writes_dropped);
    const KernelMemReport mem = MemReport();
    sink.Set(p + "kernel.mem.vnode_bytes", mem.vnode_bytes);
    sink.Set(p + "kernel.mem.process_bytes", mem.process_bytes);
    sink.Set(p + "kernel.mem.ep_bytes", mem.ep_bytes);
    sink.Set(p + "kernel.mem.label_bytes", mem.label_bytes);
    sink.Set(p + "kernel.mem.label_intern_index_bytes", mem.label_intern_index_bytes);
    sink.Set(p + "kernel.mem.label_dedup_saved_bytes", mem.label_dedup_saved_bytes);
    sink.Set(p + "kernel.mem.page_bytes", mem.page_bytes);
    sink.Set(p + "kernel.mem.overlay_slot_bytes", mem.overlay_slot_bytes);
    sink.Set(p + "kernel.mem.queue_bytes", mem.queue_bytes);
    sink.Set(p + "kernel.mem.queue_arena_bytes", mem.queue_arena_bytes);
    sink.Set(p + "kernel.mem.modeled_heap_bytes", mem.modeled_heap_bytes);
    sink.Set(p + "kernel.mem.store_bytes", mem.store_bytes);
    sink.Set(p + "kernel.mem.session_bytes", mem.session_bytes);
    sink.Set(p + "kernel.mem.binding_bytes", mem.binding_bytes);
    sink.Set(p + "kernel.mem.handle_table_bytes", mem.handle_table_bytes);
    sink.Set(p + "kernel.mem.total_bytes", mem.total_bytes());
    sink.Set(p + "kernel.mem.peak_total_bytes", peak_total_bytes_);
    if (scale_user_count_ > 0) {
      sink.Set(p + "kernel.mem.bytes_per_user",
               static_cast<double>(mem.total_bytes()) /
                   static_cast<double>(scale_user_count_));
    }
  });
}

void Kernel::ReserveRecoveredHandle(Handle h) {
  if (h.valid()) {
    handles_.SkipPast(h.value());
  }
}

Kernel::~Kernel() {
  // The live kernel.mem.* gauge group dies with this kernel; keep the
  // high-water mark (max across every kernel this process ran) so
  // post-teardown snapshots still carry a memstats family.
  obs::Gauge& peak =
      obs::Registry::Get().gauge(metrics_prefix_ + "kernel.mem.peak_total_bytes");
  if (static_cast<double>(peak_total_bytes_) > peak.value()) {
    peak.Set(static_cast<double>(peak_total_bytes_));
  }
  obs::Registry::Get().UnregisterGauges(obs_gauge_group_);
}

uint64_t Kernel::now_cycles() const { return GetCycleAccounting().now(); }

void Kernel::ChargeLabelWorkSince(const LabelWorkStats& baseline) {
  const LabelWorkStats& now = GetLabelWorkStats();
  const uint64_t ops = now.ops - baseline.ops;
  const uint64_t entries = now.entries_visited - baseline.entries_visited;
  ChargeTo(Component::kKernelIpc,
           ops * costs::kLabelOpBaseCycles + entries * costs::kLabelEntryCycles);
}

Label& Kernel::ContextSendLabel(Process& proc, EventProcess* ep) {
  return ep != nullptr ? ep->send_label : proc.send_label;
}

Label& Kernel::ContextRecvLabel(Process& proc, EventProcess* ep) {
  return ep != nullptr ? ep->recv_label : proc.recv_label;
}

Kernel::Vnode* Kernel::FindVnode(Handle h) {
  auto it = vnodes_.find(h.value());
  return it == vnodes_.end() ? nullptr : &it->second;
}

const Kernel::Vnode* Kernel::FindVnode(Handle h) const {
  auto it = vnodes_.find(h.value());
  return it == vnodes_.end() ? nullptr : &it->second;
}

Kernel::Vnode* Kernel::FindLivePort(Handle h) {
  Vnode* v = FindVnode(h);
  return (v != nullptr && v->is_port && v->port_alive) ? v : nullptr;
}

bool Kernel::ContextOwnsPort(const Process& proc, const EventProcess* ep,
                             const Vnode& v) const {
  return v.owner == proc.id && v.owner_ep == (ep != nullptr ? ep->id : kBaseContext);
}

// The dispatch table (ctOS-style syscall_dispatch): each entry carries the
// syscall's fixed base cost, charged by Dispatch in one place. Cycle parity
// with the pre-table kernel: the base figures below are exactly the fixed
// ChargeTo calls the bodies used to open with (send pays base + the vnode
// lookup; the *_level and spawn calls had no fixed cost); variable costs —
// per-payload-byte, per-label-entry — remain in the bodies.
const std::array<Kernel::SyscallEntry, Kernel::kNumSyscalls>& Kernel::SyscallTable() {
  static const std::array<SyscallEntry, kNumSyscalls> kTable = {{
      {"new_handle", costs::kVnodeLookupCycles, &Kernel::SysNewHandle},
      {"new_port", costs::kVnodeLookupCycles, &Kernel::SysNewPort},
      {"set_port_label", costs::kVnodeLookupCycles, &Kernel::SysSetPortLabel},
      {"send", costs::kSendBaseCycles + costs::kVnodeLookupCycles, &Kernel::SysSend},
      {"set_send_level", 0, &Kernel::SysSetSendLevel},
      {"set_receive_level", 0, &Kernel::SysSetReceiveLevel},
      {"spawn", 0, &Kernel::SysSpawn},
  }};
  return kTable;
}

void Kernel::Dispatch(Sys sys, Process& proc, EventProcess* ep, SyscallFrame& frame) {
  const size_t idx = static_cast<size_t>(sys);
  ASB_ASSERT(idx < kNumSyscalls);
  const SyscallEntry& entry = SyscallTable()[idx];
  if (entry.base_cycles != 0) {
    ChargeTo(Component::kKernelIpc, entry.base_cycles);
  }
  static std::array<obs::Counter*, kNumSyscalls> counters = [] {
    std::array<obs::Counter*, kNumSyscalls> c{};
    for (size_t i = 0; i < kNumSyscalls; ++i) {
      c[i] = &obs::Registry::Get().counter(std::string("kernel.sys.") +
                                           SyscallTable()[i].name);
    }
    return c;
  }();
  counters[idx]->Add();
  if (obs::CycleProfiler::enabled()) {
    obs::ProfSpan span;
    span.Begin(std::string("sys.") + entry.name);
    // Attribute the whole dispatch — base cost charged above plus whatever
    // the body charges — to (process, syscall). Reads the clock, never
    // charges it.
    const uint64_t start = GetCycleAccounting().now() - entry.base_cycles;
    (this->*entry.fn)(proc, ep, frame);
    obs::CycleProfiler::Get().AttributeSyscall(proc.name, entry.name,
                                               GetCycleAccounting().now() - start);
    return;
  }
  (this->*entry.fn)(proc, ep, frame);
}

void Kernel::SysNewHandle(Process& proc, EventProcess* ep, SyscallFrame& f) {
  const Handle h = Handle::FromValue(handles_.Next());
  // Plain handles go to the dense table, not the vnode map (see kernel.h).
  // Lookups still behave identically: a plain handle was never a live port,
  // so FindLivePort/PortAlive answered null/false for it before too.
  plain_handles_.push_back(h.value());
  mem_.vnodes += 1;
  mem_.plain_handles += 1;
  Label& qs = ContextSendLabel(proc, ep);
  const uint64_t pre_rep = obs::ProvenanceLedger::enabled() ? qs.rep_id() : 0;
  const LabelWorkStats baseline = GetLabelWorkStats();
  qs.Set(h, Level::kStar);
  ChargeLabelWorkSince(baseline);
  if (obs::ProvenanceLedger::enabled()) {
    obs::ProvenanceLedger::Get().RecordEdge(
        obs::EdgeKind::kOrigin, proc.name, "", pre_rep, qs.rep_id(),
        Label({{h, Level::kStar}}, Level::kL3), current_trace_id_);
  }
  UpdatePeak();
  f.out_handle = h;
}

void Kernel::SysNewPort(Process& proc, EventProcess* ep, SyscallFrame& f) {
  const Label& port_label = *f.label;
  const Handle p = Handle::FromValue(handles_.Next());
  Vnode v;
  v.handle = p;
  v.is_port = true;
  v.port_alive = true;
  v.port_label = port_label;
  // The kernel closes the new port by default: pR(p) ← 0 means no process
  // with the default send level 1 can reach it until the owner says so.
  v.port_label.Set(p, Level::kL0);
  v.owner = proc.id;
  v.owner_ep = ep != nullptr ? ep->id : kBaseContext;
  vnodes_.emplace(p.value(), std::move(v));
  mem_.vnodes += 1;
  auto& ports = ep != nullptr ? ep->owned_ports : proc.owned_ports;
  ports.push_back(p);
  const LabelWorkStats baseline = GetLabelWorkStats();
  ContextSendLabel(proc, ep).Set(p, Level::kStar);
  ChargeLabelWorkSince(baseline);
  UpdatePeak();
  f.out_handle = p;
}

void Kernel::SysSetPortLabel(Process& proc, EventProcess* ep, SyscallFrame& f) {
  Vnode* v = FindLivePort(f.handle);
  if (v == nullptr || !ContextOwnsPort(proc, ep, *v)) {
    f.status = Status::kNotFound;
    return;
  }
  // set_port_label applies the label verbatim: no implicit pR(p) ← 0, which
  // is how an owner opens a port to the world (paper §5.5).
  v->port_label = *f.label;
  f.status = Status::kOk;
}

void Kernel::SysSetSendLevel(Process& proc, EventProcess* ep, SyscallFrame& f) {
  Label& qs = ContextSendLabel(proc, ep);
  const Level current = qs.Get(f.handle);
  if (!LevelLeq(current, f.level) && current != Level::kStar) {
    // Lowering without holding ⋆ would be self-declassification.
    f.status = Status::kAccessDenied;
    return;
  }
  const uint64_t pre_rep = obs::ProvenanceLedger::enabled() ? qs.rep_id() : 0;
  const LabelWorkStats baseline = GetLabelWorkStats();
  qs.Set(f.handle, f.level);
  ChargeLabelWorkSince(baseline);
  if (obs::ProvenanceLedger::enabled() && !LevelLeq(f.level, current) &&
      LevelLeq(Level::kL2, f.level)) {
    // A raise into taint territory is voluntary self-contamination: taint
    // with no inbound message, so it gets an origin edge.
    obs::ProvenanceLedger::Get().RecordEdge(
        obs::EdgeKind::kOrigin, proc.name, "", pre_rep, qs.rep_id(),
        Label({{f.handle, f.level}}, Level::kL1), current_trace_id_);
  }
  f.status = Status::kOk;
}

void Kernel::SysSetReceiveLevel(Process& proc, EventProcess* ep, SyscallFrame& f) {
  Label& qr = ContextRecvLabel(proc, ep);
  const Level current = qr.Get(f.handle);
  if (!LevelLeq(f.level, current)) {
    // Raising a receive level makes the process contaminable: requires ⋆.
    if (ContextSendLabel(proc, ep).Get(f.handle) != Level::kStar) {
      f.status = Status::kAccessDenied;
      return;
    }
  }
  const LabelWorkStats baseline = GetLabelWorkStats();
  qr.Set(f.handle, f.level);
  ChargeLabelWorkSince(baseline);
  f.status = Status::kOk;
}

void Kernel::SysSend(Process& proc, EventProcess* ep, SyscallFrame& f) {
  Message msg = std::move(*f.msg);
  const SendArgs& args = *f.send_args;
  const Handle port = f.handle;
  f.status = Status::kOk;  // unreliable: every outcome below reports success

  stats_.sends += 1;
  const uint64_t payload = MessagePayloadBytes(msg);
  ChargeTo(Component::kKernelIpc, payload * costs::kMessageByteCycles);

  Vnode* v = FindLivePort(port);
  if (v == nullptr) {
    // Unreliable messaging: the sender cannot distinguish a dead port from a
    // label failure; both report success.
    stats_.drops_no_port += 1;
    return;
  }

  const Label& ps = ContextSendLabel(proc, ep);
  const LabelWorkStats baseline = GetLabelWorkStats();

  // Requirements (2) and (3): decontamination needs ⋆ on every affected
  // handle, evaluated against the sender's labels at send time.
  bool privileged = true;
  if (args.decont_send.default_level() != Level::kL3 &&
      ps.default_level() != Level::kStar) {
    privileged = false;
  }
  if (privileged) {
    for (Label::EntryIter it = args.decont_send.IterateEntries(); !it.done(); it.Advance()) {
      if (it.level() != Level::kL3 && ps.Get(it.handle()) != Level::kStar) {
        privileged = false;
        break;
      }
    }
  }
  if (privileged && args.decont_receive.default_level() != Level::kStar &&
      ps.default_level() != Level::kStar) {
    privileged = false;
  }
  if (privileged) {
    for (Label::EntryIter it = args.decont_receive.IterateEntries(); !it.done();
         it.Advance()) {
      if (it.level() != Level::kStar && ps.Get(it.handle()) != Level::kStar) {
        privileged = false;
        break;
      }
    }
  }
  if (!privileged) {
    ChargeLabelWorkSince(baseline);
    stats_.drops_privilege += 1;
    if (obs::ProvenanceLedger::enabled()) {
      // Cold path: re-find the first handle whose decontamination needs a ⋆
      // the sender does not hold (requirements 2 and 3). The label reads
      // and the Lub below are forensics, not kernel work — shield the
      // counters.
      const LabelWorkStats forensics_baseline = GetLabelWorkStats();
      uint64_t failed = 0;
      Level had = ps.default_level();
      for (Label::EntryIter it = args.decont_send.IterateEntries(); !it.done();
           it.Advance()) {
        if (it.level() != Level::kL3 && ps.Get(it.handle()) != Level::kStar) {
          failed = it.handle().value();
          had = ps.Get(it.handle());
          break;
        }
      }
      if (failed == 0) {
        for (Label::EntryIter it = args.decont_receive.IterateEntries();
             !it.done(); it.Advance()) {
          if (it.level() != Level::kStar && ps.Get(it.handle()) != Level::kStar) {
            failed = it.handle().value();
            had = ps.Get(it.handle());
            break;
          }
        }
      }
      obs::ProvenanceLedger::Get().RecordRefusal(
          "kernel.send_privilege", proc.name,
          "decontamination requires \xe2\x8b\x86 the sender lacks (reqs 2-3)",
          failed, had, Level::kStar,
          Label::Lub(args.decont_send, args.decont_receive), ps,
          current_trace_id_);
      GetLabelWorkStats() = forensics_baseline;
    }
    return;  // silently dropped
  }

  QueuedMessage qm;
  qm.msg = std::move(msg);
  qm.msg.port = port;
  qm.msg.verify = args.verify;
  if (qm.msg.trace_id == 0) {
    // Propagate the flow trace: an unset id inherits the trace of the
    // message whose handler issued this send.
    qm.msg.trace_id = current_trace_id_;
  }
  // ES = PS ⊔ CS, snapshotted now: later sender label changes must not
  // retroactively change what this message carries.
  qm.effective_send = Label::Lub(ps, args.contaminate);
  qm.decont_send = args.decont_send;
  qm.decont_receive = args.decont_receive;
  qm.payload_bytes = payload;
  if (obs::ProvenanceLedger::enabled()) {
    qm.sender = proc.name;
  }
  ChargeLabelWorkSince(baseline);

  AddQueueAccounting(qm);
  v->queue.push_back(std::move(qm));
  Process* owner = FindProcess(v->owner);
  ASB_ASSERT(owner != nullptr);
  EnqueuePendingPort(*owner, port);
  UpdatePeak();
}

void Kernel::SysSpawn(Process& parent, EventProcess* ep, SyscallFrame& f) {
  SpawnArgs& args = *f.spawn_args;
  // Spawning transmits the parent's entire state to the child, so the
  // child's send label may sit below the parent's only where the parent
  // holds ⋆ (this is how privilege is distributed by forking, §5.3), and the
  // child's receive label may exceed the system default only where the
  // parent holds ⋆ (it is a decontamination).
  const Label& ps = ContextSendLabel(parent, ep);
  const LabelWorkStats baseline = GetLabelWorkStats();
  bool allowed = true;
  if (!LevelLeq(ps.default_level(), args.send_label.default_level()) &&
      ps.default_level() != Level::kStar) {
    allowed = false;
  }
  if (allowed) {
    // Check every handle where either label is explicit.
    for (const auto& [h, child_level] : args.send_label.Entries()) {
      const Level pl = ps.Get(h);
      if (!LevelLeq(pl, child_level) && pl != Level::kStar) {
        allowed = false;
        break;
      }
    }
  }
  if (allowed) {
    for (const auto& [h, pl] : ps.Entries()) {
      const Level child_level = args.send_label.Get(h);
      if (!LevelLeq(pl, child_level) && pl != Level::kStar) {
        allowed = false;
        break;
      }
    }
  }
  if (allowed) {
    if (!LevelLeq(args.recv_label.default_level(), kDefaultReceiveLevel) &&
        ps.default_level() != Level::kStar) {
      allowed = false;
    }
  }
  if (allowed) {
    for (const auto& [h, child_level] : args.recv_label.Entries()) {
      if (!LevelLeq(child_level, kDefaultReceiveLevel) && ps.Get(h) != Level::kStar) {
        allowed = false;
        break;
      }
    }
  }
  ChargeLabelWorkSince(baseline);
  if (!allowed) {
    f.status = Status::kAccessDenied;
    return;
  }
  f.out_pid = CreateProcess(std::move(*f.code), std::move(args));
  f.status = Status::kOk;
}

ProcessId Kernel::CreateProcess(std::unique_ptr<ProcessCode> code, SpawnArgs args) {
  ChargeTo(Component::kOther, costs::kProcessSwitchCycles);
  const ProcessId pid = next_pid_++;
  auto proc = std::make_unique<Process>();
  proc->id = pid;
  proc->name = args.name;
  proc->component = args.component;
  proc->code = std::move(code);
  proc->send_label = args.send_label;
  proc->recv_label = args.recv_label;
  proc->env = std::move(args.env);
  Process* raw = proc.get();
  processes_.emplace(pid, std::move(proc));
  if (raw->code->HasOnIdle()) {
    idle_hook_pids_.push_back(pid);
  }
  stats_.processes_created += 1;
  mem_.processes += 1;
  UpdatePeak();
  {
    ScopedComponent scope(raw->component);
    ProcessContext ctx(this, raw, nullptr, false);
    raw->code->Start(ctx);
  }
  if (raw->exited) {
    DestroyProcess(*raw);
  }
  return pid;
}

void Kernel::RunInBaseContext(Process& proc, const std::function<void(ProcessContext&)>& fn) {
  ScopedComponent scope(proc.component);
  ProcessContext ctx(this, &proc, nullptr, false);
  fn(ctx);
  if (proc.exited) {
    DestroyProcess(proc);
  }
}

void Kernel::WithProcessContext(ProcessId pid, const std::function<void(ProcessContext&)>& fn) {
  Process* proc = FindProcess(pid);
  ASB_ASSERT(proc != nullptr && !proc->exited);
  RunInBaseContext(*proc, fn);
}

void Kernel::EnqueuePendingPort(Process& owner, Handle port) {
  if (owner.pending_port_set.insert(port.value()).second) {
    owner.pending_ports.push_back(port);
  }
  ScheduleProcess(owner);
}

void Kernel::ScheduleProcess(Process& proc) {
  if (!proc.in_run_queue && !proc.exited) {
    proc.in_run_queue = true;
    run_queue_.push_back(proc.id);
  }
}

bool Kernel::Step() {
  while (!run_queue_.empty()) {
    const ProcessId pid = run_queue_.front();
    run_queue_.pop_front();
    Process* proc = FindProcess(pid);
    if (proc == nullptr) {
      continue;
    }
    proc->in_run_queue = false;
    if (proc->exited) {
      continue;
    }
    ChargeTo(Component::kOther, costs::kSchedulerTickCycles);

    bool delivered = false;
    while (!proc->pending_ports.empty() && !delivered) {
      const Handle port = proc->pending_ports.front();
      proc->pending_ports.pop_front();
      proc->pending_port_set.erase(port.value());
      Vnode* v = FindLivePort(port);
      if (v == nullptr || v->owner != pid) {
        continue;  // dissociated or transferred while pending
      }
      delivered = DeliverFromPort(*v);
      // Re-queue the port if it still has traffic. (DeliverFromPort may have
      // destroyed the process; re-find defensively.)
      proc = FindProcess(pid);
      if (proc == nullptr) {
        break;
      }
      v = FindLivePort(port);
      if (v != nullptr && v->owner == pid && !v->queue.empty()) {
        EnqueuePendingPort(*proc, port);
      }
    }
    if (proc != nullptr && !proc->pending_ports.empty()) {
      ScheduleProcess(*proc);
    }
    if (delivered) {
      return true;
    }
  }
  return false;
}

void Kernel::RunUntilIdle() {
  while (true) {
    while (Step()) {
    }
    // End of the pump iteration: dispatch OnIdle to the processes that
    // declared a hook at creation (group commit of durable stores lives
    // here) — the common volatile world has none and skips this entirely.
    // The pid snapshot keeps the walk safe against table mutation; hooks
    // are not supposed to send, but if one does, the fresh work is drained
    // by another round rather than left queued — and a hook that sends
    // every round is the same livelock any self-rescheduling process could
    // already cause.
    if (!idle_hook_pids_.empty()) {
      const std::vector<ProcessId> pids = idle_hook_pids_;
      for (const ProcessId pid : pids) {
        Process* proc = FindProcess(pid);
        if (proc == nullptr || proc->exited) {
          continue;
        }
        obs::ProfSpan idle_span;
        if (obs::CycleProfiler::enabled()) {
          idle_span.Begin("idle." + proc->name);
        }
        RunInBaseContext(*proc, [proc](ProcessContext& ctx) { proc->code->OnIdle(ctx); });
      }
    }
    if (run_queue_.empty()) {
      return;
    }
  }
}

bool Kernel::DeliverFromPort(Vnode& port) {
  const Handle port_handle = port.handle;
  const ProcessId owner_pid = port.owner;
  Process* proc = FindProcess(owner_pid);
  ASB_ASSERT(proc != nullptr);

  // `pv` is re-found by handle after every handler run: a handler may close
  // the port (erasing the vnode) or transfer it, and the batch-continuation
  // gate below needs the live vnode, not a stale reference.
  Vnode* pv = &port;
  uint64_t delivered_in_batch = 0;

  while (!pv->queue.empty()) {
    QueuedMessage qm = std::move(pv->queue.front());
    pv->queue.pop_front();
    SubQueueAccounting(qm);

    // Identify the receiving context. A message on an event-process-owned
    // port resumes that event process; a message on a base-owned port of a
    // process in the event realm forks a fresh event process — but only
    // after the checks pass, so a dropped message costs nothing.
    EventProcess* ep = nullptr;
    bool would_create_ep = false;
    if (pv->owner_ep != kBaseContext) {
      auto it = proc->eps.find(pv->owner_ep);
      ASB_ASSERT(it != proc->eps.end());
      ep = it->second.get();
    } else if (proc->in_event_realm) {
      would_create_ep = true;
    }

    const Label& qr = ep != nullptr ? ep->recv_label : proc->recv_label;
    Label& qs_ref = ep != nullptr ? ep->send_label : proc->send_label;

    ChargeTo(Component::kKernelIpc,
             costs::kRecvBaseCycles + qm.payload_bytes * costs::kMessageByteCycles);
    const LabelWorkStats baseline = GetLabelWorkStats();
    uint64_t fused_work = 0;

    // Requirement (4): DR ⊑ pR — the port label bounds decontamination.
    bool ok = IsBottomLabel(qm.decont_receive) || qm.decont_receive.Leq(pv->port_label);
    if (!ok) {
      ChargeLabelWorkSince(baseline);
      stats_.drops_dr_port += 1;
      if (obs::ProvenanceLedger::enabled()) {
        // D_R ⊑ pR is ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR with ES = D_R, QR = pR and
        // the rest neutral, so the delivery explainer pinpoints the handle.
        const DeliveryRefusal why =
            ExplainDeliveryRefusal(qm.decont_receive, pv->port_label,
                                   Label::Bottom(), Label::Top(), Label::Top());
        obs::ProvenanceLedger::Get().RecordRefusal(
            "kernel.dr_port", proc->name,
            "D_R exceeds the port label (req 4)", why.handle, why.es_level,
            why.bound_level, qm.decont_receive, pv->port_label,
            qm.msg.trace_id);
      }
      continue;
    }
    // Requirement (1): ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR, with labels as they are at
    // this instant (delivery time), not as they were at send time.
    ok = CheckDeliveryAllowed(qm.effective_send, qr, qm.decont_receive, qm.msg.verify,
                              pv->port_label, &fused_work);
    ChargeTo(Component::kKernelIpc, fused_work * costs::kLabelEntryCycles +
                                        costs::kLabelOpBaseCycles);
    if (!ok) {
      ChargeLabelWorkSince(baseline);
      stats_.drops_label_check += 1;
      if (obs::ProvenanceLedger::enabled()) {
        const DeliveryRefusal why =
            ExplainDeliveryRefusal(qm.effective_send, qr, qm.decont_receive,
                                   qm.msg.verify, pv->port_label);
        std::string detail = "ES(";
        detail += why.handle == 0 ? "default" : std::to_string(why.handle);
        detail += ") = ";
        detail += LevelName(why.es_level);
        detail += " exceeds bound ";
        detail += LevelName(why.bound_level);
        detail += " (req 1)";
        obs::ProvenanceLedger::Get().RecordRefusal(
            "kernel.delivery", proc->name, detail, why.handle, why.es_level,
            why.bound_level, qm.effective_send, why.bound, qm.msg.trace_id);
      }
      continue;
    }

    bool created_ep = false;
    if (would_create_ep) {
      const EpId id = proc->next_ep_id++;
      auto fresh = std::make_unique<EventProcess>();
      fresh->id = id;
      // Labels copied from the base process (cheap: COW label reps).
      fresh->send_label = proc->send_label;
      fresh->recv_label = proc->recv_label;
      ep = fresh.get();
      proc->eps.emplace(id, std::move(fresh));
      stats_.eps_created += 1;
      mem_.event_processes += 1;
      ChargeTo(Component::kKernelIpc, costs::kEpCreateCycles);
      created_ep = true;
    } else if (ep != nullptr) {
      ChargeTo(Component::kKernelIpc, costs::kEpSwitchCycles);
    }
    if (ep != nullptr && !ep->has_queue_arena) {
      ep->has_queue_arena = true;
      mem_.ep_queue_arena_bytes += kPageSize;
    }
    if (proc->last_ran_ep != (ep != nullptr ? ep->id : kBaseContext)) {
      proc->last_ran_ep = ep != nullptr ? ep->id : kBaseContext;
    }

    // Label effects (Eq. 7). QS⋆ is evaluated on the pre-state, so a grant
    // and a contamination of the same handle in one message resolve in favor
    // of the contamination, as the paper's equation does.
    Label& qs = ep != nullptr ? ep->send_label : qs_ref;
    Label& qr_mut = ep != nullptr ? ep->recv_label : proc->recv_label;
    const bool prov = obs::ProvenanceLedger::enabled();
    const uint64_t pre_qs_rep = prov ? qs.rep_id() : 0;
    const uint64_t pre_qr_rep = prov ? qr_mut.rep_id() : 0;
    const LabelWorkStats fx_baseline = GetLabelWorkStats();
    uint64_t contam_work = 0;
    bool contaminates = NeedsContamination(qm.effective_send, qs, &contam_work);
    ChargeTo(Component::kKernelIpc, contam_work * costs::kLabelEntryCycles);
    if (IsTopLabel(qm.decont_send)) {
      if (contaminates) {
        Label contam = Label::Glb(qm.effective_send, qs.StarsOnly());
        qs.JoinInPlace(contam);
      }
    } else {
      // D_S may lower QS below ES at handles it names; re-examine just those
      // (Eq. 7's join term uses the *pre-meet* QS⋆). A D_S default below 3
      // lowers unboundedly many handles; take the literal path for that.
      if (!contaminates) {
        if (qm.decont_send.default_level() != Level::kL3) {
          contaminates = true;
        } else {
          for (Label::EntryIter it = qm.decont_send.IterateEntries(); !it.done();
               it.Advance()) {
            const Level qs_h = qs.Get(it.handle());
            if (LevelLeq(qs_h, it.level())) {
              continue;  // the meet does not lower this handle
            }
            const Level contam_h =
                qs_h == Level::kStar ? Level::kStar : qm.effective_send.Get(it.handle());
            if (!LevelLeq(contam_h, it.level())) {
              contaminates = true;
              break;
            }
          }
        }
      }
      if (contaminates) {
        Label contam = Label::Glb(qm.effective_send, qs.StarsOnly());
        qs.MeetInPlace(qm.decont_send);
        qs.JoinInPlace(contam);
      } else {
        qs.MeetInPlace(qm.decont_send);
      }
    }
    if (!IsBottomLabel(qm.decont_receive)) {
      qr_mut.JoinInPlace(qm.decont_receive);
    }
    ChargeLabelWorkSince(fx_baseline);

    if (prov) {
      // The receive-side label effects, as provenance edges. Recorded after
      // the mutations so post reps are the labels the handler will run with.
      obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
      if (contaminates) {
        ledger.RecordEdge(obs::EdgeKind::kContaminate, proc->name, qm.sender,
                          pre_qs_rep, qs.rep_id(), qm.effective_send,
                          qm.msg.trace_id);
      }
      if (!IsTopLabel(qm.decont_send)) {
        ledger.RecordEdge(obs::EdgeKind::kGrant, proc->name, qm.sender,
                          pre_qs_rep, qs.rep_id(), qm.decont_send,
                          qm.msg.trace_id);
      }
      if (!IsBottomLabel(qm.decont_receive)) {
        ledger.RecordEdge(obs::EdgeKind::kGrant, proc->name, qm.sender,
                          pre_qr_rep, qr_mut.rep_id(), qm.decont_receive,
                          qm.msg.trace_id);
      }
      if (!IsTopLabel(qm.msg.verify)) {
        // The verify label lowered the delivery bound: a declassification
        // the verify-port holder vouched for.
        ledger.RecordEdge(obs::EdgeKind::kDeclassify, proc->name, qm.sender,
                          pre_qs_rep, qs.rep_id(), qm.msg.verify,
                          qm.msg.trace_id);
      }
    }

    stats_.deliveries += 1;
    UpdatePeak();

    {
      obs::ProfSpan deliver_span;
      if (obs::CycleProfiler::enabled()) {
        deliver_span.Begin("deliver." + proc->name);
      }
      ScopedComponent scope(proc->component);
      ProcessContext ctx(this, proc, ep, created_ep);
      const uint64_t prev_trace = current_trace_id_;
      current_trace_id_ = qm.msg.trace_id;
      if (obs::TraceRing::enabled() && qm.msg.trace_id != 0) {
        obs::TraceRing::Get().Emit(qm.msg.trace_id, "kernel", "kernel.deliver",
                                   proc->name, qm.effective_send);
      }
      proc->code->HandleMessage(ctx, qm.msg);
      current_trace_id_ = prev_trace;
    }

    delivered_in_batch += 1;

    // Post-handler lifecycle.
    if (proc->exited) {
      DestroyProcess(*proc);  // `proc` dangling; the batch necessarily ends
      break;
    }
    if (ep != nullptr) {
      if (ep->exited) {
        DestroyEventProcess(*proc, ep->id);
      } else {
        ReleaseQueueArenaIfIdle(*proc, *ep);
      }
    }
    UpdatePeak();

    // --- Batch continuation gate ------------------------------------------
    // Keep draining this port only when the unbatched scheduler's next
    // action would provably be this exact port, and mirror precisely the
    // state transitions and charges it would have made getting here. Two
    // such situations exist after a delivery:
    //
    //  (a) Nothing else is runnable and this port was not re-sent to: the
    //      unbatched Step would re-enqueue the port (net-zero set/queue
    //      churn), return, be called again, pop this process (one scheduler
    //      tick), pop this port, and deliver. Net state change: none.
    //  (b) The handler sent to this very port and nothing else: the run
    //      queue holds exactly this process and its pending list exactly
    //      this port. The unbatched Step would pop both (one tick) and
    //      deliver. Mirror the pops.
    //
    // Anything else — another runnable process, another pending port — and
    // the unbatched pump would go elsewhere first, so the batch ends.
    if (delivered_in_batch >= pump_batch_limit_) {
      break;
    }
    Vnode* next = FindLivePort(port_handle);
    if (next == nullptr || next->owner != owner_pid || next->queue.empty()) {
      break;
    }
    if (run_queue_.empty() && proc->pending_ports.empty()) {
      // (a) — no state to mirror.
    } else if (run_queue_.size() == 1 && run_queue_.front() == owner_pid &&
               proc->pending_ports.size() == 1 &&
               proc->pending_ports.front() == port_handle) {
      // (b) — mirror Step's pops.
      run_queue_.pop_front();
      proc->in_run_queue = false;
      proc->pending_ports.pop_front();
      proc->pending_port_set.erase(port_handle.value());
    } else {
      break;
    }
    ChargeTo(Component::kOther, costs::kSchedulerTickCycles);
    pv = next;
  }

  if (delivered_in_batch > 0) {
    static obs::Counter& batches = obs::Registry::Get().counter("pump.batches");
    static obs::CycleHistogram& per_batch =
        obs::Registry::Get().histogram("pump.msgs_per_batch");
    batches.Add();
    per_batch.Record(delivered_in_batch);
    return true;
  }
  return false;
}

void Kernel::AddQueueAccounting(const QueuedMessage& qm) {
  mem_.queued_message_bytes +=
      qm.msg.words.size() * sizeof(uint64_t) + kQueuedMessageOverheadBytes;
  const void* id = qm.msg.data.buffer_id();
  if (id != nullptr) {
    auto& entry = queued_buf_refs_[id];
    if (entry.first++ == 0) {
      entry.second = qm.msg.data.buffer_bytes();
      mem_.queued_message_bytes += entry.second;
    }
  }
}

void Kernel::SubQueueAccounting(const QueuedMessage& qm) {
  mem_.queued_message_bytes -=
      qm.msg.words.size() * sizeof(uint64_t) + kQueuedMessageOverheadBytes;
  const void* id = qm.msg.data.buffer_id();
  if (id != nullptr) {
    auto it = queued_buf_refs_.find(id);
    ASB_ASSERT(it != queued_buf_refs_.end() && it->second.first > 0);
    if (--it->second.first == 0) {
      mem_.queued_message_bytes -= it->second.second;
      queued_buf_refs_.erase(it);
    }
  }
}

void Kernel::ReleaseQueueArenaIfIdle(Process& proc, EventProcess& ep) {
  if (!ep.has_queue_arena) {
    return;
  }
  // An event process that follows the ep_clean discipline releases its
  // queue arena between requests; one that never cleans (the paper's
  // worst-case "active session") keeps it, matching §9.1's extra
  // message-queue page per active session.
  if (!ep.ever_cleaned && !ep.private_pages.empty()) {
    return;
  }
  for (Handle h : ep.owned_ports) {
    const Vnode* v = FindVnode(h);
    if (v != nullptr && v->port_alive && !v->queue.empty()) {
      return;  // still has traffic; keep the arena
    }
  }
  ep.has_queue_arena = false;
  mem_.ep_queue_arena_bytes -= kPageSize;
  (void)proc;
}

void Kernel::DissociatePort(Vnode& v) {
  ASB_ASSERT(v.is_port);
  for (const QueuedMessage& qm : v.queue) {
    SubQueueAccounting(qm);
    stats_.drops_no_port += 1;
  }
  v.queue.clear();
  v.port_alive = false;
  v.owner = kNoProcess;
  v.owner_ep = kBaseContext;
  // The vnode's memory becomes reclaimable once no kernel references remain;
  // our labels hold handle values rather than vnode pointers, so reclaim now.
  mem_.vnodes -= 1;
  v.port_label = Label::Top();
  vnodes_.erase(v.handle.value());  // `v` is dangling after this line
}

void Kernel::DestroyEventProcess(Process& proc, EpId ep_id) {
  auto it = proc.eps.find(ep_id);
  ASB_ASSERT(it != proc.eps.end());
  EventProcess& ep = *it->second;
  // Dissociating while iterating would invalidate ep.owned_ports; copy.
  const std::vector<Handle> ports = ep.owned_ports;
  for (Handle h : ports) {
    Vnode* v = FindLivePort(h);
    if (v != nullptr) {
      DissociatePort(*v);
    }
  }
  mem_.overlay_page_slots -= ep.private_pages.size();
  if (ep.has_queue_arena) {
    mem_.ep_queue_arena_bytes -= kPageSize;
  }
  proc.eps.erase(it);
  stats_.eps_destroyed += 1;
  mem_.event_processes -= 1;
}

void Kernel::DestroyProcess(Process& proc) {
  const std::vector<EpId> ep_ids = [&] {
    std::vector<EpId> ids;
    ids.reserve(proc.eps.size());
    for (const auto& [id, ep] : proc.eps) {
      ids.push_back(id);
    }
    return ids;
  }();
  for (EpId id : ep_ids) {
    DestroyEventProcess(proc, id);
  }
  const std::vector<Handle> ports = proc.owned_ports;
  for (Handle h : ports) {
    Vnode* v = FindLivePort(h);
    if (v != nullptr) {
      DissociatePort(*v);
    }
  }
  mem_.modeled_user_heap_bytes -= static_cast<uint64_t>(proc.modeled_heap_bytes);
  mem_.processes -= 1;
  idle_hook_pids_.erase(std::remove(idle_hook_pids_.begin(), idle_hook_pids_.end(), proc.id),
                        idle_hook_pids_.end());
  processes_.erase(proc.id);  // `proc` is dangling after this line
}

Process* Kernel::FindProcess(ProcessId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

Process* Kernel::FindProcessByName(const std::string& name) {
  for (auto& [pid, proc] : processes_) {
    if (proc->name == name) {
      return proc.get();
    }
  }
  return nullptr;
}

const Label& Kernel::SendLabelOf(ProcessId pid, EpId ep) {
  Process* proc = FindProcess(pid);
  ASB_ASSERT(proc != nullptr);
  if (ep == kBaseContext) {
    return proc->send_label;
  }
  auto it = proc->eps.find(ep);
  ASB_ASSERT(it != proc->eps.end());
  return it->second->send_label;
}

const Label& Kernel::RecvLabelOf(ProcessId pid, EpId ep) {
  Process* proc = FindProcess(pid);
  ASB_ASSERT(proc != nullptr);
  if (ep == kBaseContext) {
    return proc->recv_label;
  }
  auto it = proc->eps.find(ep);
  ASB_ASSERT(it != proc->eps.end());
  return it->second->recv_label;
}

bool Kernel::PortAlive(Handle port) const {
  const Vnode* v = FindVnode(port);
  return v != nullptr && v->is_port && v->port_alive;
}

size_t Kernel::QueuedMessageCount(Handle port) const {
  const Vnode* v = FindVnode(port);
  return (v != nullptr && v->is_port) ? v->queue.size() : 0;
}

KernelMemReport Kernel::MemReport() const {
  KernelMemReport r;
  if (ScaleAccountingEnabled()) {
    // Scale mode: plain handles are charged as what they are now — dense
    // 16-byte table slots — instead of the paper's 64-byte vnode figure;
    // per-user bindings are the flat tables' real bytes instead of the
    // modeled std::map heap (the tables skip ModelHeapBytes in this mode).
    r.vnode_bytes = (mem_.vnodes - mem_.plain_handles) * kVnodeBytes;
    r.handle_table_bytes = mem_.plain_handles * kHandleTableEntryBytes;
    r.binding_bytes = static_cast<uint64_t>(GetBindingMemStats().live_bytes);
  } else {
    r.vnode_bytes = mem_.vnodes * kVnodeBytes;
  }
  // Parked-session records exist only when parking is on; counting them
  // unconditionally keeps total_bytes() honest in either accounting mode.
  r.session_bytes = static_cast<uint64_t>(GetSessionParkStats().live_bytes);
  r.process_bytes = mem_.processes * kProcessKernelBytes;
  r.ep_bytes = mem_.event_processes * kEpKernelBytes;
  r.label_bytes = static_cast<uint64_t>(GetLabelMemStats().live_bytes);
  const LabelInternStats& intern = GetLabelInternStats();
  r.label_intern_index_bytes =
      static_cast<uint64_t>(intern.live_canonical) * kLabelInternEntryBytes;
  r.label_dedup_saved_bytes = intern.bytes_saved;
  r.page_bytes = static_cast<uint64_t>(GetSimPageStats().live_pages) * kPageSize;
  r.overlay_slot_bytes = mem_.overlay_page_slots * kOverlayPageSlotBytes;
  r.queue_bytes = mem_.queued_message_bytes;
  r.queue_arena_bytes = mem_.ep_queue_arena_bytes;
  r.modeled_heap_bytes = mem_.modeled_user_heap_bytes;
  r.store_bytes = static_cast<uint64_t>(GetStoreMemStats().live_bytes);
  return r;
}

void Kernel::UpdatePeak() {
  const uint64_t total = MemReport().total_bytes();
  if (total > peak_total_bytes_) {
    peak_total_bytes_ = total;
  }
}

void Kernel::ResetPeakTotalBytes() { peak_total_bytes_ = MemReport().total_bytes(); }

}  // namespace asbestos
