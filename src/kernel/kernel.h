// The Asbestos kernel simulator.
//
// Owns the vnode table (handles and ports), the process table, and the
// scheduler, and implements the system calls of paper Figure 4:
//
//   send(p, data, C_S, D_S, V, D_R):
//     ES = PS ⊔ C_S
//     (1) ES ⊑ (QR ⊔ D_R) ⊓ V ⊓ pR          [checked at delivery time]
//     (2) D_S(h) < 3  ⇒ PS(h) = ⋆           [checked at send time]
//     (3) D_R(h) > ⋆  ⇒ PS(h) = ⋆           [checked at send time]
//     (4) D_R ⊑ pR                           [checked at delivery time]
//     QS ← (QS ⊓ D_S) ⊔ (ES ⊓ QS⋆);  QR ← QR ⊔ D_R
//
//   new_port(L):  pR ← L; pR(p) ← 0; PS(p) ← ⋆
//   set_port_label(p, L):  pR ← L            [receive rights required]
//
// Messaging is unreliable: send never reports label failures; undeliverable
// messages are silently dropped (observable only through KernelStats, which
// stands in for the debugging facilities a real kernel would not expose).
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/crypto/feistel61.h"
#include "src/kernel/memstats.h"
#include "src/kernel/message.h"
#include "src/kernel/process.h"
#include "src/labels/label.h"

namespace asbestos {

class Kernel;

// Arguments for creating a process. Boot-time creation (Kernel::CreateProcess)
// applies these labels verbatim; runtime spawn (ProcessContext::Spawn)
// verifies that the parent is entitled to grant them.
struct SpawnArgs {
  std::string name;
  Component component = Component::kOther;
  Label send_label = Label::DefaultSend();
  Label recv_label = Label::DefaultReceive();
  std::map<std::string, uint64_t> env;
};

// Observable outcomes; a real Asbestos kernel would not expose drop counts
// (that is the point of unreliable messaging), but tests and benches need
// them.
struct KernelStats {
  uint64_t sends = 0;
  uint64_t deliveries = 0;
  uint64_t drops_no_port = 0;       // unknown handle / not a port / dead port
  uint64_t drops_privilege = 0;     // requirement (2) or (3) failed at send
  uint64_t drops_dr_port = 0;       // requirement (4) failed at delivery
  uint64_t drops_label_check = 0;   // requirement (1) failed at delivery
  uint64_t eps_created = 0;
  uint64_t eps_destroyed = 0;
  uint64_t processes_created = 0;
  uint64_t cow_pages_copied = 0;
  uint64_t shared_regions_created = 0;
  uint64_t shared_writes_dropped = 0;  // writes above the region label
};

// Point-in-time memory breakdown for Figure-6 style reporting.
struct KernelMemReport {
  uint64_t vnode_bytes = 0;
  uint64_t process_bytes = 0;
  uint64_t ep_bytes = 0;
  uint64_t label_bytes = 0;        // real live label heap (src/labels)
  // Hash-consing (src/labels/intern.h): modeled index overhead of the intern
  // table (counted in total_bytes — durability of dedup is not free), and the
  // cumulative label heap dedup avoided allocating (informational; NOT in
  // total_bytes, since those bytes were never live).
  uint64_t label_intern_index_bytes = 0;
  uint64_t label_dedup_saved_bytes = 0;
  uint64_t page_bytes = 0;         // real live simulated pages
  uint64_t overlay_slot_bytes = 0;
  // Queued message envelopes + inline words + payload buffers. Payload
  // buffers are refcounted (src/kernel/payload.h): a buffer queued on K
  // ports at once contributes its bytes exactly once, so fan-out of one
  // body no longer multiplies queue memory.
  uint64_t queue_bytes = 0;
  uint64_t queue_arena_bytes = 0;  // per-active-EP message queue arenas
  uint64_t modeled_heap_bytes = 0;
  // Durable-store in-memory index (src/store): keys, values, per-record
  // overhead. Label heap inside stored records is already in label_bytes.
  // Like label_bytes and page_bytes, this reads a process-global counter:
  // exact for the usual one-kernel-at-a-time simulations, attributed to
  // every live kernel if several coexist in one process.
  uint64_t store_bytes = 0;
  // --- Million-compartment scale fields --------------------------------------
  // Compact parked-session records held by workers in place of full event
  // processes (src/okws/worker.h). Zero unless session parking is on.
  uint64_t session_bytes = 0;
  // With scale accounting on (SetScaleAccountingEnabled): the interned flat
  // per-user binding tables of idd/dbproxy (src/db/binding_table.h), real
  // bytes; and plain non-port handles charged as dense handle-table slots
  // (kHandleTableEntryBytes each) carved OUT of vnode_bytes. Both zero in
  // the default paper-calibrated mode, where plain handles stay charged at
  // the paper's 64-byte vnode figure and bindings ride modeled_heap_bytes.
  uint64_t binding_bytes = 0;
  uint64_t handle_table_bytes = 0;

  uint64_t total_bytes() const {
    return vnode_bytes + process_bytes + ep_bytes + label_bytes + label_intern_index_bytes +
           page_bytes + overlay_slot_bytes + queue_bytes + queue_arena_bytes +
           modeled_heap_bytes + store_bytes + session_bytes + binding_bytes +
           handle_table_bytes;
  }
  double total_pages() const { return static_cast<double>(total_bytes()) / kPageSize; }
};

// The system-call surface available to process code. Bound to the identity
// (process, event process) of the code the kernel is currently running.
class ProcessContext {
 public:
  // --- Identity and environment -------------------------------------------
  ProcessId pid() const;
  EpId ep_id() const;  // kBaseContext when running as the base process
  // True when this delivery caused the creation of a fresh event process.
  // (The faithful way to detect newness is the paper's zeroed-memory idiom;
  // this accessor exists for tests and simple services.)
  bool in_new_ep() const;
  const std::string& name() const;
  bool HasEnv(const std::string& key) const;
  uint64_t GetEnv(const std::string& key) const;  // 0 when missing

  // --- Labels ---------------------------------------------------------------
  const Label& send_label() const;
  const Label& recv_label() const;
  // Creates a fresh compartment handle; sets PS(h) = ⋆ for the caller.
  Handle NewHandle();
  // Creates a port with label L (then pR(p) ← 0) and grants receive rights
  // and PS(p) = ⋆ to the caller.
  Handle NewPort(const Label& port_label);
  Status SetPortLabel(Handle port, const Label& label);
  Result<Label> GetPortLabel(Handle port) const;  // receive rights required
  // Moves receive rights to another process's base context.
  Status TransferPort(Handle port, ProcessId new_owner);
  // Dissociates the port: pending and future messages are dropped.
  Status ClosePort(Handle port);

  Status Send(Handle port, Message msg, const SendArgs& args = SendArgs());

  // Self label operations. Raising a send level (self-contamination) is
  // free; lowering one requires ⋆ on the handle (or is the special
  // drop-own-⋆ case, which is always permitted for the caller itself).
  Status SetSendLevel(Handle h, Level level);
  // Lowering a receive level (more restrictive) is free; raising one
  // requires ⋆ on the handle.
  Status SetReceiveLevel(Handle h, Level level);
  // QS ← QS ⊔ (add ⊓ QS⋆): arbitrary self-contamination, preserving ⋆.
  void SelfContaminate(const Label& add);

  // --- Processes --------------------------------------------------------------
  Result<ProcessId> Spawn(std::unique_ptr<ProcessCode> code, SpawnArgs args);
  void Exit();  // whole process, even when called from an event process (§6.1)

  // --- Event processes ---------------------------------------------------------
  // First ep_checkpoint: the base process never runs again; every subsequent
  // delivery runs in an event process.
  void EnterEventRealm();
  // Reverts private pages fully inside [addr, addr+len) to base contents.
  Status EpClean(uint64_t addr, uint64_t len);
  // Frees this event process (takes effect when the handler returns).
  void EpExit();

  // --- Memory -------------------------------------------------------------------
  uint64_t AllocPages(uint64_t n);
  void FreePages(uint64_t addr, uint64_t n);
  void ReadMem(uint64_t addr, void* out, uint64_t n) const;
  void WriteMem(uint64_t addr, const void* data, uint64_t n);

  // --- Shared memory between event processes (§6.1 future work) ---------------
  // Publishes a snapshot of [addr, addr + n_pages pages) from this event
  // process's view as a region named by a fresh unguessable handle and
  // carrying `region_label`. Requires an event-process context and this EP's
  // send label ⊑ region_label: readers will be contaminated with exactly the
  // region label, so it must dominate the data's taint.
  Result<Handle> ShareRegion(uint64_t addr, uint64_t n_pages, const Label& region_label);
  // Maps the region at `at_addr` in this event process. Requires
  // region_label ⊑ this EP's receive label, and contaminates this EP's send
  // label with the region label (reading shared memory is receiving).
  Status MapSharedRegion(Handle region, uint64_t at_addr);
  Status UnmapSharedRegion(Handle region);
  // Writes through a mapping are checked at write time: if this EP's send
  // label has risen above the region label, the write vanishes silently
  // (the memory analogue of unreliable send; see KernelStats).
  // Declares user-heap growth/shrinkage for memory accounting (used where
  // the simulator does not model a user heap at byte granularity).
  void ModelHeapBytes(int64_t delta);

  // --- Accounting ------------------------------------------------------------------
  void ChargeCycles(uint64_t cycles);  // to the process's component

  // --- Tracing ----------------------------------------------------------------------
  // Flow-trace id of the message currently being handled (0 when running
  // outside a delivery, e.g. OnIdle or WithProcessContext). Sends with an
  // unset trace id inherit it automatically; processes only read it to
  // stamp state that must outlive the handler (connection tables, in-flight
  // request records).
  uint64_t current_trace_id() const;

 private:
  friend class Kernel;
  ProcessContext(Kernel* kernel, Process* proc, EventProcess* ep, bool new_ep)
      : kernel_(kernel), proc_(proc), ep_(ep), new_ep_(new_ep) {}

  Kernel* kernel_;
  Process* proc_;
  EventProcess* ep_;  // nullptr in base context
  bool new_ep_;
};

class Kernel {
 public:
  explicit Kernel(uint64_t boot_key);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Boot-time process creation: labels applied verbatim, Start() runs
  // immediately. The moral equivalent of the boot loader.
  ProcessId CreateProcess(std::unique_ptr<ProcessCode> code, SpawnArgs args);

  // Runs one scheduler tick: picks the next runnable process and pumps one
  // batch (up to the batch limit) of deliverable messages from its next
  // pending port. Returns false when the system is idle.
  bool Step();
  void RunUntilIdle();

  // Batch size B for the delivery pump: after a successful delivery, the
  // pump keeps draining the same port — up to B messages per pass — but
  // only when the unbatched scheduler's next action would provably be that
  // same port, charging the same per-delivery scheduler tick it would have.
  // So the knob changes locality (and wall-clock speed), never the modeled
  // figures: delivery order, charged cycles, and OnIdle cadence are
  // bit-identical for every value of B. B = 1 disables batching outright.
  void SetPumpBatchLimit(uint32_t limit) { pump_batch_limit_ = limit == 0 ? 1 : limit; }
  uint32_t pump_batch_limit() const { return pump_batch_limit_; }

  // Runs fn with a context bound to the given process's *base* identity, in
  // its component scope. Used by external drivers (e.g. the simulated NIC
  // poking netd); not a primitive a confined process could invoke.
  void WithProcessContext(ProcessId pid, const std::function<void(ProcessContext&)>& fn);

  // Boot-loader facility (like WithProcessContext, not reachable from
  // confined code): marks a handle value recovered from durable storage as
  // consumed, so NewHandle/NewPort can never re-issue it this boot. Must be
  // called before any process could observe the colliding mint; the natural
  // place is right after reading a store, before creating processes.
  void ReserveRecoveredHandle(Handle h);

  // Prefix for this kernel's registry gauge names (kernel.stats.*,
  // kernel.mem.*). Default empty — the usual one-kernel worlds keep the
  // documented names. Multi-kernel worlds (a ReplicationFleet's followers)
  // set distinct prefixes like "replica1." so K snapshots don't clobber
  // each other (the metrics.h "later registration wins" wart).
  void SetMetricsPrefix(const std::string& prefix) { metrics_prefix_ = prefix; }
  const std::string& metrics_prefix() const { return metrics_prefix_; }

  // Declares how many distinct users the current workload holds, feeding
  // the kernel.mem.bytes_per_user gauge (total_bytes / users; 0 when unset).
  // Purely observational — scale harnesses set it, tests may ignore it.
  void SetScaleUserCount(uint64_t users) { scale_user_count_ = users; }
  uint64_t scale_user_count() const { return scale_user_count_; }

  // --- Introspection (tests and benches) ------------------------------------
  const KernelStats& stats() const { return stats_; }
  KernelMemReport MemReport() const;
  uint64_t peak_total_bytes() const { return peak_total_bytes_; }
  void ResetPeakTotalBytes();
  uint64_t now_cycles() const;

  Process* FindProcess(ProcessId pid);
  Process* FindProcessByName(const std::string& name);
  // Labels of the (process, ep) context; null ep_id means base.
  const Label& SendLabelOf(ProcessId pid, EpId ep = kBaseContext);
  const Label& RecvLabelOf(ProcessId pid, EpId ep = kBaseContext);
  bool PortAlive(Handle port) const;
  size_t QueuedMessageCount(Handle port) const;
  uint64_t live_vnode_count() const { return vnodes_.size() + plain_handles_.size(); }

 private:
  friend class ProcessContext;

  struct QueuedMessage {
    Message msg;
    Label effective_send;    // ES, snapshotted at send time
    Label decont_send;       // D_S
    Label decont_receive;    // D_R
    uint64_t payload_bytes = 0;
    // Sender process name, filled only while the provenance ledger is
    // enabled (the paper's kernel does not tell receivers who sent; this
    // exists solely so taint edges can point at their source).
    std::string sender;
  };

  // Vnode: one per active handle. Ports keep their label, receive-rights
  // owner, and message queue here (the paper packs all of this in 64 bytes;
  // we charge that figure and account labels/queues separately).
  struct Vnode {
    Handle handle;
    bool is_port = false;
    bool port_alive = false;
    Label port_label;
    ProcessId owner = kNoProcess;
    EpId owner_ep = kBaseContext;
    std::deque<QueuedMessage> queue;
  };

  // --- Syscall dispatch table ------------------------------------------------
  // Every system call a bound context issues is routed through one table
  // (ctOS-style syscall_dispatch): the dispatcher charges the entry's fixed
  // base cycles in one place and bumps a per-syscall counter, then jumps to
  // the body. Variable costs (per-byte, per-label-entry) stay in the bodies.
  enum class Sys : uint8_t {
    kNewHandle = 0,
    kNewPort,
    kSetPortLabel,
    kSend,
    kSetSendLevel,
    kSetReceiveLevel,
    kSpawn,
    kCount,
  };
  static constexpr size_t kNumSyscalls = static_cast<size_t>(Sys::kCount);

  // Uniform argument/result frame. Only the fields a given syscall reads
  // are populated; outs default to the failure-neutral values.
  struct SyscallFrame {
    Handle handle;                               // port / compartment handle
    Level level = Level::kL1;                    // set_*_level
    const Label* label = nullptr;                // port label / set_port_label
    Message* msg = nullptr;                      // send (moved from)
    const SendArgs* send_args = nullptr;         // send
    std::unique_ptr<ProcessCode>* code = nullptr;  // spawn (moved from)
    SpawnArgs* spawn_args = nullptr;             // spawn (moved from)
    // Outs.
    Status status = Status::kOk;
    Handle out_handle;
    ProcessId out_pid = kNoProcess;
  };

  using SyscallFn = void (Kernel::*)(Process&, EventProcess*, SyscallFrame&);
  struct SyscallEntry {
    const char* name;      // metrics suffix: kernel.sys.<name>
    uint64_t base_cycles;  // fixed cost charged to kKernelIpc by Dispatch
    SyscallFn fn;
  };
  static const std::array<SyscallEntry, kNumSyscalls>& SyscallTable();

  // The single entry point: charges base cycles, counts, dispatches.
  void Dispatch(Sys sys, Process& proc, EventProcess* ep, SyscallFrame& frame);

  // --- Syscall bodies (reached only through Dispatch) ------------------------
  void SysNewHandle(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysNewPort(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysSetPortLabel(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysSend(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysSetSendLevel(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysSetReceiveLevel(Process& proc, EventProcess* ep, SyscallFrame& f);
  void SysSpawn(Process& parent, EventProcess* ep, SyscallFrame& f);

  Label& ContextSendLabel(Process& proc, EventProcess* ep);
  Label& ContextRecvLabel(Process& proc, EventProcess* ep);

  Vnode* FindVnode(Handle h);
  const Vnode* FindVnode(Handle h) const;
  Vnode* FindLivePort(Handle h);
  bool ContextOwnsPort(const Process& proc, const EventProcess* ep, const Vnode& v) const;

  // Shared context setup/teardown for base-identity dispatch
  // (WithProcessContext and the end-of-pump OnIdle hooks).
  void RunInBaseContext(Process& proc, const std::function<void(ProcessContext&)>& fn);

  void EnqueuePendingPort(Process& owner, Handle port);
  void ScheduleProcess(Process& proc);
  // Pumps one batch of deliveries from `port`: delivers the head message,
  // then keeps draining the same port (up to pump_batch_limit_) while the
  // unbatched scheduler's next action would provably be this port again —
  // mirroring its state transitions and scheduler-tick charges exactly.
  // Returns true if at least one handler ran.
  bool DeliverFromPort(Vnode& port);
  // Queue accounting for an enqueued/dequeued message: envelope + inline
  // words always; the payload buffer once per unique buffer (a K-way
  // fan-out of one Payload adds its bytes to queue_bytes exactly once).
  void AddQueueAccounting(const QueuedMessage& qm);
  void SubQueueAccounting(const QueuedMessage& qm);
  void DestroyEventProcess(Process& proc, EpId ep_id);
  void DestroyProcess(Process& proc);
  void DissociatePort(Vnode& v);
  void ReleaseQueueArenaIfIdle(Process& proc, EventProcess& ep);

  void UpdatePeak();
  // Charges label-algebra work performed since `baseline` to kernel IPC.
  void ChargeLabelWorkSince(const LabelWorkStats& baseline);

  HandleSequence handles_;
  // Ports and other stateful handles get a full Vnode; plain compartment
  // handles (NewHandle) carry no queue, owner, or port label, so they live
  // in a dense append-only value table instead — at a million users the
  // 2-3 plain handles per user would otherwise each pay a hash-map node.
  // Plain handles are never destroyed (matching the map's old behavior:
  // nothing ever erased them), so the table needs no free list.
  std::unordered_map<uint64_t, Vnode> vnodes_;
  std::vector<uint64_t> plain_handles_;
  std::map<ProcessId, std::unique_ptr<Process>> processes_;
  ProcessId next_pid_ = 1;
  std::deque<ProcessId> run_queue_;
  // Processes whose code declared an idle hook (ProcessCode::HasOnIdle);
  // RunUntilIdle dispatches OnIdle to exactly these, so worlds without
  // durable stores pay nothing per pump iteration.
  std::vector<ProcessId> idle_hook_pids_;

  KernelStats stats_;
  KernelMemCounters mem_;
  // Refcounts of payload buffers currently sitting in message queues:
  // buffer id → (queued references, buffer bytes). queue_bytes charges a
  // buffer's bytes while the count is nonzero — shared fan-out counts once.
  std::unordered_map<const void*, std::pair<uint64_t, uint64_t>> queued_buf_refs_;
  uint32_t pump_batch_limit_ = 16;
  uint64_t peak_total_bytes_ = 0;
  uint64_t scale_user_count_ = 0;  // see SetScaleUserCount
  // Trace id of the delivery being handled right now (see
  // ProcessContext::current_trace_id). Saved/restored around nested
  // deliveries so re-entrant pumps don't bleed ids across requests.
  uint64_t current_trace_id_ = 0;
  // Metrics gauge group exposing stats_ and MemReport() while this kernel
  // is alive (unregistered in the destructor).
  uint64_t obs_gauge_group_ = 0;
  // See SetMetricsPrefix. Read at snapshot time by the gauge group.
  std::string metrics_prefix_;
};

}  // namespace asbestos

#endif  // SRC_KERNEL_KERNEL_H_
