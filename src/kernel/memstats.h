// Kernel and user memory accounting (paper Sections 5.6, 6.2, 9.1).
//
// The paper reports exact kernel object sizes — a vnode is 64 bytes, an
// event process 44 bytes, a minimal process 320 bytes — and evaluates the
// whole system's memory as ~1.5 pages per cached web session. We account
// with the paper's object sizes for fixed kernel structures, real bytes for
// labels (src/labels tracks live label heap), real 4 KB pages for simulated
// user memory, and declared bytes for user-space heaps the simulator does
// not model at byte granularity (e.g. ok-demux's session table).
#ifndef SRC_KERNEL_MEMSTATS_H_
#define SRC_KERNEL_MEMSTATS_H_

#include <cstdint>

namespace asbestos {

constexpr uint64_t kPageSize = 4096;

// Paper-reported kernel structure sizes.
constexpr uint64_t kVnodeBytes = 64;        // §5.6: per active handle
constexpr uint64_t kProcessKernelBytes = 320;  // §6.1: minimal process structure
constexpr uint64_t kEpKernelBytes = 44;     // §6.1: event-process kernel state
constexpr uint64_t kQueuedMessageOverheadBytes = 64;  // kernel envelope per queued message
constexpr uint64_t kOverlayPageSlotBytes = 16;  // EP modified-page list entry
// Modeled per-entry overhead of the label intern table (src/labels/intern.h):
// hash-bucket node, chain slot, and the canonical rep's back-pointer fields.
// The reps themselves are real label heap, counted by LabelMemStats.
constexpr uint64_t kLabelInternEntryBytes = 48;
// Dense handle-table slot for a plain (non-port) handle: the 8-byte handle
// value plus a rep-id slot for any per-handle label state (deduped — the rep
// itself lives in the label heap and is counted there).
constexpr uint64_t kHandleTableEntryBytes = 16;
// Fixed header of a parked-session record (see src/okws/worker.h): the map
// node, the stashed uW value, and the two length fields. Username and
// session-blob bytes are charged on top at their real sizes.
constexpr uint64_t kParkedSessionOverheadBytes = 48;

// Scale-accounting mode: when enabled, KernelMemReport switches from the
// paper's fixed per-object figures to the compacted representations this
// repo actually uses at scale — plain handles are charged as dense
// handle-table slots instead of full vnodes (handle_table_bytes), and
// idd/dbproxy per-user bindings are charged as the interned flat table's
// real bytes (binding_bytes) instead of the modeled std::map heap. Off by
// default so the Figure 6-9 reproductions keep their historical,
// paper-calibrated byte accounting bit-for-bit.
void SetScaleAccountingEnabled(bool enabled);
bool ScaleAccountingEnabled();

// Parked-session accounting (src/okws/worker.cc). Process-global, like the
// label/page/store stats: exact for one-kernel worlds.
struct SessionParkStats {
  uint64_t parks = 0;         // sessions parked (cumulative)
  uint64_t resumes = 0;       // parked sessions resumed (cumulative)
  int64_t live_records = 0;   // compact records currently held by workers
  int64_t live_bytes = 0;     // their bytes (header + username + blob)
};
SessionParkStats& MutableSessionParkStats();
const SessionParkStats& GetSessionParkStats();

// Flat per-user binding tables (src/db/binding_table.h). Process-global.
struct BindingMemStats {
  int64_t live_entries = 0;  // entries across all live tables
  int64_t live_bytes = 0;    // arena + record + index bytes
};
BindingMemStats& MutableBindingMemStats();
const BindingMemStats& GetBindingMemStats();

struct KernelMemCounters {
  uint64_t vnodes = 0;         // every active handle (ports + plain)
  uint64_t plain_handles = 0;  // the non-port subset, stored densely
  uint64_t processes = 0;
  uint64_t event_processes = 0;
  // Envelope + inline words per queued message, plus each payload buffer's
  // bytes counted once per unique buffer (refcounted payloads queued on K
  // ports contribute once; see Kernel::AddQueueAccounting).
  uint64_t queued_message_bytes = 0;
  uint64_t overlay_page_slots = 0;     // EP modified-page list entries
  uint64_t ep_queue_arena_bytes = 0;   // per-active-EP message queue arenas
  uint64_t modeled_user_heap_bytes = 0;  // user heaps declared via ModelHeapBytes()
};

}  // namespace asbestos

#endif  // SRC_KERNEL_MEMSTATS_H_
