// Identifier types for the kernel simulator.
#ifndef SRC_KERNEL_IDS_H_
#define SRC_KERNEL_IDS_H_

#include <cstdint>

namespace asbestos {

using ProcessId = uint32_t;
using EpId = uint32_t;

constexpr ProcessId kNoProcess = 0;
// Event-process id 0 denotes the base process context.
constexpr EpId kBaseContext = 0;

}  // namespace asbestos

#endif  // SRC_KERNEL_IDS_H_
