// Processes and event processes (paper Sections 4 and 6).
//
// Simulated processes are actor-style: user code implements ProcessCode and
// the kernel invokes HandleMessage for each delivered message. This mirrors
// the event-driven dispatch loop the paper builds its servers around (§6) —
// a process that would block in recv() is simply a process whose handler has
// returned and is waiting for the next delivery.
//
// A process that calls EnterEventRealm() (the paper's first ep_checkpoint)
// stops executing as its base process forever. From then on the kernel runs
// each delivery inside an event process: a lightweight context with its own
// send/receive labels, its own receive rights, and a private copy-on-write
// page overlay. Returning from HandleMessage is ep_yield; EpExit() frees the
// event process.
#ifndef SRC_KERNEL_PROCESS_H_
#define SRC_KERNEL_PROCESS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/kernel/address_space.h"
#include "src/kernel/ids.h"
#include "src/kernel/message.h"
#include "src/labels/label.h"
#include "src/sim/cycles.h"

namespace asbestos {

class ProcessContext;

// User-code interface. Instances are owned by the kernel's process table.
class ProcessCode {
 public:
  virtual ~ProcessCode() = default;

  // Runs once when the process is created, before any delivery.
  virtual void Start(ProcessContext& ctx) { (void)ctx; }

  // Runs once per delivered message, in the base context or in an event
  // process's context (the kernel decides per the rules of §6.1).
  virtual void HandleMessage(ProcessContext& ctx, const Message& msg) = 0;

  // Runs when the kernel's run loop drains to idle — the end of a pump
  // iteration. This is where per-batch work belongs, most importantly the
  // group commit of durable stores (one fsync per dirty shard per pump
  // instead of one per mutation; see src/store). Like WithProcessContext,
  // this is a simulator-driver facility, not a syscall confined code could
  // schedule: the context is the base identity, and implementations must
  // not send (a server that needed to speak at idle would livelock the
  // pump). The kernel re-drains after the callbacks just in case.
  //
  // IMPORTANT: an override of OnIdle MUST be paired with a HasOnIdle
  // override returning true — the kernel dispatches idle hooks only to
  // processes that declared one at creation, so the common volatile world
  // (no durable stores) pays nothing per pump. An OnIdle without HasOnIdle
  // is never called.
  virtual void OnIdle(ProcessContext& ctx) { (void)ctx; }

  // Declares that OnIdle is overridden and must be dispatched each pump.
  // Read once, at process creation.
  virtual bool HasOnIdle() const { return false; }
};

// A labeled memory region shareable between event processes — the §6.1
// future-work extension ("mechanisms for event processes to selectively
// share memory, subject to label checks"). The region is named by an
// unguessable handle (like ports and compartments); its label plays both
// roles of the IPC rules: reading through a mapping contaminates the mapper
// (like C_S), and writes must keep the writer's send label below the region
// label (like the ⊑ check), or they silently vanish — the memory analogue of
// unreliable send.
struct SharedRegion {
  Handle handle;
  Label label;
  std::vector<internal::PageRef> pages;
};

// An event process's view of a shared region.
struct MappedRegion {
  uint64_t base_addr = 0;
  uint64_t page_count = 0;
  Handle region;
};

// Kernel-side event-process state. The paper's implementation packs this
// into 44 bytes; our accounting charges that figure (kEpKernelBytes), with
// labels, overlay pages, and queue arenas accounted separately and for real.
struct EventProcess {
  EpId id = kBaseContext;
  Label send_label;
  Label recv_label;
  PageOverlay private_pages;
  std::vector<Handle> owned_ports;  // receive rights created by this EP
  std::vector<MappedRegion> mappings;
  bool exited = false;
  bool has_queue_arena = false;  // a page-sized arena exists while it has traffic
  bool ever_cleaned = false;     // EPs that never ep_clean keep their arena
};

// Kernel-side process state. The paper's minimal process structure is 320
// bytes (charged as kProcessKernelBytes).
struct Process {
  ProcessId id = kNoProcess;
  std::string name;
  Component component = Component::kOther;
  std::unique_ptr<ProcessCode> code;

  Label send_label = Label::DefaultSend();
  Label recv_label = Label::DefaultReceive();
  AddressSpace memory;
  std::map<std::string, uint64_t> env;  // bootstrap values (port/handle values)

  bool in_event_realm = false;
  bool exited = false;
  EpId next_ep_id = 1;
  EpId last_ran_ep = kBaseContext;  // for context-switch cycle charging
  std::map<EpId, std::unique_ptr<EventProcess>> eps;
  std::vector<Handle> owned_ports;  // receive rights held by the base process
  std::map<uint64_t, SharedRegion> shared_regions;  // by region handle value
  int64_t modeled_heap_bytes = 0;   // user heap declared via ModelHeapBytes

  // Scheduling: ports with queued messages, in arrival order. The batched
  // delivery pump (Kernel::DeliverFromPort) reads AND mirrors the
  // scheduler's pops on these fields mid-batch, so they must describe the
  // schedule exactly at every handler boundary — never defer maintenance
  // to the end of a Step.
  std::deque<Handle> pending_ports;
  std::unordered_set<uint64_t> pending_port_set;
  bool in_run_queue = false;
};

}  // namespace asbestos

#endif  // SRC_KERNEL_PROCESS_H_
