#include "src/kernel/payload.h"

#include <ostream>

#include "src/obs/metrics.h"

namespace asbestos {

namespace {

PayloadStats g_stats;

// Registry mirrors: monotonic counters survive Reset of the local struct is
// NOT wanted here — benches diff the registry counters across a measured
// region, so they advance monotonically like every other obs::Counter.
obs::Counter& BuffersCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("payload.buffers_created");
  return c;
}
obs::Counter& SharedCopiesCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("payload.shared_copies");
  return c;
}
obs::Counter& SharedSavedCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("payload.bytes_shared_saved");
  return c;
}
obs::Counter& CowCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("payload.cow_copies");
  return c;
}
obs::Counter& CowBytesCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("payload.cow_bytes_copied");
  return c;
}

std::shared_ptr<std::string> NewBuf(std::string s) {
  g_stats.buffers_created += 1;
  BuffersCounter().Add();
  return std::make_shared<std::string>(std::move(s));
}

void CountShare(size_t bytes) {
  if (bytes == 0) {
    return;
  }
  g_stats.shared_copies += 1;
  g_stats.bytes_shared_saved += bytes;
  SharedCopiesCounter().Add();
  SharedSavedCounter().Add(bytes);
}

}  // namespace

const PayloadStats& GetPayloadStats() { return g_stats; }

void ResetPayloadStats() { g_stats = PayloadStats(); }

Payload::Payload(std::string s) {
  if (!s.empty()) {
    buf_ = NewBuf(std::move(s));
    len_ = buf_->size();
  }
}

Payload::Payload(std::string_view s) : Payload(std::string(s)) {}

Payload::Payload(const char* s) : Payload(std::string(s)) {}

Payload::Payload(const Payload& other)
    : buf_(other.buf_), off_(other.off_), len_(other.len_) {
  CountShare(size());
}

Payload::Payload(Payload&& other) noexcept
    : buf_(std::move(other.buf_)), off_(other.off_), len_(other.len_) {
  other.off_ = 0;
  other.len_ = 0;
}

Payload& Payload::operator=(const Payload& other) {
  if (this != &other) {
    buf_ = other.buf_;
    off_ = other.off_;
    len_ = other.len_;
    CountShare(size());
  }
  return *this;
}

Payload& Payload::operator=(Payload&& other) noexcept {
  if (this != &other) {
    buf_ = std::move(other.buf_);
    off_ = other.off_;
    len_ = other.len_;
    other.off_ = 0;
    other.len_ = 0;
  }
  return *this;
}

Payload& Payload::operator=(std::string s) {
  *this = Payload(std::move(s));
  return *this;
}

Payload& Payload::operator=(std::string_view s) {
  *this = Payload(s);
  return *this;
}

Payload& Payload::operator=(const char* s) {
  *this = Payload(s);
  return *this;
}

Payload Payload::substr(size_t pos, size_t n) const {
  const size_t my_len = size();
  if (pos >= my_len) {
    return Payload();
  }
  const size_t take = n == npos || n > my_len - pos ? my_len - pos : n;
  if (take == 0) {
    return Payload();
  }
  CountShare(take);
  return Payload(buf_, off_ + pos, take);
}

std::string* Payload::Mutable() {
  const bool exclusive_full_view =
      buf_ != nullptr && buf_.use_count() == 1 && off_ == 0 && len_ >= buf_->size();
  if (!exclusive_full_view) {
    if (buf_ != nullptr) {
      const size_t copied = size();
      g_stats.cow_copies += 1;
      g_stats.cow_bytes_copied += copied;
      CowCounter().Add();
      CowBytesCounter().Add(copied);
    }
    // No NewBuf: COW materializations are counted separately from fresh
    // buffer construction.
    auto fresh = std::make_shared<std::string>(view());
    buf_ = std::move(fresh);
    off_ = 0;
  }
  // The buffer is now exclusive at offset 0; let the view track its size so
  // the caller's edits — including resizes — show through size()/view().
  len_ = npos;
  return buf_.get();
}

void Payload::clear() {
  buf_.reset();
  off_ = 0;
  len_ = 0;
}

bool operator==(const Payload& a, const Payload& b) { return a.view() == b.view(); }
bool operator==(const Payload& a, std::string_view b) { return a.view() == b; }
bool operator==(std::string_view a, const Payload& b) { return a == b.view(); }
bool operator==(const Payload& a, const std::string& b) {
  return a.view() == std::string_view(b);
}
bool operator==(const std::string& a, const Payload& b) {
  return std::string_view(a) == b.view();
}
bool operator==(const Payload& a, const char* b) { return a.view() == std::string_view(b); }
bool operator==(const char* a, const Payload& b) { return std::string_view(a) == b.view(); }

std::ostream& operator<<(std::ostream& os, const Payload& p) { return os << p.view(); }

}  // namespace asbestos
