#include "src/kernel/memstats.h"

namespace asbestos {

namespace {
bool g_scale_accounting = false;
SessionParkStats g_park_stats;
BindingMemStats g_binding_stats;
}  // namespace

void SetScaleAccountingEnabled(bool enabled) { g_scale_accounting = enabled; }
bool ScaleAccountingEnabled() { return g_scale_accounting; }

SessionParkStats& MutableSessionParkStats() { return g_park_stats; }
const SessionParkStats& GetSessionParkStats() { return g_park_stats; }

BindingMemStats& MutableBindingMemStats() { return g_binding_stats; }
const BindingMemStats& GetBindingMemStats() { return g_binding_stats; }

}  // namespace asbestos
