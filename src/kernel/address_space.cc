#include "src/kernel/address_space.h"

#include <cstring>

#include "src/base/panic.h"

namespace asbestos {
namespace {

SimPageStats g_page_stats;

}  // namespace

const SimPageStats& GetSimPageStats() { return g_page_stats; }

namespace internal {

SimPage::SimPage() { g_page_stats.live_pages += 1; }
SimPage::~SimPage() { g_page_stats.live_pages -= 1; }

PageRef::PageRef(const PageRef& other) : page_(other.page_) {
  if (page_ != nullptr) {
    ++page_->refcount;
  }
}

PageRef& PageRef::operator=(const PageRef& other) {
  if (this == &other) {
    return *this;
  }
  SimPage* old = page_;
  page_ = other.page_;
  if (page_ != nullptr) {
    ++page_->refcount;
  }
  if (old != nullptr && --old->refcount == 0) {
    delete old;
  }
  return *this;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  SimPage* old = page_;
  page_ = other.page_;
  other.page_ = nullptr;
  if (old != nullptr && --old->refcount == 0) {
    delete old;
  }
  return *this;
}

PageRef::~PageRef() {
  if (page_ != nullptr && --page_->refcount == 0) {
    delete page_;
  }
}

}  // namespace internal

uint64_t AddressSpace::AllocPages(uint64_t n) {
  ASB_ASSERT(n > 0);
  const uint64_t first = bump_;
  bump_ += n;
  return first * kPageSize;
}

void AddressSpace::FreePages(uint64_t addr, uint64_t n) {
  ASB_ASSERT(addr % kPageSize == 0);
  const uint64_t first = addr / kPageSize;
  for (uint64_t p = first; p < first + n; ++p) {
    pages_.erase(p);
  }
}

void AddressSpace::Read(const PageOverlay* overlay, uint64_t addr, void* out, uint64_t n) const {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    const uint64_t page = addr / kPageSize;
    const uint64_t offset = addr % kPageSize;
    const uint64_t chunk = std::min<uint64_t>(n, kPageSize - offset);

    const internal::SimPage* src = nullptr;
    if (overlay != nullptr) {
      auto it = overlay->find(page);
      if (it != overlay->end()) {
        src = it->second.get();
      }
    }
    if (src == nullptr) {
      auto it = pages_.find(page);
      if (it != pages_.end()) {
        src = it->second.get();
      }
    }
    if (src != nullptr) {
      std::memcpy(dst, src->bytes + offset, chunk);
    } else {
      std::memset(dst, 0, chunk);  // zero-fill-on-demand: untouched pages read as zeros
    }
    dst += chunk;
    addr += chunk;
    n -= chunk;
  }
}

uint64_t AddressSpace::Write(PageOverlay* overlay, uint64_t addr, const void* data, uint64_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t cow_pages = 0;
  while (n > 0) {
    const uint64_t page = addr / kPageSize;
    const uint64_t offset = addr % kPageSize;
    const uint64_t chunk = std::min<uint64_t>(n, kPageSize - offset);

    internal::SimPage* dst_page = nullptr;
    if (overlay == nullptr) {
      // Base-process write. Unshare if an overlay still references the page.
      auto it = pages_.find(page);
      if (it == pages_.end()) {
        auto* fresh = new internal::SimPage();
        pages_.emplace(page, internal::PageRef(fresh));
        dst_page = fresh;
      } else if (it->second.get()->refcount > 1) {
        auto* copy = new internal::SimPage();
        std::memcpy(copy->bytes, it->second.get()->bytes, kPageSize);
        it->second = internal::PageRef(copy);
        dst_page = copy;
      } else {
        dst_page = it->second.get();
      }
    } else {
      auto it = overlay->find(page);
      if (it != overlay->end()) {
        dst_page = it->second.get();
        ASB_ASSERT(dst_page->refcount == 1 && "overlay pages are private");
      } else {
        // Copy-on-write: materialize a private copy of the base page (or a
        // zero page if the base never touched this address).
        auto* copy = new internal::SimPage();
        auto base_it = pages_.find(page);
        if (base_it != pages_.end()) {
          std::memcpy(copy->bytes, base_it->second.get()->bytes, kPageSize);
        }
        overlay->emplace(page, internal::PageRef(copy));
        dst_page = copy;
        ++cow_pages;
      }
    }
    std::memcpy(dst_page->bytes + offset, src, chunk);
    src += chunk;
    addr += chunk;
    n -= chunk;
  }
  return cow_pages;
}

uint64_t OverlayClean(PageOverlay* overlay, uint64_t addr, uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Only pages fully contained in the range revert; partial pages keep their
  // private copy (the kernel cannot merge half a page).
  uint64_t first = addr / kPageSize;
  if (addr % kPageSize != 0) {
    ++first;
  }
  const uint64_t end = (addr + n) / kPageSize;  // exclusive page bound
  uint64_t dropped = 0;
  for (uint64_t p = first; p < end;) {
    auto it = overlay->lower_bound(p);
    if (it == overlay->end() || it->first >= end) {
      break;
    }
    p = it->first + 1;
    overlay->erase(it);
    ++dropped;
  }
  return dropped;
}

}  // namespace asbestos
