#include "src/net/netd.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/costs.h"

namespace asbestos {

using netd_proto::MessageType;

void NetdProcess::Start(ProcessContext& ctx) {
  control_port_ = ctx.NewPort(Label::Top());
  // The control port is a public service endpoint.
  ASB_ASSERT(ctx.SetPortLabel(control_port_, Label::Top()) == Status::kOk);
  expected_listener_verify_ = ctx.GetEnv("demux_verify");
  // Optional additional authorized listeners (the boot loader names one per
  // replication endpoint other than demux's — idd, ok-dbproxy, ...): the
  // first rides the legacy "repl_verify" key, the rest "repl_verify<k>".
  if (ctx.HasEnv("repl_verify")) {
    repl_listener_verifies_.push_back(ctx.GetEnv("repl_verify"));
  }
  for (int k = 2; ctx.HasEnv("repl_verify" + std::to_string(k)); ++k) {
    repl_listener_verifies_.push_back(ctx.GetEnv("repl_verify" + std::to_string(k)));
  }
}

void NetdProcess::PollNetwork(ProcessContext& ctx) {
  for (SimNet::ServerEvent& ev : net_->DrainServerEvents()) {
    switch (ev.kind) {
      case SimNet::ServerEvent::Kind::kConnectRequest: {
        auto lit = listeners_.find(ev.listen_port);
        if (lit == listeners_.end()) {
          continue;  // raced with an unlisten; drop the SYN
        }
        ctx.ChargeCycles(costs::kNetdConnSetupCycles);
        net_->ServerAccept(ev.conn);
        ++connections_accepted_;
        static obs::Counter& accepted =
            obs::Registry::Get().counter("netd.connections_accepted");
        accepted.Add();
        // Wrap the connection in a port. {2} + the kernel's implicit uC → 0
        // yields the paper's {uC 0, 2}: closed until netd grants uC ⋆.
        const Handle uc = ctx.NewPort(Label(Level::kL2));
        Conn conn;
        conn.net_conn = ev.conn;
        conn.port = uc;
        // The system edge: a request's flow trace begins here.
        conn.trace_id = obs::TraceRing::Get().MintTraceId();
        if (obs::TraceRing::enabled()) {
          obs::TraceRing::Get().Emit(conn.trace_id, "netd", "netd.accept",
                                     "tcp_port=" + std::to_string(ev.listen_port),
                                     Label::Bottom());
        }
        const uint64_t conn_trace = conn.trace_id;
        conns_.emplace(uc.value(), std::move(conn));
        port_by_conn_[ev.conn] = uc.value();
        // Notify the listener, granting it uC ⋆ (paper Fig. 5, step 2).
        Message m;
        m.type = MessageType::kNotifyConn;
        m.words = {uc.value()};
        m.trace_id = conn_trace;
        SendArgs args;
        args.decont_send = Label({{uc, Level::kStar}}, Level::kL3);
        ctx.Send(lit->second.notify_port, std::move(m), args);
        break;
      }
      case SimNet::ServerEvent::Kind::kData: {
        auto pit = port_by_conn_.find(ev.conn);
        if (pit == port_by_conn_.end()) {
          continue;
        }
        Conn& conn = conns_.at(pit->second);
        ctx.ChargeCycles(SegmentsForBytes(ev.bytes.size()) * costs::kNetdSegmentCycles +
                         ev.bytes.size() * costs::kNetdByteCycles);
        conn.rx.append(ev.bytes);
        SatisfyReads(ctx, conn);
        break;
      }
      case SimNet::ServerEvent::Kind::kClientClosed: {
        auto pit = port_by_conn_.find(ev.conn);
        if (pit == port_by_conn_.end()) {
          continue;
        }
        Conn& conn = conns_.at(pit->second);
        conn.client_closed = true;
        SatisfyReads(ctx, conn);
        break;
      }
    }
  }
}

void NetdProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  ctx.ChargeCycles(costs::kNetdRequestCycles);
  if (msg.port == control_port_) {
    if (msg.type == MessageType::kListen && msg.words.size() == 1 && msg.reply_port.valid()) {
      // Only processes the launcher vouched for may attach listeners: demux
      // always, plus the optional replication endpoint the boot loader named.
      const auto proves = [&msg](uint64_t verify_value) {
        return verify_value != 0 &&
               LevelLeq(msg.verify.Get(Handle::FromValue(verify_value)), Level::kL0);
      };
      const auto proves_any_repl = [&] {
        for (const uint64_t v : repl_listener_verifies_) {
          if (proves(v)) {
            return true;
          }
        }
        return false;
      };
      if (expected_listener_verify_ != 0 && !proves(expected_listener_verify_) &&
          !proves_any_repl()) {
        return;  // unauthorized: silently ignored
      }
      const auto tcp_port = static_cast<uint16_t>(msg.words[0]);
      listeners_[tcp_port] = Listener{tcp_port, msg.reply_port};
      net_->ServerListen(tcp_port);
      Message r;
      r.type = MessageType::kListenR;
      r.words = {0};
      ctx.Send(msg.reply_port, std::move(r));
    }
    return;
  }
  auto it = conns_.find(msg.port.value());
  if (it == conns_.end()) {
    return;  // stale message for a torn-down connection
  }
  HandleConnMessage(ctx, it->second, msg);
}

void NetdProcess::EmitReadSpan(const Conn& conn, uint64_t bytes) {
  static obs::Counter& reads = obs::Registry::Get().counter("netd.reads");
  reads.Add();
  if (obs::TraceRing::enabled() && conn.trace_id != 0) {
    obs::TraceRing::Get().Emit(conn.trace_id, "netd", "netd.read",
                               "bytes=" + std::to_string(bytes), ConnSpanLabel(conn));
  }
}

Label NetdProcess::ConnSpanLabel(const Conn& conn) const {
  if (conn.taint.valid()) {
    return Label({{conn.taint, Level::kL3}}, Level::kStar);
  }
  return Label::Bottom();
}

SendArgs NetdProcess::TaintedReply(const Conn& conn) const {
  SendArgs args;
  if (conn.taint.valid()) {
    // Every reply on a tainted connection carries uT 3 (Fig. 5, step 5).
    args.contaminate = Label({{conn.taint, Level::kL3}}, Level::kStar);
  }
  return args;
}

void NetdProcess::HandleConnMessage(ProcessContext& ctx, Conn& conn, const Message& msg) {
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  switch (msg.type) {
    case MessageType::kRead: {
      if (msg.words.size() < 4 || !msg.reply_port.valid()) {
        return;
      }
      conn.reply_cap = msg.reply_port;
      PendingRead r;
      r.reply_port = msg.reply_port;
      r.cookie = cookie;
      r.max_bytes = msg.words[1] == 0 ? ~0ULL : msg.words[1];
      r.peek = msg.words[2] != 0;
      r.peek_offset = msg.words[3];
      if (!TryReadReply(ctx, conn, r)) {
        conn.pending_reads.push_back(r);
      }
      break;
    }
    case MessageType::kWrite: {
      ctx.ChargeCycles(SegmentsForBytes(msg.data.size()) * costs::kNetdSegmentCycles +
                       msg.data.size() * costs::kNetdByteCycles);
      net_->ServerSend(conn.net_conn, msg.data);
      static obs::Counter& writes = obs::Registry::Get().counter("netd.writes");
      static obs::Counter& write_bytes = obs::Registry::Get().counter("netd.write_bytes");
      writes.Add();
      write_bytes.Add(msg.data.size());
      if (obs::TraceRing::enabled() && conn.trace_id != 0) {
        obs::TraceRing::Get().Emit(conn.trace_id, "netd", "netd.reply",
                                   "bytes=" + std::to_string(msg.data.size()),
                                   ConnSpanLabel(conn));
      }
      if (msg.reply_port.valid()) {
        Message r;
        r.type = MessageType::kWriteR;
        r.words = {cookie, msg.data.size()};
        ctx.Send(msg.reply_port, std::move(r), TaintedReply(conn));
      }
      break;
    }
    case MessageType::kSelect: {
      if (msg.reply_port.valid()) {
        Message r;
        r.type = MessageType::kSelectR;
        r.words = {cookie, 1ULL << 20};  // ample buffer space in the simulation
        ctx.Send(msg.reply_port, std::move(r), TaintedReply(conn));
      }
      break;
    }
    case MessageType::kAddTaint: {
      if (msg.words.size() < 2) {
        return;
      }
      const Handle taint = Handle::FromValue(msg.words[1]);
      // The sender's D_S granted us taint ⋆ before this handler ran; without
      // it the receive-label raise below fails and we refuse the taint.
      if (ctx.SetReceiveLevel(taint, Level::kL3) != Status::kOk) {
        return;
      }
      conn.taint = taint;
      // uC's label becomes {uC 0, uT 3, 2}: tainted data may flow out, but
      // only through this connection (Fig. 5, step 5).
      Label port_label({{conn.port, Level::kL0}, {taint, Level::kL3}}, Level::kL2);
      ASB_ASSERT(ctx.SetPortLabel(conn.port, port_label) == Status::kOk);
      if (msg.reply_port.valid()) {
        Message r;
        r.type = MessageType::kAddTaintR;
        r.words = {cookie, 0};
        ctx.Send(msg.reply_port, std::move(r), TaintedReply(conn));
      }
      break;
    }
    case MessageType::kControl: {
      if (msg.words.size() < 2) {
        return;
      }
      if (msg.words[1] == netd_proto::kControlOpClose) {
        if (msg.reply_port.valid()) {
          Message r;
          r.type = MessageType::kControlR;
          r.words = {cookie, 0};
          ctx.Send(msg.reply_port, std::move(r), TaintedReply(conn));
        }
        CloseConn(ctx, conn);  // `conn` is dangling after this call
      }
      break;
    }
    default:
      break;
  }
}

bool NetdProcess::TryReadReply(ProcessContext& ctx, Conn& conn, const PendingRead& r) {
  if (r.peek) {
    // A peek waits until there are bytes past the requester's offset (or the
    // client is done sending).
    if (conn.rx.size() <= r.peek_offset && !conn.client_closed) {
      return false;
    }
    Message m;
    m.type = MessageType::kReadR;
    const std::string_view view = std::string_view(conn.rx);
    const std::string_view chunk =
        r.peek_offset < view.size() ? view.substr(r.peek_offset) : std::string_view();
    const bool eof = conn.client_closed && chunk.empty();
    m.words = {r.cookie, eof ? 1ULL : 0ULL};
    m.data = std::string(chunk.substr(0, std::min<uint64_t>(chunk.size(), r.max_bytes)));
    // Explicit stamp: reads satisfied from PollNetwork run outside any
    // delivery, so the kernel has no trace to inherit from.
    m.trace_id = conn.trace_id;
    EmitReadSpan(conn, m.data.size());
    ctx.Send(r.reply_port, std::move(m), TaintedReply(conn));
    return true;
  }
  if (conn.rx.empty() && !conn.client_closed) {
    return false;
  }
  Message m;
  m.type = MessageType::kReadR;
  const uint64_t n = std::min<uint64_t>(conn.rx.size(), r.max_bytes);
  const bool eof = conn.client_closed && n == 0;
  m.words = {r.cookie, eof ? 1ULL : 0ULL};
  m.data = conn.rx.substr(0, n);
  conn.rx.erase(0, n);
  m.trace_id = conn.trace_id;
  EmitReadSpan(conn, m.data.size());
  ctx.Send(r.reply_port, std::move(m), TaintedReply(conn));
  return true;
}

void NetdProcess::SatisfyReads(ProcessContext& ctx, Conn& conn) {
  while (!conn.pending_reads.empty()) {
    if (!TryReadReply(ctx, conn, conn.pending_reads.front())) {
      break;
    }
    conn.pending_reads.pop_front();
  }
}

void NetdProcess::CloseConn(ProcessContext& ctx, Conn& conn) {
  ctx.ChargeCycles(costs::kNetdConnTeardownCycles);
  net_->ServerClose(conn.net_conn);
  ctx.ClosePort(conn.port);
  // Release the per-connection capability (paper §9.3: labels "release that
  // capability when the connection is ... closed"); without this, netd's
  // send label would grow with every connection ever made.
  ASB_ASSERT(ctx.SetSendLevel(conn.port, kDefaultSendLevel) == Status::kOk);
  if (release_reply_caps_ && conn.reply_cap.valid()) {
    // Same §9.3 discipline for the worker's uW: under session parking every
    // resume mints a fresh uW, so the ⋆ granted per kRead must not outlive
    // the connection — unless another live connection of the same session
    // still replies through it.
    bool shared = false;
    for (const auto& [value, other] : conns_) {
      if (value != conn.port.value() && other.reply_cap.value() == conn.reply_cap.value()) {
        shared = true;
        break;
      }
    }
    if (!shared) {
      (void)ctx.SetSendLevel(conn.reply_cap, kDefaultSendLevel);
    }
  }
  port_by_conn_.erase(conn.net_conn);
  conns_.erase(conn.port.value());  // `conn` is dangling after this line
}

}  // namespace asbestos
