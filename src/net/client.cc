#include "src/net/client.h"

#include "src/obs/metrics.h"
#include "src/sim/cycles.h"

namespace asbestos {

bool HttpLoadClient::Step() {
  // Open new connections up to the concurrency limit.
  while (static_cast<int>(active_.size()) < concurrency_ && !queue_.empty()) {
    auto [request, tag] = std::move(queue_.front());
    queue_.pop_front();
    Active a;
    a.conn = net_->ClientConnect(port_);
    a.tag = tag;
    a.start_cycles = GetCycleAccounting().now();
    if (a.conn == kNoConn) {
      ++failures_;
      continue;
    }
    net_->ClientSend(a.conn, request);
    active_.push_back(std::move(a));
  }

  // Collect responses.
  for (size_t i = 0; i < active_.size();) {
    Active& a = active_[i];
    const std::string bytes = net_->ClientTakeReceived(a.conn);
    if (!bytes.empty()) {
      a.reader.Feed(bytes);
    }
    if (a.reader.state() == HttpResponseReader::State::kComplete) {
      Result r;
      r.tag = a.tag;
      r.status = a.reader.status();
      r.body = a.reader.body();
      r.start_cycles = a.start_cycles;
      r.end_cycles = GetCycleAccounting().now();
      // Per-request latency distribution on the virtual clock (the paper's
      // Figure-7 measurement, as a histogram instead of a scatter).
      static obs::CycleHistogram& lat =
          obs::Registry::Get().histogram("okws.request_cycles");
      lat.Record(r.end_cycles - r.start_cycles);
      results_.push_back(std::move(r));
      net_->ClientClose(a.conn);
      active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    if (a.reader.state() == HttpResponseReader::State::kError ||
        (net_->ClientSeesClosed(a.conn) && bytes.empty())) {
      ++failures_;
      net_->ClientClose(a.conn);
      active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  return !idle();
}

}  // namespace asbestos
