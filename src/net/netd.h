// netd: the user-level network server (paper §7.7).
//
// All network access goes through this one process. It terminates TCP (our
// SimNet substrate stands in for the LWIP port), wraps each connection in an
// Asbestos port uC, and applies label policy to network data:
//
//  * A new connection's port is created with label {uC 0, 2}: nobody can
//    send to it until netd grants uC ⋆ to the listener (the capability
//    idiom of §5.5).
//  * ADD_TAINT associates a taint handle with a connection. The requesting
//    process must grant netd ⋆ for the handle (D_S on the very same
//    message); netd then raises its own receive label to accept that taint,
//    raises the connection port's label to {uC 0, uT 3, 2}, and from then on
//    contaminates every reply on that connection with uT 3. Tainted data can
//    thus escape to the network only via its own user's connection.
//
// READ supports peeking (ok-demux inspects the request head without
// consuming it, then hands the connection to a worker that reads it in
// full), mirroring OKWS's buffered connection handoff.
#ifndef SRC_NET_NETD_H_
#define SRC_NET_NETD_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/simnet.h"

namespace asbestos {

namespace netd_proto {
enum MessageType : uint64_t {
  kListen = 1,     // → control port; words: [tcp_port]; reply_port: conn-notify port
  kListenR = 2,    // words: [status]
  kNotifyConn = 3,  // → listener; words: [uC value]; D_S grants uC ⋆
  kRead = 4,       // → uC; words: [cookie, max_bytes, peek, peek_offset]
  kReadR = 5,      // words: [cookie, eof]; data: bytes; C_S: connection taint
  kWrite = 6,      // → uC; words: [cookie]; data: bytes to the client
  kWriteR = 7,     // words: [cookie, bytes_accepted]
  kControl = 8,    // → uC; words: [cookie, op]; op 1 = close
  kControlR = 9,   // words: [cookie, status]
  kSelect = 10,    // → uC; words: [cookie]
  kSelectR = 11,   // words: [cookie, send_buffer_space]
  kAddTaint = 12,  // → uC; words: [cookie, taint handle]; D_S must grant netd ⋆
  kAddTaintR = 13,  // words: [cookie, status]
};
constexpr uint64_t kControlOpClose = 1;
}  // namespace netd_proto

class NetdProcess : public ProcessCode {
 public:
  explicit NetdProcess(SimNet* net) : net_(net) {}

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  // The simulated NIC interrupt: the world driver invokes this through
  // Kernel::WithProcessContext to ingest wire events.
  void PollNetwork(ProcessContext& ctx);

  Handle control_port() const { return control_port_; }
  uint64_t connections_accepted() const { return connections_accepted_; }

  // Shed a connection's read-reply capability (the worker's uW, granted ⋆
  // per kRead) when the connection closes. Off by default: with long-lived
  // sessions the same uW is re-granted every read, so the label never grows
  // and the paper-calibrated figure benches stay bit-identical. Session
  // parking turns this on — each park/resume generation mints a fresh uW,
  // and without the release netd's send label (and so every send's label
  // work) would grow with every resume ever performed (§9.3 discipline,
  // same as the uC release in CloseConn).
  void set_release_reply_caps(bool on) { release_reply_caps_ = on; }

 private:
  struct PendingRead {
    Handle reply_port;
    uint64_t cookie = 0;
    uint64_t max_bytes = 0;
    bool peek = false;
    uint64_t peek_offset = 0;
  };

  struct Conn {
    ConnId net_conn = kNoConn;
    Handle port;   // uC
    Handle taint;  // invalid until ADD_TAINT
    Handle reply_cap;  // last kRead reply port (uW); shed at close when enabled
    std::string rx;
    bool client_closed = false;
    std::deque<PendingRead> pending_reads;
    // Flow-trace id minted at accept. Stored here (not only in the message
    // envelope) because reads are satisfied from PollNetwork, which runs
    // outside any delivery and so has no kernel trace to inherit.
    uint64_t trace_id = 0;
  };

  struct Listener {
    uint16_t tcp_port = 0;
    Handle notify_port;
  };

  void HandleConnMessage(ProcessContext& ctx, Conn& conn, const Message& msg);
  void SatisfyReads(ProcessContext& ctx, Conn& conn);
  // Attempts one read; returns false if it must keep waiting for data.
  bool TryReadReply(ProcessContext& ctx, Conn& conn, const PendingRead& r);
  void CloseConn(ProcessContext& ctx, Conn& conn);
  SendArgs TaintedReply(const Conn& conn) const;
  // Bumps the read counter and emits a "netd.read" span for this conn.
  void EmitReadSpan(const Conn& conn, uint64_t bytes);
  // Contamination a message on this connection carries: {uT 3, ⋆} once
  // tainted, ⊥ before — the label stamped on this connection's span events.
  Label ConnSpanLabel(const Conn& conn) const;

  SimNet* net_;
  Handle control_port_;
  uint64_t expected_listener_verify_ = 0;  // env "demux_verify"; 0 disables the check
  // Additional authorized listeners named by the boot loader: env keys
  // "repl_verify", "repl_verify2", "repl_verify3", ... — one per replication
  // endpoint besides demux's own (idd, ok-dbproxy, a standalone file server).
  std::vector<uint64_t> repl_listener_verifies_;
  std::map<uint16_t, Listener> listeners_;
  std::map<uint64_t, Conn> conns_;           // uC handle value → connection
  std::map<ConnId, uint64_t> port_by_conn_;  // SimNet id → uC handle value
  uint64_t connections_accepted_ = 0;
  bool release_reply_caps_ = false;
};

}  // namespace asbestos

#endif  // SRC_NET_NETD_H_
