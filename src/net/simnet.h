// SimNet: the simulated wire between remote HTTP clients and the Asbestos
// machine.
//
// The paper's testbed is a gigabit LAN with a Linux load generator; netd (the
// user-level TCP/IP stack, an LWIP port) terminates TCP on the Asbestos side.
// SimNet stands in for the LAN + remote host: it models TCP connections as
// paired byte streams with a handshake, MSS-sized segmentation (for cost
// accounting), and FIN/close signaling. The client side is driven directly by
// load generators; the server side is drained by netd, which charges
// per-segment and per-byte cycles for everything passing through it.
#ifndef SRC_NET_SIMNET_H_
#define SRC_NET_SIMNET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace asbestos {

using ConnId = uint64_t;
constexpr ConnId kNoConn = 0;

// Ethernet MTU minus headers; used for segment-count cost accounting.
constexpr uint64_t kTcpMss = 1460;

inline uint64_t SegmentsForBytes(uint64_t bytes) {
  return bytes == 0 ? 1 : (bytes + kTcpMss - 1) / kTcpMss;
}

class SimNet {
 public:
  SimNet() = default;
  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // --- Client (remote load generator) side -------------------------------------
  // Initiates a connection to a listening port; returns kNoConn if nothing
  // listens there (RST). Bytes may be sent immediately; they are delivered
  // to the server after it accepts.
  ConnId ClientConnect(uint16_t dst_port);
  void ClientSend(ConnId conn, std::string_view bytes);
  // Drains bytes the server has sent.
  std::string ClientTakeReceived(ConnId conn);
  bool ClientSeesClosed(ConnId conn) const;  // FIN from server (after data drained)
  void ClientClose(ConnId conn);

  // --- Server (netd) side ------------------------------------------------------
  struct ServerEvent {
    enum class Kind { kConnectRequest, kData, kClientClosed };
    Kind kind;
    ConnId conn = kNoConn;
    uint16_t listen_port = 0;
    std::string bytes;  // kData only
  };

  void ServerListen(uint16_t port);
  bool IsListening(uint16_t port) const;
  // Pending events since the last drain (the NIC interrupt queue).
  std::vector<ServerEvent> DrainServerEvents();
  void ServerAccept(ConnId conn);
  void ServerSend(ConnId conn, std::string_view bytes);
  void ServerClose(ConnId conn);

  uint64_t total_connections() const { return next_conn_ - 1; }

 private:
  enum class ConnState { kSynSent, kEstablished, kClientClosed, kServerClosed, kClosed };

  struct Connection {
    ConnState state = ConnState::kSynSent;
    uint16_t listen_port = 0;
    std::string client_to_server;  // bytes awaiting accept (pre-establish)
    std::string server_to_client;  // bytes awaiting the client
    bool connect_event_emitted = false;
  };

  Connection* Find(ConnId conn);
  const Connection* Find(ConnId conn) const;

  std::map<ConnId, Connection> conns_;
  std::map<uint16_t, bool> listening_;
  std::deque<ServerEvent> events_;
  ConnId next_conn_ = 1;
};

}  // namespace asbestos

#endif  // SRC_NET_SIMNET_H_
