#include "src/net/simnet.h"

#include "src/base/panic.h"

namespace asbestos {

SimNet::Connection* SimNet::Find(ConnId conn) {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

const SimNet::Connection* SimNet::Find(ConnId conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

void SimNet::ServerListen(uint16_t port) { listening_[port] = true; }

bool SimNet::IsListening(uint16_t port) const {
  auto it = listening_.find(port);
  return it != listening_.end() && it->second;
}

ConnId SimNet::ClientConnect(uint16_t dst_port) {
  if (!IsListening(dst_port)) {
    return kNoConn;  // RST: nothing listening
  }
  const ConnId id = next_conn_++;
  Connection c;
  c.listen_port = dst_port;
  conns_.emplace(id, std::move(c));
  ServerEvent ev;
  ev.kind = ServerEvent::Kind::kConnectRequest;
  ev.conn = id;
  ev.listen_port = dst_port;
  events_.push_back(std::move(ev));
  return id;
}

void SimNet::ClientSend(ConnId conn, std::string_view bytes) {
  Connection* c = Find(conn);
  if (c == nullptr || c->state == ConnState::kClosed || c->state == ConnState::kClientClosed) {
    return;
  }
  if (c->state == ConnState::kSynSent) {
    // Buffer until the server accepts (as the client's kernel would).
    c->client_to_server.append(bytes);
    return;
  }
  ServerEvent ev;
  ev.kind = ServerEvent::Kind::kData;
  ev.conn = conn;
  ev.listen_port = c->listen_port;
  ev.bytes = std::string(bytes);
  events_.push_back(std::move(ev));
}

std::string SimNet::ClientTakeReceived(ConnId conn) {
  Connection* c = Find(conn);
  if (c == nullptr) {
    return "";
  }
  std::string out = std::move(c->server_to_client);
  c->server_to_client.clear();
  return out;
}

bool SimNet::ClientSeesClosed(ConnId conn) const {
  const Connection* c = Find(conn);
  if (c == nullptr) {
    return true;
  }
  return (c->state == ConnState::kServerClosed || c->state == ConnState::kClosed) &&
         c->server_to_client.empty();
}

void SimNet::ClientClose(ConnId conn) {
  Connection* c = Find(conn);
  if (c == nullptr) {
    return;
  }
  if (c->state == ConnState::kServerClosed || c->state == ConnState::kClosed) {
    conns_.erase(conn);  // both sides done
    return;
  }
  c->state = ConnState::kClientClosed;
  ServerEvent ev;
  ev.kind = ServerEvent::Kind::kClientClosed;
  ev.conn = conn;
  events_.push_back(std::move(ev));
}

std::vector<SimNet::ServerEvent> SimNet::DrainServerEvents() {
  std::vector<ServerEvent> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

void SimNet::ServerAccept(ConnId conn) {
  Connection* c = Find(conn);
  if (c == nullptr || c->state != ConnState::kSynSent) {
    return;
  }
  c->state = ConnState::kEstablished;
  if (!c->client_to_server.empty()) {
    ServerEvent ev;
    ev.kind = ServerEvent::Kind::kData;
    ev.conn = conn;
    ev.listen_port = c->listen_port;
    ev.bytes = std::move(c->client_to_server);
    c->client_to_server.clear();
    events_.push_back(std::move(ev));
  }
}

void SimNet::ServerSend(ConnId conn, std::string_view bytes) {
  Connection* c = Find(conn);
  if (c == nullptr || c->state == ConnState::kServerClosed || c->state == ConnState::kClosed) {
    return;
  }
  c->server_to_client.append(bytes);
}

void SimNet::ServerClose(ConnId conn) {
  Connection* c = Find(conn);
  if (c == nullptr) {
    return;
  }
  if (c->state == ConnState::kClientClosed) {
    c->state = ConnState::kClosed;
    if (c->server_to_client.empty()) {
      conns_.erase(conn);
    }
  } else {
    c->state = ConnState::kServerClosed;
  }
}

}  // namespace asbestos
