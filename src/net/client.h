// HTTP load generator: drives N concurrent client connections over SimNet,
// recording per-request latency on the virtual cycle timeline. Plays the
// role of the paper's Linux HTTP client machine.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/http/http.h"
#include "src/net/simnet.h"

namespace asbestos {

class HttpLoadClient {
 public:
  struct Result {
    uint64_t tag = 0;
    int status = 0;
    std::string body;
    uint64_t start_cycles = 0;
    uint64_t end_cycles = 0;
  };

  HttpLoadClient(SimNet* net, uint16_t port, int concurrency)
      : net_(net), port_(port), concurrency_(concurrency) {}

  void Enqueue(std::string request, uint64_t tag) { queue_.emplace_back(std::move(request), tag); }

  // Opens connections up to the concurrency limit, pushes requests, reads
  // responses. Returns true while any request is queued or in flight.
  bool Step();

  bool idle() const { return queue_.empty() && active_.empty(); }
  std::vector<Result>& results() { return results_; }
  uint64_t failures() const { return failures_; }

 private:
  struct Active {
    ConnId conn = kNoConn;
    HttpResponseReader reader;
    uint64_t tag = 0;
    uint64_t start_cycles = 0;
  };

  SimNet* net_;
  uint16_t port_;
  int concurrency_;
  std::deque<std::pair<std::string, uint64_t>> queue_;
  std::vector<Active> active_;
  std::vector<Result> results_;
  uint64_t failures_ = 0;
};

}  // namespace asbestos

#endif  // SRC_NET_CLIENT_H_
