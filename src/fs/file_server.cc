#include "src/fs/file_server.h"

#include "src/base/panic.h"
#include "src/sim/costs.h"

namespace asbestos {

using fs_proto::MessageType;

FileServerProcess::FileServerProcess(const FileServerOptions& options) {
  if (options.data_dir.empty()) {
    return;
  }
  StoreOptions sopts;
  sopts.dir = options.data_dir;
  sopts.shards = options.shards;
  auto store = DurableStore::Open(std::move(sopts));
  ASB_ASSERT(store.ok() && "file server store failed to open");
  store_ = store.take();
  RecoverFiles();
  if (options.replication.enabled()) {
    repl_ = std::make_unique<ReplicationEndpoint>(store_.get(), options.replication);
  }
}

Label FileServerProcess::SecrecyLabelOf(const File& f) {
  if (!f.secrecy.valid()) {
    return Label::Bottom();
  }
  return Label({{f.secrecy, f.secrecy_level}}, Level::kStar);
}

Label FileServerProcess::IntegrityLabelOf(const File& f) {
  if (!f.integrity.valid()) {
    return Label::Top();
  }
  return Label({{f.integrity, f.integrity_level}}, Level::kL3);
}

void FileServerProcess::PersistFile(const std::string& path, const File& f) {
  if (store_ == nullptr) {
    return;
  }
  ASB_ASSERT(store_->Put(path, f.contents, SecrecyLabelOf(f), IntegrityLabelOf(f)) ==
             Status::kOk);
}

void FileServerProcess::RecoverFiles() {
  store_->ForEach([this](const std::string& path, const StoreRecord& record) {
    File f;
    f.contents = record.value;
    // The stored labels carry the compartments as their sole explicit entry.
    // A level equal to the label's default (secrecy ⋆, integrity 3) encodes
    // as no entry at all — and is exactly the case where the compartment is
    // behaviorally vacuous (contaminating with {⋆} is a no-op; V(h) ≤ 3
    // always holds), so recovering such a file as unrestricted is lossless.
    Label::EntryIter s = record.secrecy.IterateEntries();
    if (!s.done()) {
      f.secrecy = s.handle();
      f.secrecy_level = s.level();
    }
    Label::EntryIter v = record.integrity.IterateEntries();
    if (!v.done()) {
      f.integrity = v.handle();
      f.integrity_level = v.level();
    }
    files_.emplace(path, std::move(f));
  });
}

void FileServerProcess::OnIdle(ProcessContext& ctx) {
  if (store_ != nullptr) {
    // The batch's appends are already ordered in each shard's log; the
    // pipelined commit flushes them while the next pump iteration runs
    // (ack deferred one pump; the destructor and Sync() drain).
    ASB_ASSERT(store_->SyncPipelined() == Status::kOk);
  }
  if (repl_ != nullptr) {
    // The batch just handed to the flusher is the batch handed to the wire.
    repl_->PumpShip(ctx);
  }
}

void FileServerProcess::ReserveRecoveredHandles(Kernel& kernel) const {
  for (const auto& [path, f] : files_) {
    kernel.ReserveRecoveredHandle(f.secrecy);
    kernel.ReserveRecoveredHandle(f.integrity);
  }
}

SpawnArgs FileServerProcess::RecoverySpawnArgs(std::string name) const {
  SpawnArgs args;
  args.name = std::move(name);
  for (const auto& [path, f] : files_) {
    if (!f.secrecy.valid()) {
      continue;
    }
    args.send_label.Set(f.secrecy, Level::kStar);
    if (LevelLeq(args.recv_label.Get(f.secrecy), f.secrecy_level)) {
      args.recv_label.Set(f.secrecy, f.secrecy_level);
    }
  }
  return args;
}

void FileServerProcess::Start(ProcessContext& ctx) {
  port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(port_, Label::Top()) == Status::kOk);
  if (repl_ != nullptr) {
    const Handle netd_ctl = Handle::FromValue(ctx.GetEnv("netd_ctl"));
    ASB_ASSERT(netd_ctl.valid() && "replication requires the netd control port in env");
    repl_->Start(ctx, netd_ctl, ctx.GetEnv("self_verify"));
  }
}

void FileServerProcess::Reply(ProcessContext& ctx, const Message& msg, uint64_t type,
                              uint64_t cookie, Status status, std::string data,
                              const SendArgs& args) {
  if (!msg.reply_port.valid()) {
    return;
  }
  Message r;
  r.type = type;
  r.words = {cookie, static_cast<uint64_t>(-static_cast<int>(status))};
  r.data = std::move(data);
  ctx.Send(msg.reply_port, std::move(r), args);
}

bool FileServerProcess::WriteAllowed(const File& f, const Message& msg) const {
  if (!f.integrity.valid()) {
    return true;
  }
  // The writer must prove, via V, that it speaks for the integrity
  // compartment: V(h) ≤ required level, and the kernel already verified
  // ES ⊑ V (§5.4).
  return LevelLeq(msg.verify.Get(f.integrity), f.integrity_level);
}

void FileServerProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (repl_ != nullptr && repl_->HandleMessage(ctx, msg)) {
    return;  // replication-plane traffic (listener replies, follower acks)
  }
  ctx.ChargeCycles(costs::kNetdRequestCycles);  // generic service handling cost
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  switch (msg.type) {
    case MessageType::kCreate: {
      if (msg.words.size() < 5 || msg.data.empty()) {
        Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kInvalidArgs);
        return;
      }
      if (files_.count(msg.data) != 0) {
        Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kAlreadyExists);
        return;
      }
      File f;
      f.secrecy = Handle::FromValue(msg.words[1]);
      f.secrecy_level = static_cast<Level>(msg.words[2] <= 4 ? msg.words[2] : 4);
      f.integrity = Handle::FromValue(msg.words[3]);
      f.integrity_level = static_cast<Level>(msg.words[4] <= 4 ? msg.words[4] : 4);
      if (f.secrecy.valid()) {
        // The creator must have granted us declassification privilege for
        // the secrecy compartment (D_S on this very message) — otherwise
        // serving this file would progressively taint the server. It must
        // also have raised our receive label (D_R) so tainted writes reach
        // us at all.
        if (ctx.send_label().Get(f.secrecy) != Level::kStar ||
            !Label({{f.secrecy, f.secrecy_level}}, Level::kStar).Leq(ctx.recv_label())) {
          Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kAccessDenied);
          return;
        }
      }
      PersistFile(msg.data, f);
      files_.emplace(msg.data, std::move(f));
      Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kOk);
      return;
    }
    case MessageType::kRead: {
      auto it = files_.find(msg.data);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kReadR, cookie, Status::kNotFound);
        return;
      }
      const File& f = it->second;
      SendArgs args;
      if (f.secrecy.valid()) {
        // Contaminate the reply with the file's compartment: whoever reads
        // u's file becomes tainted with uT (§5.2, "Discretionary
        // contamination").
        args.contaminate = SecrecyLabelOf(f);
      }
      Reply(ctx, msg, MessageType::kReadR, cookie, Status::kOk, f.contents, args);
      return;
    }
    case MessageType::kWrite: {
      const size_t nl = msg.data.find('\n');
      if (nl == std::string::npos) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kInvalidArgs);
        return;
      }
      const std::string path = msg.data.substr(0, nl);
      auto it = files_.find(path);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kNotFound);
        return;
      }
      if (!WriteAllowed(it->second, msg)) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kAccessDenied);
        return;
      }
      it->second.contents = msg.data.substr(nl + 1);
      PersistFile(path, it->second);
      Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kOk);
      return;
    }
    case MessageType::kUnlink: {
      auto it = files_.find(msg.data);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kNotFound);
        return;
      }
      if (!WriteAllowed(it->second, msg)) {
        Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kAccessDenied);
        return;
      }
      if (store_ != nullptr) {
        ASB_ASSERT(store_->Erase(msg.data) == Status::kOk);
      }
      files_.erase(it);
      Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kOk);
      return;
    }
    default:
      return;
  }
}

}  // namespace asbestos
