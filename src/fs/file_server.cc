#include "src/fs/file_server.h"

#include "src/sim/costs.h"

namespace asbestos {

using fs_proto::MessageType;

void FileServerProcess::Start(ProcessContext& ctx) {
  port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(port_, Label::Top()) == Status::kOk);
}

void FileServerProcess::Reply(ProcessContext& ctx, const Message& msg, uint64_t type,
                              uint64_t cookie, Status status, std::string data,
                              const SendArgs& args) {
  if (!msg.reply_port.valid()) {
    return;
  }
  Message r;
  r.type = type;
  r.words = {cookie, static_cast<uint64_t>(-static_cast<int>(status))};
  r.data = std::move(data);
  ctx.Send(msg.reply_port, std::move(r), args);
}

bool FileServerProcess::WriteAllowed(const File& f, const Message& msg) const {
  if (!f.integrity.valid()) {
    return true;
  }
  // The writer must prove, via V, that it speaks for the integrity
  // compartment: V(h) ≤ required level, and the kernel already verified
  // ES ⊑ V (§5.4).
  return LevelLeq(msg.verify.Get(f.integrity), f.integrity_level);
}

void FileServerProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  ctx.ChargeCycles(costs::kNetdRequestCycles);  // generic service handling cost
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  switch (msg.type) {
    case MessageType::kCreate: {
      if (msg.words.size() < 5 || msg.data.empty()) {
        Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kInvalidArgs);
        return;
      }
      if (files_.count(msg.data) != 0) {
        Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kAlreadyExists);
        return;
      }
      File f;
      f.secrecy = Handle::FromValue(msg.words[1]);
      f.secrecy_level = static_cast<Level>(msg.words[2] <= 4 ? msg.words[2] : 4);
      f.integrity = Handle::FromValue(msg.words[3]);
      f.integrity_level = static_cast<Level>(msg.words[4] <= 4 ? msg.words[4] : 4);
      if (f.secrecy.valid()) {
        // The creator must have granted us declassification privilege for
        // the secrecy compartment (D_S on this very message) — otherwise
        // serving this file would progressively taint the server. It must
        // also have raised our receive label (D_R) so tainted writes reach
        // us at all.
        if (ctx.send_label().Get(f.secrecy) != Level::kStar ||
            !Label({{f.secrecy, f.secrecy_level}}, Level::kStar).Leq(ctx.recv_label())) {
          Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kAccessDenied);
          return;
        }
      }
      files_.emplace(msg.data, std::move(f));
      Reply(ctx, msg, MessageType::kCreateR, cookie, Status::kOk);
      return;
    }
    case MessageType::kRead: {
      auto it = files_.find(msg.data);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kReadR, cookie, Status::kNotFound);
        return;
      }
      const File& f = it->second;
      SendArgs args;
      if (f.secrecy.valid()) {
        // Contaminate the reply with the file's compartment: whoever reads
        // u's file becomes tainted with uT (§5.2, "Discretionary
        // contamination").
        args.contaminate = Label({{f.secrecy, f.secrecy_level}}, Level::kStar);
      }
      Reply(ctx, msg, MessageType::kReadR, cookie, Status::kOk, f.contents, args);
      return;
    }
    case MessageType::kWrite: {
      const size_t nl = msg.data.find('\n');
      if (nl == std::string::npos) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kInvalidArgs);
        return;
      }
      const std::string path = msg.data.substr(0, nl);
      auto it = files_.find(path);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kNotFound);
        return;
      }
      if (!WriteAllowed(it->second, msg)) {
        Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kAccessDenied);
        return;
      }
      it->second.contents = msg.data.substr(nl + 1);
      Reply(ctx, msg, MessageType::kWriteR, cookie, Status::kOk);
      return;
    }
    case MessageType::kUnlink: {
      auto it = files_.find(msg.data);
      if (it == files_.end()) {
        Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kNotFound);
        return;
      }
      if (!WriteAllowed(it->second, msg)) {
        Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kAccessDenied);
        return;
      }
      files_.erase(it);
      Reply(ctx, msg, MessageType::kUnlinkR, cookie, Status::kOk);
      return;
    }
    default:
      return;
  }
}

}  // namespace asbestos
