// A labeled file server: the multi-user file server of paper §5.2/§5.4.
//
// Files carry a secrecy compartment (read replies are contaminated with it)
// and an integrity requirement (writes must prove, via the verification
// label V, that the writer's send label is low enough). Compartments are
// decentralized: whoever creates a file grants the file server ⋆ for the
// secrecy handle (D_S) and raises the server's receive label for it (D_R),
// both on the CREATE message itself — so the server serves any compartment
// without a central administrator, exactly the §5.3 pattern.
//
// Protocol (all to the server's public port; replies to msg.reply_port):
//   kCreate: data: path; words: [cookie, secrecy_h, secrecy_level,
//            integrity_h, integrity_level] (handle 0 = none)
//   kRead:   data: path; words: [cookie]
//   kWrite:  data: path '\n' contents; words: [cookie]; V checked
//   kUnlink: data: path; words: [cookie]; V checked like a write
//
// Persistence (src/store): constructed with a data directory, the server
// logs every create/write/unlink through a DurableStore — value = contents,
// secrecy label = the exact contamination label applied to read replies,
// integrity label = the exact bound checked against writers' V — and
// recovers its whole file table, labels included, on restart. The store is
// sharded (FileServerOptions::shards) so the file table spreads across
// independent logs, and durability is group-committed: mutations append
// without fsyncing, and the kernel's end-of-pump OnIdle hook flushes every
// dirty shard once per pump iteration. Privilege does not recover by
// itself: the ⋆ and receive-label grants that arrived on CREATE messages
// died with the old boot, so the boot loader must re-apply them when
// re-creating the server (RecoverySpawnArgs), the durable equivalent of the
// paper's trusted boot-time label assignment.
#ifndef SRC_FS_FILE_SERVER_H_
#define SRC_FS_FILE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/replication/endpoint.h"
#include "src/store/store.h"

namespace asbestos {

namespace fs_proto {
enum MessageType : uint64_t {
  kCreate = 1,
  kCreateR = 2,  // words: [cookie, status]
  kRead = 3,
  kReadR = 4,    // words: [cookie, status]; data: contents; C_S: file secrecy
  kWrite = 5,
  kWriteR = 6,   // words: [cookie, status]
  kUnlink = 7,
  kUnlinkR = 8,  // words: [cookie, status]
};
}  // namespace fs_proto

struct FileServerOptions {
  std::string data_dir;  // empty = volatile, in-memory only
  // Shard count for a store created at data_dir; existing stores keep the
  // count stamped at creation (see StoreOptions::shards).
  uint32_t shards = 4;
  // WAL shipping to up to max_followers followers (src/replication): when
  // enabled, the server attaches a netd listener on this port and ships
  // every flushed batch from its OnIdle hook. Requires env "netd_ctl" at
  // Start.
  ReplicationOptions replication;
};

class FileServerProcess : public ProcessCode {
 public:
  FileServerProcess() = default;
  // Opens (or creates) the durable store under options.data_dir and recovers
  // the file table from it. Panics if the store cannot be opened — a file
  // server booted against corrupt state must not limp on empty.
  explicit FileServerProcess(const FileServerOptions& options);

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit, pipelined: hands every shard dirtied during this pump
  // iteration to the background flusher (ack deferred one pump; see
  // DurableStore::SyncPipelined for the two-batch crash window).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  // Boot-loader helper: spawn labels for a recovered server — ⋆ for every
  // recovered secrecy compartment (so serving it does not taint the server)
  // and a receive label raised to each file's secrecy level (so tainted
  // writes reach it). These re-apply what the original CREATE messages
  // granted via D_S/D_R; only the trusted boot path may do this.
  SpawnArgs RecoverySpawnArgs(std::string name) const;

  // Boot-loader helper: retire every recovered secrecy/integrity handle from
  // the kernel's generator so no new compartment can collide with one a
  // durable file still names.
  void ReserveRecoveredHandles(Kernel& kernel) const;

  Handle service_port() const { return port_; }
  size_t file_count() const { return files_.size(); }
  bool persistent() const { return store_ != nullptr; }
  const DurableStore* store() const { return store_.get(); }
  const ReplicationEndpoint* replication() const { return repl_.get(); }

 private:
  struct File {
    std::string contents;
    Handle secrecy;            // invalid = public
    Level secrecy_level = Level::kL3;
    Handle integrity;          // invalid = anyone may write
    Level integrity_level = Level::kL0;
  };

  void Reply(ProcessContext& ctx, const Message& msg, uint64_t type, uint64_t cookie,
             Status status, std::string data = "", const SendArgs& args = SendArgs());
  bool WriteAllowed(const File& f, const Message& msg) const;
  // The contamination label read replies carry: {secrecy_h level, ⋆}.
  static Label SecrecyLabelOf(const File& f);
  // The verification bound writes must satisfy: {integrity_h level, 3}.
  static Label IntegrityLabelOf(const File& f);
  void PersistFile(const std::string& path, const File& f);
  void RecoverFiles();

  Handle port_;
  std::map<std::string, File> files_;
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<ReplicationEndpoint> repl_;
};

}  // namespace asbestos

#endif  // SRC_FS_FILE_SERVER_H_
