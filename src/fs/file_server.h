// A labeled file server: the multi-user file server of paper §5.2/§5.4.
//
// Files carry a secrecy compartment (read replies are contaminated with it)
// and an integrity requirement (writes must prove, via the verification
// label V, that the writer's send label is low enough). Compartments are
// decentralized: whoever creates a file grants the file server ⋆ for the
// secrecy handle (D_S) and raises the server's receive label for it (D_R),
// both on the CREATE message itself — so the server serves any compartment
// without a central administrator, exactly the §5.3 pattern.
//
// Protocol (all to the server's public port; replies to msg.reply_port):
//   kCreate: data: path; words: [cookie, secrecy_h, secrecy_level,
//            integrity_h, integrity_level] (handle 0 = none)
//   kRead:   data: path; words: [cookie]
//   kWrite:  data: path '\n' contents; words: [cookie]; V checked
//   kUnlink: data: path; words: [cookie]; V checked like a write
#ifndef SRC_FS_FILE_SERVER_H_
#define SRC_FS_FILE_SERVER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/kernel/kernel.h"

namespace asbestos {

namespace fs_proto {
enum MessageType : uint64_t {
  kCreate = 1,
  kCreateR = 2,  // words: [cookie, status]
  kRead = 3,
  kReadR = 4,    // words: [cookie, status]; data: contents; C_S: file secrecy
  kWrite = 5,
  kWriteR = 6,   // words: [cookie, status]
  kUnlink = 7,
  kUnlinkR = 8,  // words: [cookie, status]
};
}  // namespace fs_proto

class FileServerProcess : public ProcessCode {
 public:
  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  Handle service_port() const { return port_; }
  size_t file_count() const { return files_.size(); }

 private:
  struct File {
    std::string contents;
    Handle secrecy;            // invalid = public
    Level secrecy_level = Level::kL3;
    Handle integrity;          // invalid = anyone may write
    Level integrity_level = Level::kL0;
  };

  void Reply(ProcessContext& ctx, const Message& msg, uint64_t type, uint64_t cookie,
             Status status, std::string data = "", const SendArgs& args = SendArgs());
  bool WriteAllowed(const File& f, const Message& msg) const;

  Handle port_;
  std::map<std::string, File> files_;
};

}  // namespace asbestos

#endif  // SRC_FS_FILE_SERVER_H_
