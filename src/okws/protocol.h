// Message types and shared structures for the OKWS process suite (paper §7).
//
// Trust bootstrapping follows §7.1: the launcher creates one verification
// handle per child and spawns the child with that handle at level 0 in its
// send label. A child proves its identity exactly once, in its Start()
// routine, *before receiving any message* (receipt of any low-integrity
// message raises the handle to 1 — mandatory integrity, §5.4). All ongoing
// trust relationships use port capabilities instead: closed ports whose
// send-rights (⋆) are granted over the registration/wire messages.
#ifndef SRC_OKWS_PROTOCOL_H_
#define SRC_OKWS_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/kernel/bootstrap.h"

namespace asbestos {

namespace okws_proto {
enum MessageType : uint64_t {
  // (kRegister/kReady/kWire live in src/kernel/bootstrap.h — boot_proto.)
  kExpectWorker = 103,  // launcher → demux wire port; data: service name;
                        // words: [verify value, is_declassifier]

  // --- idd -------------------------------------------------------------------
  kLogin = 110,   // data: "user\npass"; words: [cookie]; D_S grants the
                  // caller's reply-port capability
  kLoginR = 111,  // words: [cookie, status, uT, uG, user_id];
                  // D_S = {uT ⋆, uG ⋆}; D_R = {uT 3}   (paper Fig. 5 step 4)
  kChangePw = 112,   // data: "user\nold\nnew"; words: [cookie]; V proves uG ≤ 0
  kChangePwR = 113,  // words: [cookie, status]

  // --- ok-demux ----------------------------------------------------------------
  kWorkerRegister = 120,  // worker → demux register port; data: service name;
                          // words: [service port]; V: {vW 0}; D_S grants the
                          // service-port capability
  kConnForUser = 121,     // demux → worker (service port for a fresh session,
                          // uW for an existing one); data: username;
                          // words: [cookie, uC, uT, uG];
                          // D_S = {uC ⋆, uG ⋆, session-port ⋆} (+ uT ⋆ for
                          // declassifiers); C_S = {uT 3} (except declassifiers);
                          // D_R = {uT 3}    (paper Fig. 5 step 6)
  kSessionReg = 122,      // worker EP → demux session port; words: [cookie, uW];
                          // D_S grants uW ⋆  (paper §7.3)
  kSessionInvalidate = 123,  // idd → demux session port; data: username; drops
                             // every cached session of that user (password change)
  kSessionPark = 124,   // worker EP → demux session port; data: "user\nservice";
                        // words: [uW]. The idle event process asks to be parked:
                        // demux invalidates the session's uW (the next connection
                        // forks a fresh EP at the service port) and acks. Sent
                        // over the same session-port capability as kSessionReg.
  kSessionParkR = 125,  // demux → the parking uW. On receipt the worker frees
                        // the event process if no request is in flight — the
                        // per-port FIFO guarantees any connection demux forwarded
                        // to uW before processing the park arrives first, in
                        // which case the worker aborts and re-parks later.
};
}  // namespace okws_proto

// A user account preloaded into the identity database.
struct UserCred {
  std::string username;
  std::string password;
};

}  // namespace asbestos

#endif  // SRC_OKWS_PROTOCOL_H_
