#include "src/okws/launcher.h"

#include "src/okws/demux.h"
#include "src/okws/idd.h"
#include "src/db/dbproxy.h"

namespace asbestos {

using okws_proto::MessageType;

void LauncherProcess::Start(ProcessContext& ctx) {
  port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(port_, Label::Top()) == Status::kOk);

  // One verification handle per child (paper §7.1). Creating them makes the
  // launcher the ⋆-holder, entitled to spawn children carrying them at 0.
  verify_["dbproxy"] = ctx.NewHandle();
  verify_["idd"] = ctx.NewHandle();
  verify_["demux"] = ctx.NewHandle();
  for (const OkwsServiceSpec& svc : config_.services) {
    verify_["worker:" + svc.name] = ctx.NewHandle();
  }

  const auto spawn_child = [&](const std::string& name, Component component,
                               std::unique_ptr<ProcessCode> code,
                               std::map<std::string, uint64_t> extra_env,
                               const Label& extra_stars = Label::Top()) {
    SpawnArgs args;
    args.name = name;
    args.component = component;
    args.send_label = Label({{verify_.at(name), Level::kL0}}, Level::kL1);
    // Pass down recovered ⋆ privileges (the boot loader granted them to us;
    // §5.3: privilege is distributed by forking).
    for (Label::EntryIter it = extra_stars.IterateEntries(); !it.done(); it.Advance()) {
      if (it.level() == Level::kStar) {
        args.send_label.Set(it.handle(), Level::kStar);
      }
    }
    args.env = std::move(extra_env);
    args.env["launcher_port"] = port_.value();
    args.env["self_verify"] = verify_.at(name).value();
    auto result = ctx.Spawn(std::move(code), std::move(args));
    ASB_ASSERT(result.ok());
  };

  spawn_child("dbproxy", Component::kOkdb,
              std::make_unique<DbproxyProcess>(config_.dbproxy_options), {});
  auto idd = std::make_unique<IddProcess>(config_.users, config_.extra_tables,
                                          config_.idd_options);
  const Label idd_stars = idd->recovered_stars();
  spawn_child("idd", Component::kOkws, std::move(idd), {}, idd_stars);

  // Construct (but do not yet spawn) demux: recovering its durable session
  // table now tells us which uT/uG ⋆ it must be re-granted at spawn. Those
  // handles are a subset of idd's recovered identities, whose ⋆ the boot
  // loader already folded into our send label.
  demux_code_ = std::make_unique<DemuxProcess>(config_.demux_options);
  demux_stars_ = demux_code_->recovered_stars();
}

bool LauncherProcess::CheckRegistration(const Message& msg, const std::string& name) const {
  auto it = verify_.find(name);
  if (it == verify_.end()) {
    return false;
  }
  // §7.1: the component proves it is the process we spawned by presenting
  // its verification handle at level 0 in V.
  return LevelLeq(msg.verify.Get(it->second), Level::kL0);
}

void LauncherProcess::MaybeWireIdd(ProcessContext& ctx) {
  if (idd_wired_ || !dbproxy_priv_.valid() || !idd_wire_.valid()) {
    return;
  }
  idd_wired_ = true;
  // Hand idd the capability to ok-dbproxy's privileged port.
  Message wire;
  wire.type = boot_proto::kWire;
  wire.data = "dbpriv";
  wire.words = {dbproxy_priv_.value()};
  SendArgs args;
  args.decont_send = Label({{dbproxy_priv_, Level::kStar}}, Level::kL3);
  ctx.Send(idd_wire_, std::move(wire), args);
}

void LauncherProcess::MaybeSpawnDemux(ProcessContext& ctx) {
  if (demux_spawned_ || !idd_ready_ || !netd_ctl_.valid()) {
    return;
  }
  demux_spawned_ = true;
  SpawnArgs args;
  args.name = "demux";
  args.component = Component::kOkws;
  args.send_label = Label({{verify_.at("demux"), Level::kL0}}, Level::kL1);
  // Re-grant the ⋆ set demux's recovered sessions need (§5.3: privilege is
  // distributed by forking; empty unless session persistence is configured).
  for (Label::EntryIter it = demux_stars_.IterateEntries(); !it.done(); it.Advance()) {
    if (it.level() == Level::kStar) {
      args.send_label.Set(it.handle(), Level::kStar);
    }
  }
  args.env = {{"launcher_port", port_.value()},
              {"self_verify", verify_.at("demux").value()},
              {"netd_ctl", netd_ctl_.value()},
              {"idd_login", idd_login_.value()},
              {"tcp_port", config_.tcp_port}};
  ASB_ASSERT(demux_code_ != nullptr);
  auto result = ctx.Spawn(std::move(demux_code_), std::move(args));
  ASB_ASSERT(result.ok());
}

void LauncherProcess::OnDemuxRegistered(ProcessContext& ctx) {
  // Tell ok-demux which workers to expect, then start them.
  for (const OkwsServiceSpec& svc : config_.services) {
    Message expect;
    expect.type = MessageType::kExpectWorker;
    expect.data = svc.name;
    expect.words = {verify_.at("worker:" + svc.name).value(), svc.declassifier ? 1ULL : 0ULL};
    ctx.Send(demux_wire_, std::move(expect));
  }
  Message done;
  done.type = boot_proto::kWire;
  done.data = "expectations-complete";
  ctx.Send(demux_wire_, std::move(done));

  workers_spawned_ = true;
  for (const OkwsServiceSpec& svc : config_.services) {
    const std::string vname = "worker:" + svc.name;
    SpawnArgs args;
    args.name = "worker-" + svc.name;
    args.component = Component::kOkws;
    args.send_label = Label({{verify_.at(vname), Level::kL0}}, Level::kL1);
    args.env = {{"launcher_port", port_.value()},
                {"self_verify", verify_.at(vname).value()},
                {"demux_register", demux_register_.value()},
                {"demux_session", demux_session_.value()},
                {"dbproxy_query", dbproxy_query_.value()},
                {"idd_login", idd_login_.value()}};
    auto result =
        ctx.Spawn(std::make_unique<WorkerProcess>(svc.name, svc.factory(), svc.worker_options),
                  std::move(args));
    ASB_ASSERT(result.ok());
  }
}

void LauncherProcess::ProvideNetd(ProcessContext& ctx, uint64_t netd_ctl_value) {
  netd_ctl_ = Handle::FromValue(netd_ctl_value);
  MaybeWireIddNetd(ctx);
  MaybeWireDbproxyNetd(ctx);
  MaybeSpawnDemux(ctx);
}

void LauncherProcess::MaybeWireIddNetd(ProcessContext& ctx) {
  // idd spawns before the boot loader creates netd, so its replication
  // endpoint cannot learn the control port from its spawn env the way demux
  // does; wire it as soon as both ends exist. Handle values confer no
  // authority — netd's listener check is what gates the LISTEN itself.
  if (idd_netd_wired_ || !netd_ctl_.valid() || !idd_wire_.valid() ||
      !config_.idd_options.replication.enabled()) {
    return;
  }
  idd_netd_wired_ = true;
  Message wire;
  wire.type = boot_proto::kWire;
  wire.data = "netd";
  wire.words = {netd_ctl_.value()};
  ctx.Send(idd_wire_, std::move(wire));
}

void LauncherProcess::MaybeWireDbproxyNetd(ProcessContext& ctx) {
  // Same late wire for ok-dbproxy: its durable tables replicate like idd's
  // identity cache, and it too spawns before netd exists.
  if (dbproxy_netd_wired_ || !netd_ctl_.valid() || !dbproxy_wire_.valid() ||
      !config_.dbproxy_options.replication.enabled()) {
    return;
  }
  dbproxy_netd_wired_ = true;
  Message wire;
  wire.type = boot_proto::kWire;
  wire.data = "netd";
  wire.words = {netd_ctl_.value()};
  ctx.Send(dbproxy_wire_, std::move(wire));
}

void LauncherProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (msg.port != port_) {
    return;
  }
  if (msg.type == boot_proto::kRegister) {
    if (msg.data == "dbproxy" && CheckRegistration(msg, "dbproxy") && msg.words.size() >= 2) {
      dbproxy_query_ = Handle::FromValue(msg.words[0]);
      dbproxy_priv_ = Handle::FromValue(msg.words[1]);
      if (msg.words.size() >= 3) {
        dbproxy_wire_ = Handle::FromValue(msg.words[2]);
      }
      MaybeWireIdd(ctx);
      MaybeWireDbproxyNetd(ctx);
    } else if (msg.data == "idd" && CheckRegistration(msg, "idd") && msg.words.size() >= 2) {
      idd_login_ = Handle::FromValue(msg.words[0]);
      idd_wire_ = Handle::FromValue(msg.words[1]);
      MaybeWireIdd(ctx);
      MaybeWireIddNetd(ctx);
    } else if (msg.data == "demux" && CheckRegistration(msg, "demux") &&
               msg.words.size() >= 3) {
      demux_register_ = Handle::FromValue(msg.words[0]);
      demux_session_ = Handle::FromValue(msg.words[1]);
      demux_wire_ = Handle::FromValue(msg.words[2]);
      OnDemuxRegistered(ctx);
    }
    return;
  }
  if (msg.type == boot_proto::kReady) {
    if (msg.data == "idd") {
      idd_ready_ = true;
      MaybeSpawnDemux(ctx);
    } else if (msg.data == "demux") {
      ready_ = true;
    }
    return;
  }
}

}  // namespace asbestos
