// ok-demux: accepts connections from netd, authenticates users against idd,
// and hands connections to service workers (paper §7.2-7.3, Figure 5).
//
// Per connection: netd grants uC ⋆ (step 2); demux peeks at the request
// until it can parse the service name and credentials (step 3); idd grants
// uT ⋆ / uG ⋆ on success (step 4); demux grants netd uT ⋆ so the connection
// may carry u-tainted data (step 5); demux forwards uC to the worker —
// contaminating it with uT 3, or granting uT ⋆ when the worker is a
// declassifier (steps 6 and §7.6).
//
// The session table (§7.3) maps (user, service) to the event process port
// uW registered by the worker; follow-up connections skip idd entirely and
// go straight to the existing event process.
//
// Persistence (src/store): with a store directory configured, every session
// (key → uT/uG + expiry + credential) is logged durably and recovered on
// restart, so a reboot is invisible to logged-in browsers: a follow-up
// connection authenticates against the recovered session and skips idd
// entirely. What does NOT survive is the worker event process — uW dies
// with the boot — so the first post-reboot connection of a session forks a
// fresh event process at the service port (and re-registers its uW). The
// privilege to speak for the recovered uT/uG comes down the trusted boot
// chain exactly as idd's does: demux session persistence requires idd's
// durable identity cache on the same boot, whose RecoveredStars the boot
// loader folded into the launcher, and the launcher re-grants the session
// handles' ⋆ to demux at spawn.
#ifndef SRC_OKWS_DEMUX_H_
#define SRC_OKWS_DEMUX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/http/http.h"
#include "src/kernel/kernel.h"
#include "src/okws/protocol.h"
#include "src/replication/endpoint.h"
#include "src/store/store.h"

namespace asbestos {

struct DemuxOptions {
  std::string store_dir;  // empty = volatile session table, as in the seed
  // Shard count for a store created at store_dir (existing stores keep the
  // stamped count). Session registrations append without fsyncing and are
  // group-committed by the end-of-pump OnIdle hook, pipelined.
  uint32_t shards = 4;
  // Sessions expire this many virtual cycles after registration; 0 = never.
  // Expiry is evaluated lazily (at resume and at recovery) against the
  // simulator's global cycle clock. The clock is process-local and not
  // persisted, so TTL'd sessions survive in-simulation reboots (new world,
  // same process, monotonic clock) but are conservatively dropped when
  // recovery cannot place their timestamps in the current clock era (a
  // genuine process restart): fail-closed — an expired session must never
  // resurrect, even at the price of re-login after a real reboot. TTL 0
  // (the default) has no timestamps to misread and survives both kinds.
  uint64_t session_ttl_cycles = 0;
  // WAL shipping of the session table to followers (src/replication).
  // Requires store_dir; the listener attaches with demux's own verification
  // label, which netd already accepts.
  ReplicationOptions replication;
};

class DemuxProcess : public ProcessCode {
 public:
  explicit DemuxProcess(DemuxOptions options = {});

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit of the session store (pipelined; see DurableStore).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  // {uT ⋆, uG ⋆} over every recovered session, default 3: the ⋆ set the
  // launcher must hold (from idd's RecoveredStars) and re-grant at spawn for
  // the recovered sessions to keep working.
  Label recovered_stars() const;

  Handle register_port() const { return register_port_; }
  Handle session_port() const { return session_port_; }
  size_t session_count() const { return sessions_.size(); }
  uint64_t rejected_connections() const { return rejected_; }
  const DurableStore* store() const { return store_.get(); }
  const ReplicationEndpoint* replication() const { return repl_.get(); }

  // The session's read-your-writes token (empty when the session never
  // wrote, is unknown, or replication is off). Read routing attaches this
  // to every follower read so the gate can hold the contract.
  replwire::ReadCursorToken session_cursor(const std::string& user,
                                           const std::string& service) const;

  // Advisory read routing: the hub's rendezvous choice among followers
  // fresh enough for this session's token (sticky per user, so one
  // follower's flow-check verdict cache stays hot for the session).
  // nullptr = no eligible follower, read at the primary. Advisory only —
  // the chosen follower's own gate re-decides with the same rule.
  FollowerSession* RouteSessionRead(const std::string& user,
                                    const std::string& service) const;

 private:
  struct WorkerInfo {
    std::string service;
    uint64_t verify_value = 0;
    bool declassifier = false;
    Handle service_port;  // invalid until the worker registers
  };

  struct Session {
    Handle uw;        // the worker event process's port; invalid after reboot
    Handle taint;     // uT
    Handle grant;     // uG
    std::string password;  // credential the session was opened with
    uint64_t expires_at_cycles = 0;  // absolute virtual time; 0 = never
    // Read-your-writes position: the session shard's WAL cursor at this
    // session's last durable write. In-memory only — NOT part of the
    // persisted value — so the on-disk session format is unchanged.
    replwire::ReadCursorToken cursor;
  };

  struct ConnState {
    Handle uc;
    uint64_t bytes_seen = 0;
    HttpRequestParser parser;
    std::string username;
    std::string password;
    std::string service;
    Handle taint;
    Handle grant;
    bool awaiting_login = false;
  };

  void SendPeekRead(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void OnRequestParsed(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void OnLoginResult(ProcessContext& ctx, uint64_t cookie, const Message& msg);
  // Steps 5-6: taint netd for this connection and hand it to the worker.
  void ForwardToWorker(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void RejectConnection(ProcessContext& ctx, ConnState& conn, int status,
                        const std::string& reason);
  void CheckAllWorkersRegistered(ProcessContext& ctx);
  // The live session for `key`, lazily erasing it (memory + store) when it
  // has expired. nullptr when absent or expired.
  Session* FindLiveSession(const std::string& key);
  void PersistSession(const std::string& key, const Session& s);
  void EraseDurableSession(const std::string& key);
  void RecoverSessions();

  Handle register_port_;  // public: worker registration
  Handle notify_port_;    // capability-held by netd: conn notifications + read replies
  Handle session_port_;   // capability-held by idd and workers
  Handle wire_port_;      // capability-held by the launcher
  Handle launcher_port_;
  Handle netd_ctl_;
  Handle idd_login_;
  uint64_t self_verify_ = 0;

  DemuxOptions options_;
  std::map<std::string, WorkerInfo> workers_;          // by service name
  std::map<uint64_t, ConnState> conns_;                // by cookie
  std::map<std::string, Session> sessions_;            // by user + "\x1f" + service
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<ReplicationEndpoint> repl_;
  uint64_t next_cookie_ = 1;
  uint64_t rejected_ = 0;
  bool expectations_complete_ = false;
  bool ready_sent_ = false;
};

}  // namespace asbestos

#endif  // SRC_OKWS_DEMUX_H_
