// ok-demux: accepts connections from netd, authenticates users against idd,
// and hands connections to service workers (paper §7.2-7.3, Figure 5).
//
// Per connection: netd grants uC ⋆ (step 2); demux peeks at the request
// until it can parse the service name and credentials (step 3); idd grants
// uT ⋆ / uG ⋆ on success (step 4); demux grants netd uT ⋆ so the connection
// may carry u-tainted data (step 5); demux forwards uC to the worker —
// contaminating it with uT 3, or granting uT ⋆ when the worker is a
// declassifier (steps 6 and §7.6).
//
// The session table (§7.3) maps (user, service) to the event process port
// uW registered by the worker; follow-up connections skip idd entirely and
// go straight to the existing event process.
#ifndef SRC_OKWS_DEMUX_H_
#define SRC_OKWS_DEMUX_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/http/http.h"
#include "src/kernel/kernel.h"
#include "src/okws/protocol.h"

namespace asbestos {

class DemuxProcess : public ProcessCode {
 public:
  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  Handle register_port() const { return register_port_; }
  Handle session_port() const { return session_port_; }
  size_t session_count() const { return sessions_.size(); }
  uint64_t rejected_connections() const { return rejected_; }

 private:
  struct WorkerInfo {
    std::string service;
    uint64_t verify_value = 0;
    bool declassifier = false;
    Handle service_port;  // invalid until the worker registers
  };

  struct Session {
    Handle uw;        // the worker event process's port
    Handle taint;     // uT
    Handle grant;     // uG
    std::string password;  // credential the session was opened with
  };

  struct ConnState {
    Handle uc;
    uint64_t bytes_seen = 0;
    HttpRequestParser parser;
    std::string username;
    std::string password;
    std::string service;
    Handle taint;
    Handle grant;
    bool awaiting_login = false;
  };

  void SendPeekRead(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void OnRequestParsed(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void OnLoginResult(ProcessContext& ctx, uint64_t cookie, const Message& msg);
  // Steps 5-6: taint netd for this connection and hand it to the worker.
  void ForwardToWorker(ProcessContext& ctx, uint64_t cookie, ConnState& conn);
  void RejectConnection(ProcessContext& ctx, ConnState& conn, int status,
                        const std::string& reason);
  void CheckAllWorkersRegistered(ProcessContext& ctx);

  Handle register_port_;  // public: worker registration
  Handle notify_port_;    // capability-held by netd: conn notifications + read replies
  Handle session_port_;   // capability-held by idd and workers
  Handle wire_port_;      // capability-held by the launcher
  Handle launcher_port_;
  Handle netd_ctl_;
  Handle idd_login_;
  uint64_t self_verify_ = 0;

  std::map<std::string, WorkerInfo> workers_;          // by service name
  std::map<uint64_t, ConnState> conns_;                // by cookie
  std::map<std::string, Session> sessions_;            // by user + "\x1f" + service
  uint64_t next_cookie_ = 1;
  uint64_t rejected_ = 0;
  bool expectations_complete_ = false;
  bool ready_sent_ = false;
};

}  // namespace asbestos

#endif  // SRC_OKWS_DEMUX_H_
