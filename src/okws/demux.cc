#include "src/okws/demux.h"

#include "src/base/strings.h"
#include "src/net/netd.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/okws/session_codec.h"
#include "src/sim/costs.h"
#include "src/sim/cycles.h"

namespace asbestos {

using okws_proto::MessageType;

namespace {

// Session-table key and durable value codec live in session_codec.h so
// read-serving followers share them byte-for-byte (labels mirror idd's
// identity records: the session is the user's private state ({uT 3, ⋆})
// rewritable only by a uG-speaker ({uG 0, 3})).
std::string SessionKey(const std::string& user, const std::string& service) {
  return okws_session::Key(user, service);
}

// Pulls "user:pass" out of the Authorization header (or user=/pass= query
// parameters as a fallback). Returns false if absent.
bool ExtractCredentials(const HttpRequest& req, std::string* user, std::string* pass) {
  const std::string auth = req.Header("authorization");
  if (!auth.empty()) {
    const size_t colon = auth.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    *user = auth.substr(0, colon);
    *pass = auth.substr(colon + 1);
    return !user->empty();
  }
  *user = req.Query("user");
  *pass = req.Query("pass");
  return !user->empty();
}

// "/store?op=get" → "store".
std::string ServiceName(const std::string& path) {
  size_t begin = 0;
  while (begin < path.size() && path[begin] == '/') {
    ++begin;
  }
  const size_t end = path.find('/', begin);
  return end == std::string::npos ? path.substr(begin) : path.substr(begin, end - begin);
}

}  // namespace

DemuxProcess::DemuxProcess(DemuxOptions options) : options_(std::move(options)) {
  if (options_.store_dir.empty()) {
    return;
  }
  StoreOptions sopts;
  sopts.dir = options_.store_dir;
  sopts.shards = options_.shards;
  auto store = DurableStore::Open(std::move(sopts));
  ASB_ASSERT(store.ok() && "demux session store failed to open");
  store_ = store.take();
  RecoverSessions();
  if (options_.replication.enabled()) {
    repl_ = std::make_unique<ReplicationEndpoint>(store_.get(), options_.replication);
  }
}

void DemuxProcess::RecoverSessions() {
  const uint64_t now = GetCycleAccounting().now();
  const uint64_t ttl = options_.session_ttl_cycles;
  std::vector<std::string> expired;
  store_->ForEach([this, now, ttl, &expired](const std::string& key, const StoreRecord& record) {
    Session s;
    if (!okws_session::DecodeValue(record.value, &s.taint, &s.grant, &s.expires_at_cycles,
                                   &s.password)) {
      return;  // skip records this build cannot parse; never refuse to boot
    }
    // Expiry timestamps are absolute virtual time, and the virtual clock is
    // process-local: a fresh OS process restarts it at 0, which would make
    // every stale timestamp from a long-lived previous run look far in the
    // future and resurrect long-expired sessions. Bound the other side too:
    // a live session's expiry can never sit more than one TTL ahead of now
    // (registration stamped now+ttl with registration ≤ now), so anything
    // past that bound is a previous clock era and is equally expired.
    if (okws_session::ExpiredAt(s.expires_at_cycles, now) ||
        (s.expires_at_cycles != 0 && ttl != 0 && s.expires_at_cycles > now + ttl)) {
      expired.push_back(key);  // died while the machine was down
      return;
    }
    // uW is per-boot; the first connection of this session forks a fresh
    // event process at the service port and re-registers it.
    s.uw = Handle::Invalid();
    sessions_.emplace(key, std::move(s));
  });
  for (const std::string& key : expired) {
    (void)store_->Erase(key);
  }
}

void DemuxProcess::OnIdle(ProcessContext& ctx) {
  if (store_ != nullptr) {
    ASB_ASSERT(store_->SyncPipelined() == Status::kOk);
  }
  if (repl_ != nullptr) {
    repl_->PumpShip(ctx);  // the flushed batch is also the shipped batch
  }
}

Label DemuxProcess::recovered_stars() const {
  Label stars = Label::Top();
  for (const auto& [key, s] : sessions_) {
    stars.Set(s.taint, Level::kStar);
    stars.Set(s.grant, Level::kStar);
  }
  return stars;
}

DemuxProcess::Session* DemuxProcess::FindLiveSession(const std::string& key) {
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    return nullptr;
  }
  // The SAME comparison a read-serving follower applies through
  // okws_session::LivenessFilter() — see session_codec.h for why the two
  // sides must share it verbatim.
  if (okws_session::ExpiredAt(it->second.expires_at_cycles, GetCycleAccounting().now())) {
    EraseDurableSession(key);
    sessions_.erase(it);
    return nullptr;
  }
  return &it->second;
}

void DemuxProcess::PersistSession(const std::string& key, const Session& s) {
  if (store_ == nullptr) {
    return;
  }
  const Label secrecy({{s.taint, Level::kL3}}, Level::kStar);
  const Label integrity({{s.grant, Level::kL0}}, Level::kL3);
  ASB_ASSERT(store_->Put(key,
                         okws_session::EncodeValue(s.taint, s.grant, s.expires_at_cycles,
                                                   s.password),
                         secrecy, integrity) == Status::kOk);
}

replwire::ReadCursorToken DemuxProcess::session_cursor(const std::string& user,
                                                       const std::string& service) const {
  const auto it = sessions_.find(SessionKey(user, service));
  return it == sessions_.end() ? replwire::ReadCursorToken{} : it->second.cursor;
}

FollowerSession* DemuxProcess::RouteSessionRead(const std::string& user,
                                                const std::string& service) const {
  if (repl_ == nullptr || repl_->hub() == nullptr) {
    return nullptr;
  }
  return repl_->hub()->RouteRead(SessionKey(user, service),
                                 session_cursor(user, service));
}

void DemuxProcess::EraseDurableSession(const std::string& key) {
  if (store_ != nullptr) {
    (void)store_->Erase(key);  // kNotFound is fine: never persisted
  }
}

void DemuxProcess::Start(ProcessContext& ctx) {
  register_port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(register_port_, Label::Top()) == Status::kOk);
  notify_port_ = ctx.NewPort(Label::Top());   // closed; netd gets ⋆ below
  session_port_ = ctx.NewPort(Label::Top());  // closed; idd/workers get ⋆ per message
  wire_port_ = ctx.NewPort(Label::Top());     // closed; launcher gets ⋆ at registration

  launcher_port_ = Handle::FromValue(ctx.GetEnv("launcher_port"));
  netd_ctl_ = Handle::FromValue(ctx.GetEnv("netd_ctl"));
  idd_login_ = Handle::FromValue(ctx.GetEnv("idd_login"));
  self_verify_ = ctx.GetEnv("self_verify");
  ASB_ASSERT(launcher_port_.valid() && netd_ctl_.valid() && idd_login_.valid());

  // Recovered sessions: on the live path, idd's login reply raised our
  // receive label for each uT (D_R); a recovered session skips idd, so we
  // re-accept each taint ourselves. Requires uT ⋆, which the launcher
  // re-granted at spawn from the recovered privilege set — a failure here
  // means demux persistence was configured without idd's durable identity
  // cache backing the same boot.
  for (const auto& [key, s] : sessions_) {
    ASB_ASSERT(ctx.SetReceiveLevel(s.taint, Level::kL3) == Status::kOk &&
               "recovered demux sessions need the launcher's recovered-star grant");
  }

  // Attach to the web port. The LISTEN both proves our identity to netd
  // (V with our verification handle, still intact pre-receive) and grants
  // netd the capability to our notification port.
  {
    Message listen;
    listen.type = netd_proto::kListen;
    listen.words = {ctx.GetEnv("tcp_port")};
    listen.reply_port = notify_port_;
    SendArgs args;
    args.verify = Label({{Handle::FromValue(self_verify_), Level::kL0}}, Level::kL3);
    args.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
    ctx.Send(netd_ctl_, std::move(listen), args);
  }
  {
    Message reg;
    reg.type = boot_proto::kRegister;
    reg.data = "demux";
    reg.words = {register_port_.value(), session_port_.value(), wire_port_.value()};
    SendArgs args;
    args.verify = Label({{Handle::FromValue(self_verify_), Level::kL0}}, Level::kL3);
    args.decont_send = Label({{wire_port_, Level::kStar}}, Level::kL3);
    ctx.Send(launcher_port_, std::move(reg), args);
  }

  if (repl_ != nullptr) {
    // Session-table replication: a second listener on the replication port,
    // proven with the same verification handle as the web listener.
    repl_->Start(ctx, netd_ctl_, self_verify_);
  }
}

void DemuxProcess::SendPeekRead(ProcessContext& ctx, uint64_t cookie, ConnState& conn) {
  Message read;
  read.type = netd_proto::kRead;
  read.words = {cookie, 0 /*all*/, 1 /*peek*/, conn.bytes_seen};
  read.reply_port = notify_port_;
  ctx.Send(conn.uc, std::move(read));
}

void DemuxProcess::RejectConnection(ProcessContext& ctx, ConnState& conn, int status,
                                    const std::string& reason) {
  ++rejected_;
  // demux holds uC ⋆, so it can answer the client directly.
  Message write;
  write.type = netd_proto::kWrite;
  write.words = {0};
  write.data = BuildHttpResponse(status, reason, {}, reason + "\n");
  ctx.Send(conn.uc, std::move(write));
  Message close;
  close.type = netd_proto::kControl;
  close.words = {0, netd_proto::kControlOpClose};
  ctx.Send(conn.uc, std::move(close));
  ASB_ASSERT(ctx.SetSendLevel(conn.uc, kDefaultSendLevel) == Status::kOk);
}

void DemuxProcess::OnRequestParsed(ProcessContext& ctx, uint64_t cookie, ConnState& conn) {
  const HttpRequest& req = conn.parser.request();
  conn.service = ServiceName(req.path);
  auto wit = workers_.find(conn.service);
  if (wit == workers_.end() || !wit->second.service_port.valid()) {
    RejectConnection(ctx, conn, 404, "no such service");
    conns_.erase(cookie);
    return;
  }
  if (!ExtractCredentials(req, &conn.username, &conn.password)) {
    RejectConnection(ctx, conn, 401, "credentials required");
    conns_.erase(cookie);
    return;
  }

  if (Session* session = FindLiveSession(SessionKey(conn.username, conn.service));
      session != nullptr && session->password == conn.password) {
    conn.taint = session->taint;
    conn.grant = session->grant;
    ForwardToWorker(ctx, cookie, conn);
    return;
  }

  // First contact (or changed credentials): authenticate via idd (step 3).
  conn.awaiting_login = true;
  Message login;
  login.type = MessageType::kLogin;
  login.data = conn.username + "\n" + conn.password;
  login.words = {cookie};
  login.reply_port = session_port_;
  SendArgs args;
  args.decont_send = Label({{session_port_, Level::kStar}}, Level::kL3);
  ctx.Send(idd_login_, std::move(login), args);
}

void DemuxProcess::OnLoginResult(ProcessContext& ctx, uint64_t cookie, const Message& msg) {
  auto it = conns_.find(cookie);
  if (it == conns_.end()) {
    return;
  }
  ConnState& conn = it->second;
  conn.awaiting_login = false;
  const uint64_t status = msg.words.size() > 1 ? msg.words[1] : 1;
  if (status != 0 || msg.words.size() < 5) {
    RejectConnection(ctx, conn, 403, "login failed");
    conns_.erase(it);
    return;
  }
  // idd granted us uT ⋆ and uG ⋆ (kernel applied the D_S before this
  // handler ran) and raised our receive label for uT.
  conn.taint = Handle::FromValue(msg.words[2]);
  conn.grant = Handle::FromValue(msg.words[3]);
  ForwardToWorker(ctx, cookie, conn);
}

void DemuxProcess::ForwardToWorker(ProcessContext& ctx, uint64_t cookie, ConnState& conn) {
  ctx.ChargeCycles(costs::kDemuxConnCycles);
  const WorkerInfo& worker = workers_.at(conn.service);

  if (obs::TraceRing::enabled() && ctx.current_trace_id() != 0) {
    // The dispatch decision: this connection's trace now belongs to the
    // service. Spans from user-space carry the emitter's own send label.
    obs::TraceRing::Get().Emit(ctx.current_trace_id(), "demux", "demux.dispatch",
                               "service=" + conn.service + " user=" + conn.username,
                               ctx.send_label());
  }

  // Step 5: grant netd uT ⋆ for this connection; netd raises its receive
  // label and the connection port's label so u-tainted data can flow out.
  {
    Message add_taint;
    add_taint.type = netd_proto::kAddTaint;
    add_taint.words = {cookie, conn.taint.value()};
    SendArgs args;
    args.decont_send = Label({{conn.taint, Level::kStar}}, Level::kL3);
    ctx.Send(conn.uc, std::move(add_taint), args);
  }

  // Step 6: forward uC. An existing session goes straight to the worker's
  // event process port uW; a fresh one — or a session recovered from the
  // durable store, whose uW died with the previous boot — goes to the
  // service port, forking a new event process.
  Session* session = FindLiveSession(SessionKey(conn.username, conn.service));
  const bool resumed =
      session != nullptr && session->password == conn.password && session->uw.valid();
  const Handle target = resumed ? session->uw : worker.service_port;

  Message fwd;
  fwd.type = MessageType::kConnForUser;
  fwd.data = conn.username;
  fwd.words = {cookie, conn.uc.value(), conn.taint.value(), conn.grant.value()};
  SendArgs args;
  Label grants({{conn.uc, Level::kStar},
                {conn.grant, Level::kStar},
                {session_port_, Level::kStar}},
               Level::kL3);
  if (worker.declassifier) {
    // §7.6: declassifiers get uT ⋆ instead of the uT 3 contamination.
    grants.Set(conn.taint, Level::kStar);
  } else {
    args.contaminate = Label({{conn.taint, Level::kL3}}, Level::kStar);
  }
  args.decont_send = grants;
  args.decont_receive = Label({{conn.taint, Level::kL3}}, Level::kStar);
  ctx.Send(target, std::move(fwd), args);

  // The connection now belongs to the worker: release our uC capability
  // (paper §9.3 — capabilities are released when the connection is passed
  // to an event process). The sends above snapshotted their ES already.
  ASB_ASSERT(ctx.SetSendLevel(conn.uc, kDefaultSendLevel) == Status::kOk);

  if (resumed) {
    conns_.erase(cookie);  // nothing more to track; the worker has it
  }
  // For fresh sessions the ConnState stays until kSessionReg claims it.
}

void DemuxProcess::CheckAllWorkersRegistered(ProcessContext& ctx) {
  if (!expectations_complete_ || ready_sent_) {
    return;
  }
  for (const auto& [service, info] : workers_) {
    if (!info.service_port.valid()) {
      return;
    }
  }
  ready_sent_ = true;
  Message ready;
  ready.type = boot_proto::kReady;
  ready.data = "demux";
  ctx.Send(launcher_port_, std::move(ready));
}

void DemuxProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (repl_ != nullptr && repl_->HandleMessage(ctx, msg)) {
    return;  // replication-plane traffic (listener replies, follower acks)
  }
  if (msg.port == wire_port_) {
    if (msg.type == MessageType::kExpectWorker && msg.words.size() >= 2) {
      WorkerInfo info;
      info.service = msg.data;
      info.verify_value = msg.words[0];
      info.declassifier = msg.words[1] != 0;
      workers_[info.service] = info;
    } else if (msg.type == boot_proto::kWire && msg.data == "expectations-complete") {
      expectations_complete_ = true;
      CheckAllWorkersRegistered(ctx);
    }
    return;
  }

  if (msg.port == register_port_) {
    if (msg.type != MessageType::kWorkerRegister || msg.words.empty()) {
      return;
    }
    auto it = workers_.find(msg.data);
    if (it == workers_.end()) {
      return;  // not a service the launcher announced
    }
    // §7.1: the worker proves it is the process the launcher started by
    // presenting its verification handle at level 0.
    if (!LevelLeq(msg.verify.Get(Handle::FromValue(it->second.verify_value)), Level::kL0)) {
      if (obs::ProvenanceLedger::enabled()) {
        const Handle wv = Handle::FromValue(it->second.verify_value);
        obs::ProvenanceLedger::Get().RecordRefusal(
            "demux.register", "demux",
            "worker for '" + it->first + "' lacks its verification handle at 0 (§7.1)",
            wv.value(), msg.verify.Get(wv), Level::kL0, msg.verify,
            Label({{wv, Level::kL0}}, Level::kL3), msg.trace_id);
      }
      return;
    }
    it->second.service_port = Handle::FromValue(msg.words[0]);
    ctx.ModelHeapBytes(64);
    CheckAllWorkersRegistered(ctx);
    return;
  }

  if (msg.port == notify_port_) {
    switch (msg.type) {
      case netd_proto::kNotifyConn: {
        if (msg.words.empty()) {
          return;
        }
        const uint64_t cookie = next_cookie_++;
        ConnState conn;
        conn.uc = Handle::FromValue(msg.words[0]);
        auto [it, inserted] = conns_.emplace(cookie, std::move(conn));
        ASB_ASSERT(inserted);
        SendPeekRead(ctx, cookie, it->second);
        return;
      }
      case netd_proto::kReadR: {
        if (msg.words.size() < 2) {
          return;
        }
        const uint64_t cookie = msg.words[0];
        const bool eof = msg.words[1] != 0;
        auto it = conns_.find(cookie);
        if (it == conns_.end()) {
          return;
        }
        ConnState& conn = it->second;
        ctx.ChargeCycles(msg.data.size() * costs::kDemuxByteCycles);
        conn.bytes_seen += msg.data.size();
        conn.parser.Feed(msg.data);
        if (conn.parser.state() == HttpRequestParser::State::kComplete) {
          OnRequestParsed(ctx, cookie, conn);
        } else if (conn.parser.state() == HttpRequestParser::State::kError || eof) {
          RejectConnection(ctx, conn, 400, "bad request");
          conns_.erase(it);
        } else {
          SendPeekRead(ctx, cookie, conn);  // wait for more bytes
        }
        return;
      }
      case netd_proto::kListenR:
      case netd_proto::kWriteR:
      case netd_proto::kControlR:
      case netd_proto::kAddTaintR:
        return;  // acknowledgements we do not act on
      default:
        return;
    }
  }

  if (msg.port == session_port_) {
    switch (msg.type) {
      case MessageType::kLoginR: {
        if (!msg.words.empty()) {
          OnLoginResult(ctx, msg.words[0], msg);
        }
        return;
      }
      case MessageType::kSessionInvalidate: {
        // idd tells us the user's password changed: cached sessions keyed on
        // the old credential die — durably, or a reboot would resurrect a
        // session its password no longer opens. (Senders need the
        // session-port capability, so only idd and this user's own workers
        // can do this.)
        const std::string prefix = msg.data.str() + "\x1f";
        for (auto it = sessions_.lower_bound(prefix);
             it != sessions_.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
          EraseDurableSession(it->first);
          it = sessions_.erase(it);
        }
        return;
      }
      case MessageType::kSessionPark: {
        // A worker's idle event process asks to be parked: invalidate the
        // session's uW so the next connection forks a fresh event process at
        // the service port — exactly what a reboot does to uW — and ack so
        // the worker may free the EP. Senders need the session-port
        // capability, like kSessionReg.
        if (msg.words.empty()) {
          return;
        }
        const std::string& payload = msg.data.str();
        const size_t nl = payload.find('\n');
        if (nl == std::string::npos) {
          return;
        }
        auto sit = sessions_.find(
            SessionKey(payload.substr(0, nl), payload.substr(nl + 1)));
        if (sit == sessions_.end()) {
          return;  // invalidated meanwhile: no ack, the EP simply stays
        }
        const Handle old_uw = Handle::FromValue(msg.words[0]);
        if (sit->second.uw.value() == old_uw.value()) {
          sit->second.uw = Handle::Invalid();
        }
        // Always ack a live session's park, even when uW no longer matches
        // (a re-park after an aborted one): the worker frees the EP only on
        // the ack, and a swallowed ack would leak the EP forever. The
        // durable record is untouched — uW was never part of it.
        Message ack;
        ack.type = MessageType::kSessionParkR;
        ack.trace_id = msg.trace_id;
        ctx.Send(old_uw, std::move(ack));
        // Release the retired uW's capability (§9.3, like uC above): the
        // resume mints a fresh uW whose kSessionReg re-grants ⋆, so a kept
        // entry would only grow demux's send label with every park ever
        // acked. The ack's effective label was snapshotted at the Send.
        (void)ctx.SetSendLevel(old_uw, kDefaultSendLevel);
        return;
      }
      case MessageType::kSessionReg: {
        if (msg.words.size() < 2) {
          return;
        }
        const uint64_t cookie = msg.words[0];
        auto it = conns_.find(cookie);
        if (it == conns_.end()) {
          return;  // unknown/forged cookie: ignored
        }
        ConnState& conn = it->second;
        Session s;
        s.uw = Handle::FromValue(msg.words[1]);
        s.taint = conn.taint;
        s.grant = conn.grant;
        s.password = conn.password;
        if (options_.session_ttl_cycles != 0) {
          s.expires_at_cycles = GetCycleAccounting().now() + options_.session_ttl_cycles;
        }
        const std::string key = SessionKey(conn.username, conn.service);
        PersistSession(key, s);
        // Read-your-writes token: the shard's WAL position right after this
        // registration's append — the cursor a follower must have applied
        // before it may answer reads for this session. In-memory only: the
        // durable value format (and thus fig-level byte identity) is
        // untouched, and a reboot re-stamps at the next write.
        if (repl_ != nullptr && repl_->hub() != nullptr && store_ != nullptr) {
          const uint32_t shard = store_->ShardIndexOf(key);
          s.cursor.source_id = repl_->hub()->source_id();
          s.cursor.shard = shard;
          s.cursor.generation = store_->shard_wal_generation(shard);
          s.cursor.offset = store_->shard_wal_offset(shard);
        }
        // §7.3: the session table holds one user-worker pair per entry;
        // paper Figure 9 attributes part of the label growth to these. A
        // re-registration (park/resume cycle, post-reboot recovery) reuses
        // the existing entry and must not charge it twice.
        if (sessions_.find(key) == sessions_.end()) {
          ctx.ModelHeapBytes(128);
        }
        sessions_[key] = std::move(s);
        conns_.erase(it);
        return;
      }
      default:
        return;
    }
  }
}

}  // namespace asbestos
