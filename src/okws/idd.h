// idd: the OKWS identity server (paper §7.4).
//
// Associates persistent user identification (username, password, user ID,
// stored in the password table through ok-dbproxy's privileged port) with
// the per-boot taint and grant handles uT and uG. On a successful login it
// grants the caller both handles at ⋆ and raises the caller's receive label
// for uT (D_R), and teaches ok-dbproxy the binding (kBind). Handles are
// cached forever ("never cleans its cache"); only first-time logins touch
// the database.
//
// Persistence (src/store): with a store directory configured, every
// username → (uT, uG, user id, password) binding is logged durably and
// recovered on restart, making uT/uG effectively boot-stable: the handle
// values come from the kernel's Feistel-encrypted counter, so as long as the
// machine reboots with the same boot key they remain unique and
// unpredictable, and a recovered idd can keep honoring them without
// re-minting. Privilege does not recover by itself — the ⋆ idd held for
// each uT/uG died with the old boot — so the trusted boot chain re-grants
// it: the boot loader reads the store (RecoveredStars), folds the ⋆ set
// into the launcher's send label, and the launcher passes it down when
// spawning idd (§5.3: privilege is distributed by forking).
#ifndef SRC_OKWS_IDD_H_
#define SRC_OKWS_IDD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/binding_table.h"
#include "src/kernel/kernel.h"
#include "src/okws/protocol.h"
#include "src/replication/endpoint.h"
#include "src/store/store.h"

namespace asbestos {

struct IddOptions {
  std::string store_dir;  // empty = volatile cache, as in the seed
  // Shard count for a store created at store_dir; existing stores keep the
  // count stamped at creation (see StoreOptions::shards). Bindings append
  // without fsyncing and are group-committed by the end-of-pump OnIdle hook.
  uint32_t shards = 4;
  // WAL shipping of the identity cache to followers (src/replication).
  // Requires store_dir. The launcher wires netd's control port to idd (kWire
  // "netd") once both are up, and the world must authorize idd's listener
  // with netd via one of the "repl_verify*" envs.
  ReplicationOptions replication;
};

class IddProcess : public ProcessCode {
 public:
  // `extra_tables` are privileged CREATE TABLE statements run at seeding
  // time (worker tables gain their hidden USER_ID column in ok-dbproxy).
  explicit IddProcess(std::vector<UserCred> users, std::vector<std::string> extra_tables = {},
                      IddOptions options = {});

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit, pipelined: hands every shard dirtied during this pump
  // iteration to the background flusher (ack deferred one pump; see
  // DurableStore::SyncPipelined for the two-batch crash window).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  // The ⋆ entries a recovered cache needs: {uT ⋆, uG ⋆, …} over every stored
  // identity, default 3. The boot loader folds this into the launcher's send
  // label so the launcher is entitled to grant it to idd at spawn. Takes the
  // full options (not just the dir) because this transient open is the FIRST
  // open of a fresh boot: it must request the same shard count idd will, or
  // it would stamp the store with the wrong layout.
  static Label RecoveredStars(const IddOptions& options);
  // Same, computed from this instance's already-recovered cache.
  Label recovered_stars() const;

  Handle login_port() const { return login_port_; }
  size_t cached_identities() const { return cache_.size(); }
  // Test/observability accessor for a cached binding's handle values.
  bool LookupCachedIdentity(const std::string& username, Handle* taint, Handle* grant,
                            int64_t* user_id) const;
  const DurableStore* store() const { return store_.get(); }
  const ReplicationEndpoint* replication() const { return repl_.get(); }

 private:
  // (uT, uG, user_id); the verified password rides the table's aux slot.
  using CachedId = BindingTable::Entry;

  struct PendingLogin {
    std::string username;
    std::string password;
    Handle reply;
    uint64_t caller_cookie = 0;
    // Accumulated DB reply: (password, user_id) when the row arrived.
    bool row_seen = false;
    std::string db_password;
    int64_t db_user_id = 0;
  };

  void BeginSeeding(ProcessContext& ctx);
  // Phase 2 of seeding, once the password table's CREATE and the row probe
  // both resolved: `fresh` means the probe saw an EMPTY table and the user
  // rows must be inserted. A persistent dbproxy that recovered its rows
  // already holds them (re-inserting would duplicate every row on every
  // reboot); probing actual rows — rather than trusting the CREATE's
  // kAlreadyExists — also reseeds a table whose schema record was flushed
  // by a crash before its first row batch was.
  void ContinueSeeding(ProcessContext& ctx, bool fresh);
  void HandleLogin(ProcessContext& ctx, const Message& msg);
  void HandleChangePw(ProcessContext& ctx, const Message& msg);
  void FinishLogin(ProcessContext& ctx, uint64_t qid, PendingLogin& p);
  void GrantIdentity(ProcessContext& ctx, const CachedId& id, Handle reply, uint64_t cookie);
  void ReplyLoginFailed(ProcessContext& ctx, Handle reply, uint64_t cookie);
  void SendPrivQuery(ProcessContext& ctx, uint64_t qid, const std::string& sql);
  void PersistIdentity(const std::string& username, const CachedId& id,
                       const std::string& password);
  void RecoverCache();
  void SendBind(ProcessContext& ctx, const CachedId& id, const std::string& username);

  std::vector<UserCred> users_;
  std::vector<std::string> extra_tables_;
  Handle login_port_;
  Handle wire_port_;
  Handle launcher_port_;
  Handle dbpriv_port_;
  Handle demux_session_port_;  // learned from login replies; for invalidations
  // username → handles + user id, password interned alongside: one flat
  // table in place of the former cache_/passwords_/user_ids_ map trio
  // (user_ids_ was write-only and is simply gone).
  BindingTable cache_;
  std::map<uint64_t, PendingLogin> pending_;   // by private query cookie
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<ReplicationEndpoint> repl_;
  uint64_t next_qid_ = 1;
  uint64_t seed_outstanding_ = 0;
  uint64_t seed_create_qid_ = 0;  // the password-table CREATE's query id
  uint64_t seed_probe_qid_ = 0;   // the row-existence probe's query id
  bool seed_probe_sent_ = false;
  bool seed_probe_row_seen_ = false;
  bool seed_phase2_sent_ = false;
  bool seeded_ = false;
};

}  // namespace asbestos

#endif  // SRC_OKWS_IDD_H_
