// idd: the OKWS identity server (paper §7.4).
//
// Associates persistent user identification (username, password, user ID,
// stored in the password table through ok-dbproxy's privileged port) with
// the per-boot taint and grant handles uT and uG. On a successful login it
// grants the caller both handles at ⋆ and raises the caller's receive label
// for uT (D_R), and teaches ok-dbproxy the binding (kBind). Handles are
// cached forever ("never cleans its cache"); only first-time logins touch
// the database.
#ifndef SRC_OKWS_IDD_H_
#define SRC_OKWS_IDD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/okws/protocol.h"

namespace asbestos {

class IddProcess : public ProcessCode {
 public:
  // `extra_tables` are privileged CREATE TABLE statements run at seeding
  // time (worker tables gain their hidden USER_ID column in ok-dbproxy).
  explicit IddProcess(std::vector<UserCred> users, std::vector<std::string> extra_tables = {})
      : users_(std::move(users)), extra_tables_(std::move(extra_tables)) {}

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  Handle login_port() const { return login_port_; }
  size_t cached_identities() const { return cache_.size(); }

 private:
  struct CachedId {
    Handle taint;
    Handle grant;
    int64_t user_id = 0;
  };

  struct PendingLogin {
    std::string username;
    std::string password;
    Handle reply;
    uint64_t caller_cookie = 0;
    // Accumulated DB reply: (password, user_id) when the row arrived.
    bool row_seen = false;
    std::string db_password;
    int64_t db_user_id = 0;
  };

  void BeginSeeding(ProcessContext& ctx);
  void HandleLogin(ProcessContext& ctx, const Message& msg);
  void HandleChangePw(ProcessContext& ctx, const Message& msg);
  void FinishLogin(ProcessContext& ctx, uint64_t qid, PendingLogin& p);
  void GrantIdentity(ProcessContext& ctx, const CachedId& id, Handle reply, uint64_t cookie);
  void ReplyLoginFailed(ProcessContext& ctx, Handle reply, uint64_t cookie);
  void SendPrivQuery(ProcessContext& ctx, uint64_t qid, const std::string& sql);

  std::vector<UserCred> users_;
  std::vector<std::string> extra_tables_;
  Handle login_port_;
  Handle wire_port_;
  Handle launcher_port_;
  Handle dbpriv_port_;
  Handle demux_session_port_;  // learned from login replies; for invalidations
  std::map<std::string, CachedId> cache_;
  std::map<std::string, std::string> passwords_;  // verified copies, kept current
  std::map<std::string, int64_t> user_ids_;    // assigned at seeding time
  std::map<uint64_t, PendingLogin> pending_;   // by private query cookie
  uint64_t next_qid_ = 1;
  uint64_t seed_outstanding_ = 0;
  bool seeded_ = false;
};

}  // namespace asbestos

#endif  // SRC_OKWS_IDD_H_
