// Shared codec + liveness rule for the demux session table's durable
// records.
//
// The primary's demux and a read-serving follower must agree on two things
// byte-for-byte: the session value format (the follower ships the primary's
// WAL verbatim, so a format skew would misread every record) and the lazy
// expiry comparison (FindLiveSession drops a session exactly when
// `expires_at != 0 && expires_at <= now`; a follower answering reads over
// the replicated session store must refuse by the SAME comparison, or a
// read could resurrect a session the primary already considers dead).
// Keeping the codec and the rule in one translation unit — used by demux on
// the primary and handed to FollowerProcess::set_read_liveness_filter on
// followers — makes the "identical" claim structural instead of aspirational.
#ifndef SRC_OKWS_SESSION_CODEC_H_
#define SRC_OKWS_SESSION_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/labels/handle.h"
#include "src/replication/read_gate.h"

namespace asbestos {
namespace okws_session {

// (user, service) → session-table key. "\x1f" (ASCII unit separator) cannot
// appear in a parsed username or service name, so the key is unambiguous.
std::string Key(const std::string& user, const std::string& service);

// Durable session record value: varint uT, varint uG, varint expiry,
// length-prefixed password. uW is deliberately NOT stored — the worker
// event process it names dies with the boot, and a recovered session's
// first connection forks a fresh one.
std::string EncodeValue(Handle taint, Handle grant, uint64_t expires_at,
                        const std::string& password);
bool DecodeValue(std::string_view value, Handle* taint, Handle* grant,
                 uint64_t* expires_at, std::string* password);

// THE lazy-expiry comparison, shared verbatim by the primary's
// FindLiveSession and the follower's read filter. 0 = never expires.
bool ExpiredAt(uint64_t expires_at_cycles, uint64_t now);

// Follower-side admission for reads over a replicated session store:
// decode, then ExpiredAt against the follower's current virtual time.
// Undecodable records are refused — fail closed, like recovery skipping
// records this build cannot parse.
ReadLivenessFilter LivenessFilter();

}  // namespace okws_session
}  // namespace asbestos

#endif  // SRC_OKWS_SESSION_CODEC_H_
