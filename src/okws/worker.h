// OKWS workers (paper §7.2-7.3): untrusted, service-specific processes that
// enter the event realm at startup so that each user's session lives in its
// own event process.
//
// The framework handles the per-request protocol — reading the request from
// netd, database round-trips through ok-dbproxy (with the right V labels),
// responding, closing the connection, registering sessions with ok-demux —
// while a Service supplies the application logic. Session data lives in the
// event process's *simulated memory* state page (so the Figure 6 memory
// numbers are real COW pages), and per-request scratch is written to a
// scratch region that is ep_clean()ed before yielding, exactly the §7.3
// discipline. Setting clean_after_request = false reproduces the paper's
// worst-case "active session" measurement.
#ifndef SRC_OKWS_WORKER_H_
#define SRC_OKWS_WORKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/sql_value.h"
#include "src/http/http.h"
#include "src/kernel/kernel.h"
#include "src/okws/protocol.h"

namespace asbestos {

class WorkerProcess;

// Per-request interface handed to services.
class ServiceContext {
 public:
  const std::string& username() const;
  const HttpRequest& request() const;
  bool is_declassifier() const;

  // Session state: persisted in the event process's private state page and
  // restored on the next request of the same session.
  const std::string& session_data() const;
  void set_session_data(std::string data);

  // Per-request scratch the service may accumulate into (e.g. SELECT rows).
  std::string& scratch();

  // Issues a query through ok-dbproxy; rows/completion arrive via
  // Service::OnDbRow / OnDbDone with the returned id. `flags` are
  // dbproxy_proto flags (kFlagDeclassify requires declassifier privilege).
  uint64_t DbQuery(const std::string& sql, uint64_t flags = 0);

  // Asks idd to change the user's password (proves uG via V).
  void ChangePassword(const std::string& old_pw, const std::string& new_pw);

  // Completes the request. Exactly one Respond per request.
  void Respond(int status, std::string_view body);

  // --- Compromise modelling ---------------------------------------------------
  // A compromised worker runs arbitrary code with the worker's kernel
  // context; isolation tests model that by reaching past the framework.
  // The kernel's label checks — not this interface — are the security
  // boundary (§7.8: workers are untrusted).
  ProcessContext& kernel_context() { return *ctx_; }
  // The current request's connection port value (uC).
  uint64_t connection_port_value() const;

 private:
  friend class WorkerProcess;
  ServiceContext(WorkerProcess* worker, ProcessContext* ctx, EpId ep)
      : worker_(worker), ctx_(ctx), ep_(ep) {}

  WorkerProcess* worker_;
  ProcessContext* ctx_;
  EpId ep_;
};

class Service {
 public:
  virtual ~Service() = default;
  virtual void OnRequest(ServiceContext& sc) = 0;
  virtual void OnDbRow(ServiceContext& sc, uint64_t qid, const std::vector<SqlValue>& row) {
    (void)sc;
    (void)qid;
    (void)row;
  }
  virtual void OnDbDone(ServiceContext& sc, uint64_t qid, Status status, uint64_t rows_affected) {
    (void)sc;
    (void)qid;
    (void)status;
    (void)rows_affected;
  }
  // Result of a ChangePassword call.
  virtual void OnPasswordChanged(ServiceContext& sc, Status status) {
    (void)sc;
    (void)status;
  }
};

struct WorkerOptions {
  bool clean_after_request = true;  // false reproduces Fig. 6 "active sessions"
  // Million-compartment scale: after a response with no queued connection the
  // worker asks demux to park the session (kSessionPark) and frees the event
  // process on the ack, keeping only a compact {username → session blob}
  // record. The next connection of the session forks a fresh event process at
  // the service port — exactly the path a durably recovered session takes —
  // and resumes from the record, so an idle user costs bytes, not an EP.
  bool park_idle_sessions = false;
};

class WorkerProcess : public ProcessCode {
 public:
  WorkerProcess(std::string service_name, std::unique_ptr<Service> service,
                WorkerOptions options = WorkerOptions());
  ~WorkerProcess() override;

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  size_t parked_session_count() const { return parked_.size(); }

 private:
  friend class ServiceContext;

  struct InFlight {
    uint64_t demux_cookie = 0;
    Handle uc;
    Handle taint;   // uT (value only; privilege is in the EP's labels)
    Handle grant;   // uG
    Handle uw;
    std::string username;
    HttpRequestParser parser;
    std::string session_blob;
    std::string scratch_text;
    uint64_t request_bytes = 0;
    uint64_t next_qid = 1;
    bool responded = false;
    bool declassifier = false;
    // Flow-trace id of this request, captured from the kConnForUser
    // envelope. Stored because a queued connection is re-dispatched from
    // FinishRequest, where the kernel's current trace is the FINISHING
    // request's — inheriting it would fuse two requests into one trace.
    uint64_t trace_id = 0;
  };

  void OnConnForUser(ProcessContext& ctx, const Message& msg);
  void OnReadReply(ProcessContext& ctx, const Message& msg);
  void OnParkAck(ProcessContext& ctx);
  // Creates (or refreshes) the compact park record and keeps the global
  // SessionParkStats byte accounting in step.
  void StageParkRecord(const std::string& username, const std::string& blob);
  // Consumes the record for `username` into `blob`; false when absent.
  bool TakeParkRecord(const std::string& username, std::string* blob);
  void SendRead(ProcessContext& ctx, InFlight& rq);
  void FinishRequest(ProcessContext& ctx, InFlight& rq, int status, std::string_view body);
  void SaveStatePage(ProcessContext& ctx, const InFlight& rq);
  bool LoadStatePage(ProcessContext& ctx, Handle* uw, std::string* username,
                     std::string* blob);

  InFlight* Current(EpId ep);

  std::string service_name_;
  std::unique_ptr<Service> service_;
  WorkerOptions options_;

  Handle session_port_;  // demux's, from env (capability granted per conn)
  Handle dbproxy_port_;
  Handle idd_login_;

  uint64_t state_addr_ = 0;
  uint64_t scratch_addr_ = 0;
  uint64_t stats_addr_ = 0;  // per-request counters ("modified globals")
  static constexpr uint64_t kScratchPages = 8;

  std::map<EpId, InFlight> in_flight_;
  // Connections that arrived for a session while it was mid-request.
  std::map<EpId, std::deque<Message>> pending_conns_;
  // Parked sessions: username → session blob. Staged when the park request
  // is SENT (not when acked), so a connection racing past the park — demux
  // already invalidated uW, the ack not yet processed — still resumes with
  // the right state in its fresh event process.
  std::map<std::string, std::string> parked_;
  int64_t park_accounted_bytes_ = 0;  // our share of SessionParkStats.live_bytes
};

}  // namespace asbestos

#endif  // SRC_OKWS_WORKER_H_
