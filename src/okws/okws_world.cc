#include "src/okws/okws_world.h"

#include "src/base/strings.h"

namespace asbestos {

OkwsWorld::OkwsWorld(OkwsWorldConfig config) : kernel_(config.boot_key) {
  // Boot the launcher first: it mints the verification handles, including
  // the one netd uses to authenticate LISTEN requests from ok-demux.
  bool any_service_parks = false;
  for (const OkwsServiceSpec& service : config.services) {
    if (service.worker_options.park_idle_sessions) {
      any_service_parks = true;
      break;
    }
  }
  OkwsLauncherConfig launcher_config;
  launcher_config.tcp_port = config.tcp_port;
  launcher_config.services = std::move(config.services);
  launcher_config.users = std::move(config.users);
  launcher_config.extra_tables = std::move(config.extra_tables);
  launcher_config.idd_options = config.idd_options;
  launcher_config.demux_options = config.demux_options;
  launcher_config.dbproxy_options = config.dbproxy_options;
  auto launcher_code = std::make_unique<LauncherProcess>(std::move(launcher_config));
  launcher_ = launcher_code.get();
  SpawnArgs largs;
  largs.name = "launcher";
  largs.component = Component::kOther;
  if (!config.idd_options.store_dir.empty()) {
    // The boot loader seeds the launcher with ⋆ for every uT/uG recovered
    // from idd's durable cache, making it entitled to re-grant them at
    // spawn. This is the root of the durable trust chain: only the trusted
    // boot path may resurrect privilege, exactly as it assigns labels
    // verbatim at boot. (This transient open duplicates the recovery idd's
    // own constructor performs; boot-time only, and bounded by compaction.)
    const Label stars = IddProcess::RecoveredStars(config.idd_options);
    for (Label::EntryIter it = stars.IterateEntries(); !it.done(); it.Advance()) {
      if (it.level() == Level::kStar) {
        largs.send_label.Set(it.handle(), Level::kStar);
        // The generator must never re-issue a recovered uT/uG this boot.
        kernel_.ReserveRecoveredHandle(it.handle());
      }
    }
  }
  launcher_pid_ = kernel_.CreateProcess(std::move(launcher_code), std::move(largs));

  // netd is a system component created by the boot loader (paper Fig. 1),
  // told which process may attach listeners.
  auto netd_code = std::make_unique<NetdProcess>(&net_);
  netd_ = netd_code.get();
  if (any_service_parks) {
    // Parking mints a fresh uW per resume; netd must shed retired reply
    // capabilities or its send label grows with every resume (§9.3).
    netd_code->set_release_reply_caps(true);
  }
  SpawnArgs nargs;
  nargs.name = "netd";
  nargs.component = Component::kNetwork;
  nargs.env = {{"demux_verify", launcher_->demux_verify_value()}};
  if (config.idd_options.replication.enabled()) {
    // idd's replication endpoint attaches its own listener; netd must
    // recognize idd's verification handle alongside demux's.
    nargs.env["repl_verify"] = launcher_->verify_value("idd");
  }
  if (config.dbproxy_options.replication.enabled()) {
    // Likewise for ok-dbproxy's table-store endpoint (second slot — netd
    // collects every "repl_verify*" key).
    nargs.env["repl_verify2"] = launcher_->verify_value("dbproxy");
  }
  netd_pid_ = kernel_.CreateProcess(std::move(netd_code), std::move(nargs));

  // Tell the launcher where netd's control port is.
  kernel_.WithProcessContext(launcher_pid_, [&](ProcessContext& ctx) {
    launcher_->ProvideNetd(ctx, netd_->control_port().value());
  });
}

DemuxProcess* OkwsWorld::demux() {
  Process* p = kernel_.FindProcessByName("demux");
  return p == nullptr ? nullptr : dynamic_cast<DemuxProcess*>(p->code.get());
}

void OkwsWorld::Pump() {
  kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
  kernel_.RunUntilIdle();
}

void OkwsWorld::PumpUntilReady() {
  for (int i = 0; i < 10000 && !launcher_->ready(); ++i) {
    Pump();
  }
  ASB_ASSERT(launcher_->ready() && "OKWS failed to boot");
}

void OkwsWorld::RunClient(HttpLoadClient* client) {
  uint64_t last_progress = ~0ULL;
  int stagnant = 0;
  while (!client->idle()) {
    client->Step();
    Pump();
    const uint64_t progress =
        kernel_.stats().deliveries + client->results().size() + client->failures();
    if (progress == last_progress) {
      if (++stagnant > 1000) {
        break;  // wedged: let the caller's assertions report what is missing
      }
    } else {
      stagnant = 0;
      last_progress = progress;
    }
  }
}

std::string OkwsWorld::MakeRequest(const std::string& target, const std::string& user,
                                   const std::string& pass) {
  return StrFormat(
      "GET %s HTTP/1.0\r\nAuthorization: %s:%s\r\nUser-Agent: loadgen\r\n\r\n",
      target.c_str(), user.c_str(), pass.c_str());
}

}  // namespace asbestos
