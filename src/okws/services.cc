#include "src/okws/services.h"

#include "src/base/strings.h"
#include "src/db/dbproxy.h"

namespace asbestos {

namespace {

std::string SqlQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

}  // namespace

// --- EchoService -----------------------------------------------------------------

void EchoService::OnRequest(ServiceContext& sc) {
  uint64_t n = 11;  // paper default: 144-byte responses, 133 bytes of headers
  const std::string param = sc.request().Query("n");
  if (!param.empty()) {
    ParseUint64(param, &n);
    n = std::min<uint64_t>(n, 1 << 20);
  }
  sc.Respond(200, std::string(n, 'x'));
}

// --- StorageService --------------------------------------------------------------

void StorageService::OnRequest(ServiceContext& sc) {
  // Return what the previous request stored, then store this request's data
  // (the paper's toy session workload).
  std::string previous = sc.session_data();
  const std::string incoming = sc.request().Query("d");
  if (!incoming.empty()) {
    sc.set_session_data(incoming);
  }
  if (previous.size() < kResponseSize) {
    previous.resize(kResponseSize, '.');
  }
  sc.Respond(200, previous);
}

// --- NotesService ----------------------------------------------------------------

constexpr char NotesService::kTableSql[];

void NotesService::OnRequest(ServiceContext& sc) {
  const std::string op = sc.request().Query("op");
  if (op == "add") {
    const std::string text = sc.request().Query("text");
    sc.DbQuery("INSERT INTO notes (text) VALUES (" + SqlQuote(text) + ")");
    return;  // respond on completion
  }
  if (op == "list") {
    sc.scratch().clear();
    sc.DbQuery("SELECT text FROM notes");
    return;
  }
  sc.Respond(400, "unknown op");
}

void NotesService::OnDbRow(ServiceContext& sc, uint64_t qid, const std::vector<SqlValue>& row) {
  (void)qid;
  // Only this user's rows ever arrive: other users' rows were dropped by
  // the kernel's label check on their taints.
  if (!row.empty()) {
    sc.scratch() += row[0].AsText();
    sc.scratch() += "\n";
  }
}

void NotesService::OnDbDone(ServiceContext& sc, uint64_t qid, Status status,
                            uint64_t rows_affected) {
  (void)qid;
  if (status != Status::kOk) {
    sc.Respond(500, StrFormat("db error: %s", StatusString(status)));
    return;
  }
  if (sc.request().Query("op") == "add") {
    sc.Respond(200, StrFormat("added %llu", static_cast<unsigned long long>(rows_affected)));
  } else {
    sc.Respond(200, sc.scratch());
  }
}

// --- ProfileService (declassifier) --------------------------------------------------

constexpr char ProfileService::kTableSql[];

void ProfileService::OnRequest(ServiceContext& sc) {
  const std::string op = sc.request().Query("op");
  if (op == "set") {
    if (!sc.is_declassifier()) {
      sc.Respond(403, "not a declassifier");
      return;
    }
    // Publish: the declassify flag makes ok-dbproxy stamp USER_ID = 0, so
    // the row comes back untainted for everyone (§7.6).
    const std::string text = sc.request().Query("text");
    sc.DbQuery("INSERT INTO profiles (username, text) VALUES (" + SqlQuote(sc.username()) +
                   ", " + SqlQuote(text) + ")",
               dbproxy_proto::kFlagDeclassify);
    return;
  }
  if (op == "get") {
    std::string who = sc.request().Query("who");
    if (who.empty()) {
      who = sc.username();
    }
    sc.scratch().clear();
    sc.DbQuery("SELECT text FROM profiles WHERE username = " + SqlQuote(who));
    return;
  }
  sc.Respond(400, "unknown op");
}

void ProfileService::OnDbRow(ServiceContext& sc, uint64_t qid, const std::vector<SqlValue>& row) {
  (void)qid;
  if (!row.empty()) {
    // Later rows overwrite earlier ones: the newest published profile wins.
    sc.scratch() = row[0].AsText();
  }
}

void ProfileService::OnDbDone(ServiceContext& sc, uint64_t qid, Status status,
                              uint64_t rows_affected) {
  (void)qid;
  (void)rows_affected;
  if (status != Status::kOk) {
    sc.Respond(500, StrFormat("db error: %s", StatusString(status)));
    return;
  }
  if (sc.request().Query("op") == "set") {
    sc.Respond(200, "published");
  } else if (sc.scratch().empty()) {
    sc.Respond(404, "no profile");
  } else {
    sc.Respond(200, sc.scratch());
  }
}

// --- PasswdService ----------------------------------------------------------------

void PasswdService::OnRequest(ServiceContext& sc) {
  const std::string old_pw = sc.request().Query("old");
  const std::string new_pw = sc.request().Query("new");
  if (new_pw.empty()) {
    sc.Respond(400, "new password required");
    return;
  }
  sc.ChangePassword(old_pw, new_pw);
}

void PasswdService::OnPasswordChanged(ServiceContext& sc, Status status) {
  if (status == Status::kOk) {
    sc.Respond(200, "password changed");
  } else {
    sc.Respond(403, "password change refused");
  }
}

}  // namespace asbestos
