#include "src/okws/worker.h"

#include <cstring>

#include "src/base/strings.h"
#include "src/db/dbproxy.h"
#include "src/db/sql_parser.h"
#include "src/kernel/memstats.h"
#include "src/net/netd.h"
#include "src/obs/trace.h"
#include "src/sim/costs.h"

namespace asbestos {

using okws_proto::MessageType;

namespace {

// State-page layout: [u32 flag][u64 uW][u16 ulen][user][u32 blen][blob].
constexpr uint64_t kStateHeader = 4 + 8 + 2;
constexpr uint64_t kMaxUsername = 255;
constexpr uint64_t kMaxBlob = 3072;

}  // namespace

WorkerProcess::WorkerProcess(std::string service_name, std::unique_ptr<Service> service,
                             WorkerOptions options)
    : service_name_(std::move(service_name)),
      service_(std::move(service)),
      options_(options) {}

WorkerProcess::~WorkerProcess() {
  SessionParkStats& g = MutableSessionParkStats();
  g.live_bytes -= park_accounted_bytes_;
  g.live_records -= static_cast<int64_t>(parked_.size());
}

void WorkerProcess::StageParkRecord(const std::string& username, const std::string& blob) {
  SessionParkStats& g = MutableSessionParkStats();
  const auto bytes = static_cast<int64_t>(kParkedSessionOverheadBytes + username.size() +
                                          blob.size());
  auto [it, inserted] = parked_.emplace(username, blob);
  if (inserted) {
    g.live_records += 1;
    g.live_bytes += bytes;
    park_accounted_bytes_ += bytes;
  } else {
    const auto old = static_cast<int64_t>(kParkedSessionOverheadBytes + username.size() +
                                          it->second.size());
    it->second = blob;
    g.live_bytes += bytes - old;
    park_accounted_bytes_ += bytes - old;
  }
  g.parks += 1;
}

bool WorkerProcess::TakeParkRecord(const std::string& username, std::string* blob) {
  auto it = parked_.find(username);
  if (it == parked_.end()) {
    return false;
  }
  SessionParkStats& g = MutableSessionParkStats();
  const auto bytes = static_cast<int64_t>(kParkedSessionOverheadBytes + username.size() +
                                          it->second.size());
  g.live_records -= 1;
  g.live_bytes -= bytes;
  g.resumes += 1;
  park_accounted_bytes_ -= bytes;
  *blob = std::move(it->second);
  parked_.erase(it);
  return true;
}

void WorkerProcess::Start(ProcessContext& ctx) {
  state_addr_ = ctx.AllocPages(1);
  scratch_addr_ = ctx.AllocPages(kScratchPages);
  stats_addr_ = ctx.AllocPages(1);
  session_port_ = Handle::FromValue(ctx.GetEnv("demux_session"));
  dbproxy_port_ = Handle::FromValue(ctx.GetEnv("dbproxy_query"));
  idd_login_ = Handle::FromValue(ctx.GetEnv("idd_login"));

  // The service port is closed by default; the registration grants demux ⋆
  // for it, so only demux can hand us connections.
  const Handle service_port = ctx.NewPort(Label::Top());
  Message reg;
  reg.type = MessageType::kWorkerRegister;
  reg.data = service_name_;
  reg.words = {service_port.value()};
  SendArgs args;
  // One-shot identity proof: our verification handle is still at 0 because
  // Start() runs before any receive (§7.1).
  args.verify = Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
  args.decont_send = Label({{service_port, Level::kStar}}, Level::kL3);
  ctx.Send(Handle::FromValue(ctx.GetEnv("demux_register")), std::move(reg), args);

  // From here on, every message runs inside an event process (§6.1).
  ctx.EnterEventRealm();
}

WorkerProcess::InFlight* WorkerProcess::Current(EpId ep) {
  auto it = in_flight_.find(ep);
  return it == in_flight_.end() ? nullptr : &it->second;
}

bool WorkerProcess::LoadStatePage(ProcessContext& ctx, Handle* uw, std::string* username,
                                  std::string* blob) {
  uint32_t flag = 0;
  ctx.ReadMem(state_addr_, &flag, sizeof(flag));
  if (flag == 0) {
    return false;  // the zeroed-memory newness idiom (§6.1)
  }
  uint64_t uw_value = 0;
  ctx.ReadMem(state_addr_ + 4, &uw_value, sizeof(uw_value));
  *uw = Handle::FromValue(uw_value);
  uint16_t ulen = 0;
  ctx.ReadMem(state_addr_ + 12, &ulen, sizeof(ulen));
  username->resize(std::min<uint64_t>(ulen, kMaxUsername));
  ctx.ReadMem(state_addr_ + kStateHeader, username->data(), username->size());
  uint32_t blen = 0;
  ctx.ReadMem(state_addr_ + kStateHeader + username->size(), &blen, sizeof(blen));
  blob->resize(std::min<uint64_t>(blen, kMaxBlob));
  ctx.ReadMem(state_addr_ + kStateHeader + username->size() + 4, blob->data(), blob->size());
  return true;
}

void WorkerProcess::SaveStatePage(ProcessContext& ctx, const InFlight& rq) {
  const uint32_t flag = 1;
  ctx.WriteMem(state_addr_, &flag, sizeof(flag));
  const uint64_t uw_value = rq.uw.value();
  ctx.WriteMem(state_addr_ + 4, &uw_value, sizeof(uw_value));
  const auto ulen = static_cast<uint16_t>(std::min<uint64_t>(rq.username.size(), kMaxUsername));
  ctx.WriteMem(state_addr_ + 12, &ulen, sizeof(ulen));
  ctx.WriteMem(state_addr_ + kStateHeader, rq.username.data(), ulen);
  const auto blen = static_cast<uint32_t>(std::min<uint64_t>(rq.session_blob.size(), kMaxBlob));
  ctx.WriteMem(state_addr_ + kStateHeader + ulen, &blen, sizeof(blen));
  ctx.WriteMem(state_addr_ + kStateHeader + ulen + 4, rq.session_blob.data(), blen);
}

void WorkerProcess::SendRead(ProcessContext& ctx, InFlight& rq) {
  Message read;
  read.type = netd_proto::kRead;
  read.words = {rq.demux_cookie, 0 /*all*/, 0 /*consume*/, 0};
  read.reply_port = rq.uw;
  read.trace_id = rq.trace_id;
  SendArgs args;
  // Grant netd the reply capability (paper Fig. 5 step 8: "makes a new port
  // uW and grants it to netd at level ⋆").
  args.decont_send = Label({{rq.uw, Level::kStar}}, Level::kL3);
  ctx.Send(rq.uc, std::move(read), args);
}

void WorkerProcess::OnConnForUser(ProcessContext& ctx, const Message& msg) {
  if (msg.words.size() < 4) {
    return;
  }
  if (Current(ctx.ep_id()) != nullptr) {
    // A second connection for this session arrived while a request is still
    // being served; queue it until the current one finishes.
    pending_conns_[ctx.ep_id()].push_back(msg);
    return;
  }
  InFlight rq;
  rq.demux_cookie = msg.words[0];
  rq.uc = Handle::FromValue(msg.words[1]);
  rq.taint = Handle::FromValue(msg.words[2]);
  rq.grant = Handle::FromValue(msg.words[3]);
  rq.username = msg.data;
  rq.trace_id = msg.trace_id;
  // Declassifiers hold the user's taint at ⋆ instead of carrying it at 3
  // (§7.6); the label state itself tells us which we are.
  rq.declassifier = ctx.send_label().Get(rq.taint) == Level::kStar;
  if (obs::TraceRing::enabled() && rq.trace_id != 0) {
    obs::TraceRing::Get().Emit(rq.trace_id, "worker", "worker.request",
                               service_name_ + " user=" + rq.username,
                               ctx.send_label());
  }

  Handle state_uw;
  std::string state_user;
  std::string blob;
  if (LoadStatePage(ctx, &state_uw, &state_user, &blob)) {
    rq.uw = state_uw;
    rq.session_blob = std::move(blob);
    // A park may be outstanding for this session (request sent, connection
    // raced to the old uW first). The EP is live again: consume the staged
    // record — the state page is authoritative — and re-park after this
    // request; the pending ack finds a request in flight and aborts.
    std::string stale;
    (void)TakeParkRecord(rq.username, &stale);
  } else {
    // Fresh event process: a parked session resumes from its compact record
    // — the same fork-at-the-service-port path a durably recovered session
    // takes — before the session's port is re-registered below.
    (void)TakeParkRecord(rq.username, &rq.session_blob);
    // Allocate the session's port and register it with
    // ok-demux so follow-up connections come straight to us (§7.3).
    rq.uw = ctx.NewPort(Label::Top());
    SaveStatePage(ctx, rq);
    Message reg;
    reg.type = MessageType::kSessionReg;
    reg.words = {rq.demux_cookie, rq.uw.value()};
    reg.trace_id = rq.trace_id;
    SendArgs args;
    args.decont_send = Label({{rq.uw, Level::kStar}}, Level::kL3);
    ctx.Send(session_port_, std::move(reg), args);
  }

  // Simulated stack use: the connection bookkeeping a real worker scatters
  // across its stack — two pages' worth (paper §9.1: "Two of those pages are
  // stack and exception stack pages").
  ctx.WriteMem(scratch_addr_, rq.username.data(),
               std::min<uint64_t>(rq.username.size(), kPageSize));
  const uint64_t frame_marker = rq.demux_cookie;
  ctx.WriteMem(scratch_addr_ + kPageSize - sizeof(frame_marker), &frame_marker,
               sizeof(frame_marker));
  ctx.WriteMem(scratch_addr_ + kPageSize + 64, &frame_marker, sizeof(frame_marker));

  SendRead(ctx, in_flight_[ctx.ep_id()] = std::move(rq));
}

void WorkerProcess::OnReadReply(ProcessContext& ctx, const Message& msg) {
  InFlight* rq = Current(ctx.ep_id());
  if (rq == nullptr || rq->responded) {
    return;
  }
  const bool eof = msg.words.size() > 1 && msg.words[1] != 0;
  if (!msg.data.empty()) {
    // Request bytes land in scratch, like a real parser's buffers.
    const uint64_t offset = 2 * kPageSize + (rq->request_bytes % kPageSize);
    ctx.WriteMem(scratch_addr_ + offset, msg.data.data(),
                 std::min<uint64_t>(msg.data.size(), kPageSize));
    rq->request_bytes += msg.data.size();
    rq->parser.Feed(msg.data);
  }
  if (rq->parser.state() == HttpRequestParser::State::kComplete) {
    ctx.ChargeCycles(costs::kWorkerRequestCycles);
    ServiceContext sc(this, &ctx, ctx.ep_id());
    service_->OnRequest(sc);
    return;
  }
  if (rq->parser.state() == HttpRequestParser::State::kError || eof) {
    FinishRequest(ctx, *rq, 400, "bad request");
    return;
  }
  SendRead(ctx, *rq);
}

void WorkerProcess::FinishRequest(ProcessContext& ctx, InFlight& rq, int status,
                                  std::string_view body) {
  rq.responded = true;
  std::string response =
      BuildHttpResponse(status, status == 200 ? "OK" : "Error", {{"Server", "okws-asbestos"}},
                        body);
  ctx.ChargeCycles(response.size() * costs::kWorkerByteCycles);
  // Simulated heap use: the response is assembled in one buffer and staged
  // into another, and per-request counters touch a globals page (§9.1's
  // "five comprise the modified heap and pages with modified global
  // variables" — together with the stats page below).
  ctx.WriteMem(scratch_addr_ + 4 * kPageSize, response.data(),
               std::min<uint64_t>(response.size(), kPageSize));
  ctx.WriteMem(scratch_addr_ + 5 * kPageSize, response.data(),
               std::min<uint64_t>(response.size(), kPageSize));
  uint64_t served = 0;
  ctx.ReadMem(stats_addr_, &served, sizeof(served));
  ++served;
  ctx.WriteMem(stats_addr_, &served, sizeof(served));

  if (obs::TraceRing::enabled() && rq.trace_id != 0) {
    obs::TraceRing::Get().Emit(rq.trace_id, "worker", "worker.respond",
                               "status=" + std::to_string(status), ctx.send_label());
  }
  Message write;
  write.type = netd_proto::kWrite;
  write.words = {rq.demux_cookie};
  write.data = std::move(response);  // adopt: last use of the buffer
  write.trace_id = rq.trace_id;
  ctx.Send(rq.uc, std::move(write));
  Message close;
  close.type = netd_proto::kControl;
  close.words = {rq.demux_cookie, netd_proto::kControlOpClose};
  close.trace_id = rq.trace_id;
  ctx.Send(rq.uc, std::move(close));
  // Release the connection capability (§9.3): the event process's labels
  // must not grow with every connection its session ever served.
  (void)ctx.SetSendLevel(rq.uc, kDefaultSendLevel);

  SaveStatePage(ctx, rq);
  if (options_.clean_after_request) {
    // §7.3: discard everything but the session data before yielding.
    ASB_ASSERT(ctx.EpClean(scratch_addr_, kScratchPages * kPageSize) == Status::kOk);
    ASB_ASSERT(ctx.EpClean(stats_addr_, kPageSize) == Status::kOk);
  }
  const bool consider_park = options_.park_idle_sessions;
  Handle park_uw;
  std::string park_user;
  std::string park_blob;
  uint64_t park_trace = 0;
  if (consider_park) {
    park_uw = rq.uw;
    park_user = rq.username;
    park_blob = rq.session_blob;
    park_trace = rq.trace_id;
  }
  in_flight_.erase(ctx.ep_id());  // `rq` is dangling after this line

  // Serve a connection that queued up behind this request, if any.
  auto pit = pending_conns_.find(ctx.ep_id());
  if (pit != pending_conns_.end() && !pit->second.empty()) {
    const Message next = pit->second.front();
    pit->second.pop_front();
    if (pit->second.empty()) {
      pending_conns_.erase(pit);
    }
    OnConnForUser(ctx, next);
    return;
  }

  if (consider_park) {
    // The session is idle: stage the compact record NOW (a connection that
    // races past the park resumes from it) and ask demux to retire uW. The
    // event process itself is freed only on the ack (OnParkAck), so any
    // connection already queued at uW is served first.
    StageParkRecord(park_user, park_blob);
    Message park;
    park.type = MessageType::kSessionPark;
    park.words = {park_uw.value()};
    park.data = park_user + "\n" + service_name_;
    park.trace_id = park_trace;
    ctx.Send(session_port_, std::move(park));
  }
}

void WorkerProcess::OnParkAck(ProcessContext& ctx) {
  if (Current(ctx.ep_id()) != nullptr) {
    return;  // a connection raced the park; FinishRequest will re-park
  }
  auto pit = pending_conns_.find(ctx.ep_id());
  if (pit != pending_conns_.end() && !pit->second.empty()) {
    return;  // queued work still bound to this event process
  }
  // demux invalidated uW; the staged record holds the session state. Free the
  // event process: its ports (uW) dissociate and its private pages drop.
  ctx.EpExit();
}

void WorkerProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  switch (msg.type) {
    case MessageType::kConnForUser:
      OnConnForUser(ctx, msg);
      return;
    case netd_proto::kReadR:
      OnReadReply(ctx, msg);
      return;
    case dbproxy_proto::kRow: {
      InFlight* rq = Current(ctx.ep_id());
      if (rq == nullptr) {
        return;
      }
      std::vector<SqlValue> row;
      if (!msg.words.empty() && DecodeDbRow(msg.data, &row)) {
        ServiceContext sc(this, &ctx, ctx.ep_id());
        service_->OnDbRow(sc, msg.words[0], row);
      }
      return;
    }
    case dbproxy_proto::kDone: {
      InFlight* rq = Current(ctx.ep_id());
      if (rq == nullptr || msg.words.size() < 3) {
        return;
      }
      ServiceContext sc(this, &ctx, ctx.ep_id());
      service_->OnDbDone(sc, msg.words[0], static_cast<Status>(-static_cast<int>(msg.words[1])),
                         msg.words[2]);
      return;
    }
    case MessageType::kChangePwR: {
      InFlight* rq = Current(ctx.ep_id());
      if (rq == nullptr || msg.words.size() < 2) {
        return;
      }
      ServiceContext sc(this, &ctx, ctx.ep_id());
      service_->OnPasswordChanged(sc,
                                  static_cast<Status>(-static_cast<int>(msg.words[1])));
      return;
    }
    case MessageType::kSessionParkR:
      OnParkAck(ctx);
      return;
    case netd_proto::kWriteR:
    case netd_proto::kControlR:
      return;
    default:
      return;
  }
}

// --- ServiceContext ---------------------------------------------------------------

const std::string& ServiceContext::username() const {
  return worker_->Current(ep_)->username;
}

const HttpRequest& ServiceContext::request() const {
  return worker_->Current(ep_)->parser.request();
}

bool ServiceContext::is_declassifier() const { return worker_->Current(ep_)->declassifier; }

const std::string& ServiceContext::session_data() const {
  return worker_->Current(ep_)->session_blob;
}

void ServiceContext::set_session_data(std::string data) {
  worker_->Current(ep_)->session_blob = std::move(data);
}

std::string& ServiceContext::scratch() { return worker_->Current(ep_)->scratch_text; }

uint64_t ServiceContext::connection_port_value() const {
  return worker_->Current(ep_)->uc.value();
}

uint64_t ServiceContext::DbQuery(const std::string& sql, uint64_t flags) {
  WorkerProcess::InFlight& rq = *worker_->Current(ep_);
  const uint64_t qid = rq.next_qid++;
  // Tag read-only statements so routing can tell follower-eligible traffic
  // from mutations. Classification parses the SQL: unparsable or mutating
  // statements stay untagged (dbproxy re-checks and refuses a lying tag).
  if (ClassifyReadOnlySql(sql)) {
    flags |= dbproxy_proto::kFlagReadOnly;
  }
  Message q;
  q.type = dbproxy_proto::kQuery;
  q.words = {qid, flags};
  q.data = rq.username + "\n" + sql;
  q.reply_port = rq.uw;
  q.trace_id = rq.trace_id;
  SendArgs args;
  // §7.5: prove both facts dbproxy checks — tainted by nothing but our own
  // user (uT is the only level-3 entry in V) and speaking for the user
  // (uG at 0). Declassifiers hold uT at ⋆ and prove that instead (§7.6).
  const Level taint_level = rq.declassifier ? Level::kStar : Level::kL3;
  args.verify = Label({{rq.taint, taint_level}, {rq.grant, Level::kL0}}, Level::kL2);
  args.decont_send = Label({{rq.uw, Level::kStar}}, Level::kL3);  // reply capability
  ctx_->Send(worker_->dbproxy_port_, std::move(q), args);
  return qid;
}

void ServiceContext::ChangePassword(const std::string& old_pw, const std::string& new_pw) {
  WorkerProcess::InFlight& rq = *worker_->Current(ep_);
  Message m;
  m.type = okws_proto::kChangePw;
  m.words = {rq.demux_cookie};
  m.data = rq.username + "\n" + old_pw + "\n" + new_pw;
  m.reply_port = rq.uw;
  m.trace_id = rq.trace_id;
  SendArgs args;
  args.verify = Label({{rq.grant, Level::kL0}}, Level::kL3);  // prove we speak for the user
  args.decont_send = Label({{rq.uw, Level::kStar}}, Level::kL3);
  ctx_->Send(worker_->idd_login_, std::move(m), args);
}

void ServiceContext::Respond(int status, std::string_view body) {
  WorkerProcess::InFlight* rq = worker_->Current(ep_);
  if (rq == nullptr || rq->responded) {
    return;
  }
  worker_->FinishRequest(*ctx_, *rq, status, body);
}

}  // namespace asbestos
