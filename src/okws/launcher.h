// The OKWS launcher (paper §7.1).
//
// Spawns ok-dbproxy, idd, ok-demux, and the site's workers, giving each a
// process-specific verification handle at level 0 in its send label. It
// collects the children's registrations (verifying each V), wires services
// to one another (idd ↔ ok-dbproxy's privileged port, ok-demux ↔ idd/netd),
// tells ok-demux which workers to expect (name, verification handle,
// declassifier status), and reports readiness.
//
// netd is a system component created by the boot loader (the world), not by
// the launcher; the boot loader tells the launcher where netd's control
// port lives via ProvideNetd().
#ifndef SRC_OKWS_LAUNCHER_H_
#define SRC_OKWS_LAUNCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/dbproxy.h"
#include "src/kernel/kernel.h"
#include "src/okws/demux.h"
#include "src/okws/idd.h"
#include "src/okws/protocol.h"
#include "src/okws/worker.h"

namespace asbestos {

struct OkwsServiceSpec {
  std::string name;  // URL path component, e.g. "store"
  std::function<std::unique_ptr<Service>()> factory;
  bool declassifier = false;
  WorkerOptions worker_options;
};

struct OkwsLauncherConfig {
  uint16_t tcp_port = 80;
  std::vector<OkwsServiceSpec> services;
  std::vector<UserCred> users;
  std::vector<std::string> extra_tables;  // CREATE TABLE statements for worker data
  // Durable identity cache (src/store). When set, the boot loader must have
  // folded IddProcess::RecoveredStars(idd_options) into this launcher's send
  // label, so it is entitled to re-grant the recovered uT/uG ⋆ set to idd.
  IddOptions idd_options;
  // Durable session table for ok-demux. Requires idd_options.store_dir on
  // the same boot: the ⋆ set demux needs for its recovered sessions comes
  // out of idd's recovered identity bindings via the launcher.
  DemuxOptions demux_options;
  // Durable SQL tables (hidden USER_ID column and per-user label bindings
  // included) for ok-dbproxy.
  DbproxyOptions dbproxy_options;
};

class LauncherProcess : public ProcessCode {
 public:
  explicit LauncherProcess(OkwsLauncherConfig config) : config_(std::move(config)) {}

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;

  // Boot-loader call: netd's control port, once the world has created netd.
  void ProvideNetd(ProcessContext& ctx, uint64_t netd_ctl_value);

  bool ready() const { return ready_; }
  uint64_t demux_verify_value() const { return verify_.at("demux").value(); }
  // Any child's verification-handle value (e.g. "idd" for the world to
  // authorize idd's replication listener with netd); 0 when unknown.
  uint64_t verify_value(const std::string& name) const {
    auto it = verify_.find(name);
    return it == verify_.end() ? 0 : it->second.value();
  }

 private:
  void MaybeWireIdd(ProcessContext& ctx);
  void MaybeWireIddNetd(ProcessContext& ctx);
  void MaybeWireDbproxyNetd(ProcessContext& ctx);
  void MaybeSpawnDemux(ProcessContext& ctx);
  void OnDemuxRegistered(ProcessContext& ctx);
  bool CheckRegistration(const Message& msg, const std::string& name) const;

  OkwsLauncherConfig config_;
  Handle port_;
  std::map<std::string, Handle> verify_;  // component name → verification handle
  // Demux is constructed at launcher start (so its recovered sessions' ⋆
  // set is known) but spawned only once idd is ready and netd is wired.
  std::unique_ptr<DemuxProcess> demux_code_;
  Label demux_stars_ = Label::Top();

  // Discovered component ports.
  Handle dbproxy_query_;
  Handle dbproxy_priv_;
  Handle dbproxy_wire_;
  Handle idd_login_;
  Handle idd_wire_;
  Handle demux_register_;
  Handle demux_session_;
  Handle demux_wire_;
  Handle netd_ctl_;

  bool idd_wired_ = false;
  bool idd_netd_wired_ = false;
  bool dbproxy_netd_wired_ = false;
  bool idd_ready_ = false;
  bool demux_spawned_ = false;
  bool workers_spawned_ = false;
  bool ready_ = false;
};

}  // namespace asbestos

#endif  // SRC_OKWS_LAUNCHER_H_
