// Concrete OKWS services.
//
//  * EchoService    — the paper's §9.2 performance workload: a response whose
//                     length depends on a client parameter.
//  * StorageService — the paper's §9.1 memory workload: stores data from the
//                     user's request in session state and returns it on the
//                     subsequent request (~1 KB responses).
//  * NotesService   — database-backed per-user notes; exercises the full
//                     §7.5 ok-dbproxy write/read path with verify labels.
//  * ProfileService — the §7.6 declassifier: publishes a user's profile as
//                     declassified (public) rows that any user may read.
//  * PasswdService  — the password-change worker of §2, through idd.
#ifndef SRC_OKWS_SERVICES_H_
#define SRC_OKWS_SERVICES_H_

#include <memory>
#include <string>

#include "src/okws/worker.h"

namespace asbestos {

class EchoService : public Service {
 public:
  void OnRequest(ServiceContext& sc) override;
};

class StorageService : public Service {
 public:
  // Pads responses to this size (the paper's ~1K responses).
  static constexpr size_t kResponseSize = 1024;
  void OnRequest(ServiceContext& sc) override;
};

class NotesService : public Service {
 public:
  static constexpr char kTableSql[] = "CREATE TABLE notes (text TEXT)";
  void OnRequest(ServiceContext& sc) override;
  void OnDbRow(ServiceContext& sc, uint64_t qid, const std::vector<SqlValue>& row) override;
  void OnDbDone(ServiceContext& sc, uint64_t qid, Status status, uint64_t rows_affected) override;
};

class ProfileService : public Service {
 public:
  static constexpr char kTableSql[] = "CREATE TABLE profiles (username TEXT, text TEXT)";
  void OnRequest(ServiceContext& sc) override;
  void OnDbRow(ServiceContext& sc, uint64_t qid, const std::vector<SqlValue>& row) override;
  void OnDbDone(ServiceContext& sc, uint64_t qid, Status status, uint64_t rows_affected) override;
};

class PasswdService : public Service {
 public:
  void OnRequest(ServiceContext& sc) override;
  void OnPasswordChanged(ServiceContext& sc, Status status) override;
};

}  // namespace asbestos

#endif  // SRC_OKWS_SERVICES_H_
