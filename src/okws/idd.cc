#include "src/okws/idd.h"

#include "src/base/panic.h"
#include "src/base/strings.h"
#include "src/db/dbproxy.h"
#include "src/sim/costs.h"
#include "src/store/label_codec.h"

namespace asbestos {

using okws_proto::MessageType;

namespace {

// Durable identity record value: varint uT, varint uG, varint user id,
// length-prefixed password. The record's secrecy label is {uT 3, ⋆} (it is
// the user's private data) and its integrity label is {uG 0, 3} (only a
// uG-speaker may rewrite it), so the store's labels carry the same meaning
// the live binding does.
std::string EncodeIdentityValue(Handle taint, Handle grant, int64_t user_id,
                                const std::string& password) {
  std::string out;
  codec::AppendVarint(taint.value(), &out);
  codec::AppendVarint(grant.value(), &out);
  codec::AppendVarint(static_cast<uint64_t>(user_id), &out);
  codec::AppendString(password, &out);
  return out;
}

bool DecodeIdentityValue(std::string_view value, Handle* taint, Handle* grant, int64_t* user_id,
                         std::string* password) {
  size_t pos = 0;
  uint64_t t = 0;
  uint64_t g = 0;
  uint64_t uid = 0;
  std::string_view pw;
  if (!IsOk(codec::ReadVarint(value, &pos, &t)) || !IsOk(codec::ReadVarint(value, &pos, &g)) ||
      !IsOk(codec::ReadVarint(value, &pos, &uid)) ||
      !IsOk(codec::ReadString(value, &pos, &pw)) || pos != value.size() ||
      t == 0 || t > Handle::kMaxValue || g == 0 || g > Handle::kMaxValue) {
    return false;
  }
  *taint = Handle::FromValue(t);
  *grant = Handle::FromValue(g);
  *user_id = static_cast<int64_t>(uid);
  password->assign(pw);
  return true;
}

std::string SqlQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

}  // namespace

IddProcess::IddProcess(std::vector<UserCred> users, std::vector<std::string> extra_tables,
                       IddOptions options)
    : users_(std::move(users)), extra_tables_(std::move(extra_tables)) {
  if (options.store_dir.empty()) {
    return;
  }
  StoreOptions sopts;
  sopts.dir = options.store_dir;
  sopts.shards = options.shards;
  auto store = DurableStore::Open(std::move(sopts));
  ASB_ASSERT(store.ok() && "idd store failed to open");
  store_ = store.take();
  RecoverCache();
  if (options.replication.enabled()) {
    repl_ = std::make_unique<ReplicationEndpoint>(store_.get(), options.replication);
  }
}

void IddProcess::RecoverCache() {
  store_->ForEach([this](const std::string& username, const StoreRecord& record) {
    CachedId id;
    std::string password;
    if (!DecodeIdentityValue(record.value, &id.taint, &id.grant, &id.user_id, &password)) {
      return;  // skip records this build cannot parse; never refuse to boot
    }
    cache_.Put(username, id, password);
  });
}

void IddProcess::OnIdle(ProcessContext& ctx) {
  if (store_ != nullptr) {
    // Pipelined group commit: this pump's appends flush while the NEXT pump
    // runs; the returned status acknowledges the previous round's flush.
    ASB_ASSERT(store_->SyncPipelined() == Status::kOk);
  }
  if (repl_ != nullptr) {
    repl_->PumpShip(ctx);  // the flushed batch is also the shipped batch
  }
}

void IddProcess::PersistIdentity(const std::string& username, const CachedId& id,
                                 const std::string& password) {
  if (store_ == nullptr) {
    return;
  }
  const Label secrecy({{id.taint, Level::kL3}}, Level::kStar);
  const Label integrity({{id.grant, Level::kL0}}, Level::kL3);
  ASB_ASSERT(store_->Put(username, EncodeIdentityValue(id.taint, id.grant, id.user_id, password),
                         secrecy, integrity) == Status::kOk);
}

Label IddProcess::recovered_stars() const {
  Label stars = Label::Top();
  cache_.ForEach([&stars](std::string_view, const CachedId& id, std::string_view) {
    stars.Set(id.taint, Level::kStar);
    stars.Set(id.grant, Level::kStar);
  });
  return stars;
}

Label IddProcess::RecoveredStars(const IddOptions& options) {
  Label stars = Label::Top();
  StoreOptions sopts;
  sopts.dir = options.store_dir;
  sopts.shards = options.shards;
  auto store = DurableStore::Open(std::move(sopts));
  if (!store.ok()) {
    return stars;
  }
  store.value()->ForEach([&stars](const std::string& username, const StoreRecord& record) {
    (void)username;
    Handle taint;
    Handle grant;
    int64_t user_id = 0;
    std::string password;
    if (DecodeIdentityValue(record.value, &taint, &grant, &user_id, &password)) {
      stars.Set(taint, Level::kStar);
      stars.Set(grant, Level::kStar);
    }
  });
  return stars;
}

bool IddProcess::LookupCachedIdentity(const std::string& username, Handle* taint, Handle* grant,
                                      int64_t* user_id) const {
  const CachedId* id = cache_.Find(username);
  if (id == nullptr) {
    return false;
  }
  *taint = id->taint;
  *grant = id->grant;
  *user_id = id->user_id;
  return true;
}

void IddProcess::SendBind(ProcessContext& ctx, const CachedId& id, const std::string& username) {
  // Teach ok-dbproxy the binding, handing it uT ⋆ (it is privileged with
  // respect to every user taint, §7.5) and the ability to receive
  // uT-tainted queries.
  Message bind;
  bind.type = dbproxy_proto::kBind;
  bind.data = username;
  bind.words = {id.taint.value(), id.grant.value(), static_cast<uint64_t>(id.user_id)};
  SendArgs bind_args;
  bind_args.decont_send = Label({{id.taint, Level::kStar}, {id.grant, Level::kStar}}, Level::kL3);
  bind_args.decont_receive = Label({{id.taint, Level::kL3}}, Level::kStar);
  ctx.Send(dbpriv_port_, std::move(bind), bind_args);
}

void IddProcess::Start(ProcessContext& ctx) {
  login_port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(login_port_, Label::Top()) == Status::kOk);
  wire_port_ = ctx.NewPort(Label::Top());  // stays closed: launcher only
  launcher_port_ = Handle::FromValue(ctx.GetEnv("launcher_port"));
  ASB_ASSERT(launcher_port_.valid());

  // One-shot identification to the launcher (verification handle still at 0
  // because nothing has been received yet), granting the launcher our wire
  // port as a capability for everything that follows.
  Message reg;
  reg.type = boot_proto::kRegister;
  reg.data = "idd";
  reg.words = {login_port_.value(), wire_port_.value()};
  SendArgs args;
  args.verify = Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
  args.decont_send = Label({{wire_port_, Level::kStar}}, Level::kL3);
  ctx.Send(launcher_port_, std::move(reg), args);

  // Recovered identities: re-accept each user's taint, as the original
  // FinishLogin did. Requires ⋆ on uT, which the launcher re-granted at
  // spawn from the store's recovered privilege set.
  cache_.ForEach([&ctx](std::string_view, const CachedId& id, std::string_view) {
    ASB_ASSERT(ctx.SetReceiveLevel(id.taint, Level::kL3) == Status::kOk);
  });
}

void IddProcess::SendPrivQuery(ProcessContext& ctx, uint64_t qid, const std::string& sql) {
  Message q;
  q.type = dbproxy_proto::kQuery;
  q.words = {qid, 0};
  q.data = "\n" + sql;  // privileged path ignores the username line
  q.reply_port = login_port_;
  ctx.Send(dbpriv_port_, std::move(q));
}

void IddProcess::BeginSeeding(ProcessContext& ctx) {
  // The password table deliberately has no index on USERNAME: first-time
  // logins pay a scan, reproducing the paper's growing OKDB cost
  // (Figure 9; see EXPERIMENTS.md).
  //
  // Against a persistent dbproxy the table may already exist WITH its rows;
  // once the CREATE resolves, a row probe decides whether to insert
  // (ContinueSeeding). User ids are assigned deterministically from config
  // order either way, so they agree with whatever a recovered table holds.
  seed_create_qid_ = next_qid_++;
  SendPrivQuery(ctx, seed_create_qid_,
                "CREATE TABLE okws_users (username TEXT, password TEXT, userid INTEGER)");
  ++seed_outstanding_;
}

void IddProcess::ContinueSeeding(ProcessContext& ctx, bool fresh) {
  for (const std::string& sql : extra_tables_) {
    // Harmless against a recovered schema: an existing table answers
    // kAlreadyExists and the reply is counted like any other.
    SendPrivQuery(ctx, next_qid_++, sql);
    ++seed_outstanding_;
  }
  if (!fresh) {
    return;  // recovered password table: the rows are already in it
  }
  std::string values;
  size_t batched = 0;
  for (size_t i = 0; i < users_.size(); ++i) {
    const int64_t uid = static_cast<int64_t>(i) + 1;
    if (!values.empty()) {
      values += ", ";
    }
    values += StrFormat("(%s, %s, %lld)", SqlQuote(users_[i].username).c_str(),
                        SqlQuote(users_[i].password).c_str(), static_cast<long long>(uid));
    if (++batched == 500 || i + 1 == users_.size()) {
      SendPrivQuery(ctx, next_qid_++,
                    "INSERT INTO okws_users (username, password, userid) VALUES " + values);
      ++seed_outstanding_;
      values.clear();
      batched = 0;
    }
  }
}

void IddProcess::GrantIdentity(ProcessContext& ctx, const CachedId& id, Handle reply,
                               uint64_t cookie) {
  // Paper Fig. 5 step 4: grant uT ⋆ and uG ⋆; also raise the caller's
  // receive label so user-tainted traffic (session registrations, tainted
  // rows) can reach it.
  Message r;
  r.type = MessageType::kLoginR;
  r.words = {cookie, 0, id.taint.value(), id.grant.value(),
             static_cast<uint64_t>(id.user_id)};
  SendArgs args;
  args.decont_send = Label({{id.taint, Level::kStar}, {id.grant, Level::kStar}}, Level::kL3);
  args.decont_receive = Label({{id.taint, Level::kL3}}, Level::kStar);
  ctx.Send(reply, std::move(r), args);
}

void IddProcess::ReplyLoginFailed(ProcessContext& ctx, Handle reply, uint64_t cookie) {
  Message r;
  r.type = MessageType::kLoginR;
  r.words = {cookie, static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)), 0, 0, 0};
  ctx.Send(reply, std::move(r));
}

void IddProcess::HandleLogin(ProcessContext& ctx, const Message& msg) {
  ctx.ChargeCycles(costs::kIddLoginCycles);
  if (!msg.reply_port.valid()) {
    return;
  }
  // Remember where ok-demux listens so password changes can invalidate its
  // cached sessions (the kLogin's D_S granted us the capability).
  demux_session_port_ = msg.reply_port;
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  const size_t nl = msg.data.find('\n');
  if (nl == std::string::npos) {
    ReplyLoginFailed(ctx, msg.reply_port, cookie);
    return;
  }
  const std::string username = msg.data.substr(0, nl);
  const std::string password = msg.data.substr(nl + 1);

  if (const CachedId* cached = cache_.Find(username); cached != nullptr) {
    // Handles are cached, but the password must still match. idd verified
    // this user against the database at first login and tracks password
    // changes itself, so the check is local.
    if (cache_.AuxOf(username) == std::string_view(password)) {
      GrantIdentity(ctx, *cached, msg.reply_port, cookie);
    } else {
      ReplyLoginFailed(ctx, msg.reply_port, cookie);
    }
    return;
  }

  // First-time login: one database query (paper §7.4).
  const uint64_t qid = next_qid_++;
  PendingLogin p;
  p.username = username;
  p.password = password;
  p.reply = msg.reply_port;
  p.caller_cookie = cookie;
  pending_.emplace(qid, std::move(p));
  SendPrivQuery(ctx, qid,
                "SELECT password, userid FROM okws_users WHERE username = " + SqlQuote(username));
}

void IddProcess::FinishLogin(ProcessContext& ctx, uint64_t qid, PendingLogin& p) {
  if (!p.row_seen || p.db_password != p.password) {
    ReplyLoginFailed(ctx, p.reply, p.caller_cookie);
    pending_.erase(qid);
    return;
  }
  // A concurrent login for the same user may have populated the cache while
  // our database query was in flight; reuse its handles.
  if (const CachedId* existing = cache_.Find(p.username); existing != nullptr) {
    GrantIdentity(ctx, *existing, p.reply, p.caller_cookie);
    pending_.erase(qid);
    return;
  }
  CachedId id;
  id.taint = ctx.NewHandle();
  id.grant = ctx.NewHandle();
  id.user_id = p.db_user_id;
  cache_.Put(p.username, id, p.password);
  PersistIdentity(p.username, id, p.password);
  if (!ScaleAccountingEnabled()) {
    // Paper-calibrated mode models the old map entry (paper: idd never
    // cleans its cache); scale mode charges the flat table's real bytes as
    // KernelMemReport::binding_bytes instead.
    ctx.ModelHeapBytes(96);
  }
  // idd must remain reachable from uT-tainted processes (e.g. the password
  // worker proves uG over a tainted channel), so accept this user's taint.
  // It cannot stick: we hold uT at ⋆.
  ASB_ASSERT(ctx.SetReceiveLevel(id.taint, Level::kL3) == Status::kOk);

  SendBind(ctx, id, p.username);

  GrantIdentity(ctx, id, p.reply, p.caller_cookie);
  pending_.erase(qid);
}

void IddProcess::HandleChangePw(ProcessContext& ctx, const Message& msg) {
  ctx.ChargeCycles(costs::kIddLoginCycles);
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  const std::vector<std::string> parts = Split(msg.data, '\n');
  Message r;
  r.type = MessageType::kChangePwR;
  r.words = {cookie, static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied))};
  if (parts.size() == 3 && msg.reply_port.valid()) {
    const std::string& username = parts[0];
    const std::string& old_pw = parts[1];
    const std::string& new_pw = parts[2];
    const CachedId* cached = cache_.Find(username);
    // The caller must prove it speaks for the user: V(uG) ≤ 0 (§5.4). The
    // kernel already verified ES ⊑ V.
    if (cached != nullptr && cache_.AuxOf(username) == std::string_view(old_pw) &&
        LevelLeq(msg.verify.Get(cached->grant), Level::kL0)) {
      ASB_ASSERT(cache_.SetAux(username, new_pw));
      PersistIdentity(username, *cached, new_pw);
      SendPrivQuery(ctx, next_qid_++,
                    "UPDATE okws_users SET password = " + SqlQuote(new_pw) +
                        " WHERE username = " + SqlQuote(username));
      ++seed_outstanding_;  // swallow the kDone like a seeding reply
      r.words[1] = 0;
      // Sessions opened under the old password must not keep working.
      if (demux_session_port_.valid()) {
        Message inval;
        inval.type = MessageType::kSessionInvalidate;
        inval.data = username;
        ctx.Send(demux_session_port_, std::move(inval));
      }
    }
  }
  if (msg.reply_port.valid()) {
    ctx.Send(msg.reply_port, std::move(r));
  }
}

void IddProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (repl_ != nullptr && repl_->HandleMessage(ctx, msg)) {
    return;  // replication-plane traffic (listener replies, follower acks)
  }
  if (msg.port == wire_port_) {
    if (msg.type == boot_proto::kWire && msg.data == "dbpriv" && !msg.words.empty()) {
      dbpriv_port_ = Handle::FromValue(msg.words[0]);
      BeginSeeding(ctx);
      // Replay recovered bindings so ok-dbproxy regains uT ⋆ and the
      // USER_ID associations it held before the reboot.
      cache_.ForEach([this, &ctx](std::string_view username, const CachedId& id,
                                  std::string_view) {
        SendBind(ctx, id, std::string(username));
      });
    } else if (msg.type == boot_proto::kWire && msg.data == "netd" && !msg.words.empty() &&
               repl_ != nullptr) {
      // The launcher's late wire: netd is up, attach the replication
      // listener (idd spawns before the boot loader creates netd, so this
      // capability cannot ride the spawn env the way demux's does).
      repl_->Start(ctx, Handle::FromValue(msg.words[0]), ctx.GetEnv("self_verify"));
    }
    return;
  }
  if (msg.port != login_port_) {
    return;
  }
  switch (msg.type) {
    case MessageType::kLogin:
      HandleLogin(ctx, msg);
      return;
    case MessageType::kChangePw:
      HandleChangePw(ctx, msg);
      return;
    case dbproxy_proto::kRow: {
      const uint64_t qid = msg.words.empty() ? 0 : msg.words[0];
      if (qid != 0 && qid == seed_probe_qid_) {
        seed_probe_row_seen_ = true;  // the recovered table has rows
        return;
      }
      auto it = pending_.find(qid);
      if (it == pending_.end()) {
        return;
      }
      std::vector<SqlValue> row;
      if (DecodeDbRow(msg.data, &row) && row.size() == 2) {
        it->second.row_seen = true;
        it->second.db_password = row[0].AsText();
        it->second.db_user_id = row[1].AsInt();
      }
      return;
    }
    case dbproxy_proto::kDone: {
      const uint64_t qid = msg.words.empty() ? 0 : msg.words[0];
      auto it = pending_.find(qid);
      if (it != pending_.end()) {
        FinishLogin(ctx, qid, it->second);
        return;
      }
      if (qid == seed_create_qid_ && !seed_probe_sent_) {
        // Whatever the CREATE said, ask the table itself whether it holds
        // rows — a crash can persist the schema without the first row
        // batch, and then kAlreadyExists alone would skip reseeding forever.
        seed_probe_sent_ = true;
        seed_probe_qid_ = next_qid_++;
        SendPrivQuery(ctx, seed_probe_qid_, "SELECT userid FROM okws_users LIMIT 1");
        ++seed_outstanding_;
      } else if (qid == seed_probe_qid_ && !seed_phase2_sent_) {
        seed_phase2_sent_ = true;
        ContinueSeeding(ctx, /*fresh=*/!seed_probe_row_seen_);
      }
      if (seed_outstanding_ > 0 && --seed_outstanding_ == 0 && !seeded_) {
        seeded_ = true;
        Message ready;
        ready.type = boot_proto::kReady;
        ready.data = "idd";
        ctx.Send(launcher_port_, std::move(ready));
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace asbestos
