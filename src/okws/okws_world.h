// OkwsWorld: the whole machine — SimNet wire, kernel, netd, and the OKWS
// process suite — plus the pump loop that stands in for hardware (NIC
// interrupts driving netd, then the scheduler running until idle).
#ifndef SRC_OKWS_OKWS_WORLD_H_
#define SRC_OKWS_OKWS_WORLD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/client.h"
#include "src/net/netd.h"
#include "src/net/simnet.h"
#include "src/okws/launcher.h"

namespace asbestos {

struct OkwsWorldConfig {
  uint64_t boot_key = 0x0451;
  uint16_t tcp_port = 80;
  std::vector<OkwsServiceSpec> services;
  std::vector<UserCred> users;
  std::vector<std::string> extra_tables;
  // Durable identity cache: rebooting a world with the same boot key and the
  // same store directory recovers every uT/uG binding idd had handed out.
  IddOptions idd_options;
  // Durable demux session table: with both stores configured, a reboot is
  // invisible to logged-in browsers (sessions resume without touching idd).
  DemuxOptions demux_options;
  // Durable ok-dbproxy tables: worker data (hidden USER_ID column included)
  // and per-user label bindings survive reboots.
  DbproxyOptions dbproxy_options;
};

class OkwsWorld {
 public:
  explicit OkwsWorld(OkwsWorldConfig config);

  Kernel& kernel() { return kernel_; }
  SimNet& net() { return net_; }
  NetdProcess* netd() { return netd_; }
  ProcessId netd_pid() const { return netd_pid_; }
  LauncherProcess* launcher() { return launcher_; }
  // The demux the launcher spawned (nullptr before PumpUntilReady). Read
  // routing hangs off it: session cursors and the hub's follower choice.
  DemuxProcess* demux();

  // One machine iteration: NIC interrupt into netd, then run to idle.
  void Pump();
  // Boots the server suite; panics if it fails to come up.
  void PumpUntilReady();
  // Drives the client and the machine until the client has no work left.
  void RunClient(HttpLoadClient* client);

  // Builds "GET <target> HTTP/1.0" with user:pass authorization.
  static std::string MakeRequest(const std::string& target, const std::string& user,
                                 const std::string& pass);

 private:
  SimNet net_;
  Kernel kernel_;
  NetdProcess* netd_ = nullptr;
  LauncherProcess* launcher_ = nullptr;
  ProcessId netd_pid_ = kNoProcess;
  ProcessId launcher_pid_ = kNoProcess;
};

}  // namespace asbestos

#endif  // SRC_OKWS_OKWS_WORLD_H_
