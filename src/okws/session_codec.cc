#include "src/okws/session_codec.h"

#include "src/sim/cycles.h"
#include "src/store/label_codec.h"

namespace asbestos {
namespace okws_session {

std::string Key(const std::string& user, const std::string& service) {
  return user + "\x1f" + service;
}

std::string EncodeValue(Handle taint, Handle grant, uint64_t expires_at,
                        const std::string& password) {
  std::string out;
  codec::AppendVarint(taint.value(), &out);
  codec::AppendVarint(grant.value(), &out);
  codec::AppendVarint(expires_at, &out);
  codec::AppendString(password, &out);
  return out;
}

bool DecodeValue(std::string_view value, Handle* taint, Handle* grant,
                 uint64_t* expires_at, std::string* password) {
  size_t pos = 0;
  uint64_t t = 0;
  uint64_t g = 0;
  std::string_view pw;
  if (!IsOk(codec::ReadVarint(value, &pos, &t)) || !IsOk(codec::ReadVarint(value, &pos, &g)) ||
      !IsOk(codec::ReadVarint(value, &pos, expires_at)) ||
      !IsOk(codec::ReadString(value, &pos, &pw)) || pos != value.size() ||
      t == 0 || t > Handle::kMaxValue || g == 0 || g > Handle::kMaxValue) {
    return false;
  }
  *taint = Handle::FromValue(t);
  *grant = Handle::FromValue(g);
  password->assign(pw);
  return true;
}

bool ExpiredAt(uint64_t expires_at_cycles, uint64_t now) {
  return expires_at_cycles != 0 && expires_at_cycles <= now;
}

ReadLivenessFilter LivenessFilter() {
  return [](const std::string& key, const StoreRecord& record) {
    (void)key;
    Handle taint;
    Handle grant;
    uint64_t expires_at = 0;
    std::string password;
    if (!DecodeValue(record.value, &taint, &grant, &expires_at, &password)) {
      return false;
    }
    return !ExpiredAt(expires_at, GetCycleAccounting().now());
  };
}

}  // namespace okws_session
}  // namespace asbestos
