// Taint-provenance ledger and refusal forensics.
//
// The trace ring (src/obs/trace.h) records that hops happened; this ledger
// records *why labels are what they are*. Every taint-propagating event —
// the receive-side Lub in the kernel pump, a ⋆ privilege exercise or grant,
// a verify-port declassification, a replicated record adopting its secrecy
// label on apply — appends a compact TaintEdge keyed by interned rep ids
// (src/labels/intern.h), so the edges form a DAG over label *contents* and
// WhyTainted(process, handle) can walk a process's contamination back to the
// handle's origin, hop by hop. Dually, every refusal site (the Figure-4
// delivery check, ReadGate's kRefused* verdicts, dbproxy's read-only tag
// and verify-bound checks) appends a RefusalRecord carrying the exact
// failing comparison: which handle, the level the sender presented, and the
// bound it exceeded.
//
// Provenance is itself a covert-channel surface — "who got tainted with u"
// is at least as secret as u — so reads go through ProvenanceReader, which
// gates every record by the SAME cumulative-label discipline TraceReader
// enforces: a record is visible iff the lub of its own gate label and the
// cumulative gate of its trace flows to the reader's clearance, evaluated
// through CheckDeliveryAllowed so the semantics match kernel delivery bit
// for bit. Cumulative gates survive ring eviction, and VisibleEdgeCount /
// VisibleRefusalCount apply the same filter, so a low reader can neither
// read nor *count* high history (tests/covert_channel_test.cc).
//
// Gate labels: for contamination and adoption edges the gate is the cause
// label itself (the taint is the secret). For privilege edges (⋆ grants,
// declassification) the cause label is ⋆/0-shaped and would gate *nothing*
// if used directly — knowing that u's declassifier acted reveals u-secret
// control flow — so the gate maps every explicitly-mentioned handle to
// level 3 (GateFromPrivilege).
//
// Like tracing, the ledger is DISABLED by default behind one global bool,
// emit sites skip all label/string work when off, and recording never
// charges virtual cycles nor perturbs LabelWorkStats (the label algebra the
// ledger itself performs is snapshot/restored around each operation), so
// Figure 6-9 outputs are byte-identical with the ledger compiled in.
#ifndef SRC_OBS_PROVENANCE_H_
#define SRC_OBS_PROVENANCE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/labels/label.h"

namespace asbestos {
namespace obs {

// How taint (or the privilege to shed it) moved.
enum class EdgeKind : uint8_t {
  kOrigin = 0,       // a handle was minted / a process self-contaminated
  kContaminate = 1,  // receive-side Lub: QS ← QS ⊔ (ES ⊓ QS⋆)
  kGrant = 2,        // ⋆ privilege exercised via D_S / D_R
  kDeclassify = 3,   // verify-port label V lowered the delivery bound
  kAdopt = 4,        // replicated record's secrecy label adopted on apply
};

const char* EdgeKindName(EdgeKind k);

struct TaintEdge {
  uint64_t id = 0;        // global emission order (monotone)
  EdgeKind kind = EdgeKind::kOrigin;
  uint64_t at_cycles = 0;
  uint64_t trace_id = 0;  // flow id of the producing message (0 = none)
  std::string subject;    // entity whose label changed / gained privilege
  std::string source;     // where it came from ("" for origins)
  uint64_t pre_rep = 0;   // subject label rep id before the event
  uint64_t post_rep = 0;  // ... after (pre == post: privilege, no Lub ran)
  uint64_t cause_rep = 0;  // rep id of `cause`
  Label cause = Label::Bottom();  // the label that moved (ES, D_S, D_R, V, ...)
  Label gate = Label::Bottom();   // secrecy of knowing this edge exists
};

struct RefusalRecord {
  uint64_t id = 0;
  uint64_t at_cycles = 0;
  uint64_t trace_id = 0;
  std::string site;     // "kernel.delivery", "read_gate.cursor_lag", ...
  std::string subject;  // the entity that was refused (or refused delivery)
  std::string detail;   // human-readable failing comparison
  uint64_t handle = 0;  // first failing handle (0: the defaults already fail)
  Level observed = Level::kStar;  // level the sender presented at `handle`
  Level bound = Level::kStar;     // bound it had to flow below
  uint64_t es_rep = 0;            // rep id of the presented label
  uint64_t bound_rep = 0;         // rep id of the effective bound label
  Label gate = Label::Bottom();   // secrecy of knowing the refusal happened
};

// Maps a privilege-shaped label (⋆/0 entries) to the gate for edges that
// exercised it: every explicit entry goes to level 3, default level 1.
Label GateFromPrivilege(const Label& privilege);

class ProvenanceLedger {
 public:
  static ProvenanceLedger& Get();

  // Global on/off switch, one branch on the hot paths. Off by default.
  static bool enabled() { return enabled_; }
  static void SetEnabled(bool on) { enabled_ = on; }

  // Appends an edge. `gate` defaults per EdgeKind (see file comment);
  // explicit gates are for sites whose secrecy is not derivable from the
  // cause label alone. No-ops when disabled.
  void RecordEdge(EdgeKind kind, const std::string& subject,
                  const std::string& source, uint64_t pre_rep,
                  uint64_t post_rep, const Label& cause, uint64_t trace_id,
                  const Label* gate = nullptr);

  // Appends a refusal-forensics record. The gate is Lub(es-shaped taint,
  // bound-derived secrecy): a refusal reveals both what was presented and
  // that a bound exists.
  void RecordRefusal(const std::string& site, const std::string& subject,
                     const std::string& detail, uint64_t handle,
                     Level observed, Level bound, const Label& es,
                     const Label& bound_label, uint64_t trace_id);

  const std::deque<TaintEdge>& edges() const { return edges_; }
  const std::deque<RefusalRecord>& refusals() const { return refusals_; }
  uint64_t total_edges() const { return next_edge_id_; }
  uint64_t total_refusals() const { return next_refusal_id_; }

  // Cumulative gate of a trace: lub of the gate labels of every ledger
  // record it has ever produced (survives eviction). Bottom for unknown.
  Label CumulativeGate(uint64_t trace_id) const;

  size_t capacity() const { return capacity_; }
  void SetCapacity(size_t cap);

  // Drops all edges, refusals, and cumulative-gate history.
  void Clear();

 private:
  ProvenanceLedger() = default;

  void NoteGate(uint64_t trace_id, const Label& gate);

  static bool enabled_;

  std::deque<TaintEdge> edges_;
  std::deque<RefusalRecord> refusals_;
  std::map<uint64_t, Label> cumulative_;  // trace id → lub of record gates
  size_t capacity_ = 8192;
  uint64_t next_edge_id_ = 0;
  uint64_t next_refusal_id_ = 0;
};

// One hop of a WhyTainted answer, newest first.
struct TaintHop {
  TaintEdge edge;
  std::string via;  // rendered "subject ← source [kind]" summary
};

// Clearance-gated view of the ledger. Same discipline as TraceReader: a
// record is visible iff Lub(record.gate, cumulative gate of its trace) ⊑
// clearance via CheckDeliveryAllowed.
class ProvenanceReader {
 public:
  explicit ProvenanceReader(const Label& clearance) : clearance_(clearance) {}

  bool CanObserveEdge(const TaintEdge& e) const;
  bool CanObserveRefusal(const RefusalRecord& r) const;

  std::vector<TaintEdge> VisibleEdges() const;
  std::vector<RefusalRecord> VisibleRefusals() const;
  // Counting is gated identically, so it is not a side channel around the
  // Visible* calls.
  size_t VisibleEdgeCount() const;
  size_t VisibleRefusalCount() const;

  // Walks the DAG from `subject`'s most recent edge mentioning `handle`
  // back to the taint's origin, hopping subject → source. Returns the hop
  // chain newest-first, or an EMPTY chain if any hop on the path is above
  // the reader's clearance — a partial answer would itself leak.
  std::vector<TaintHop> WhyTainted(const std::string& subject,
                                   uint64_t handle) const;

 private:
  Label clearance_;
};

}  // namespace obs
}  // namespace asbestos

#endif  // SRC_OBS_PROVENANCE_H_
