// Unified metrics plane: one process-wide registry of named counters,
// gauges, and cycle histograms, with a deterministic snapshot.
//
// The paper's whole evaluation is measurement (Figures 6-9: per-component
// cycle attribution, kernel bytes per user, per-request latency), but the
// repo's instrumentation grew as one-off accessors scattered per module
// (GetLabelCheckCacheStats, DurableStore::wal_read_calls, FrameCache hit
// counters, KernelMemReport, ...). This registry gives them one roof:
//
//   * Counter       monotonically increasing u64, owned by the registry;
//                   call sites cache `static obs::Counter& c = ...` so the
//                   hot path is a single increment.
//   * Gauge         a settable double for last-written-value metrics that
//                   must outlive their producer (e.g. replication lag after
//                   a hub is destroyed).
//   * CycleHistogram log2-bucketed distribution over the virtual cycle
//                   clock (count / sum / max / per-bucket counts).
//   * Gauge groups  registered callbacks that read LIVE module state at
//                   snapshot time (label-cache stats, intern table, store
//                   memory, per-component cycle totals, a Kernel's
//                   MemReport). The existing per-module structs stay the
//                   storage of record — their accessors keep live-view
//                   semantics — and the registry is the window onto them.
//
// Snapshot() flattens everything into name → value with DETERMINISTIC
// iteration order (sorted by name); SnapshotJson() renders that map as one
// flat JSON object, which the benches write next to their google-benchmark
// JSON. When two producers use the same name (e.g. two kernels in a
// replication fleet), the later registration wins in the snapshot — the
// usual one-kernel worlds never collide.
//
// Metric naming scheme: `<subsystem>.<object>.<field>`, all lower_snake,
// e.g. kernel.label_cache.hits, store.wal_read_calls, repl.frame_cache.bytes,
// cycles.component.kernel_ipc, okws.request_cycles.count. See README
// "Observability" for the full table.
//
// Everything here is single-threaded, like the simulator itself, and the
// registry itself never charges virtual cycles: observability must not
// perturb the Figure-9 cost attribution it reports.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace asbestos {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Power-of-two bucketed histogram for virtual-cycle durations. Bucket i
// counts samples in [2^(i-1), 2^i) (bucket 0 counts zeros and ones).
class CycleHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t cycles);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int i) const { return buckets_[i]; }
  // Upper bound of the smallest bucket prefix holding ≥ q of the samples
  // (a coarse quantile: exact to within the 2x bucket width). 0 when empty.
  uint64_t ApproxQuantile(double q) const;
  void Reset();

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t buckets_[kBuckets] = {};
};

// Snapshot-time sink a gauge-group callback fills with live values.
class GaugeSink {
 public:
  void Set(const std::string& name, double value) { out_[name] = value; }
  void Set(const std::string& name, uint64_t value) {
    out_[name] = static_cast<double>(value);
  }
  void Set(const std::string& name, int64_t value) {
    out_[name] = static_cast<double>(value);
  }

 private:
  friend class Registry;
  std::map<std::string, double> out_;
};

using GaugeGroupFn = std::function<void(GaugeSink&)>;

class Registry {
 public:
  // The process-wide registry. Leaked on purpose: call sites cache
  // references into it from static initializers and module destructors may
  // read it during teardown, so it must never be destroyed.
  static Registry& Get();

  // Create-on-first-use; the returned reference is stable forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  CycleHistogram& histogram(const std::string& name);

  // Registers a callback that contributes live values at snapshot time.
  // Returns an id for UnregisterGauges (RAII holders: Kernel, hubs).
  // Module-global collectors simply never unregister.
  uint64_t RegisterGauges(GaugeGroupFn fn);
  void UnregisterGauges(uint64_t id);

  // Zeroes every registered counter, gauge, and histogram VALUE in place
  // (names and cached references stay valid; gauge groups are untouched —
  // they read live module state). This is obs::ResetAll()'s registry half,
  // used between bench repetitions so one case's numbers don't bleed into
  // the next BENCH_*.metrics.json.
  void ResetValues();

  // Flattens counters, gauges, histograms (as <name>.count/.sum/.max/.avg/
  // .p50/.p99) and every gauge group into one sorted name → value map.
  // Groups are evaluated in registration order, so on a name collision the
  // latest registration wins.
  std::map<std::string, double> Snapshot() const;
  // The snapshot as one flat JSON object, keys sorted.
  std::string SnapshotJson() const;
  // Writes SnapshotJson() to `path` (plus trailing newline). False on I/O
  // failure.
  bool WriteSnapshotFile(const std::string& path) const;

 private:
  Registry() = default;
  ~Registry() = delete;  // leaked singleton

  // Pointer stability for cached references: node-based maps.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, CycleHistogram> histograms_;
  std::vector<std::pair<uint64_t, GaugeGroupFn>> gauge_groups_;
  uint64_t next_group_id_ = 1;
};

}  // namespace obs
}  // namespace asbestos

#endif  // SRC_OBS_METRICS_H_
