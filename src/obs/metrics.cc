#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace asbestos {
namespace obs {

namespace {

int BucketFor(uint64_t v) {
  int b = 0;
  while ((1ull << b) < v && b < CycleHistogram::kBuckets - 1) {
    ++b;
  }
  return b;
}

// JSON number: integral values print without a fraction so snapshot files
// diff cleanly; everything else gets full round-trip precision.
std::string NumberToJson(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  double integral = 0;
  if (std::modf(v, &integral) == 0.0 && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void CycleHistogram::Record(uint64_t cycles) {
  ++count_;
  sum_ += cycles;
  if (cycles > max_) {
    max_ = cycles;
  }
  ++buckets_[BucketFor(cycles)];
}

uint64_t CycleHistogram::ApproxQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      uint64_t upper = 1ull << i;
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

void CycleHistogram::Reset() {
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] = 0;
  }
}

Registry& Registry::Get() {
  static Registry* r = new Registry();  // leaked; see header
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

CycleHistogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

uint64_t Registry::RegisterGauges(GaugeGroupFn fn) {
  uint64_t id = next_group_id_++;
  gauge_groups_.emplace_back(id, std::move(fn));
  return id;
}

void Registry::UnregisterGauges(uint64_t id) {
  for (auto it = gauge_groups_.begin(); it != gauge_groups_.end(); ++it) {
    if (it->first == id) {
      gauge_groups_.erase(it);
      return;
    }
  }
}

void Registry::ResetValues() {
  for (auto& [name, c] : counters_) {
    (void)name;
    c.Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g.Set(0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h.Reset();
  }
}

std::map<std::string, double> Registry::Snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c.value());
  }
  for (const auto& [name, g] : gauges_) {
    out[name] = g.value();
  }
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<double>(h.count());
    out[name + ".sum"] = static_cast<double>(h.sum());
    out[name + ".max"] = static_cast<double>(h.max());
    out[name + ".avg"] =
        h.count() == 0 ? 0.0
                       : static_cast<double>(h.sum()) /
                             static_cast<double>(h.count());
    out[name + ".p50"] = static_cast<double>(h.ApproxQuantile(0.5));
    out[name + ".p99"] = static_cast<double>(h.ApproxQuantile(0.99));
  }
  for (const auto& [id, fn] : gauge_groups_) {
    (void)id;
    GaugeSink sink;
    fn(sink);
    for (const auto& [name, value] : sink.out_) {
      out[name] = value;  // registration order: latest wins
    }
  }
  return out;
}

std::string Registry::SnapshotJson() const {
  std::map<std::string, double> snap = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  \"";
    out += EscapeJson(name);
    out += "\": ";
    out += NumberToJson(value);
  }
  out += first ? "}" : "\n}";
  return out;
}

bool Registry::WriteSnapshotFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    return false;
  }
  f << SnapshotJson() << "\n";
  return static_cast<bool>(f);
}

}  // namespace obs
}  // namespace asbestos
