// One switch to drop all observability state between measurement runs.
//
// The benches run several cases in one process and write ONE metrics
// snapshot at exit; without a reset between cases, the snapshot is the sum
// of every case that ran before it and BENCH_*.metrics.json numbers bleed
// across benchmark repetitions. ResetAll() zeroes the registry's stored
// values (counters/gauges/histograms — names and cached references stay
// valid) and clears the trace ring, the provenance ledger, and the cycle
// profiler. It does NOT touch the virtual cycle clock, the label work/mem
// stats, or the check caches: those are the *measured* state, owned by the
// harnesses that reset them explicitly.
#ifndef SRC_OBS_RESET_H_
#define SRC_OBS_RESET_H_

namespace asbestos {
namespace obs {

void ResetAll();

}  // namespace obs
}  // namespace asbestos

#endif  // SRC_OBS_RESET_H_
