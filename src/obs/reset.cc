#include "src/obs/reset.h"

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"

namespace asbestos {
namespace obs {

void ResetAll() {
  Registry::Get().ResetValues();
  TraceRing::Get().Clear();
  ProvenanceLedger::Get().Clear();
  CycleProfiler::Get().Clear();
}

}  // namespace obs
}  // namespace asbestos
