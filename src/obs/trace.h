// Flow-aware request tracing.
//
// A trace id is minted where a request enters the system (netd accept, or a
// replication session hello) and rides the kernel Message envelope through
// every hop — demux dispatch, worker handling, dbproxy statements,
// replication frames — so one labeled request can be followed end to end.
// Each hop emits a SpanEvent stamped with the virtual-clock cycle and the
// *contamination label* of the message that produced it.
//
// In an IFC system the trace ring is itself state that can leak (the
// covert-channel analysis in tests/covert_channel_test.cc applies to
// history just as much as to ports): a reader at clearance C must not be
// able to observe — or even COUNT — events above C. TraceReader therefore
// filters through the same CheckDeliveryAllowed machinery the kernel uses
// for message delivery, and filtering is by the trace's CUMULATIVE label
// (the lub of every event the trace has emitted so far, kept even after
// ring eviction): a trace is as secret as its most secret event, so a low
// reader cannot count secret requests by their early untainted accept
// events.
//
// Tracing is DISABLED by default and every emit site guards on a single
// global bool, so the instrumented hot paths cost one branch when off (the
// ≤5% bench_fig7 criterion). Emission never charges virtual cycles:
// observing the system must not perturb the Figure-9 attribution.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/labels/label.h"

namespace asbestos {
namespace obs {

struct SpanEvent {
  uint64_t trace_id = 0;
  uint64_t seq = 0;        // global emission order (monotone)
  uint64_t at_cycles = 0;  // virtual clock at emission
  std::string component;   // emitting module, e.g. "netd", "worker"
  std::string name;        // span name, e.g. "netd.accept"
  std::string detail;      // free-form context (service, frame type, ...)
  Label label = Label::Bottom();  // contamination of the producing message
};

class TraceRing {
 public:
  static TraceRing& Get();

  // Global on/off switch. Off by default; when off, Emit is a no-op and
  // call sites skip building labels/details entirely.
  static bool enabled() { return enabled_; }
  static void SetEnabled(bool on) { enabled_ = on; }

  // Mints a fresh nonzero trace id. Always works (even when disabled) so
  // ids stay deterministic across enable/disable toggles.
  uint64_t MintTraceId() { return next_trace_id_++; }

  void Emit(uint64_t trace_id, const std::string& component,
            const std::string& name, const std::string& detail,
            const Label& label);

  // Cumulative secrecy of a trace: lub of the labels of every event it has
  // ever emitted (survives ring eviction). Bottom for unknown ids.
  Label CumulativeLabel(uint64_t trace_id) const;

  const std::deque<SpanEvent>& events() const { return events_; }
  uint64_t total_emitted() const { return next_seq_; }
  size_t capacity() const { return capacity_; }
  void SetCapacity(size_t cap);

  // Drops all events and cumulative-label history.
  void Clear();

 private:
  TraceRing() = default;

  static bool enabled_;

  std::deque<SpanEvent> events_;
  std::map<uint64_t, Label> cumulative_;  // trace id → lub of its labels
  size_t capacity_ = 8192;
  uint64_t next_trace_id_ = 1;
  uint64_t next_seq_ = 0;
};

// Clearance-gated view of the ring. The reader sees exactly the events of
// traces whose cumulative label flows to its clearance (L ⊑ clearance,
// evaluated via CheckDeliveryAllowed so the verdict cache is exercised and
// the semantics match kernel delivery bit for bit).
class TraceReader {
 public:
  explicit TraceReader(const Label& clearance) : clearance_(clearance) {}

  bool CanObserve(uint64_t trace_id) const;
  std::vector<SpanEvent> Visible() const;
  // The number of visible events — gated the same way, so counting is not
  // a side channel around Visible().
  size_t VisibleCount() const;
  // Visible events as a JSON array (one object per event, ring order).
  std::string VisibleJson() const;

 private:
  Label clearance_;
};

}  // namespace obs
}  // namespace asbestos

#endif  // SRC_OBS_TRACE_H_
