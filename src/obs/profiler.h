// Hierarchical virtual-cycle profiler over the syscall dispatch table.
//
// The paper's evaluation is cycle attribution (Figure 9), and the simulator
// already charges every component's work to one deterministic virtual clock
// (src/sim/cycles.h). This profiler turns that clock into *call-tree*
// attribution: spans nest ("deliver.ok-demux" → "sys.send" → ...), each
// span's SELF time is its clock delta minus its children's, and the result
// dumps as collapsed-stack flamegraph text (one "a;b;c <self_cycles>" line
// per distinct stack — the format flamegraph.pl and speedscope ingest).
// Alongside the tree it keeps a flat per-(process, syscall) table fed by
// the kernel's dispatch table, exposed as obs.prof.* metrics.
//
// Spans can cross the replication wire: a frame producer stamps its current
// stack string into WireMessage::prof_ctx, and the consumer opens its apply
// span WITH that parent context, so a follower's "repl.apply" nests under
// the primary's ship stack in one merged flamegraph even though the two
// sides never share a C++ call stack.
//
// Like the trace ring and the provenance ledger, the profiler is DISABLED
// by default behind one global bool; every instrumented site pays one
// branch when off and builds no strings. Measurement reads the virtual
// clock but never charges it: profiling must not perturb the Figure-9
// numbers it reports.
#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asbestos {
namespace obs {

class CycleProfiler {
 public:
  static CycleProfiler& Get();

  static bool enabled() { return enabled_; }
  static void SetEnabled(bool on) { enabled_ = on; }

  // Opens a span nested under the current innermost span (or at top level).
  void Begin(const std::string& name);
  // Opens a span whose stack is `parent_ctx;name` regardless of the local
  // stack — the cross-wire stitch. Empty parent_ctx = top level.
  void BeginWithParent(const std::string& parent_ctx, const std::string& name);
  // Closes the innermost span, folding its total into the enclosing local
  // span's child time. No-op when no span is open.
  void End();

  // The innermost open span's full "a;b;c" stack ("" at top level) — what
  // frame producers stamp into prof_ctx.
  std::string current_stack() const;

  // Flat per-(process, syscall) cycle table, fed by Kernel::Dispatch.
  void AttributeSyscall(const std::string& process, const char* syscall,
                        uint64_t cycles);

  struct StackStat {
    uint64_t self_cycles = 0;
    uint64_t total_cycles = 0;
    uint64_t count = 0;
  };
  struct SyscallStat {
    uint64_t cycles = 0;
    uint64_t calls = 0;
  };

  const std::map<std::string, StackStat>& stacks() const { return stacks_; }
  // Keyed "<process>.<syscall>".
  const std::map<std::string, SyscallStat>& syscalls() const {
    return syscalls_;
  }

  // Collapsed-stack flamegraph text: one "stack self_cycles" line per
  // distinct stack with nonzero self time, sorted by stack.
  std::string CollapsedStacks() const;

  // Drops all recorded stats (open spans survive: their End() still runs
  // but records into the fresh tables).
  void Clear();

 private:
  CycleProfiler();

  struct Frame {
    std::string stack;
    uint64_t enter_cycles = 0;
    uint64_t child_cycles = 0;
  };

  static bool enabled_;

  std::vector<Frame> frames_;
  std::map<std::string, StackStat> stacks_;
  std::map<std::string, SyscallStat> syscalls_;
};

// Call-site guard: declared inactive, armed only behind the caller's
// enabled() branch so disabled sites build no span-name strings.
//
//   obs::ProfSpan span;
//   if (obs::CycleProfiler::enabled()) span.Begin("deliver." + proc->name);
class ProfSpan {
 public:
  ProfSpan() = default;
  ~ProfSpan() {
    if (active_) {
      CycleProfiler::Get().End();
    }
  }

  void Begin(const std::string& name) {
    CycleProfiler::Get().Begin(name);
    active_ = true;
  }
  void BeginWithParent(const std::string& parent_ctx,
                       const std::string& name) {
    CycleProfiler::Get().BeginWithParent(parent_ctx, name);
    active_ = true;
  }

  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

 private:
  bool active_ = false;
};

}  // namespace obs
}  // namespace asbestos

#endif  // SRC_OBS_PROFILER_H_
