#include "src/obs/provenance.h"

#include "src/kernel/label_checks.h"
#include "src/obs/metrics.h"
#include "src/sim/cycles.h"

namespace asbestos {
namespace obs {

namespace {

// The ledger's own label algebra (gate construction, cumulative lubs,
// clearance checks) must be invisible to the paper's linear work counters:
// recording provenance cannot change the Figure-9 label-work attribution of
// the event being recorded. Restores LabelWorkStats on scope exit.
class ScopedWorkStatsShield {
 public:
  ScopedWorkStatsShield() : saved_(GetLabelWorkStats()) {}
  ~ScopedWorkStatsShield() { GetLabelWorkStats() = saved_; }

  ScopedWorkStatsShield(const ScopedWorkStatsShield&) = delete;
  ScopedWorkStatsShield& operator=(const ScopedWorkStatsShield&) = delete;

 private:
  LabelWorkStats saved_;
};

// Every explicitly-mentioned handle to level 3, default at least
// `default_floor`. Knowing that an event touched compartment h is as secret
// as h-data itself, regardless of the LEVEL the event moved (a ⋆ grant is
// the extreme case: the cause label says ⋆, the knowledge is worth 3).
Label ExposureGate(const Label& l, Level default_floor) {
  LabelBuilder b(LevelMax(l.default_level() == Level::kL3 ? Level::kL1
                                                          : l.default_level(),
                          default_floor));
  for (auto it = l.IterateEntries(); !it.done(); it.Advance()) {
    b.Append(it.handle(), Level::kL3);
  }
  return b.Build();
}

}  // namespace

const char* EdgeKindName(EdgeKind k) {
  switch (k) {
    case EdgeKind::kOrigin:
      return "origin";
    case EdgeKind::kContaminate:
      return "contaminate";
    case EdgeKind::kGrant:
      return "grant";
    case EdgeKind::kDeclassify:
      return "declassify";
    case EdgeKind::kAdopt:
      return "adopt";
  }
  return "?";
}

Label GateFromPrivilege(const Label& privilege) {
  ScopedWorkStatsShield shield;
  return ExposureGate(privilege, Level::kL1);
}

bool ProvenanceLedger::enabled_ = false;

ProvenanceLedger& ProvenanceLedger::Get() {
  static ProvenanceLedger* ledger = new ProvenanceLedger();
  return *ledger;
}

void ProvenanceLedger::NoteGate(uint64_t trace_id, const Label& gate) {
  if (trace_id == 0) {
    return;
  }
  auto it = cumulative_.find(trace_id);
  if (it == cumulative_.end()) {
    cumulative_.emplace(trace_id, gate);
  } else {
    it->second = Label::Lub(it->second, gate);
  }
}

void ProvenanceLedger::RecordEdge(EdgeKind kind, const std::string& subject,
                                  const std::string& source, uint64_t pre_rep,
                                  uint64_t post_rep, const Label& cause,
                                  uint64_t trace_id, const Label* gate) {
  if (!enabled_) {
    return;
  }
  ScopedWorkStatsShield shield;
  TaintEdge e;
  e.id = next_edge_id_++;
  e.kind = kind;
  e.at_cycles = GetCycleAccounting().now();
  e.trace_id = trace_id;
  e.subject = subject;
  e.source = source;
  e.pre_rep = pre_rep;
  e.post_rep = post_rep;
  e.cause_rep = cause.rep_id();
  e.cause = cause;
  if (gate != nullptr) {
    e.gate = *gate;
  } else if (kind == EdgeKind::kContaminate || kind == EdgeKind::kAdopt) {
    // The taint itself is the secret: the edge is as visible as the data.
    e.gate = cause;
  } else {
    // Privilege-shaped cause (⋆ grants, verify declassification, origins):
    // the cause's levels say ⋆/0, the knowledge is worth 3.
    e.gate = ExposureGate(cause, Level::kL1);
  }
  NoteGate(trace_id, e.gate);
  edges_.push_back(std::move(e));
  while (edges_.size() > capacity_) {
    edges_.pop_front();
  }
  static Counter& c = Registry::Get().counter("obs.ledger.edges");
  c.Add();
}

void ProvenanceLedger::RecordRefusal(const std::string& site,
                                     const std::string& subject,
                                     const std::string& detail,
                                     uint64_t handle, Level observed,
                                     Level bound, const Label& es,
                                     const Label& bound_label,
                                     uint64_t trace_id) {
  if (!enabled_) {
    return;
  }
  ScopedWorkStatsShield shield;
  RefusalRecord r;
  r.id = next_refusal_id_++;
  r.at_cycles = GetCycleAccounting().now();
  r.trace_id = trace_id;
  r.site = site;
  r.subject = subject;
  r.detail = detail;
  r.handle = handle;
  r.observed = observed;
  r.bound = bound;
  r.es_rep = es.rep_id();
  r.bound_rep = bound_label.rep_id();
  // A refusal reveals what was presented: gate by the presented label
  // raised to exposure (its handles at 3), so a ⋆-shaped verify refusal is
  // as secret as the compartments it named.
  r.gate = Label::Lub(es, ExposureGate(es, Level::kL1));
  NoteGate(trace_id, r.gate);
  refusals_.push_back(std::move(r));
  while (refusals_.size() > capacity_) {
    refusals_.pop_front();
  }
  static Counter& c = Registry::Get().counter("obs.ledger.refusals");
  c.Add();
}

Label ProvenanceLedger::CumulativeGate(uint64_t trace_id) const {
  auto it = cumulative_.find(trace_id);
  return it == cumulative_.end() ? Label::Bottom() : it->second;
}

void ProvenanceLedger::SetCapacity(size_t cap) {
  capacity_ = cap == 0 ? 1 : cap;
  while (edges_.size() > capacity_) {
    edges_.pop_front();
  }
  while (refusals_.size() > capacity_) {
    refusals_.pop_front();
  }
}

void ProvenanceLedger::Clear() {
  edges_.clear();
  refusals_.clear();
  cumulative_.clear();
}

namespace {

// Reading a record is delivering its history to the reader: the Figure-4
// rule with QR = clearance, DR = ⊥, V = pR = ⊤ reduces to gate ⊑ clearance.
bool GateFlows(const Label& gate, uint64_t trace_id, const Label& clearance) {
  ScopedWorkStatsShield shield;
  uint64_t work = 0;
  Label effective =
      Label::Lub(gate, ProvenanceLedger::Get().CumulativeGate(trace_id));
  return CheckDeliveryAllowed(effective, clearance, Label::Bottom(),
                              Label::Top(), Label::Top(), &work);
}

// Does this edge speak about `handle`? Contamination/adoption edges mention
// it when the cause carries taint there (≥ 2); privilege/origin edges when
// the cause names it explicitly (the interesting levels are ⋆ and 0, below
// every default).
bool EdgeMentions(const TaintEdge& e, uint64_t handle) {
  Handle h = Handle::FromValue(handle);
  if (e.kind == EdgeKind::kContaminate || e.kind == EdgeKind::kAdopt) {
    return LevelLeq(Level::kL2, e.cause.Get(h));
  }
  return e.cause.HasExplicit(h);
}

}  // namespace

bool ProvenanceReader::CanObserveEdge(const TaintEdge& e) const {
  return GateFlows(e.gate, e.trace_id, clearance_);
}

bool ProvenanceReader::CanObserveRefusal(const RefusalRecord& r) const {
  return GateFlows(r.gate, r.trace_id, clearance_);
}

std::vector<TaintEdge> ProvenanceReader::VisibleEdges() const {
  std::vector<TaintEdge> out;
  for (const TaintEdge& e : ProvenanceLedger::Get().edges()) {
    if (CanObserveEdge(e)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<RefusalRecord> ProvenanceReader::VisibleRefusals() const {
  std::vector<RefusalRecord> out;
  for (const RefusalRecord& r : ProvenanceLedger::Get().refusals()) {
    if (CanObserveRefusal(r)) {
      out.push_back(r);
    }
  }
  return out;
}

size_t ProvenanceReader::VisibleEdgeCount() const {
  size_t n = 0;
  for (const TaintEdge& e : ProvenanceLedger::Get().edges()) {
    if (CanObserveEdge(e)) {
      ++n;
    }
  }
  return n;
}

size_t ProvenanceReader::VisibleRefusalCount() const {
  size_t n = 0;
  for (const RefusalRecord& r : ProvenanceLedger::Get().refusals()) {
    if (CanObserveRefusal(r)) {
      ++n;
    }
  }
  return n;
}

std::vector<TaintHop> ProvenanceReader::WhyTainted(const std::string& subject,
                                                   uint64_t handle) const {
  const auto& edges = ProvenanceLedger::Get().edges();
  std::vector<TaintHop> chain;
  std::string current = subject;
  // Start the search above every edge id; each hop must be strictly older
  // than the previous one, which also makes the walk terminate.
  uint64_t below_id = ~0ULL;
  while (true) {
    const TaintEdge* found = nullptr;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      if (it->id >= below_id) {
        continue;
      }
      if (it->subject == current && EdgeMentions(*it, handle)) {
        found = &*it;
        break;
      }
    }
    if (found == nullptr) {
      break;
    }
    // All or nothing: a partial chain would reveal the shape of history the
    // reader is not cleared for.
    if (!CanObserveEdge(*found)) {
      return {};
    }
    TaintHop hop;
    hop.edge = *found;
    hop.via = found->subject;
    if (!found->source.empty()) {
      hop.via += " \xe2\x86\x90 " + found->source;  // "subject ← source"
    }
    hop.via += " [";
    hop.via += EdgeKindName(found->kind);
    hop.via += "]";
    below_id = found->id;
    chain.push_back(std::move(hop));
    if (found->kind == EdgeKind::kOrigin || found->source.empty()) {
      break;
    }
    current = found->source;
  }
  return chain;
}

}  // namespace obs
}  // namespace asbestos
