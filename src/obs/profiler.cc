#include "src/obs/profiler.h"

#include <cstdio>

#include "src/obs/metrics.h"
#include "src/sim/cycles.h"

namespace asbestos {
namespace obs {

bool CycleProfiler::enabled_ = false;

CycleProfiler::CycleProfiler() {
  // Module-global gauge group (never unregistered): publishes the flat
  // syscall table and tree totals at snapshot time under obs.prof.*.
  Registry::Get().RegisterGauges([this](GaugeSink& sink) {
    sink.Set("obs.prof.enabled", static_cast<uint64_t>(enabled_ ? 1 : 0));
    uint64_t spans = 0;
    uint64_t self_total = 0;
    for (const auto& [stack, st] : stacks_) {
      spans += st.count;
      self_total += st.self_cycles;
    }
    sink.Set("obs.prof.spans_recorded", spans);
    sink.Set("obs.prof.distinct_stacks", static_cast<uint64_t>(stacks_.size()));
    sink.Set("obs.prof.self_cycles_total", self_total);
    for (const auto& [key, st] : syscalls_) {
      sink.Set("obs.prof.sys." + key + ".cycles", st.cycles);
      sink.Set("obs.prof.sys." + key + ".calls", st.calls);
    }
  });
}

CycleProfiler& CycleProfiler::Get() {
  static CycleProfiler* prof = new CycleProfiler();
  return *prof;
}

void CycleProfiler::Begin(const std::string& name) {
  Frame f;
  f.stack = frames_.empty() ? name : frames_.back().stack + ";" + name;
  f.enter_cycles = GetCycleAccounting().now();
  frames_.push_back(std::move(f));
}

void CycleProfiler::BeginWithParent(const std::string& parent_ctx,
                                    const std::string& name) {
  Frame f;
  f.stack = parent_ctx.empty() ? name : parent_ctx + ";" + name;
  f.enter_cycles = GetCycleAccounting().now();
  frames_.push_back(std::move(f));
}

void CycleProfiler::End() {
  if (frames_.empty()) {
    return;
  }
  Frame f = std::move(frames_.back());
  frames_.pop_back();
  uint64_t total = GetCycleAccounting().now() - f.enter_cycles;
  uint64_t self = total >= f.child_cycles ? total - f.child_cycles : 0;
  StackStat& st = stacks_[f.stack];
  st.self_cycles += self;
  st.total_cycles += total;
  st.count += 1;
  // The enclosing LOCAL span paid these cycles too, whatever stack string
  // this span recorded under (a cross-wire span still ran inside it).
  if (!frames_.empty()) {
    frames_.back().child_cycles += total;
  }
}

std::string CycleProfiler::current_stack() const {
  return frames_.empty() ? std::string() : frames_.back().stack;
}

void CycleProfiler::AttributeSyscall(const std::string& process,
                                     const char* syscall, uint64_t cycles) {
  SyscallStat& st = syscalls_[process + "." + syscall];
  st.cycles += cycles;
  st.calls += 1;
}

std::string CycleProfiler::CollapsedStacks() const {
  std::string out;
  char buf[32];
  for (const auto& [stack, st] : stacks_) {
    if (st.self_cycles == 0) {
      continue;
    }
    out += stack;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(st.self_cycles));
    out += buf;
  }
  return out;
}

void CycleProfiler::Clear() {
  stacks_.clear();
  syscalls_.clear();
}

}  // namespace obs
}  // namespace asbestos
