#include "src/obs/trace.h"

#include <cstdio>

#include "src/kernel/label_checks.h"
#include "src/obs/metrics.h"
#include "src/sim/cycles.h"

namespace asbestos {
namespace obs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool TraceRing::enabled_ = false;

TraceRing& TraceRing::Get() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

void TraceRing::Emit(uint64_t trace_id, const std::string& component,
                     const std::string& name, const std::string& detail,
                     const Label& label) {
  if (!enabled_) {
    return;
  }
  SpanEvent ev;
  ev.trace_id = trace_id;
  ev.seq = next_seq_++;
  ev.at_cycles = GetCycleAccounting().now();
  ev.component = component;
  ev.name = name;
  ev.detail = detail;
  ev.label = label;
  auto it = cumulative_.find(trace_id);
  if (it == cumulative_.end()) {
    cumulative_.emplace(trace_id, label);
  } else {
    it->second = Label::Lub(it->second, label);
  }
  events_.push_back(std::move(ev));
  while (events_.size() > capacity_) {
    events_.pop_front();
  }
  static Counter& emitted = Registry::Get().counter("trace.events_emitted");
  emitted.Add();
}

Label TraceRing::CumulativeLabel(uint64_t trace_id) const {
  auto it = cumulative_.find(trace_id);
  return it == cumulative_.end() ? Label::Bottom() : it->second;
}

void TraceRing::SetCapacity(size_t cap) {
  capacity_ = cap == 0 ? 1 : cap;
  while (events_.size() > capacity_) {
    events_.pop_front();
  }
}

void TraceRing::Clear() {
  events_.clear();
  cumulative_.clear();
}

bool TraceReader::CanObserve(uint64_t trace_id) const {
  // The delivery rule of Eq. (5) with only the receive label in play:
  // ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR with QR = clearance, DR = ⊥, V = pR = ⊤
  // reduces to  cumulative ⊑ clearance — reading a trace is delivering its
  // history to the reader.
  uint64_t work = 0;
  return CheckDeliveryAllowed(TraceRing::Get().CumulativeLabel(trace_id),
                              clearance_, Label::Bottom(), Label::Top(),
                              Label::Top(), &work);
}

std::vector<SpanEvent> TraceReader::Visible() const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& ev : TraceRing::Get().events()) {
    if (CanObserve(ev.trace_id)) {
      out.push_back(ev);
    }
  }
  return out;
}

size_t TraceReader::VisibleCount() const {
  size_t n = 0;
  for (const SpanEvent& ev : TraceRing::Get().events()) {
    if (CanObserve(ev.trace_id)) {
      ++n;
    }
  }
  return n;
}

std::string TraceReader::VisibleJson() const {
  std::string out = "[";
  bool first = true;
  char buf[64];
  for (const SpanEvent& ev : Visible()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  {";
    std::snprintf(buf, sizeof(buf), "\"trace_id\": %llu, ",
                  static_cast<unsigned long long>(ev.trace_id));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"seq\": %llu, ",
                  static_cast<unsigned long long>(ev.seq));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"at_cycles\": %llu, ",
                  static_cast<unsigned long long>(ev.at_cycles));
    out += buf;
    out += "\"component\": \"" + EscapeJson(ev.component) + "\", ";
    out += "\"name\": \"" + EscapeJson(ev.name) + "\", ";
    out += "\"detail\": \"" + EscapeJson(ev.detail) + "\", ";
    out += "\"label\": \"" + EscapeJson(ev.label.ToString()) + "\"}";
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace obs
}  // namespace asbestos
