// SQL tokenizer.
#ifndef SRC_DB_SQL_TOKENIZER_H_
#define SRC_DB_SQL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace asbestos {

struct SqlToken {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // idents uppercased for keyword matching; strings decoded

  bool IsSymbol(std::string_view s) const { return kind == Kind::kSymbol && text == s; }
  bool IsKeyword(std::string_view upper) const { return kind == Kind::kIdent && text == upper; }
};

// Splits SQL into tokens. Identifiers are uppercased (the engine treats
// identifiers case-insensitively); string literals keep their exact bytes.
Result<std::vector<SqlToken>> TokenizeSql(std::string_view sql);

}  // namespace asbestos

#endif  // SRC_DB_SQL_TOKENIZER_H_
