// SQL statement AST and parser. Supported dialect:
//
//   CREATE TABLE t (col TYPE [PRIMARY KEY], ...)
//   CREATE INDEX idx ON t (col)
//   INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')
//   SELECT a, b | * FROM t [WHERE p AND p ...] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET a = 1, b = 'x' [WHERE ...]
//   DELETE FROM t [WHERE ...]
//
// Predicates are comparisons between a column and a literal; conjunctions
// only (what OKWS needs, and enough to exercise index selection).
#ifndef SRC_DB_SQL_PARSER_H_
#define SRC_DB_SQL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "src/base/result.h"
#include "src/db/sql_value.h"

namespace asbestos {

enum class SqlCompare { kEq, kNe, kLt, kLe, kGt, kGe };

struct SqlPredicate {
  std::string column;
  SqlCompare op = SqlCompare::kEq;
  SqlValue literal;
};

struct SqlColumnDef {
  std::string name;
  SqlType type = SqlType::kText;
  bool primary_key = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<SqlColumnDef> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;
};

struct SelectStmt {
  std::string table;
  bool star = false;
  std::vector<std::string> columns;
  std::vector<SqlPredicate> where;
  std::string order_by;  // empty = storage order
  bool order_desc = false;
  int64_t limit = -1;    // -1 = unlimited
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlValue>> sets;
  std::vector<SqlPredicate> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<SqlPredicate> where;
};

using SqlStatement =
    std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt, SelectStmt, UpdateStmt, DeleteStmt>;

Result<SqlStatement> ParseSql(std::string_view sql);

// True when the statement cannot mutate — exactly SELECT in this dialect.
// This is the read/write split the follower-read plane routes on: OKWS tags
// read-only db traffic (dbproxy_proto::kFlagReadOnly) and dbproxy rejects a
// tag that lies.
bool IsReadOnlySql(const SqlStatement& stmt);

// String-level classification for callers that don't keep the AST: parses
// and reports IsReadOnlySql. Unparsable SQL classifies as a WRITE — fail
// toward the primary, never toward a follower.
bool ClassifyReadOnlySql(std::string_view sql);

}  // namespace asbestos

#endif  // SRC_DB_SQL_PARSER_H_
