#include "src/db/sql_value.h"

#include "src/base/strings.h"

namespace asbestos {

int64_t SqlValue::AsInt() const {
  if (const auto* i = std::get_if<int64_t>(&v_)) {
    return *i;
  }
  return 0;
}

std::string SqlValue::AsText() const {
  if (const auto* s = std::get_if<std::string>(&v_)) {
    return *s;
  }
  if (const auto* i = std::get_if<int64_t>(&v_)) {
    return StrFormat("%lld", static_cast<long long>(*i));
  }
  return "";
}

int SqlValue::Compare(const SqlValue& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) {
      return 0;
    }
    return is_null() ? -1 : 1;
  }
  if (is_int() && other.is_int()) {
    const int64_t a = AsInt();
    const int64_t b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const std::string a = AsText();
  const std::string b = other.AsText();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string SqlValue::ToLiteral() const {
  if (is_null()) {
    return "NULL";
  }
  if (is_int()) {
    return AsText();
  }
  std::string out = "'";
  for (char c : AsText()) {
    if (c == '\'') {
      out += "''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

}  // namespace asbestos
