#include "src/db/sql_engine.h"

#include <algorithm>

#include "src/base/panic.h"

namespace asbestos {
namespace {

bool CompareMatches(int cmp, SqlCompare op) {
  switch (op) {
    case SqlCompare::kEq:
      return cmp == 0;
    case SqlCompare::kNe:
      return cmp != 0;
    case SqlCompare::kLt:
      return cmp < 0;
    case SqlCompare::kLe:
      return cmp <= 0;
    case SqlCompare::kGt:
      return cmp > 0;
    case SqlCompare::kGe:
      return cmp >= 0;
  }
  return false;
}

uint64_t RowBytes(const std::vector<SqlValue>& row) {
  uint64_t bytes = 24;  // per-row bookkeeping
  for (const SqlValue& v : row) {
    bytes += 16 + v.AsText().size();
  }
  return bytes;
}

}  // namespace

SqlTable::SqlTable(std::vector<SqlColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) {
      indexes_[static_cast<int>(i)];  // primary keys are always indexed
    }
  }
}

int SqlTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status SqlTable::AddIndex(const std::string& column) {
  const int ci = ColumnIndex(column);
  if (ci < 0) {
    return Status::kNotFound;
  }
  auto [it, inserted] = indexes_.try_emplace(ci);
  if (!inserted) {
    return Status::kAlreadyExists;
  }
  for (const auto& [rid, row] : rows_) {
    it->second.emplace(row[static_cast<size_t>(ci)].AsText(), rid);
  }
  return Status::kOk;
}

bool SqlTable::HasIndex(const std::string& column) const {
  const int ci = ColumnIndex(column);
  return ci >= 0 && indexes_.count(ci) != 0;
}

Status SqlTable::InsertRow(std::vector<SqlValue> row) {
  ASB_ASSERT(row.size() == columns_.size());
  // Enforce primary-key uniqueness.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].primary_key) {
      continue;
    }
    auto idx = indexes_.find(static_cast<int>(i));
    ASB_ASSERT(idx != indexes_.end());
    if (idx->second.count(row[i].AsText()) != 0) {
      return Status::kAlreadyExists;
    }
  }
  const RowId rid = next_row_id_++;
  for (auto& [ci, index] : indexes_) {
    index.emplace(row[static_cast<size_t>(ci)].AsText(), rid);
  }
  approx_bytes_ += RowBytes(row);
  rows_.emplace(rid, std::move(row));
  return Status::kOk;
}

bool SqlTable::RowMatches(const std::vector<SqlValue>& row,
                          const std::vector<SqlPredicate>& where) const {
  for (const SqlPredicate& p : where) {
    const int ci = ColumnIndex(p.column);
    if (ci < 0) {
      return false;
    }
    if (!CompareMatches(row[static_cast<size_t>(ci)].Compare(p.literal), p.op)) {
      return false;
    }
  }
  return true;
}

std::vector<SqlTable::RowId> SqlTable::Scan(const std::vector<SqlPredicate>& where,
                                            QueryResult* stats) const {
  // Pick an indexed equality predicate if one exists; otherwise full scan.
  for (const SqlPredicate& p : where) {
    if (p.op != SqlCompare::kEq) {
      continue;
    }
    const int ci = ColumnIndex(p.column);
    auto idx = indexes_.find(ci);
    if (ci < 0 || idx == indexes_.end()) {
      continue;
    }
    stats->index_probes += 1;
    std::vector<RowId> out;
    auto [lo, hi] = idx->second.equal_range(p.literal.AsText());
    for (auto it = lo; it != hi; ++it) {
      stats->rows_visited += 1;
      const auto& row = rows_.at(it->second);
      if (RowMatches(row, where)) {
        out.push_back(it->second);
      }
    }
    return out;
  }
  std::vector<RowId> out;
  for (const auto& [rid, row] : rows_) {
    stats->rows_visited += 1;
    if (RowMatches(row, where)) {
      out.push_back(rid);
    }
  }
  return out;
}

Result<QueryResult> SqlDatabase::Execute(std::string_view sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) {
    return stmt.status();
  }
  return ExecuteStmt(stmt.value());
}

Result<QueryResult> SqlDatabase::ExecuteStmt(const SqlStatement& stmt) {
  return std::visit(
      [this](const auto& s) -> Result<QueryResult> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          return DoCreateTable(s);
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          return DoCreateIndex(s);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return DoInsert(s);
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          return DoSelect(s);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          return DoUpdate(s);
        } else {
          return DoDelete(s);
        }
      },
      stmt);
}

SqlTable* SqlDatabase::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

uint64_t SqlDatabase::approx_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table.approx_bytes();
  }
  return total;
}

Result<QueryResult> SqlDatabase::DoCreateTable(const CreateTableStmt& stmt) {
  if (tables_.count(stmt.table) != 0) {
    return Status::kAlreadyExists;
  }
  tables_.emplace(stmt.table, SqlTable(stmt.columns));
  return QueryResult{};
}

Result<QueryResult> SqlDatabase::DoCreateIndex(const CreateIndexStmt& stmt) {
  SqlTable* t = FindTable(stmt.table);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  const Status s = t->AddIndex(stmt.column);
  if (s != Status::kOk) {
    return s;
  }
  return QueryResult{};
}

Result<QueryResult> SqlDatabase::DoInsert(const InsertStmt& stmt) {
  SqlTable* t = FindTable(stmt.table);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  std::vector<int> positions;
  positions.reserve(stmt.columns.size());
  for (const std::string& c : stmt.columns) {
    const int ci = t->ColumnIndex(c);
    if (ci < 0) {
      return Status::kNotFound;
    }
    positions.push_back(ci);
  }
  QueryResult result;
  for (const auto& values : stmt.rows) {
    std::vector<SqlValue> row(t->columns().size());
    for (size_t i = 0; i < values.size(); ++i) {
      row[static_cast<size_t>(positions[i])] = values[i];
    }
    const Status s = t->InsertRow(std::move(row));
    if (s != Status::kOk) {
      return s;
    }
    result.rows_affected += 1;
  }
  return result;
}

Result<QueryResult> SqlDatabase::DoSelect(const SelectStmt& stmt) {
  SqlTable* t = FindTable(stmt.table);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  QueryResult result;
  std::vector<int> out_cols;
  if (stmt.star) {
    for (size_t i = 0; i < t->columns().size(); ++i) {
      out_cols.push_back(static_cast<int>(i));
      result.columns.push_back(t->columns()[i].name);
    }
  } else {
    for (const std::string& c : stmt.columns) {
      const int ci = t->ColumnIndex(c);
      if (ci < 0) {
        return Status::kNotFound;
      }
      out_cols.push_back(ci);
      result.columns.push_back(c);
    }
  }
  for (const SqlPredicate& p : stmt.where) {
    if (t->ColumnIndex(p.column) < 0) {
      return Status::kNotFound;
    }
  }

  std::vector<SqlTable::RowId> ids = t->Scan(stmt.where, &result);
  if (!stmt.order_by.empty()) {
    const int oc = t->ColumnIndex(stmt.order_by);
    if (oc < 0) {
      return Status::kNotFound;
    }
    std::stable_sort(ids.begin(), ids.end(), [&](SqlTable::RowId a, SqlTable::RowId b) {
      const int cmp = t->rows_.at(a)[static_cast<size_t>(oc)].Compare(
          t->rows_.at(b)[static_cast<size_t>(oc)]);
      return stmt.order_desc ? cmp > 0 : cmp < 0;
    });
  }
  for (SqlTable::RowId rid : ids) {
    if (stmt.limit >= 0 && static_cast<int64_t>(result.rows.size()) >= stmt.limit) {
      break;
    }
    const auto& row = t->rows_.at(rid);
    std::vector<SqlValue> out;
    out.reserve(out_cols.size());
    for (int ci : out_cols) {
      out.push_back(row[static_cast<size_t>(ci)]);
    }
    result.rows.push_back(std::move(out));
  }
  return result;
}

Result<QueryResult> SqlDatabase::DoUpdate(const UpdateStmt& stmt) {
  SqlTable* t = FindTable(stmt.table);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  std::vector<std::pair<int, SqlValue>> sets;
  for (const auto& [col, v] : stmt.sets) {
    const int ci = t->ColumnIndex(col);
    if (ci < 0) {
      return Status::kNotFound;
    }
    sets.emplace_back(ci, v);
  }
  QueryResult result;
  for (SqlTable::RowId rid : t->Scan(stmt.where, &result)) {
    auto& row = t->rows_.at(rid);
    for (const auto& [ci, v] : sets) {
      // Keep affected indexes in sync.
      auto idx = t->indexes_.find(ci);
      if (idx != t->indexes_.end()) {
        auto [lo, hi] = idx->second.equal_range(row[static_cast<size_t>(ci)].AsText());
        for (auto it = lo; it != hi; ++it) {
          if (it->second == rid) {
            idx->second.erase(it);
            break;
          }
        }
        idx->second.emplace(v.AsText(), rid);
      }
      row[static_cast<size_t>(ci)] = v;
    }
    result.rows_affected += 1;
  }
  return result;
}

Result<QueryResult> SqlDatabase::DoDelete(const DeleteStmt& stmt) {
  SqlTable* t = FindTable(stmt.table);
  if (t == nullptr) {
    return Status::kNotFound;
  }
  QueryResult result;
  for (SqlTable::RowId rid : t->Scan(stmt.where, &result)) {
    auto& row = t->rows_.at(rid);
    for (auto& [ci, index] : t->indexes_) {
      auto [lo, hi] = index.equal_range(row[static_cast<size_t>(ci)].AsText());
      for (auto it = lo; it != hi; ++it) {
        if (it->second == rid) {
          index.erase(it);
          break;
        }
      }
    }
    t->approx_bytes_ -= RowBytes(row);
    t->rows_.erase(rid);
    result.rows_affected += 1;
  }
  return result;
}

}  // namespace asbestos
