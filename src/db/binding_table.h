// Flat interned per-user binding table (million-compartment scale).
//
// idd and ok-dbproxy each keep one record per user forever ("never cleans
// its cache", §7.4-7.5). The original std::map<std::string, ...> pair costs
// three red-black nodes and two or three heap strings per user; at 10^5-10^6
// users that dominates the per-user footprint the paper says should be flat.
// This table applies the same discipline PR 3 applied to labels: intern the
// variable-length data once in an append-only arena, keep fixed-width
// records densely, and index with sorted vectors of record ids.
//
// Layout:
//   arena_  — every username/aux string, appended once (interned)
//   recs_   — append-only fixed-width records; a record id is stable forever
//   by_name_/name_tail_, by_id_/id_tail_ — LSM-ish two-level sorted indexes:
//     inserts binary-search the small tail; when the tail outgrows
//     max(64, base/8) it merges into the base. Sorted arrival order (the
//     benches' user%06d) degenerates to pure appends.
//
// Byte accounting is global (GetBindingMemStats) and surfaces as
// KernelMemReport::binding_bytes when scale accounting is enabled.
#ifndef SRC_DB_BINDING_TABLE_H_
#define SRC_DB_BINDING_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/labels/handle.h"

namespace asbestos {

class BindingTable {
 public:
  struct Entry {
    Handle taint;   // uT
    Handle grant;   // uG
    int64_t user_id = 0;
  };

  BindingTable();
  ~BindingTable();
  BindingTable(const BindingTable&) = delete;
  BindingTable& operator=(const BindingTable&) = delete;

  // Inserts or updates the binding for `name`. `aux` is an optional second
  // interned payload (idd stores the verified password there). An update
  // reuses the interned name; a changed aux re-interns only the aux.
  void Put(std::string_view name, const Entry& entry, std::string_view aux = {});

  // nullptr when absent. The pointer is invalidated by the next Put.
  const Entry* Find(std::string_view name) const;
  const Entry* FindById(int64_t user_id) const;

  // The aux payload stored with `name` ("" when absent). Invalidated by Put.
  std::string_view AuxOf(std::string_view name) const;
  // Updates only the aux payload; false when `name` is absent.
  bool SetAux(std::string_view name, std::string_view aux);

  size_t size() const { return recs_.size(); }
  // Real bytes this table holds: arena + records + index vectors.
  uint64_t table_bytes() const;

  // Iterates every binding in insertion order: fn(name, entry, aux).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Rec& r : recs_) {
      fn(StringAt(r.name_off, r.name_len), r.entry,
         StringAt(r.aux_off, r.aux_len));
    }
  }

 private:
  struct Rec {
    uint32_t name_off = 0;
    uint32_t name_len = 0;
    uint32_t aux_off = 0;
    uint32_t aux_len = 0;
    Entry entry;
  };

  std::string_view StringAt(uint32_t off, uint32_t len) const {
    return std::string_view(arena_).substr(off, len);
  }
  std::string_view NameOf(uint32_t rec) const {
    return StringAt(recs_[rec].name_off, recs_[rec].name_len);
  }

  // Index of the record with `name`, or SIZE_MAX. Probes tail then base.
  size_t FindRec(std::string_view name) const;
  size_t FindRecById(int64_t user_id) const;
  uint32_t InternString(std::string_view s);
  void InsertSortedByName(uint32_t rec);
  void InsertSortedById(uint32_t rec);
  void RebuildIdIndex();
  // Publishes current table_bytes()/size() into the global BindingMemStats.
  void SyncAccounting();

  std::string arena_;
  std::vector<Rec> recs_;
  std::vector<uint32_t> by_name_;    // record ids, sorted by name
  std::vector<uint32_t> name_tail_;  // recent inserts, sorted, small
  std::vector<uint32_t> by_id_;      // record ids, sorted by entry.user_id
  std::vector<uint32_t> id_tail_;
  // Set when a Put rewrote an existing record's user_id in place; the id
  // indexes are rebuilt lazily on the next FindById.
  bool id_index_dirty_ = false;
  uint64_t accounted_bytes_ = 0;
  int64_t accounted_entries_ = 0;
};

}  // namespace asbestos

#endif  // SRC_DB_BINDING_TABLE_H_
