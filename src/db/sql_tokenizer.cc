#include "src/db/sql_tokenizer.h"

#include <cctype>

namespace asbestos {

Result<std::vector<SqlToken>> TokenizeSql(std::string_view sql) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) != 0 || sql[j] == '_')) {
        ++j;
      }
      SqlToken t;
      t.kind = SqlToken::Kind::kIdent;
      t.text.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        t.text.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(sql[k]))));
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])) != 0)) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j])) != 0) {
        ++j;
      }
      SqlToken t;
      t.kind = SqlToken::Kind::kNumber;
      t.text = std::string(sql.substr(i, j - i));
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      SqlToken t;
      t.kind = SqlToken::Kind::kString;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // doubled quote escape
            t.text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        t.text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::kInvalidArgs;
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Symbols, including the two-char comparators.
    SqlToken t;
    t.kind = SqlToken::Kind::kSymbol;
    if (i + 1 < n) {
      const std::string_view two = sql.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        t.text = two == "<>" ? "!=" : std::string(two);
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "(),=<>*;";
    if (kSingles.find(c) == std::string_view::npos) {
      return Status::kInvalidArgs;
    }
    t.text = std::string(1, c);
    tokens.push_back(std::move(t));
    ++i;
  }
  SqlToken end;
  end.kind = SqlToken::Kind::kEnd;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace asbestos
