#include "src/db/binding_table.h"

#include <algorithm>
#include <cstddef>

#include "src/kernel/memstats.h"

namespace asbestos {

namespace {

// Tail merge threshold: big enough that merges are rare, small enough that
// the binary-searched tail stays cache-resident.
size_t TailLimit(size_t base_size) { return std::max<size_t>(64, base_size / 8); }

// Merges the sorted `tail` into the sorted `base` (both hold values sorted
// by `less`), in place, then clears the tail.
template <typename Less>
void MergeTail(std::vector<uint32_t>* base, std::vector<uint32_t>* tail, Less less) {
  if (tail->empty()) {
    return;
  }
  const size_t old = base->size();
  base->insert(base->end(), tail->begin(), tail->end());
  std::inplace_merge(base->begin(), base->begin() + static_cast<ptrdiff_t>(old),
                     base->end(), less);
  tail->clear();
  tail->shrink_to_fit();
}

}  // namespace

BindingTable::BindingTable() = default;

BindingTable::~BindingTable() {
  BindingMemStats& g = MutableBindingMemStats();
  g.live_bytes -= static_cast<int64_t>(accounted_bytes_);
  g.live_entries -= accounted_entries_;
}

uint64_t BindingTable::table_bytes() const {
  return arena_.size() + recs_.size() * sizeof(Rec) +
         (by_name_.size() + name_tail_.size() + by_id_.size() + id_tail_.size()) *
             sizeof(uint32_t);
}

void BindingTable::SyncAccounting() {
  BindingMemStats& g = MutableBindingMemStats();
  const uint64_t bytes = table_bytes();
  const auto entries = static_cast<int64_t>(recs_.size());
  g.live_bytes += static_cast<int64_t>(bytes) - static_cast<int64_t>(accounted_bytes_);
  g.live_entries += entries - accounted_entries_;
  accounted_bytes_ = bytes;
  accounted_entries_ = entries;
}

uint32_t BindingTable::InternString(std::string_view s) {
  const auto off = static_cast<uint32_t>(arena_.size());
  arena_.append(s);
  return off;
}

size_t BindingTable::FindRec(std::string_view name) const {
  const auto less = [this](uint32_t rec, std::string_view key) {
    return NameOf(rec) < key;
  };
  for (const std::vector<uint32_t>* index : {&name_tail_, &by_name_}) {
    auto it = std::lower_bound(index->begin(), index->end(), name, less);
    if (it != index->end() && NameOf(*it) == name) {
      return *it;
    }
  }
  return SIZE_MAX;
}

size_t BindingTable::FindRecById(int64_t user_id) const {
  const auto less = [this](uint32_t rec, int64_t key) {
    return recs_[rec].entry.user_id < key;
  };
  for (const std::vector<uint32_t>* index : {&id_tail_, &by_id_}) {
    auto it = std::lower_bound(index->begin(), index->end(), user_id, less);
    if (it != index->end() && recs_[*it].entry.user_id == user_id) {
      return *it;
    }
  }
  return SIZE_MAX;
}

void BindingTable::InsertSortedByName(uint32_t rec) {
  const auto less = [this](uint32_t a, uint32_t b) { return NameOf(a) < NameOf(b); };
  name_tail_.insert(
      std::lower_bound(name_tail_.begin(), name_tail_.end(), rec, less), rec);
  if (name_tail_.size() > TailLimit(by_name_.size())) {
    MergeTail(&by_name_, &name_tail_, less);
  }
}

void BindingTable::InsertSortedById(uint32_t rec) {
  const auto less = [this](uint32_t a, uint32_t b) {
    return recs_[a].entry.user_id < recs_[b].entry.user_id;
  };
  id_tail_.insert(std::lower_bound(id_tail_.begin(), id_tail_.end(), rec, less), rec);
  if (id_tail_.size() > TailLimit(by_id_.size())) {
    MergeTail(&by_id_, &id_tail_, less);
  }
}

void BindingTable::RebuildIdIndex() {
  by_id_.clear();
  by_id_.reserve(recs_.size());
  for (uint32_t i = 0; i < recs_.size(); ++i) {
    by_id_.push_back(i);
  }
  std::sort(by_id_.begin(), by_id_.end(), [this](uint32_t a, uint32_t b) {
    return recs_[a].entry.user_id < recs_[b].entry.user_id;
  });
  id_tail_.clear();
  id_tail_.shrink_to_fit();
  id_index_dirty_ = false;
}

void BindingTable::Put(std::string_view name, const Entry& entry, std::string_view aux) {
  const size_t existing = FindRec(name);
  if (existing != SIZE_MAX) {
    Rec& r = recs_[existing];
    if (r.entry.user_id != entry.user_id) {
      id_index_dirty_ = true;  // positions in the id indexes are now stale
    }
    r.entry = entry;
    if (aux != StringAt(r.aux_off, r.aux_len)) {
      r.aux_off = InternString(aux);
      r.aux_len = static_cast<uint32_t>(aux.size());
    }
    SyncAccounting();
    return;
  }
  Rec r;
  r.name_off = InternString(name);
  r.name_len = static_cast<uint32_t>(name.size());
  r.aux_off = InternString(aux);
  r.aux_len = static_cast<uint32_t>(aux.size());
  r.entry = entry;
  const auto rec = static_cast<uint32_t>(recs_.size());
  recs_.push_back(r);
  InsertSortedByName(rec);
  if (id_index_dirty_) {
    RebuildIdIndex();
  } else {
    InsertSortedById(rec);
  }
  SyncAccounting();
}

const BindingTable::Entry* BindingTable::Find(std::string_view name) const {
  const size_t rec = FindRec(name);
  return rec == SIZE_MAX ? nullptr : &recs_[rec].entry;
}

const BindingTable::Entry* BindingTable::FindById(int64_t user_id) const {
  if (id_index_dirty_) {
    const_cast<BindingTable*>(this)->RebuildIdIndex();
  }
  const size_t rec = FindRecById(user_id);
  return rec == SIZE_MAX ? nullptr : &recs_[rec].entry;
}

std::string_view BindingTable::AuxOf(std::string_view name) const {
  const size_t rec = FindRec(name);
  if (rec == SIZE_MAX) {
    return {};
  }
  return StringAt(recs_[rec].aux_off, recs_[rec].aux_len);
}

bool BindingTable::SetAux(std::string_view name, std::string_view aux) {
  const size_t rec = FindRec(name);
  if (rec == SIZE_MAX) {
    return false;
  }
  Rec& r = recs_[rec];
  if (aux != StringAt(r.aux_off, r.aux_len)) {
    r.aux_off = InternString(aux);
    r.aux_len = static_cast<uint32_t>(aux.size());
  }
  SyncAccounting();
  return true;
}

}  // namespace asbestos
