#include "src/db/sql_parser.h"

#include "src/base/strings.h"
#include "src/db/sql_tokenizer.h"

namespace asbestos {
namespace {

// Recursive-descent over the token stream with one token of lookahead.
class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> Parse() {
    if (Accept("CREATE")) {
      if (Accept("TABLE")) {
        return ParseCreateTable();
      }
      if (Accept("INDEX")) {
        return ParseCreateIndex();
      }
      return Status::kInvalidArgs;
    }
    if (Accept("INSERT")) {
      return ParseInsert();
    }
    if (Accept("SELECT")) {
      return ParseSelect();
    }
    if (Accept("UPDATE")) {
      return ParseUpdate();
    }
    if (Accept("DELETE")) {
      return ParseDelete();
    }
    return Status::kInvalidArgs;
  }

 private:
  const SqlToken& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (Peek().kind != SqlToken::Kind::kEnd) {
      ++pos_;
    }
  }

  bool Accept(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }

  bool TakeIdent(std::string* out) {
    if (Peek().kind != SqlToken::Kind::kIdent) {
      return false;
    }
    *out = Peek().text;
    Advance();
    return true;
  }

  bool TakeLiteral(SqlValue* out) {
    const SqlToken& t = Peek();
    if (t.kind == SqlToken::Kind::kNumber) {
      *out = SqlValue(static_cast<int64_t>(std::stoll(t.text)));
      Advance();
      return true;
    }
    if (t.kind == SqlToken::Kind::kString) {
      *out = SqlValue(t.text);
      Advance();
      return true;
    }
    if (t.IsKeyword("NULL")) {
      *out = SqlValue();
      Advance();
      return true;
    }
    return false;
  }

  bool AtEnd() {
    AcceptSymbol(";");
    return Peek().kind == SqlToken::Kind::kEnd;
  }

  Result<SqlStatement> ParseCreateTable() {
    CreateTableStmt stmt;
    if (!TakeIdent(&stmt.table) || !AcceptSymbol("(")) {
      return Status::kInvalidArgs;
    }
    do {
      SqlColumnDef col;
      if (!TakeIdent(&col.name)) {
        return Status::kInvalidArgs;
      }
      std::string type;
      if (!TakeIdent(&type)) {
        return Status::kInvalidArgs;
      }
      if (type == "INTEGER" || type == "INT") {
        col.type = SqlType::kInteger;
      } else if (type == "TEXT" || type == "VARCHAR") {
        col.type = SqlType::kText;
      } else {
        return Status::kInvalidArgs;
      }
      if (Accept("PRIMARY")) {
        if (!Accept("KEY")) {
          return Status::kInvalidArgs;
        }
        col.primary_key = true;
      }
      stmt.columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    if (!AcceptSymbol(")") || !AtEnd() || stmt.columns.empty()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseCreateIndex() {
    CreateIndexStmt stmt;
    if (!TakeIdent(&stmt.index) || !Accept("ON") || !TakeIdent(&stmt.table) ||
        !AcceptSymbol("(") || !TakeIdent(&stmt.column) || !AcceptSymbol(")") || !AtEnd()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseInsert() {
    InsertStmt stmt;
    if (!Accept("INTO") || !TakeIdent(&stmt.table) || !AcceptSymbol("(")) {
      return Status::kInvalidArgs;
    }
    do {
      std::string col;
      if (!TakeIdent(&col)) {
        return Status::kInvalidArgs;
      }
      stmt.columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    if (!AcceptSymbol(")") || !Accept("VALUES")) {
      return Status::kInvalidArgs;
    }
    do {
      if (!AcceptSymbol("(")) {
        return Status::kInvalidArgs;
      }
      std::vector<SqlValue> row;
      do {
        SqlValue v;
        if (!TakeLiteral(&v)) {
          return Status::kInvalidArgs;
        }
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      if (!AcceptSymbol(")") || row.size() != stmt.columns.size()) {
        return Status::kInvalidArgs;
      }
      stmt.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    if (!AtEnd()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  bool ParseWhere(std::vector<SqlPredicate>* where) {
    if (!Accept("WHERE")) {
      return true;  // optional
    }
    do {
      SqlPredicate p;
      if (!TakeIdent(&p.column)) {
        return false;
      }
      const SqlToken& op = Peek();
      if (op.IsSymbol("=")) {
        p.op = SqlCompare::kEq;
      } else if (op.IsSymbol("!=")) {
        p.op = SqlCompare::kNe;
      } else if (op.IsSymbol("<")) {
        p.op = SqlCompare::kLt;
      } else if (op.IsSymbol("<=")) {
        p.op = SqlCompare::kLe;
      } else if (op.IsSymbol(">")) {
        p.op = SqlCompare::kGt;
      } else if (op.IsSymbol(">=")) {
        p.op = SqlCompare::kGe;
      } else {
        return false;
      }
      Advance();
      if (!TakeLiteral(&p.literal)) {
        return false;
      }
      where->push_back(std::move(p));
    } while (Accept("AND"));
    return true;
  }

  Result<SqlStatement> ParseSelect() {
    SelectStmt stmt;
    if (AcceptSymbol("*")) {
      stmt.star = true;
    } else {
      do {
        std::string col;
        if (!TakeIdent(&col)) {
          return Status::kInvalidArgs;
        }
        stmt.columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (!Accept("FROM") || !TakeIdent(&stmt.table)) {
      return Status::kInvalidArgs;
    }
    if (!ParseWhere(&stmt.where)) {
      return Status::kInvalidArgs;
    }
    if (Accept("ORDER")) {
      if (!Accept("BY") || !TakeIdent(&stmt.order_by)) {
        return Status::kInvalidArgs;
      }
      if (Accept("DESC")) {
        stmt.order_desc = true;
      } else {
        Accept("ASC");
      }
    }
    if (Accept("LIMIT")) {
      SqlValue v;
      if (!TakeLiteral(&v) || !v.is_int() || v.AsInt() < 0) {
        return Status::kInvalidArgs;
      }
      stmt.limit = v.AsInt();
    }
    if (!AtEnd()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseUpdate() {
    UpdateStmt stmt;
    if (!TakeIdent(&stmt.table) || !Accept("SET")) {
      return Status::kInvalidArgs;
    }
    do {
      std::string col;
      SqlValue v;
      if (!TakeIdent(&col) || !AcceptSymbol("=") || !TakeLiteral(&v)) {
        return Status::kInvalidArgs;
      }
      stmt.sets.emplace_back(std::move(col), std::move(v));
    } while (AcceptSymbol(","));
    if (!ParseWhere(&stmt.where) || !AtEnd()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseDelete() {
    DeleteStmt stmt;
    if (!Accept("FROM") || !TakeIdent(&stmt.table)) {
      return Status::kInvalidArgs;
    }
    if (!ParseWhere(&stmt.where) || !AtEnd()) {
      return Status::kInvalidArgs;
    }
    return SqlStatement(std::move(stmt));
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(std::string_view sql) {
  auto tokens = TokenizeSql(sql);
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(tokens.take()).Parse();
}

bool IsReadOnlySql(const SqlStatement& stmt) {
  return std::holds_alternative<SelectStmt>(stmt);
}

bool ClassifyReadOnlySql(std::string_view sql) {
  auto stmt = ParseSql(sql);
  return stmt.ok() && IsReadOnlySql(stmt.value());
}

}  // namespace asbestos
