#include "src/db/dbproxy.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/base/strings.h"
#include "src/kernel/bootstrap.h"
#include "src/kernel/label_checks.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/sim/costs.h"
#include "src/store/label_codec.h"

namespace asbestos {

using dbproxy_proto::MessageType;

namespace {

constexpr char kUserIdColumn[] = "USER_ID";
constexpr char kUserTable[] = "OKWS_USERS";

// Store key prefixes. Schema keys embed a zero-padded ordinal so replay
// order (sorted keys) is creation order.
constexpr char kSchemaPrefix[] = "schema/";
constexpr char kTablePrefix[] = "table/";
constexpr char kBindPrefix[] = "bind/";

// The hidden-column rewrite: every worker-accessible table silently gains
// USER_ID. One helper so the live priv path and recovery replay are
// guaranteed to produce the same schema.
void AddHiddenUserIdColumn(CreateTableStmt* create) {
  if (create->table == kUserTable) {
    return;
  }
  SqlColumnDef uid;
  uid.name = kUserIdColumn;
  uid.type = SqlType::kInteger;
  create->columns.push_back(std::move(uid));
}

std::string EncodeTableRows(const QueryResult& result) {
  std::string out;
  codec::AppendVarint(result.rows.size(), &out);
  for (const auto& row : result.rows) {
    codec::AppendString(EncodeDbRow(row), &out);
  }
  return out;
}

}  // namespace

std::string EncodeDbRow(const std::vector<SqlValue>& row) {
  std::string out;
  for (const SqlValue& v : row) {
    if (v.is_null()) {
      out += "n:0:";
    } else if (v.is_int()) {
      const std::string text = v.AsText();
      out += StrFormat("i:%zu:%s", text.size(), text.c_str());
    } else {
      const std::string text = v.AsText();
      out += StrFormat("t:%zu:%s", text.size(), text.c_str());
    }
  }
  return out;
}

bool DecodeDbRow(std::string_view data, std::vector<SqlValue>* out) {
  out->clear();
  size_t i = 0;
  while (i < data.size()) {
    if (i + 2 > data.size() || data[i + 1] != ':') {
      return false;
    }
    const char type = data[i];
    i += 2;
    const size_t colon = data.find(':', i);
    if (colon == std::string_view::npos) {
      return false;
    }
    uint64_t len = 0;
    if (!ParseUint64(data.substr(i, colon - i), &len)) {
      return false;
    }
    i = colon + 1;
    if (i + len > data.size()) {
      return false;
    }
    const std::string bytes(data.substr(i, len));
    i += len;
    if (type == 'n') {
      out->emplace_back();
    } else if (type == 'i') {
      uint64_t magnitude = 0;
      const bool negative = !bytes.empty() && bytes[0] == '-';
      if (!ParseUint64(negative ? std::string_view(bytes).substr(1) : bytes, &magnitude)) {
        return false;
      }
      const auto v = static_cast<int64_t>(magnitude);
      out->emplace_back(SqlValue(negative ? -v : v));
    } else if (type == 't') {
      out->emplace_back(SqlValue(bytes));
    } else {
      return false;
    }
  }
  return true;
}

DbproxyProcess::DbproxyProcess(DbproxyOptions options) {
  if (options.store_dir.empty()) {
    ASB_ASSERT(!options.replication.enabled() && "dbproxy replication needs a store");
    return;
  }
  StoreOptions sopts;
  sopts.dir = options.store_dir;
  sopts.shards = options.shards;
  auto store = DurableStore::Open(std::move(sopts));
  ASB_ASSERT(store.ok() && "dbproxy store failed to open");
  store_ = store.take();
  RecoverState();
  if (options.replication.enabled()) {
    repl_ = std::make_unique<ReplicationEndpoint>(store_.get(), options.replication);
  }
}

void DbproxyProcess::OnIdle(ProcessContext& ctx) {
  if (store_ != nullptr) {
    // Pipelined group commit, like the file server and idd: this pump's
    // table/binding appends flush while the next pump runs.
    ASB_ASSERT(store_->SyncPipelined() == Status::kOk);
  }
  if (repl_ != nullptr) {
    repl_->PumpShip(ctx);  // the flushed batch is also the shipped batch
  }
}

void DbproxyProcess::PersistSchema(const std::string& sql) {
  if (store_ == nullptr || recovering_) {
    return;
  }
  ASB_ASSERT(store_->Put(StrFormat("%s%06llu", kSchemaPrefix,
                                   static_cast<unsigned long long>(schema_seq_++)),
                         sql, Label::Bottom(), Label::Top()) == Status::kOk);
}

void DbproxyProcess::PersistTable(const std::string& table) {
  if (store_ == nullptr || recovering_) {
    return;
  }
  SqlTable* t = db_.FindTable(table);
  if (t == nullptr) {
    return;
  }
  // Full-width engine-level read (no worker rewrite): the hidden USER_ID
  // column is exactly what must survive the reboot.
  SelectStmt sel;
  sel.table = table;
  sel.star = true;
  auto result = db_.ExecuteStmt(SqlStatement(sel));
  ASB_ASSERT(result.ok());
  ASB_ASSERT(store_->Put(std::string(kTablePrefix) + table, EncodeTableRows(result.value()),
                         Label::Bottom(), Label::Top()) == Status::kOk);
}

void DbproxyProcess::PersistBinding(const std::string& username, const Binding& b) {
  if (store_ == nullptr || recovering_) {
    return;
  }
  std::string value;
  codec::AppendVarint(b.taint.value(), &value);
  codec::AppendVarint(b.grant.value(), &value);
  codec::AppendVarint(static_cast<uint64_t>(b.user_id), &value);
  // The binding record carries the user's own labels: secrecy names uT (the
  // binding exists to taint u's rows), integrity names uG (only u's grant
  // compartment vouches for it) — the same shape idd persists.
  const Label secrecy({{b.taint, Level::kL3}}, Level::kStar);
  const Label integrity({{b.grant, Level::kL0}}, Level::kL3);
  ASB_ASSERT(store_->Put(std::string(kBindPrefix) + username, value, secrecy, integrity) ==
             Status::kOk);
}

void DbproxyProcess::PersistAfterExecute(const SqlStatement& stmt,
                                         const std::string& original_sql) {
  if (store_ == nullptr || recovering_) {
    return;
  }
  if (std::holds_alternative<CreateTableStmt>(stmt) ||
      std::holds_alternative<CreateIndexStmt>(stmt)) {
    // Persist the ORIGINAL text: recovery re-applies the same hidden-column
    // rewrite the live path did, so the replayed schema is identical.
    PersistSchema(original_sql);
    return;
  }
  if (const auto* ins = std::get_if<InsertStmt>(&stmt)) {
    PersistTable(ins->table);
  } else if (const auto* upd = std::get_if<UpdateStmt>(&stmt)) {
    PersistTable(upd->table);
  } else if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    PersistTable(del->table);
  }
}

void DbproxyProcess::RecoverState() {
  recovering_ = true;
  std::vector<std::pair<std::string, std::string>> schema;  // key → sql
  std::vector<std::pair<std::string, std::string>> tables;  // name → rows
  store_->ForEach([&](const std::string& key, const StoreRecord& record) {
    if (key.rfind(kSchemaPrefix, 0) == 0) {
      schema.emplace_back(key, record.value);
    } else if (key.rfind(kTablePrefix, 0) == 0) {
      tables.emplace_back(key.substr(sizeof(kTablePrefix) - 1), record.value);
    } else if (key.rfind(kBindPrefix, 0) == 0) {
      Binding b;
      size_t pos = 0;
      uint64_t taint = 0;
      uint64_t grant = 0;
      uint64_t uid = 0;
      if (!IsOk(codec::ReadVarint(record.value, &pos, &taint)) ||
          !IsOk(codec::ReadVarint(record.value, &pos, &grant)) ||
          !IsOk(codec::ReadVarint(record.value, &pos, &uid)) || pos != record.value.size()) {
        return;  // skip records this build cannot parse; never refuse to boot
      }
      b.taint = Handle::FromValue(taint);
      b.grant = Handle::FromValue(grant);
      b.user_id = static_cast<int64_t>(uid);
      bindings_.Put(key.substr(sizeof(kBindPrefix) - 1), b);
    }
  });
  // Schema replays in creation order (keys embed the ordinal; ForEach walks
  // shard by shard, so sort globally first).
  std::sort(schema.begin(), schema.end());
  for (const auto& [key, sql] : schema) {
    auto parsed = ParseSql(sql);
    if (!parsed.ok()) {
      continue;
    }
    SqlStatement stmt = parsed.take();
    if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
      AddHiddenUserIdColumn(create);
    }
    (void)db_.ExecuteStmt(stmt);
  }
  schema_seq_ = schema.size();
  // Row images re-insert at full width (USER_ID included).
  for (const auto& [table, blob] : tables) {
    SqlTable* t = db_.FindTable(table);
    if (t == nullptr) {
      continue;  // row image for a table whose schema record was lost
    }
    InsertStmt ins;
    ins.table = table;
    for (const SqlColumnDef& c : t->columns()) {
      ins.columns.push_back(c.name);
    }
    size_t pos = 0;
    uint64_t count = 0;
    if (!IsOk(codec::ReadVarint(blob, &pos, &count))) {
      continue;
    }
    for (uint64_t i = 0; i < count; ++i) {
      std::string_view encoded;
      if (!IsOk(codec::ReadString(blob, &pos, &encoded))) {
        break;
      }
      std::vector<SqlValue> row;
      if (DecodeDbRow(encoded, &row) && row.size() == ins.columns.size()) {
        ins.rows.push_back(std::move(row));
      }
    }
    if (!ins.rows.empty()) {
      (void)db_.ExecuteStmt(SqlStatement(std::move(ins)));
    }
  }
  recovering_ = false;
}

void DbproxyProcess::Start(ProcessContext& ctx) {
  query_port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(query_port_, Label::Top()) == Status::kOk);
  // The privileged port stays closed: new_port left it at {priv 0, 3}, so
  // only ⋆-holders (idd, via the launcher's capability grant) can reach it.
  priv_port_ = ctx.NewPort(Label::Top());
  wire_port_ = ctx.NewPort(Label::Top());  // stays closed: launcher only

  // When a launcher started us, identify ourselves once (§7.1) and grant it
  // the privileged-port capability to pass on to idd, plus our wire port
  // for late capabilities (netd's control port, once the boot loader has
  // created netd — the proxy spawns first, like idd).
  if (ctx.HasEnv("launcher_port")) {
    Message reg;
    reg.type = boot_proto::kRegister;
    reg.data = "dbproxy";
    reg.words = {query_port_.value(), priv_port_.value(), wire_port_.value()};
    SendArgs args;
    args.verify =
        Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
    args.decont_send = Label({{priv_port_, Level::kStar}, {wire_port_, Level::kStar}},
                             Level::kL3);
    ctx.Send(Handle::FromValue(ctx.GetEnv("launcher_port")), std::move(reg), args);
  }
}

void DbproxyProcess::ChargeQuery(ProcessContext& ctx, const QueryResult& r) {
  ctx.ChargeCycles(costs::kDbQueryBaseCycles + r.rows_visited * costs::kDbRowVisitCycles +
                   r.index_probes * costs::kDbIndexProbeCycles);
}

void DbproxyProcess::ReplyDone(ProcessContext& ctx, Handle reply, uint64_t cookie, Status status,
                               uint64_t rows_affected) {
  if (!reply.valid()) {
    return;
  }
  Message m;
  m.type = MessageType::kDone;
  m.words = {cookie, static_cast<uint64_t>(-static_cast<int>(status)), rows_affected};
  ctx.Send(reply, std::move(m));
}

void DbproxyProcess::HandleBind(ProcessContext& ctx, const Message& msg) {
  if (msg.words.size() < 3 || msg.data.empty()) {
    return;
  }
  Binding b;
  b.taint = Handle::FromValue(msg.words[0]);
  b.grant = Handle::FromValue(msg.words[1]);
  b.user_id = static_cast<int64_t>(msg.words[2]);
  // The kBind message's D_S granted us uT ⋆ and its D_R raised our receive
  // label — verify we really hold the privilege before trusting the binding.
  if (ctx.send_label().Get(b.taint) != Level::kStar) {
    return;
  }
  if (!ScaleAccountingEnabled()) {
    // Paper-calibrated mode models the old map entry; scale mode charges
    // the flat table's real bytes as KernelMemReport::binding_bytes instead.
    ctx.ModelHeapBytes(64);
  }
  bindings_.Put(msg.data.str(), b);
  PersistBinding(msg.data, b);
  if (msg.reply_port.valid()) {
    Message r;
    r.type = MessageType::kBindR;
    r.words = {0};
    ctx.Send(msg.reply_port, std::move(r));
  }
}

bool DbproxyProcess::StatementTouchesUserId(const SqlStatement& stmt) const {
  const auto touches = [](const std::vector<SqlPredicate>& where) {
    for (const SqlPredicate& p : where) {
      if (p.column == kUserIdColumn) {
        return true;
      }
    }
    return false;
  };
  if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
    if (touches(s->where) || s->order_by == kUserIdColumn) {
      return true;
    }
    for (const std::string& c : s->columns) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return false;
  }
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    for (const std::string& c : s->columns) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return false;
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    for (const auto& [c, v] : s->sets) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return touches(s->where);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    return touches(s->where);
  }
  return false;
}

void DbproxyProcess::HandleQuery(ProcessContext& ctx, const Message& msg, bool privileged) {
  ctx.ChargeCycles(costs::kDbProxyMessageCycles);
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  const uint64_t flags = msg.words.size() > 1 ? msg.words[1] : 0;
  const size_t nl = msg.data.find('\n');
  if (nl == std::string::npos) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kInvalidArgs, 0);
    return;
  }
  const std::string username = msg.data.substr(0, nl);
  const std::string sql = msg.data.substr(nl + 1);

  if (obs::TraceRing::enabled() && msg.trace_id != 0) {
    // Statement text stays out of the ring (it may embed user data); the
    // span carries the verb and the requesting user only.
    const size_t sp = sql.find(' ');
    obs::TraceRing::Get().Emit(msg.trace_id, "dbproxy", "dbproxy.stmt",
                               sql.substr(0, sp) + " user=" + username,
                               ctx.send_label());
  }

  auto parsed = ParseSql(sql);
  if (!parsed.ok()) {
    ReplyDone(ctx, msg.reply_port, cookie, parsed.status(), 0);
    return;
  }
  SqlStatement stmt = parsed.take();

  if (privileged) {
    // idd's channel: execute verbatim, but still auto-add the hidden column
    // to newly created worker tables.
    if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
      AddHiddenUserIdColumn(create);
    }
    auto result = db_.ExecuteStmt(stmt);
    if (!result.ok()) {
      ReplyDone(ctx, msg.reply_port, cookie, result.status(), 0);
      return;
    }
    PersistAfterExecute(stmt, sql);
    ChargeQuery(ctx, result.value());
    for (const auto& row : result.value().rows) {
      Message r;
      r.type = MessageType::kRow;
      r.words = {cookie};
      r.data = EncodeDbRow(row);
      ctx.Send(msg.reply_port, std::move(r));
    }
    ReplyDone(ctx, msg.reply_port, cookie, Status::kOk, result.value().rows_affected);
    return;
  }

  // --- Worker path ------------------------------------------------------------
  const Binding* bound = bindings_.Find(username);
  if (bound == nullptr) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }
  const Binding& binding = *bound;

  // Workers may neither name nor see the hidden column, nor touch the
  // password table, nor define schema.
  if (StatementTouchesUserId(stmt) ||
      std::holds_alternative<CreateTableStmt>(stmt) ||
      std::holds_alternative<CreateIndexStmt>(stmt)) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }
  const auto table_of = [](const SqlStatement& s) -> std::string {
    if (const auto* sel = std::get_if<SelectStmt>(&s)) {
      return sel->table;
    }
    if (const auto* ins = std::get_if<InsertStmt>(&s)) {
      return ins->table;
    }
    if (const auto* upd = std::get_if<UpdateStmt>(&s)) {
      return upd->table;
    }
    return std::get<DeleteStmt>(s).table;
  };
  if (table_of(stmt) == kUserTable) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }

  const bool is_write = !IsReadOnlySql(stmt);
  const bool declassify = (flags & dbproxy_proto::kFlagDeclassify) != 0;
  if ((flags & dbproxy_proto::kFlagReadOnly) != 0 && is_write) {
    // The read-only tag lied: the parsed statement mutates. Refuse rather
    // than quietly run it — the tag is what routed this query, and a
    // mutation must never ride the read plane.
    static obs::Counter& violations =
        obs::Registry::Get().counter("db.readonly_tag_violations");
    violations.Add();
    if (obs::ProvenanceLedger::enabled()) {
      obs::ProvenanceLedger::Get().RecordRefusal(
          "dbproxy.readonly_tag", "dbproxy",
          "read-only tagged query parses as a write", 0, Level::kStar,
          Level::kStar, Label::Bottom(), Label::Bottom(), msg.trace_id);
    }
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }
  if (is_write) {
    // §7.5: the verify label must be bounded by {uT 3, uG 0, 2} — the sender
    // is tainted by nothing except its own user's data and speaks for the
    // user. The kernel already guaranteed ES ⊑ V.
    const Label bound({{binding.taint, Level::kL3}, {binding.grant, Level::kL0}}, Level::kL2);
    if (!msg.verify.Leq(bound) || !LevelLeq(msg.verify.Get(binding.grant), Level::kL0)) {
      if (obs::ProvenanceLedger::enabled()) {
        const DeliveryRefusal why = ExplainDeliveryRefusal(
            msg.verify, bound, Label::Bottom(), Label::Top(), Label::Top());
        obs::ProvenanceLedger::Get().RecordRefusal(
            "dbproxy.verify_bound", "dbproxy",
            "write verify label exceeds the user's {uT 3, uG 0, 2} bound (§7.5)",
            why.handle, why.es_level, why.bound_level, msg.verify, bound,
            msg.trace_id);
      }
      ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
      return;
    }
  }
  if (declassify) {
    // §7.6: declassified writes require declassification privilege, proven
    // by a verify label holding uT at ⋆.
    if (msg.verify.Get(binding.taint) != Level::kStar) {
      if (obs::ProvenanceLedger::enabled()) {
        obs::ProvenanceLedger::Get().RecordRefusal(
            "dbproxy.declassify", "dbproxy",
            "declassified write without uT ⋆ in verify (§7.6)",
            binding.taint.value(), msg.verify.Get(binding.taint), Level::kStar,
            msg.verify, Label({{binding.taint, Level::kStar}}, Level::kL3),
            msg.trace_id);
      }
      ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
      return;
    }
  }
  const int64_t stamp_id = declassify ? 0 : binding.user_id;

  if (auto* ins = std::get_if<InsertStmt>(&stmt)) {
    ins->columns.emplace_back(kUserIdColumn);
    for (auto& row : ins->rows) {
      row.emplace_back(SqlValue(stamp_id));
    }
  } else if (auto* upd = std::get_if<UpdateStmt>(&stmt)) {
    // Workers modify only their own rows (declassify additionally flips the
    // owner to "public").
    SqlPredicate own;
    own.column = kUserIdColumn;
    own.op = SqlCompare::kEq;
    own.literal = SqlValue(binding.user_id);
    upd->where.push_back(std::move(own));
    if (declassify) {
      upd->sets.emplace_back(kUserIdColumn, SqlValue(int64_t{0}));
    }
  } else if (auto* del = std::get_if<DeleteStmt>(&stmt)) {
    SqlPredicate own;
    own.column = kUserIdColumn;
    own.op = SqlCompare::kEq;
    own.literal = SqlValue(binding.user_id);
    del->where.push_back(std::move(own));
  } else if (auto* sel = std::get_if<SelectStmt>(&stmt)) {
    // Fetch the hidden owner column alongside the request so each row can
    // be tainted for its owner.
    if (sel->star) {
      SqlTable* t = db_.FindTable(sel->table);
      if (t == nullptr) {
        ReplyDone(ctx, msg.reply_port, cookie, Status::kNotFound, 0);
        return;
      }
      sel->star = false;
      for (const SqlColumnDef& c : t->columns()) {
        if (c.name != kUserIdColumn) {
          sel->columns.push_back(c.name);
        }
      }
    }
    sel->columns.emplace_back(kUserIdColumn);
  }

  auto result = db_.ExecuteStmt(stmt);
  if (!result.ok()) {
    ReplyDone(ctx, msg.reply_port, cookie, result.status(), 0);
    return;
  }
  PersistAfterExecute(stmt, sql);
  ChargeQuery(ctx, result.value());

  if (const auto* sel = std::get_if<SelectStmt>(&stmt)) {
    (void)sel;
    for (auto row : result.value().rows) {
      const int64_t owner = row.back().AsInt();
      row.pop_back();  // strip the hidden column
      SendArgs args;
      if (owner != 0) {
        const Binding* owner_binding = bindings_.FindById(owner);
        if (owner_binding == nullptr) {
          continue;  // unknown owner: fail closed
        }
        // Each row is a separate message with the owner's taint (§7.5);
        // the kernel drops rows the receiver may not see.
        args.contaminate = Label({{owner_binding->taint, Level::kL3}}, Level::kStar);
      }
      Message r;
      r.type = MessageType::kRow;
      r.words = {cookie};
      r.data = EncodeDbRow(row);
      ctx.Send(msg.reply_port, std::move(r), args);
    }
  }
  // Untainted completion marker: "all data has been returned".
  ReplyDone(ctx, msg.reply_port, cookie, Status::kOk, result.value().rows_affected);

  const auto current_bytes = static_cast<int64_t>(db_.approx_bytes());
  ctx.ModelHeapBytes(current_bytes - modeled_db_bytes_);
  modeled_db_bytes_ = current_bytes;
}

void DbproxyProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (repl_ != nullptr && repl_->HandleMessage(ctx, msg)) {
    return;  // replication-plane traffic (listener replies, follower acks)
  }
  if (msg.port == wire_port_) {
    if (msg.type == boot_proto::kWire && msg.data == "netd" && !msg.words.empty() &&
        repl_ != nullptr) {
      // The launcher's late wire: netd is up, attach the replication
      // listener (the proxy spawns before the boot loader creates netd, so
      // this capability cannot ride the spawn env the way demux's does).
      repl_->Start(ctx, Handle::FromValue(msg.words[0]), ctx.GetEnv("self_verify"));
    }
    return;
  }
  if (msg.port == priv_port_) {
    if (msg.type == MessageType::kBind) {
      HandleBind(ctx, msg);
    } else if (msg.type == MessageType::kQuery) {
      HandleQuery(ctx, msg, /*privileged=*/true);
    }
    return;
  }
  if (msg.port == query_port_ && msg.type == MessageType::kQuery) {
    HandleQuery(ctx, msg, /*privileged=*/false);
  }
}

}  // namespace asbestos
