#include "src/db/dbproxy.h"

#include "src/base/strings.h"
#include "src/kernel/bootstrap.h"
#include "src/sim/costs.h"

namespace asbestos {

using dbproxy_proto::MessageType;

namespace {

constexpr char kUserIdColumn[] = "USER_ID";
constexpr char kUserTable[] = "OKWS_USERS";

}  // namespace

std::string EncodeDbRow(const std::vector<SqlValue>& row) {
  std::string out;
  for (const SqlValue& v : row) {
    if (v.is_null()) {
      out += "n:0:";
    } else if (v.is_int()) {
      const std::string text = v.AsText();
      out += StrFormat("i:%zu:%s", text.size(), text.c_str());
    } else {
      const std::string text = v.AsText();
      out += StrFormat("t:%zu:%s", text.size(), text.c_str());
    }
  }
  return out;
}

bool DecodeDbRow(std::string_view data, std::vector<SqlValue>* out) {
  out->clear();
  size_t i = 0;
  while (i < data.size()) {
    if (i + 2 > data.size() || data[i + 1] != ':') {
      return false;
    }
    const char type = data[i];
    i += 2;
    const size_t colon = data.find(':', i);
    if (colon == std::string_view::npos) {
      return false;
    }
    uint64_t len = 0;
    if (!ParseUint64(data.substr(i, colon - i), &len)) {
      return false;
    }
    i = colon + 1;
    if (i + len > data.size()) {
      return false;
    }
    const std::string bytes(data.substr(i, len));
    i += len;
    if (type == 'n') {
      out->emplace_back();
    } else if (type == 'i') {
      uint64_t magnitude = 0;
      const bool negative = !bytes.empty() && bytes[0] == '-';
      if (!ParseUint64(negative ? std::string_view(bytes).substr(1) : bytes, &magnitude)) {
        return false;
      }
      const auto v = static_cast<int64_t>(magnitude);
      out->emplace_back(SqlValue(negative ? -v : v));
    } else if (type == 't') {
      out->emplace_back(SqlValue(bytes));
    } else {
      return false;
    }
  }
  return true;
}

void DbproxyProcess::Start(ProcessContext& ctx) {
  query_port_ = ctx.NewPort(Label::Top());
  ASB_ASSERT(ctx.SetPortLabel(query_port_, Label::Top()) == Status::kOk);
  // The privileged port stays closed: new_port left it at {priv 0, 3}, so
  // only ⋆-holders (idd, via the launcher's capability grant) can reach it.
  priv_port_ = ctx.NewPort(Label::Top());

  // When a launcher started us, identify ourselves once (§7.1) and grant it
  // the privileged-port capability to pass on to idd.
  if (ctx.HasEnv("launcher_port")) {
    Message reg;
    reg.type = boot_proto::kRegister;
    reg.data = "dbproxy";
    reg.words = {query_port_.value(), priv_port_.value()};
    SendArgs args;
    args.verify =
        Label({{Handle::FromValue(ctx.GetEnv("self_verify")), Level::kL0}}, Level::kL3);
    args.decont_send = Label({{priv_port_, Level::kStar}}, Level::kL3);
    ctx.Send(Handle::FromValue(ctx.GetEnv("launcher_port")), std::move(reg), args);
  }
}

void DbproxyProcess::ChargeQuery(ProcessContext& ctx, const QueryResult& r) {
  ctx.ChargeCycles(costs::kDbQueryBaseCycles + r.rows_visited * costs::kDbRowVisitCycles +
                   r.index_probes * costs::kDbIndexProbeCycles);
}

void DbproxyProcess::ReplyDone(ProcessContext& ctx, Handle reply, uint64_t cookie, Status status,
                               uint64_t rows_affected) {
  if (!reply.valid()) {
    return;
  }
  Message m;
  m.type = MessageType::kDone;
  m.words = {cookie, static_cast<uint64_t>(-static_cast<int>(status)), rows_affected};
  ctx.Send(reply, std::move(m));
}

void DbproxyProcess::HandleBind(ProcessContext& ctx, const Message& msg) {
  if (msg.words.size() < 3 || msg.data.empty()) {
    return;
  }
  Binding b;
  b.taint = Handle::FromValue(msg.words[0]);
  b.grant = Handle::FromValue(msg.words[1]);
  b.user_id = static_cast<int64_t>(msg.words[2]);
  // The kBind message's D_S granted us uT ⋆ and its D_R raised our receive
  // label — verify we really hold the privilege before trusting the binding.
  if (ctx.send_label().Get(b.taint) != Level::kStar) {
    return;
  }
  ctx.ModelHeapBytes(64);  // binding cache entry
  bindings_[msg.data] = b;
  bindings_by_id_[b.user_id] = b;
  if (msg.reply_port.valid()) {
    Message r;
    r.type = MessageType::kBindR;
    r.words = {0};
    ctx.Send(msg.reply_port, std::move(r));
  }
}

bool DbproxyProcess::StatementTouchesUserId(const SqlStatement& stmt) const {
  const auto touches = [](const std::vector<SqlPredicate>& where) {
    for (const SqlPredicate& p : where) {
      if (p.column == kUserIdColumn) {
        return true;
      }
    }
    return false;
  };
  if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
    if (touches(s->where) || s->order_by == kUserIdColumn) {
      return true;
    }
    for (const std::string& c : s->columns) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return false;
  }
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    for (const std::string& c : s->columns) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return false;
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    for (const auto& [c, v] : s->sets) {
      if (c == kUserIdColumn) {
        return true;
      }
    }
    return touches(s->where);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    return touches(s->where);
  }
  return false;
}

void DbproxyProcess::HandleQuery(ProcessContext& ctx, const Message& msg, bool privileged) {
  ctx.ChargeCycles(costs::kDbProxyMessageCycles);
  const uint64_t cookie = msg.words.empty() ? 0 : msg.words[0];
  const uint64_t flags = msg.words.size() > 1 ? msg.words[1] : 0;
  const size_t nl = msg.data.find('\n');
  if (nl == std::string::npos) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kInvalidArgs, 0);
    return;
  }
  const std::string username = msg.data.substr(0, nl);
  const std::string sql = msg.data.substr(nl + 1);

  auto parsed = ParseSql(sql);
  if (!parsed.ok()) {
    ReplyDone(ctx, msg.reply_port, cookie, parsed.status(), 0);
    return;
  }
  SqlStatement stmt = parsed.take();

  if (privileged) {
    // idd's channel: execute verbatim, but still auto-add the hidden column
    // to newly created worker tables.
    if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
      if (create->table != kUserTable) {
        SqlColumnDef uid;
        uid.name = kUserIdColumn;
        uid.type = SqlType::kInteger;
        create->columns.push_back(std::move(uid));
      }
    }
    auto result = db_.ExecuteStmt(stmt);
    if (!result.ok()) {
      ReplyDone(ctx, msg.reply_port, cookie, result.status(), 0);
      return;
    }
    ChargeQuery(ctx, result.value());
    for (const auto& row : result.value().rows) {
      Message r;
      r.type = MessageType::kRow;
      r.words = {cookie};
      r.data = EncodeDbRow(row);
      ctx.Send(msg.reply_port, std::move(r));
    }
    ReplyDone(ctx, msg.reply_port, cookie, Status::kOk, result.value().rows_affected);
    return;
  }

  // --- Worker path ------------------------------------------------------------
  auto bit = bindings_.find(username);
  if (bit == bindings_.end()) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }
  const Binding& binding = bit->second;

  // Workers may neither name nor see the hidden column, nor touch the
  // password table, nor define schema.
  if (StatementTouchesUserId(stmt) ||
      std::holds_alternative<CreateTableStmt>(stmt) ||
      std::holds_alternative<CreateIndexStmt>(stmt)) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }
  const auto table_of = [](const SqlStatement& s) -> std::string {
    if (const auto* sel = std::get_if<SelectStmt>(&s)) {
      return sel->table;
    }
    if (const auto* ins = std::get_if<InsertStmt>(&s)) {
      return ins->table;
    }
    if (const auto* upd = std::get_if<UpdateStmt>(&s)) {
      return upd->table;
    }
    return std::get<DeleteStmt>(s).table;
  };
  if (table_of(stmt) == kUserTable) {
    ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
    return;
  }

  const bool is_write = !std::holds_alternative<SelectStmt>(stmt);
  const bool declassify = (flags & dbproxy_proto::kFlagDeclassify) != 0;
  if (is_write) {
    // §7.5: the verify label must be bounded by {uT 3, uG 0, 2} — the sender
    // is tainted by nothing except its own user's data and speaks for the
    // user. The kernel already guaranteed ES ⊑ V.
    const Label bound({{binding.taint, Level::kL3}, {binding.grant, Level::kL0}}, Level::kL2);
    if (!msg.verify.Leq(bound) || !LevelLeq(msg.verify.Get(binding.grant), Level::kL0)) {
      ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
      return;
    }
  }
  if (declassify) {
    // §7.6: declassified writes require declassification privilege, proven
    // by a verify label holding uT at ⋆.
    if (msg.verify.Get(binding.taint) != Level::kStar) {
      ReplyDone(ctx, msg.reply_port, cookie, Status::kAccessDenied, 0);
      return;
    }
  }
  const int64_t stamp_id = declassify ? 0 : binding.user_id;

  if (auto* ins = std::get_if<InsertStmt>(&stmt)) {
    ins->columns.emplace_back(kUserIdColumn);
    for (auto& row : ins->rows) {
      row.emplace_back(SqlValue(stamp_id));
    }
  } else if (auto* upd = std::get_if<UpdateStmt>(&stmt)) {
    // Workers modify only their own rows (declassify additionally flips the
    // owner to "public").
    SqlPredicate own;
    own.column = kUserIdColumn;
    own.op = SqlCompare::kEq;
    own.literal = SqlValue(binding.user_id);
    upd->where.push_back(std::move(own));
    if (declassify) {
      upd->sets.emplace_back(kUserIdColumn, SqlValue(int64_t{0}));
    }
  } else if (auto* del = std::get_if<DeleteStmt>(&stmt)) {
    SqlPredicate own;
    own.column = kUserIdColumn;
    own.op = SqlCompare::kEq;
    own.literal = SqlValue(binding.user_id);
    del->where.push_back(std::move(own));
  } else if (auto* sel = std::get_if<SelectStmt>(&stmt)) {
    // Fetch the hidden owner column alongside the request so each row can
    // be tainted for its owner.
    if (sel->star) {
      SqlTable* t = db_.FindTable(sel->table);
      if (t == nullptr) {
        ReplyDone(ctx, msg.reply_port, cookie, Status::kNotFound, 0);
        return;
      }
      sel->star = false;
      for (const SqlColumnDef& c : t->columns()) {
        if (c.name != kUserIdColumn) {
          sel->columns.push_back(c.name);
        }
      }
    }
    sel->columns.emplace_back(kUserIdColumn);
  }

  auto result = db_.ExecuteStmt(stmt);
  if (!result.ok()) {
    ReplyDone(ctx, msg.reply_port, cookie, result.status(), 0);
    return;
  }
  ChargeQuery(ctx, result.value());

  if (const auto* sel = std::get_if<SelectStmt>(&stmt)) {
    (void)sel;
    for (auto row : result.value().rows) {
      const int64_t owner = row.back().AsInt();
      row.pop_back();  // strip the hidden column
      SendArgs args;
      if (owner != 0) {
        auto oit = bindings_by_id_.find(owner);
        if (oit == bindings_by_id_.end()) {
          continue;  // unknown owner: fail closed
        }
        // Each row is a separate message with the owner's taint (§7.5);
        // the kernel drops rows the receiver may not see.
        args.contaminate = Label({{oit->second.taint, Level::kL3}}, Level::kStar);
      }
      Message r;
      r.type = MessageType::kRow;
      r.words = {cookie};
      r.data = EncodeDbRow(row);
      ctx.Send(msg.reply_port, std::move(r), args);
    }
  }
  // Untainted completion marker: "all data has been returned".
  ReplyDone(ctx, msg.reply_port, cookie, Status::kOk, result.value().rows_affected);

  const auto current_bytes = static_cast<int64_t>(db_.approx_bytes());
  ctx.ModelHeapBytes(current_bytes - modeled_db_bytes_);
  modeled_db_bytes_ = current_bytes;
}

void DbproxyProcess::HandleMessage(ProcessContext& ctx, const Message& msg) {
  if (msg.port == priv_port_) {
    if (msg.type == MessageType::kBind) {
      HandleBind(ctx, msg);
    } else if (msg.type == MessageType::kQuery) {
      HandleQuery(ctx, msg, /*privileged=*/true);
    }
    return;
  }
  if (msg.port == query_port_ && msg.type == MessageType::kQuery) {
    HandleQuery(ctx, msg, /*privileged=*/false);
  }
}

}  // namespace asbestos
