// The embedded SQL engine: tables with typed columns, primary-key and
// secondary indexes, and an executor that counts the rows it touches (the
// simulator's OKDB cost accounting consumes those counts).
#ifndef SRC_DB_SQL_ENGINE_H_
#define SRC_DB_SQL_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/db/sql_parser.h"
#include "src/db/sql_value.h"

namespace asbestos {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;  // SELECT output
  uint64_t rows_affected = 0;               // INSERT/UPDATE/DELETE
  uint64_t rows_visited = 0;                // executor work (cost accounting)
  uint64_t index_probes = 0;
};

class SqlTable {
 public:
  explicit SqlTable(std::vector<SqlColumnDef> columns);

  const std::vector<SqlColumnDef>& columns() const { return columns_; }
  int ColumnIndex(const std::string& name) const;  // -1 when unknown
  size_t row_count() const { return rows_.size(); }
  uint64_t approx_bytes() const { return approx_bytes_; }

  Status AddIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

 private:
  friend class SqlDatabase;

  using RowId = uint64_t;

  Status InsertRow(std::vector<SqlValue> row);  // full-width, schema order
  // Row ids matching the predicates, using an index when one applies.
  std::vector<RowId> Scan(const std::vector<SqlPredicate>& where, QueryResult* stats) const;
  bool RowMatches(const std::vector<SqlValue>& row,
                  const std::vector<SqlPredicate>& where) const;

  std::vector<SqlColumnDef> columns_;
  std::map<RowId, std::vector<SqlValue>> rows_;
  RowId next_row_id_ = 1;
  // column index -> (value text form -> row ids). Equality probes only.
  std::map<int, std::multimap<std::string, RowId>> indexes_;
  uint64_t approx_bytes_ = 0;
};

class SqlDatabase {
 public:
  Result<QueryResult> Execute(std::string_view sql);
  Result<QueryResult> ExecuteStmt(const SqlStatement& stmt);

  SqlTable* FindTable(const std::string& name);
  bool HasTable(const std::string& name) const { return tables_.count(name) != 0; }
  // Total estimated storage, for memory accounting.
  uint64_t approx_bytes() const;

 private:
  Result<QueryResult> DoCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> DoCreateIndex(const CreateIndexStmt& stmt);
  Result<QueryResult> DoInsert(const InsertStmt& stmt);
  Result<QueryResult> DoSelect(const SelectStmt& stmt);
  Result<QueryResult> DoUpdate(const UpdateStmt& stmt);
  Result<QueryResult> DoDelete(const DeleteStmt& stmt);

  std::map<std::string, SqlTable> tables_;
};

}  // namespace asbestos

#endif  // SRC_DB_SQL_ENGINE_H_
