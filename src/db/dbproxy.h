// ok-dbproxy: the trusted, privileged database interface (paper §7.5-7.6).
//
// It interposes on all OKWS database access, converting Asbestos labels into
// database-native enforcement:
//
//  * Every worker-accessible table silently gains a hidden USER_ID column
//    that workers can neither name nor change.
//  * Writes must carry a verification label bounded by {uT 3, uG 0, 2}: the
//    sender is contaminated by nothing but its own user's data (uT 3 is the
//    only level-3 entry) and speaks for the user (uG at 0). The proxy then
//    stamps every written row with the user's ID.
//  * Reads return each row in its own message, contaminated with the owning
//    user's taint handle at 3, followed by one untainted completion
//    message. The *kernel* filters rows: a worker whose receive label only
//    accommodates its own user's taint simply never receives other users'
//    rows, and cannot tell how many were sent.
//  * Declassified rows have USER_ID = 0 and come back untainted. Writing
//    one requires proving declassification privilege: V(uT) = ⋆.
//
// idd speaks to the proxy over a separate privileged port, granted as a
// capability through the launcher at boot; privileged queries bypass
// rewriting (idd owns the password table) and carry user-taint grants
// (kBind) that teach the proxy each user's handles.
#ifndef SRC_DB_DBPROXY_H_
#define SRC_DB_DBPROXY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/db/binding_table.h"
#include "src/db/sql_engine.h"
#include "src/kernel/kernel.h"
#include "src/replication/endpoint.h"
#include "src/store/store.h"

namespace asbestos {

namespace dbproxy_proto {
enum MessageType : uint64_t {
  kQuery = 1,  // data: "<username>\n<sql>"; words: [cookie, flags]
  kRow = 2,    // words: [cookie]; data: encoded row; C_S: owner's taint
  kDone = 3,   // words: [cookie, status, rows_affected]
  kBind = 4,   // idd → priv port; words: [uT, uG, user_id]; data: username;
               // D_S must grant uT ⋆, D_R must raise our QR(uT) to 3
  kBindR = 5,  // words: [status]
};
constexpr uint64_t kFlagDeclassify = 1;  // write rows as public (needs V(uT) = ⋆)
// Sender promises the statement does not mutate (SELECT only). The tag is
// what read routing keys on, so dbproxy re-derives the truth from the parsed
// statement and refuses a tag that lies (kAccessDenied + the
// db.readonly_tag_violations counter) — a mutation can never hide in the
// read plane behind a mislabeled flag.
constexpr uint64_t kFlagReadOnly = 2;
}  // namespace dbproxy_proto

// Row wire format: each field is "<type>:<len>:<bytes>" with type i/t/n.
std::string EncodeDbRow(const std::vector<SqlValue>& row);
bool DecodeDbRow(std::string_view data, std::vector<SqlValue>* out);

// Persistence (src/store): with a store directory configured, the proxy's
// entire database state — schema statements in creation order, every
// table's rows INCLUDING the hidden USER_ID column, and the per-user label
// bindings (username → uT/uG/user_id, stored under each user's own taint
// label) — is backed by a DurableStore and recovered on restart. Mutations
// append without fsyncing; the end-of-pump OnIdle hook group-commits them
// (pipelined), like the file server and idd. Binding records recover the
// proxy's per-row taint stamping directly from its own trusted store, the
// same pattern as idd trusting its recovered identity cache; a recovered
// binding's uT ⋆ privilege itself still travels the live kBind path when
// idd replays bindings at boot.
struct DbproxyOptions {
  std::string store_dir;  // empty = volatile, as in the seed
  uint32_t shards = 4;
  // WAL shipping of the table store to followers (src/replication).
  // Requires store_dir. The launcher wires netd's control port to the proxy
  // (kWire "netd" on its wire port) once both are up — the same late wire
  // idd uses — and the world must authorize the proxy's listener with netd
  // via one of the "repl_verify*" envs.
  ReplicationOptions replication;
};

class DbproxyProcess : public ProcessCode {
 public:
  explicit DbproxyProcess(DbproxyOptions options = {});

  void Start(ProcessContext& ctx) override;
  void HandleMessage(ProcessContext& ctx, const Message& msg) override;
  // Group commit of the table store (pipelined; see DurableStore).
  void OnIdle(ProcessContext& ctx) override;
  bool HasOnIdle() const override { return true; }

  Handle query_port() const { return query_port_; }
  Handle priv_port() const { return priv_port_; }
  const SqlDatabase& database() const { return db_; }
  const DurableStore* store() const { return store_.get(); }
  const ReplicationEndpoint* replication() const { return repl_.get(); }
  size_t recovered_bindings() const { return bindings_.size(); }

 private:
  // username → (uT, uG, user_id), plus the user-id lookup the row-taint
  // path needs — one interned flat table instead of the former
  // std::map<std::string, Binding> / std::map<int64_t, Binding> pair.
  using Binding = BindingTable::Entry;

  void HandleBind(ProcessContext& ctx, const Message& msg);
  void HandleQuery(ProcessContext& ctx, const Message& msg, bool privileged);
  void ReplyDone(ProcessContext& ctx, Handle reply, uint64_t cookie, Status status,
                 uint64_t rows_affected);
  // Charges OKDB cycles for executor work.
  void ChargeQuery(ProcessContext& ctx, const QueryResult& r);
  bool StatementTouchesUserId(const SqlStatement& stmt) const;

  // --- Persistence ----------------------------------------------------------
  // Schema statements replay in creation order; table records rewrite the
  // affected table's full row image (bounded by auto-compaction); binding
  // records carry the user's labels.
  void PersistSchema(const std::string& sql);
  void PersistTable(const std::string& table);
  void PersistBinding(const std::string& username, const Binding& b);
  // Statement executed + persisted (post-rewrite): the one funnel both the
  // live path and recovery share.
  void PersistAfterExecute(const SqlStatement& stmt, const std::string& original_sql);
  void RecoverState();

  SqlDatabase db_;
  Handle query_port_;
  Handle priv_port_;
  Handle wire_port_;  // launcher kWire target (late netd capability)
  BindingTable bindings_;
  int64_t modeled_db_bytes_ = 0;
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<ReplicationEndpoint> repl_;
  uint64_t schema_seq_ = 0;  // next schema record ordinal
  bool recovering_ = false;  // recovery replays must not re-persist
};

}  // namespace asbestos

#endif  // SRC_DB_DBPROXY_H_
