// Typed values for the embedded SQL engine (the SQLite stand-in of §7.5).
#ifndef SRC_DB_SQL_VALUE_H_
#define SRC_DB_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace asbestos {

enum class SqlType { kInteger, kText };

class SqlValue {
 public:
  SqlValue() : v_(std::monostate{}) {}
  explicit SqlValue(int64_t i) : v_(i) {}
  explicit SqlValue(std::string s) : v_(std::move(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const;        // 0 for non-ints
  std::string AsText() const;   // decimal form for ints, "" for null

  // SQL-style comparison; NULL compares equal only to NULL and is ordered
  // before everything else. Mixed int/text compares by textual form.
  int Compare(const SqlValue& other) const;
  bool operator==(const SqlValue& other) const { return Compare(other) == 0; }
  bool operator<(const SqlValue& other) const { return Compare(other) < 0; }

  // Literal syntax: 42 or 'text' (quotes doubled inside).
  std::string ToLiteral() const;

 private:
  std::variant<std::monostate, int64_t, std::string> v_;
};

}  // namespace asbestos

#endif  // SRC_DB_SQL_VALUE_H_
