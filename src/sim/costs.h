// Cycle-cost constants for the simulator.
//
// The paper's testbed is a 2.8 GHz Pentium 4 (Section 9). Our simulator
// charges cycles for work *it actually performs* — messages routed, label
// entries traversed, bytes moved, database rows touched — multiplied by the
// constants below. The constants are calibrated once so that the
// one-cached-session OKWS configuration lands near the paper's measured
// breakdown (Figure 9, leftmost points: roughly 700 Kcycles OKWS,
// 600 Kcycles network, 300 Kcycles kernel IPC, ~100 Kcycles OKDB and other,
// ≈1.9 Mcycles per connection in total, i.e. ≈1,500 connections/second).
// Everything that *changes* as sessions grow — label sizes, session-table
// sizes, database sizes — is real implemented state, not modeled constants,
// so the growth curves of Figures 6/7/9 emerge from the implementation.
#ifndef SRC_SIM_COSTS_H_
#define SRC_SIM_COSTS_H_

#include <cstdint>

namespace asbestos::costs {

// Paper hardware: 2.8 GHz Pentium 4.
constexpr double kCpuHz = 2.8e9;

// --- Kernel IPC -------------------------------------------------------------
// Fixed syscall/queue/copy overhead per message operation.
constexpr uint64_t kSendBaseCycles = 12000;
constexpr uint64_t kRecvBaseCycles = 8000;
constexpr uint64_t kMessageByteCycles = 2;  // payload copy in/out of the kernel
// Label algebra work, charged per entry visited and per operation; these make
// kernel IPC cost linear in label size, the effect Figure 9 measures. An
// entry visit is one step of a sequential scan over packed 8-byte entries,
// hence only a couple of cycles.
constexpr uint64_t kLabelEntryCycles = 3;
constexpr uint64_t kLabelOpBaseCycles = 200;
// Port/handle table operations (vnode hash lookups, refcounting).
constexpr uint64_t kVnodeLookupCycles = 120;
// Event-process checkpoint/resume: page-table borrow plus bookkeeping.
constexpr uint64_t kEpSwitchCycles = 2500;
constexpr uint64_t kEpCreateCycles = 6000;
constexpr uint64_t kEpPageCowCycles = 1800;  // per page copied on write
constexpr uint64_t kProcessSwitchCycles = 3200;

// --- Network (netd + TCP substrate) ------------------------------------------
// The paper's stack is a port of LWIP, "chiefly designed to conserve
// resources", and does not perform well under load; per-segment costs
// dominate.
constexpr uint64_t kNetdSegmentCycles = 90000;  // per TCP segment through the stack
constexpr uint64_t kNetdByteCycles = 24;        // per payload byte (checksum + copies)
constexpr uint64_t kNetdConnSetupCycles = 350000;   // accept + PCB + port wiring
constexpr uint64_t kNetdConnTeardownCycles = 60000;
constexpr uint64_t kNetdRequestCycles = 15000;  // READ/WRITE/SELECT/CONTROL handling

// --- OKWS user code ----------------------------------------------------------
constexpr uint64_t kDemuxConnCycles = 200000;  // header scan, table lookups, dispatch
constexpr uint64_t kDemuxByteCycles = 45;      // HTTP header parsing per byte
constexpr uint64_t kWorkerRequestCycles = 600000;  // toy service: parse, build reply
constexpr uint64_t kWorkerByteCycles = 40;
constexpr uint64_t kIddLoginCycles = 60000;  // credential bookkeeping (DB charged separately)

// --- OKDB (SQL engine + ok-dbproxy) -------------------------------------------
constexpr uint64_t kDbQueryBaseCycles = 90000;  // parse + plan + result assembly
constexpr uint64_t kDbRowVisitCycles = 550;     // per row touched by the executor
constexpr uint64_t kDbIndexProbeCycles = 4000;  // per B-tree/index descent
constexpr uint64_t kDbProxyMessageCycles = 25000;  // label checks + rewriting

// --- Other ---------------------------------------------------------------
constexpr uint64_t kSchedulerTickCycles = 600;
// A follower's per-pump lease-expiry check (src/replication): the local
// failover timer tick. Charged only while a lease is being tracked, so the
// virtual clock keeps advancing toward the deadline even when the primary —
// and with it all message traffic — is gone. Sized as a coarse timer poll
// (~10µs at simulated clock rates): small next to real traffic (a loaded
// pump burns ~1.5M cycles in netd alone), but large enough that a dead
// primary's lease expires within a few thousand quiet pumps.
constexpr uint64_t kLeaseCheckCycles = 25'000;
// One follower-served read: admission (lease + cursor compare), the store
// map probe, and response assembly — everything EXCEPT the label flow check,
// which is charged separately with the kernel's exact per-entry formula so
// follower label costs stay bit-identical to the primary's (see
// src/replication/read_gate.cc). Roughly a demux conn's table work without
// the connection setup.
constexpr uint64_t kReadServeCycles = 20'000;

// --- Unix baseline (Apache / Mod-Apache on Linux) -----------------------------
// Calibrated against the paper's own measurements: Mod-Apache ≈ 2,800
// connections/second (≈1.0 Mcycles/conn) and Apache+CGI ≈ 1,050
// connections/second (≈2.7 Mcycles/conn); medians 999 us and 3,374 us.
constexpr uint64_t kUnixForkCycles = 950000;
constexpr uint64_t kUnixExecCycles = 700000;
constexpr uint64_t kUnixPipeSetupCycles = 80000;
constexpr uint64_t kUnixPipeByteCycles = 4;
constexpr uint64_t kUnixSocketSegmentCycles = 16000;  // mature in-kernel stack
constexpr uint64_t kUnixSocketByteCycles = 6;
constexpr uint64_t kUnixAcceptCycles = 60000;
constexpr uint64_t kUnixProcessSwitchCycles = 5000;
constexpr uint64_t kApacheRequestCycles = 500000;   // core server per-request work
constexpr uint64_t kApacheModuleCycles = 400000;    // in-process module handler
constexpr uint64_t kCgiHandlerCycles = 200000;      // CGI binary main loop
constexpr uint64_t kUnixWaitpidCycles = 90000;

}  // namespace asbestos::costs

#endif  // SRC_SIM_COSTS_H_
