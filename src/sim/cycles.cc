#include "src/sim/cycles.h"

#include "src/obs/metrics.h"

namespace asbestos {
namespace {

CycleAccounting g_accounting;
Component g_current = Component::kOther;

// Metrics-plane window onto the Figure-9 accumulator: per-component cycle
// totals plus the virtual clock, read live at snapshot time.
[[maybe_unused]] const uint64_t g_cycles_gauges =
    obs::Registry::Get().RegisterGauges([](obs::GaugeSink& sink) {
      sink.Set("cycles.now", g_accounting.now());
      sink.Set("cycles.component.okws", g_accounting.total(Component::kOkws));
      sink.Set("cycles.component.network", g_accounting.total(Component::kNetwork));
      sink.Set("cycles.component.kernel_ipc", g_accounting.total(Component::kKernelIpc));
      sink.Set("cycles.component.okdb", g_accounting.total(Component::kOkdb));
      sink.Set("cycles.component.other", g_accounting.total(Component::kOther));
    });

}  // namespace

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kOkws:
      return "OKWS";
    case Component::kNetwork:
      return "Network";
    case Component::kKernelIpc:
      return "Kernel IPC";
    case Component::kOkdb:
      return "OKDB";
    case Component::kOther:
      return "Other";
  }
  return "?";
}

CycleAccounting& GetCycleAccounting() { return g_accounting; }

Component CurrentComponent() { return g_current; }

ScopedComponent::ScopedComponent(Component c) : prev_(g_current) { g_current = c; }
ScopedComponent::~ScopedComponent() { g_current = prev_; }

void Charge(uint64_t cycles) { g_accounting.Charge(g_current, cycles); }
void ChargeTo(Component c, uint64_t cycles) { g_accounting.Charge(c, cycles); }

}  // namespace asbestos
