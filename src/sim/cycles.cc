#include "src/sim/cycles.h"

namespace asbestos {
namespace {

CycleAccounting g_accounting;
Component g_current = Component::kOther;

}  // namespace

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kOkws:
      return "OKWS";
    case Component::kNetwork:
      return "Network";
    case Component::kKernelIpc:
      return "Kernel IPC";
    case Component::kOkdb:
      return "OKDB";
    case Component::kOther:
      return "Other";
  }
  return "?";
}

CycleAccounting& GetCycleAccounting() { return g_accounting; }

Component CurrentComponent() { return g_current; }

ScopedComponent::ScopedComponent(Component c) : prev_(g_current) { g_current = c; }
ScopedComponent::~ScopedComponent() { g_current = prev_; }

void Charge(uint64_t cycles) { g_accounting.Charge(g_current, cycles); }
void ChargeTo(Component c, uint64_t cycles) { g_accounting.Charge(c, cycles); }

}  // namespace asbestos
