// Deterministic cycle accounting.
//
// The paper measures CPU cycles per connection attributed to system
// components (Figure 9: OKWS, Network, Kernel IPC, OKDB, Other). Our
// simulator reproduces that attribution deterministically: every component
// charges cycles proportional to the *work it actually performs* (label
// entries traversed, messages processed, bytes copied, database rows
// touched), scaled by constants in src/sim/costs.h that are calibrated once
// against the paper's one-session measurements. A single virtual CPU
// executes all charges serially, so the global cycle clock also provides the
// virtual timeline used for latency and throughput measurements.
#ifndef SRC_SIM_CYCLES_H_
#define SRC_SIM_CYCLES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace asbestos {

// The accounting categories of paper Figure 9.
enum class Component : uint8_t {
  kOkws = 0,     // ok-demux, idd, workers, declassifiers (user code)
  kNetwork = 1,  // netd and the TCP substrate
  kKernelIpc = 2,  // send/recv processing, including label operations
  kOkdb = 3,     // SQL engine and ok-dbproxy
  kOther = 4,    // everything else (scheduling, boot, client glue)
};

constexpr int kComponentCount = 5;

const char* ComponentName(Component c);

// Global virtual clock + per-component cycle accumulator. Single-threaded.
class CycleAccounting {
 public:
  // Advances the virtual clock and attributes the cycles to `c`.
  void Charge(Component c, uint64_t cycles) {
    now_ += cycles;
    totals_[static_cast<size_t>(c)] += cycles;
  }

  uint64_t now() const { return now_; }
  uint64_t total(Component c) const { return totals_[static_cast<size_t>(c)]; }
  uint64_t grand_total() const {
    uint64_t sum = 0;
    for (uint64_t t : totals_) {
      sum += t;
    }
    return sum;
  }

  void Reset() {
    now_ = 0;
    totals_.fill(0);
  }

 private:
  uint64_t now_ = 0;
  std::array<uint64_t, kComponentCount> totals_{};
};

CycleAccounting& GetCycleAccounting();

// The component whose code is "currently executing" in the simulation. The
// scheduler scopes this to the owning process of each handler invocation, so
// generic helpers can charge the right account without plumbing.
Component CurrentComponent();

class ScopedComponent {
 public:
  explicit ScopedComponent(Component c);
  ~ScopedComponent();

  ScopedComponent(const ScopedComponent&) = delete;
  ScopedComponent& operator=(const ScopedComponent&) = delete;

 private:
  Component prev_;
};

// Charges to the current component.
void Charge(uint64_t cycles);
// Charges to an explicit component regardless of scope.
void ChargeTo(Component c, uint64_t cycles);

}  // namespace asbestos

#endif  // SRC_SIM_CYCLES_H_
