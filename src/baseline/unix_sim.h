// Baseline comparators: Apache 1.3 (+CGI) and "Mod-Apache" on Linux.
//
// The paper compares OKWS-on-Asbestos against Apache with a forked CGI
// binary per request and against the same service compiled into the server
// ("Mod-Apache"), both on a mature Unix kernel (paper §9.2). These exist to
// anchor the crossover points of Figures 7 and 8, so they are deterministic
// closed-loop cost models over a single simulated CPU, calibrated against
// the paper's own measurements (Mod-Apache ≈ 2,800 conn/s and 999 µs median;
// Apache+CGI ≈ 1,050 conn/s and 3,374 µs median; see src/sim/costs.h and
// EXPERIMENTS.md). Neither provides any inter-user isolation — that is the
// point of the comparison.
#ifndef SRC_BASELINE_UNIX_SIM_H_
#define SRC_BASELINE_UNIX_SIM_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace asbestos {

enum class ApacheMode {
  kCgi,     // pre-forked pool + fork/exec of the CGI binary per request
  kModule,  // handler compiled into the server process ("Mod-Apache")
};

struct ApacheConfig {
  ApacheMode mode = ApacheMode::kCgi;
  int pool_size = 400;  // paper: 400 for Apache, 16 for Mod-Apache
  uint64_t seed = 1;
  uint64_t request_bytes = 90;    // typical GET with auth header
  uint64_t response_bytes = 144;  // paper: 144-byte responses
};

struct BaselineRequestResult {
  uint64_t arrival_cycles = 0;
  uint64_t completion_cycles = 0;
  uint64_t latency_cycles() const { return completion_cycles - arrival_cycles; }
};

struct BaselineRunStats {
  std::vector<BaselineRequestResult> requests;
  uint64_t total_cycles = 0;

  double throughput_per_sec(double cpu_hz) const;
  uint64_t latency_percentile_cycles(double pct) const;  // pct in (0,100]
};

class UnixApacheSim {
 public:
  explicit UnixApacheSim(const ApacheConfig& config) : config_(config), rng_(config.seed) {}

  // Closed-loop run: `concurrency` clients each issue their next request as
  // soon as the previous one completes, until n_requests have been served.
  BaselineRunStats Run(uint64_t n_requests, int concurrency);

  // Cycles of CPU work one request costs (before queueing). Exposed for
  // tests; `jitter` indexes the deterministic per-request variability.
  uint64_t RequestServiceCycles(uint64_t request_index);

 private:
  ApacheConfig config_;
  Rng rng_;
};

}  // namespace asbestos

#endif  // SRC_BASELINE_UNIX_SIM_H_
