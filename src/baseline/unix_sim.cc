#include "src/baseline/unix_sim.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/net/simnet.h"
#include "src/sim/costs.h"

namespace asbestos {

double BaselineRunStats::throughput_per_sec(double cpu_hz) const {
  if (total_cycles == 0) {
    return 0;
  }
  return static_cast<double>(requests.size()) / (static_cast<double>(total_cycles) / cpu_hz);
}

uint64_t BaselineRunStats::latency_percentile_cycles(double pct) const {
  ASB_ASSERT(!requests.empty());
  std::vector<uint64_t> latencies;
  latencies.reserve(requests.size());
  for (const auto& r : requests) {
    latencies.push_back(r.latency_cycles());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(latencies.size()) - 1,
                       pct / 100.0 * static_cast<double>(latencies.size())));
  return latencies[idx];
}

uint64_t UnixApacheSim::RequestServiceCycles(uint64_t request_index) {
  (void)request_index;
  uint64_t cycles = 0;
  // Kernel socket path: accept + data in/out through a mature in-kernel
  // TCP/IP stack.
  cycles += costs::kUnixAcceptCycles;
  cycles += SegmentsForBytes(config_.request_bytes) * costs::kUnixSocketSegmentCycles +
            config_.request_bytes * costs::kUnixSocketByteCycles;
  cycles += SegmentsForBytes(config_.response_bytes) * costs::kUnixSocketSegmentCycles +
            config_.response_bytes * costs::kUnixSocketByteCycles;
  // Apache core: parse, map, log-less response handling.
  cycles += costs::kApacheRequestCycles;
  cycles += 2 * costs::kUnixProcessSwitchCycles;  // scheduler in/out of the worker

  if (config_.mode == ApacheMode::kModule) {
    cycles += costs::kApacheModuleCycles;
    // In-process handlers have very low variance (paper Fig. 8: the 90th
    // percentile sits within 2% of the median).
    cycles += rng_.NextBelow(costs::kApacheModuleCycles / 25 + 1);
    return cycles;
  }

  // CGI: fork the pool worker, exec the CGI binary, shuttle the response
  // over a pipe, reap the child. Fork cost varies with the parent's memory
  // image; a small fraction of forks hit the slow path (COW storms, page
  // table churn) — this heavy tail is what spreads Apache's latencies
  // (paper Fig. 8: p90 ≈ 1.56× median, vs ≈1.02× for Mod-Apache).
  const bool slow_fork = rng_.NextDouble() < 0.08;
  const double r = rng_.NextDouble();
  const double fork_multiplier = slow_fork ? 3.2 + 0.6 * r : 0.80 + 0.15 * r;
  cycles += static_cast<uint64_t>(
      static_cast<double>(costs::kUnixForkCycles + costs::kUnixExecCycles) * fork_multiplier);
  cycles += costs::kUnixPipeSetupCycles;
  cycles += costs::kCgiHandlerCycles;
  cycles += config_.response_bytes * costs::kUnixPipeByteCycles;
  cycles += costs::kUnixWaitpidCycles;
  cycles += 2 * costs::kUnixProcessSwitchCycles;
  return cycles;
}

BaselineRunStats UnixApacheSim::Run(uint64_t n_requests, int concurrency) {
  ASB_ASSERT(concurrency > 0);
  BaselineRunStats stats;
  stats.requests.reserve(n_requests);
  // Closed loop on one CPU: `concurrency` clients, each firing its next
  // request the moment the previous completes; the CPU serves FIFO.
  std::vector<uint64_t> client_ready(static_cast<size_t>(concurrency), 0);
  // The pool bounds in-service parallelism; with one CPU it only matters
  // when concurrency exceeds the pool (we then defer the overflow).
  const int effective_concurrency = std::min<int>(concurrency, config_.pool_size);
  (void)effective_concurrency;

  uint64_t cpu_free = 0;
  for (uint64_t i = 0; i < n_requests; ++i) {
    const size_t slot = i % static_cast<size_t>(concurrency);
    BaselineRequestResult r;
    r.arrival_cycles = client_ready[slot];
    const uint64_t start = std::max(cpu_free, r.arrival_cycles);
    const uint64_t service = RequestServiceCycles(i);
    r.completion_cycles = start + service;
    cpu_free = r.completion_cycles;
    client_ready[slot] = r.completion_cycles;
    stats.requests.push_back(r);
  }
  stats.total_cycles = cpu_free;
  return stats;
}

}  // namespace asbestos
