// Deterministic pseudo-random number generation. Every stochastic choice in
// the simulator draws from a seeded Rng so that runs are exactly repeatable.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace asbestos {

// xoshiro256** seeded via SplitMix64. Not cryptographic; the handle cipher in
// src/crypto provides the unpredictability the paper requires of handles.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();
  // Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound);
  // Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);
  // Uniform double in [0, 1).
  double NextDouble();
  bool NextBool() { return (Next() & 1) != 0; }

 private:
  uint64_t s_[4];
};

}  // namespace asbestos

#endif  // SRC_BASE_RNG_H_
