// Result<T>: a value or a Status, for call sites that need both.
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "src/base/panic.h"
#include "src/base/status.h"

namespace asbestos {

template <typename T>
class Result {
 public:
  // Implicit construction from a value (success) or a Status (failure) keeps
  // return statements terse: `return Status::kNotFound;` / `return value;`.
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(status) {                            // NOLINT
    ASB_ASSERT(status != Status::kOk && "error Result requires a non-OK status");
  }

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }

  const T& value() const& {
    ASB_ASSERT(ok() && "Result::value() on error");
    return *value_;
  }
  T& value() & {
    ASB_ASSERT(ok() && "Result::value() on error");
    return *value_;
  }
  T&& take() {
    ASB_ASSERT(ok() && "Result::take() on error");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace asbestos

#endif  // SRC_BASE_RESULT_H_
