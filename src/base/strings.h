// Small string helpers (gcc 12 lacks std::format; keep to printf-style).
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace asbestos {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// ASCII case-insensitive equality (HTTP header names etc.).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow. Used by protocol parsers that must reject malformed input.
bool ParseUint64(std::string_view text, uint64_t* out);

}  // namespace asbestos

#endif  // SRC_BASE_STRINGS_H_
