// Status codes used across the Asbestos simulator. Modeled on kernel-style
// status returns (cf. zx_status_t): cheap to copy, no allocation, no exceptions.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

namespace asbestos {

enum class Status : int {
  kOk = 0,
  kInvalidArgs = -1,    // malformed syscall or protocol arguments
  kNoMemory = -2,       // simulated resource exhaustion
  kNotFound = -3,       // unknown handle, port, file, row, ...
  kAccessDenied = -4,   // label check or privilege check failed
  kBadState = -5,       // operation illegal in the current state
  kWouldBlock = -6,     // nothing to receive / buffer full
  kAlreadyExists = -7,  // duplicate name
  kOutOfRange = -8,     // address or index outside a valid region
  kUnsupported = -9,    // operation not implemented for this object
  kPeerClosed = -10,    // connection or port torn down
  kBufferTooSmall = -11,
};

// Human-readable name, e.g. "ACCESS_DENIED". Never returns null.
const char* StatusString(Status s);

constexpr bool IsOk(Status s) { return s == Status::kOk; }

}  // namespace asbestos

#endif  // SRC_BASE_STATUS_H_
