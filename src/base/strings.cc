#include "src/base/strings.h"

#include <cctype>
#include <cstdio>

namespace asbestos {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) {
    --e;
  }
  return text.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace asbestos
