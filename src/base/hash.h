// FNV-1a, 64-bit: the repo's one non-cryptographic hash.
//
// Two very different stability requirements share this function, which is
// exactly why it lives in one place:
//   * src/store routes keys to shards with it — there it is ON-DISK-FORMAT
//     CRITICAL: a record must be found in the shard whose log holds it, so
//     the constants and byte order below may never change (std::hash
//     guarantees neither across runs/toolchains, which is why it is not
//     used);
//   * src/labels/intern.h buckets canonical label reps with it — in-memory
//     only, but kept on the same implementation so nobody "cleans up" one
//     copy assuming it is independent of the other.
#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace asbestos {

constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

// Folds `n` raw bytes into `h`. Chainable: pass a previous result as `h`.
inline uint64_t Fnv1aBytes(const void* data, size_t n, uint64_t h = kFnv1aOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

inline uint64_t Fnv1a(std::string_view s, uint64_t h = kFnv1aOffsetBasis) {
  return Fnv1aBytes(s.data(), s.size(), h);
}

// Word-at-a-time mixer for IN-MEMORY hashing of u64 sequences (label intern
// hashing, check-cache set selection): one multiply-xorshift round per word
// — an order of magnitude cheaper than byte-wise FNV on packed entries, with
// the avalanche byte-FNV lacks (adjacent ids must not cluster cache sets).
// Never use for anything persisted; the on-disk-stable hash is Fnv1a above.
inline uint64_t HashMix64(uint64_t h, uint64_t v) {
  h ^= v * 0x9e3779b97f4a7c15ULL;  // golden-ratio odd constant
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;  // splitmix64 finalizer round
  h ^= h >> 32;
  return h;
}

}  // namespace asbestos

#endif  // SRC_BASE_HASH_H_
