#include "src/base/rng.h"

#include "src/base/panic.h"

namespace asbestos {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ASB_ASSERT(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  ASB_ASSERT(lo <= hi);
  if (lo == 0 && hi == ~0ULL) {
    return Next();
  }
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace asbestos
