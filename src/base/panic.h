// Fatal assertions. The simulator treats internal inconsistency as fatal:
// a corrupted kernel invariant must stop the run, never limp on.
#ifndef SRC_BASE_PANIC_H_
#define SRC_BASE_PANIC_H_

#include <cstdio>
#include <cstdlib>

namespace asbestos {

[[noreturn]] inline void PanicAt(const char* file, int line, const char* what) {
  std::fprintf(stderr, "asbestos: panic at %s:%d: %s\n", file, line, what);
  std::abort();
}

}  // namespace asbestos

#define ASB_PANIC(what) ::asbestos::PanicAt(__FILE__, __LINE__, (what))

#define ASB_ASSERT(cond)                                 \
  do {                                                   \
    if (!(cond)) {                                       \
      ::asbestos::PanicAt(__FILE__, __LINE__, #cond);    \
    }                                                    \
  } while (0)

#endif  // SRC_BASE_PANIC_H_
