#include "src/base/status.h"

namespace asbestos {

const char* StatusString(Status s) {
  switch (s) {
    case Status::kOk:
      return "OK";
    case Status::kInvalidArgs:
      return "INVALID_ARGS";
    case Status::kNoMemory:
      return "NO_MEMORY";
    case Status::kNotFound:
      return "NOT_FOUND";
    case Status::kAccessDenied:
      return "ACCESS_DENIED";
    case Status::kBadState:
      return "BAD_STATE";
    case Status::kWouldBlock:
      return "WOULD_BLOCK";
    case Status::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::kUnsupported:
      return "UNSUPPORTED";
    case Status::kPeerClosed:
      return "PEER_CLOSED";
    case Status::kBufferTooSmall:
      return "BUFFER_TOO_SMALL";
  }
  return "UNKNOWN";
}

}  // namespace asbestos
