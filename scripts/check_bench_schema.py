#!/usr/bin/env python3
"""Schema-stability check for the tracked BENCH_*.json files.

The benchmark JSON files checked in at the repo root (and uploaded as CI
artifacts from the Release --smoke run) are consumed by downstream tooling
that plots trends across commits, so their *shape* is part of the repo's
contract: every file must carry the google-benchmark context block, every
benchmark entry must have a name / real_time / iterations, and the
per-file counters that the paper's figures are reconstructed from must not
silently disappear when a bench is refactored.

Usage:
    python3 scripts/check_bench_schema.py BENCH_labels.json BENCH_store.json ...

With no arguments, checks the BENCH_*.json files at the repo root.
Exits nonzero with one line per violation.
"""

import glob
import json
import os
import sys

# Keys every google-benchmark output file must carry.
REQUIRED_TOP_LEVEL = ["context", "benchmarks"]
REQUIRED_CONTEXT = ["date", "num_cpus", "caches"]
REQUIRED_PER_BENCHMARK = ["name", "real_time", "cpu_time", "iterations", "time_unit"]

# Per-file contract: counters that at least one benchmark entry in the file
# must expose. These are the fields downstream plots key on; renaming one
# in a bench refactor must show up as a CI failure, not a silent gap.
REQUIRED_COUNTERS = {
    "BENCH_labels.json": ["charged_work_per_check", "cache_hit_rate"],
    "BENCH_store.json": ["pickled_bytes", "bytes_per_second"],
    "BENCH_replication.json": [
        "cache_hit_rate",
        "records_applied",
        "reads_per_sec_aggregate",
        "refusal_rate",
    ],
    "BENCH_ipc.json": ["virtual_cycles_per_msg", "bytes_shared_saved_per_msg"],
    "BENCH_scale.json": [
        "bytes_per_user",
        "users",
        "session_bytes",
        "binding_bytes",
        "handle_table_bytes",
        "session_parks",
        "session_resumes",
    ],
}

# Metrics-registry snapshots written next to the benchmark JSON (see
# README "Observability"). Each must contain these key *prefixes* — the
# families the bench actually exercises, which therefore must not vanish
# in a refactor. (Families a bench never links, e.g. the cycle clock in
# bench_store, are legitimately absent: the static library drops unused
# objects and their gauge registrations with them.)
REQUIRED_METRIC_FAMILIES = {
    "BENCH_labels.metrics.json": ["kernel.label_cache.", "labels.intern."],
    "BENCH_store.metrics.json": ["store.", "labels.intern."],
    "BENCH_replication.metrics.json": ["repl.", "store.", "cycles.", "kernel.mem."],
    "BENCH_ipc.metrics.json": ["kernel.sys.", "pump.", "payload."],
    "BENCH_scale.metrics.json": [
        "kernel.mem.",
        "okws.request_cycles.",
        "netd.",
        "labels.intern.",
        "store.",
    ],
    # The release-job demo smoke runs the full OKWS suite with the cycle
    # profiler and provenance ledger ON, so its snapshot must carry the
    # observability-plane families on top of the kernel/okws ones.
    "DEMO_okws.metrics.json": [
        "kernel.stats.",
        "okws.",
        "obs.prof.sys.",
        "obs.ledger.",
    ],
}


def check_bench_file(path, errors):
    base = os.path.basename(path)
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{base}: unreadable or invalid JSON: {e}")
        return

    for key in REQUIRED_TOP_LEVEL:
        if key not in data:
            errors.append(f"{base}: missing top-level key '{key}'")
    if "context" in data:
        for key in REQUIRED_CONTEXT:
            if key not in data["context"]:
                errors.append(f"{base}: context missing key '{key}'")

    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        errors.append(f"{base}: no benchmark entries")
        return
    for bench in benchmarks:
        # Complexity aggregates (BigO / RMS rows) legitimately drop the
        # timing keys; only plain iteration rows must carry them all.
        if bench.get("run_type") == "aggregate":
            continue
        for key in REQUIRED_PER_BENCHMARK:
            if key not in bench:
                name = bench.get("name", "<unnamed>")
                errors.append(f"{base}: benchmark '{name}' missing key '{key}'")

    seen = set()
    for bench in benchmarks:
        seen.update(bench.keys())
    for counter in REQUIRED_COUNTERS.get(base, []):
        if counter not in seen:
            errors.append(f"{base}: no benchmark exposes required counter '{counter}'")

    if base == "BENCH_scale.json":
        check_scale_rows(base, benchmarks, errors)


def check_scale_rows(base, benchmarks, errors):
    """The flat-memory claim is read straight off the BM_ScaleUsers rows,
    so *every* row in that family (not just one) must carry a positive
    numeric bytes_per_user and users — a row that drops them would make
    the per-decade ratio silently unverifiable."""
    rows = 0
    for bench in benchmarks:
        if not bench.get("name", "").startswith("BM_ScaleUsers"):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        rows += 1
        name = bench.get("name", "<unnamed>")
        for counter in ("bytes_per_user", "users"):
            value = bench.get(counter)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(
                    f"{base}: '{name}' counter '{counter}' is not numeric: {value!r}")
            elif value <= 0:
                errors.append(
                    f"{base}: '{name}' counter '{counter}' must be > 0, got {value}")
    if rows == 0:
        errors.append(f"{base}: no BM_ScaleUsers rows found")


def check_metrics_file(path, errors):
    base = os.path.basename(path)
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        errors.append(f"{base}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(data, dict) or not data:
        errors.append(f"{base}: expected a non-empty flat JSON object")
        return
    # The registry snapshot is strictly flat name -> number; anything else
    # means a producer leaked structure into the plane.
    for key, value in data.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{base}: metric '{key}' is not a number: {value!r}")
    for prefix in REQUIRED_METRIC_FAMILIES.get(base, []):
        if not any(key.startswith(prefix) for key in data):
            errors.append(f"{base}: no metric under required family '{prefix}'")


def main(argv):
    paths = argv[1:]
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("check_bench_schema: no BENCH_*.json files found", file=sys.stderr)
        return 1

    errors = []
    checked = 0
    for path in paths:
        base = os.path.basename(path)
        if base.endswith(".metrics.json"):
            check_metrics_file(path, errors)
        else:
            check_bench_file(path, errors)
        checked += 1

    for err in errors:
        print(f"check_bench_schema: {err}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_bench_schema: {checked} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
