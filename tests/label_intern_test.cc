// Hash-consed canonical labels (src/labels/intern.h): interned construction
// must be semantically invisible — every operation agrees extensionally with
// the reference pointwise semantics — while extensionally equal completed
// constructions share one canonical rep with one stable id, and mutation can
// never corrupt a canonical rep or resurrect a stale id.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/labels/intern.h"
#include "src/labels/label.h"
#include "src/store/label_codec.h"

namespace asbestos {
namespace {

// Builds a label through the interned bulk path (sorted entries).
Label BuildInterned(const std::vector<std::pair<uint64_t, Level>>& entries, Level def) {
  LabelBuilder builder(def);
  for (const auto& [h, l] : entries) {
    if (l != def) {
      builder.Append(Handle::FromValue(h), l);
    }
  }
  return builder.Build();
}

class LabelInternPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { rng_ = std::make_unique<Rng>(GetParam()); }

  Level RandomLevel() { return static_cast<Level>(rng_->NextBelow(5)); }

  // Random sorted entry list over a shared pool (overlaps are common).
  std::vector<std::pair<uint64_t, Level>> RandomEntries(uint64_t max_entries) {
    std::vector<std::pair<uint64_t, Level>> out;
    const uint64_t n = rng_->NextBelow(max_entries + 1);
    uint64_t h = 0;
    for (uint64_t i = 0; i < n; ++i) {
      h += rng_->NextInRange(1, 5);
      out.emplace_back(h, RandomLevel());
    }
    return out;
  }

  // The same label built two ways: interned bulk path and mutable Set path.
  std::pair<Label, Label> RandomLabelBothWays(uint64_t max_entries = 25) {
    const Level def = RandomLevel();
    const auto entries = RandomEntries(max_entries);
    Label by_set(def);
    for (const auto& [h, l] : entries) {
      by_set.Set(Handle::FromValue(h), l);
    }
    return {BuildInterned(entries, def), by_set};
  }

  std::unique_ptr<Rng> rng_;
};

TEST_P(LabelInternPropertyTest, InternedConstructionMatchesMutableConstruction) {
  for (int t = 0; t < 80; ++t) {
    const auto [interned, by_set] = RandomLabelBothWays();
    interned.CheckRep();
    EXPECT_TRUE(interned.Equals(by_set));
    EXPECT_TRUE(interned.rep_canonical());
    for (uint64_t h = 1; h <= 130; ++h) {
      EXPECT_EQ(interned.Get(Handle::FromValue(h)), by_set.Get(Handle::FromValue(h)));
    }
  }
}

TEST_P(LabelInternPropertyTest, EqualConstructionsShareOneCanonicalRep) {
  for (int t = 0; t < 80; ++t) {
    const Level def = RandomLevel();
    const auto entries = RandomEntries(25);
    const Label a = BuildInterned(entries, def);
    const Label b = BuildInterned(entries, def);
    EXPECT_EQ(a.rep_id(), b.rep_id()) << "twin builds must hash-cons to one rep";
    EXPECT_TRUE(a.rep_canonical());
    // And an unequal build must not share.
    auto other = entries;
    other.emplace_back((other.empty() ? 0 : other.back().first) + 1,
                       def == Level::kL3 ? Level::kStar : Level::kL3);
    const Label c = BuildInterned(other, def);
    EXPECT_NE(a.rep_id(), c.rep_id());
    EXPECT_FALSE(a.Equals(c));
  }
}

TEST_P(LabelInternPropertyTest, InternedAlgebraMatchesNaivePointwise) {
  // Lub/Glb/StarsOnly/Leq over interned operands: the interned results must
  // be extensionally identical to the reference pointwise semantics, and
  // repeating the operation must return the SAME canonical rep.
  for (int t = 0; t < 60; ++t) {
    const Label a = BuildInterned(RandomEntries(20), RandomLevel());
    const Label b = BuildInterned(RandomEntries(20), RandomLevel());
    const Label join = Label::Lub(a, b);
    const Label meet = Label::Glb(a, b);
    const Label stars = a.StarsOnly();
    join.CheckRep();
    meet.CheckRep();
    stars.CheckRep();
    bool leq_pointwise = true;
    for (uint64_t h = 0; h <= 120; ++h) {
      const Handle hh = Handle::FromValue(h == 0 ? 9999 : h);
      EXPECT_EQ(join.Get(hh), LevelMax(a.Get(hh), b.Get(hh)));
      EXPECT_EQ(meet.Get(hh), LevelMin(a.Get(hh), b.Get(hh)));
      EXPECT_EQ(stars.Get(hh),
                a.Get(hh) == Level::kStar ? Level::kStar : Level::kL3);
      leq_pointwise = leq_pointwise && LevelLeq(a.Get(hh), b.Get(hh));
    }
    EXPECT_EQ(a.Leq(b), leq_pointwise && LevelLeq(a.default_level(), b.default_level()));
    // Determinism of identity: same operands, same canonical result rep.
    EXPECT_EQ(Label::Lub(a, b).rep_id(), join.rep_id());
    EXPECT_EQ(Label::Glb(a, b).rep_id(), meet.rep_id());
    EXPECT_EQ(a.StarsOnly().rep_id(), stars.rep_id());
  }
}

TEST_P(LabelInternPropertyTest, MutationUnsharesAndRekeys) {
  for (int t = 0; t < 60; ++t) {
    const Level def = RandomLevel();
    const auto entries = RandomEntries(20);
    const Label canonical = BuildInterned(entries, def);
    const uint64_t canonical_id = canonical.rep_id();
    Label mutated = canonical;
    const Level l = RandomLevel();
    const Handle h = Handle::FromValue(rng_->NextInRange(1, 100));
    mutated.Set(h, l);
    // The canonical label is immutable: the copy diverged, it did not.
    EXPECT_EQ(canonical.rep_id(), canonical_id);
    EXPECT_EQ(canonical.Get(h), BuildInterned(entries, def).Get(h));
    canonical.CheckRep();
    mutated.CheckRep();
    if (mutated.Get(h) != canonical.Get(h)) {
      EXPECT_NE(mutated.rep_id(), canonical_id);
      EXPECT_FALSE(mutated.rep_canonical());
      // Every further in-place mutation retires the previous snapshot id.
      const uint64_t before = mutated.rep_id();
      mutated.Set(h, mutated.Get(h) == Level::kL3 ? Level::kStar : Level::kL3);
      EXPECT_NE(mutated.rep_id(), before);
    }
  }
}

TEST_P(LabelInternPropertyTest, ParseAndUnpickleLandOnTheCanonicalRep) {
  for (int t = 0; t < 40; ++t) {
    const Label original = BuildInterned(RandomEntries(20), RandomLevel());
    Label parsed;
    ASSERT_TRUE(Label::Parse(original.ToString(), &parsed));
    EXPECT_EQ(parsed.rep_id(), original.rep_id()) << original.ToString();

    Label unpickled;
    ASSERT_EQ(codec::UnpickleLabel(codec::PickleLabel(original), &unpickled), Status::kOk);
    EXPECT_EQ(unpickled.rep_id(), original.rep_id());
  }
}

TEST_P(LabelInternPropertyTest, EqualsFastPathsAgreeWithEntryWalk) {
  // Shared-chunk and canonical-id shortcuts must never change the verdict.
  for (int t = 0; t < 60; ++t) {
    const auto [interned, by_set] = RandomLabelBothWays();
    EXPECT_TRUE(interned.Equals(by_set));
    EXPECT_TRUE(by_set.Equals(interned));
    // COW copy diverged in (at most) one chunk: remaining chunks stay shared.
    Label copy = by_set;
    const Handle h = Handle::FromValue(rng_->NextInRange(1, 100));
    const Level old = copy.Get(h);
    const Level changed = old == Level::kL3 ? Level::kStar : Level::kL3;
    copy.Set(h, changed);
    EXPECT_FALSE(copy.Equals(by_set));
    copy.Set(h, old);
    EXPECT_TRUE(copy.Equals(by_set));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelInternPropertyTest,
                         ::testing::Values(2ULL, 11ULL, 77ULL, 4096ULL, 123456789ULL));

TEST(LabelInternTest, DedupCountersAndMemory) {
  ResetLabelInternStats();
  const LabelMemStats& mem = GetLabelMemStats();
  const LabelInternStats& stats = GetLabelInternStats();
  int64_t canonical_with_label = 0;

  {
    LabelBuilder builder(Level::kL1);
    for (uint64_t i = 1; i <= 200; ++i) {
      builder.Append(Handle::FromValue(i * 3), Level::kL3);
    }
    const Label first = builder.Build();
    EXPECT_GE(stats.misses, 1u);
    canonical_with_label = stats.live_canonical;
    const uint64_t hits_before = stats.hits;
    const int64_t live_before = mem.live_bytes;

    // 50 more builds of the same label: zero new label heap, one hit each.
    std::vector<Label> copies;
    for (int i = 0; i < 50; ++i) {
      LabelBuilder b(Level::kL1);
      for (uint64_t h = 1; h <= 200; ++h) {
        b.Append(Handle::FromValue(h * 3), Level::kL3);
      }
      copies.push_back(b.Build());
      EXPECT_EQ(copies.back().rep_id(), first.rep_id());
    }
    EXPECT_EQ(stats.hits, hits_before + 50);
    EXPECT_EQ(mem.live_bytes, live_before) << "deduped builds must not allocate";
    EXPECT_EQ(stats.bytes_saved, 50 * first.heap_bytes());
  }

  // Dropping every owner unregisters the canonical rep: interning holds
  // weak references and never pins dead labels.
  EXPECT_EQ(stats.live_canonical, canonical_with_label - 1);
}

TEST(LabelInternTest, EmptyLabelsSharePerLevelSingletons) {
  LabelBuilder builder(Level::kL2);
  const Label built = builder.Build();
  const Label direct(Level::kL2);
  EXPECT_EQ(built.rep_id(), direct.rep_id());
  EXPECT_TRUE(built.rep_canonical());
}

// The kernel's receive/send labels mutate in place on every contamination;
// routing the merged result through the intern table means equal label
// HISTORIES converge to one rep id — the key the flow-check cache needs to
// keep hitting on steady-state traffic (ROADMAP: live-path hit rate).
TEST(LabelInternTest, JoinInPlaceCanonicalizesTheMergedResult) {
  // Big ⋆-rich label (an OKWS server's send label shape) joined with a
  // small contamination label: the asymmetric merge path runs, which used
  // to leave a private rep with a fresh id per call.
  const auto big_entries = [] {
    std::vector<std::pair<uint64_t, Level>> out;
    for (uint64_t i = 1; i <= 400; ++i) {
      out.emplace_back(i * 7, Level::kStar);
    }
    return out;
  }();
  const Label contam({{Handle::FromValue(5), Level::kL3}}, Level::kStar);

  Label a = BuildInterned(big_entries, Level::kL1);
  a.JoinInPlace(contam);
  EXPECT_TRUE(a.rep_canonical());

  // An independently rebuilt history lands on the SAME canonical rep.
  Label b = BuildInterned(big_entries, Level::kL1);
  b.JoinInPlace(Label({{Handle::FromValue(5), Level::kL3}}, Level::kStar));
  EXPECT_EQ(a.rep_id(), b.rep_id());

  // And the semantics are the pointwise reference, unchanged.
  EXPECT_EQ(a.Get(Handle::FromValue(5)), Level::kL3);
  EXPECT_EQ(a.Get(Handle::FromValue(7)), Level::kStar);
  EXPECT_EQ(a.Get(Handle::FromValue(9999991)), Level::kL1);
  a.CheckRep();
}

TEST(LabelInternTest, MeetInPlaceCanonicalizesTheMergedResult) {
  const auto entries = [] {
    std::vector<std::pair<uint64_t, Level>> out;
    for (uint64_t i = 1; i <= 300; ++i) {
      out.emplace_back(i * 3, Level::kL3);
    }
    return out;
  }();
  const Label ds({{Handle::FromValue(6), Level::kL0}}, Level::kL3);
  Label a = BuildInterned(entries, Level::kL2);
  a.MeetInPlace(ds);
  EXPECT_TRUE(a.rep_canonical());
  Label b = BuildInterned(entries, Level::kL2);
  b.MeetInPlace(Label({{Handle::FromValue(6), Level::kL0}}, Level::kL3));
  EXPECT_EQ(a.rep_id(), b.rep_id());
  EXPECT_EQ(a.Get(Handle::FromValue(6)), Level::kL0);
}

TEST(LabelInternTest, CanonicalizeRegistersAPrivateRepWithoutCopying) {
  Label l(Level::kL1);
  for (uint64_t i = 1; i <= 40; ++i) {
    l.Set(Handle::FromValue(i * 11), Level::kL2);  // Set path: private rep
  }
  ASSERT_FALSE(l.rep_canonical());
  const uint64_t heap_before = GetLabelMemStats().live_bytes;
  l.Canonicalize();
  EXPECT_TRUE(l.rep_canonical());
  // No twin existed, so the rep itself was adopted: no new heap.
  EXPECT_EQ(GetLabelMemStats().live_bytes, heap_before);
  // A later equal construction now dedups onto it.
  LabelBuilder builder(Level::kL1);
  for (uint64_t i = 1; i <= 40; ++i) {
    builder.Append(Handle::FromValue(i * 11), Level::kL2);
  }
  const Label twin = builder.Build();
  EXPECT_EQ(twin.rep_id(), l.rep_id());
  // Mutating the (now canonical) label clones first — the registered rep
  // stays immutable and the mutated copy re-keys.
  Label mutated = l;
  mutated.Set(Handle::FromValue(1), Level::kL3);
  EXPECT_NE(mutated.rep_id(), l.rep_id());
  EXPECT_TRUE(l.rep_canonical());
  l.CheckRep();
  mutated.CheckRep();
}

}  // namespace
}  // namespace asbestos
