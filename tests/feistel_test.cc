#include "src/crypto/feistel61.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace asbestos {
namespace {

TEST(FeistelTest, EncryptDecryptRoundTrip) {
  Feistel61 cipher(0xdeadbeefULL);
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{42}, uint64_t{0xffff},
                     Feistel61::kDomain - 1}) {
    const uint64_t y = cipher.Encrypt(x);
    EXPECT_LT(y, Feistel61::kDomain);
    EXPECT_EQ(cipher.Decrypt(y), x);
  }
}

TEST(FeistelTest, Deterministic) {
  Feistel61 a(123);
  Feistel61 b(123);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(a.Encrypt(x), b.Encrypt(x));
  }
}

TEST(FeistelTest, KeysProduceDifferentPermutations) {
  Feistel61 a(1);
  Feistel61 b(2);
  int differ = 0;
  for (uint64_t x = 0; x < 256; ++x) {
    if (a.Encrypt(x) != b.Encrypt(x)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 250);
}

// Bijectivity over a dense prefix: encrypting [0, N) yields N distinct
// values, all inside the 61-bit domain.
class FeistelBijectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeistelBijectionTest, PrefixIsInjective) {
  Feistel61 cipher(GetParam());
  std::set<uint64_t> outputs;
  constexpr uint64_t kN = 20000;
  for (uint64_t x = 0; x < kN; ++x) {
    const uint64_t y = cipher.Encrypt(x);
    EXPECT_LT(y, Feistel61::kDomain);
    outputs.insert(y);
  }
  EXPECT_EQ(outputs.size(), kN);
}

INSTANTIATE_TEST_SUITE_P(Keys, FeistelBijectionTest,
                         ::testing::Values(0ULL, 1ULL, 0x12345678ULL, ~0ULL, 0xc0ffeeULL));

TEST(FeistelTest, OutputLooksUnpredictable) {
  // The encrypted counter sequence must not expose the counter: successive
  // outputs should differ in roughly half their bits on average.
  Feistel61 cipher(99);
  uint64_t prev = cipher.Encrypt(0);
  double total_flips = 0;
  constexpr int kN = 1000;
  for (uint64_t x = 1; x <= kN; ++x) {
    const uint64_t y = cipher.Encrypt(x);
    total_flips += __builtin_popcountll(prev ^ y);
    prev = y;
  }
  const double avg = total_flips / kN;
  EXPECT_GT(avg, 20.0);
  EXPECT_LT(avg, 41.0);
}

TEST(FeistelTest, HighBitsAreUsed) {
  Feistel61 cipher(7);
  int high_set = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if ((cipher.Encrypt(x) >> 60) & 1) {
      ++high_set;
    }
  }
  // Roughly half the outputs should have the top domain bit set.
  EXPECT_GT(high_set, 400);
  EXPECT_LT(high_set, 600);
}

TEST(HandleSequenceTest, NeverReturnsZeroOrRepeats) {
  HandleSequence seq(0xabcdULL);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t h = seq.Next();
    EXPECT_NE(h, 0u);
    EXPECT_LT(h, Feistel61::kDomain);
    EXPECT_TRUE(seen.insert(h).second) << "handle repeated at step " << i;
  }
}

TEST(HandleSequenceTest, NotMonotonic) {
  // A visible allocation counter would be a covert channel; the sequence
  // must not be ordered.
  HandleSequence seq(5);
  int increases = 0;
  uint64_t prev = seq.Next();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t h = seq.Next();
    if (h > prev) {
      ++increases;
    }
    prev = h;
  }
  EXPECT_GT(increases, 300);
  EXPECT_LT(increases, 700);
}

TEST(HandleSequenceTest, SkipPastRetiresRecoveredValues) {
  // Boot 1 mints some handles; boot 2 (same key) recovers a subset from
  // durable storage and retires them — the fresh sequence must never
  // re-issue a retired value, and continues past the retirement point.
  std::vector<uint64_t> boot1;
  {
    HandleSequence seq(0xB007);
    for (int i = 0; i < 100; ++i) {
      boot1.push_back(seq.Next());
    }
  }
  HandleSequence seq(0xB007);
  seq.SkipPast(boot1[40]);
  seq.SkipPast(boot1[7]);  // lower counter position: no-op after the first
  for (int i = 0; i < 1000; ++i) {
    const uint64_t h = seq.Next();
    for (int j = 0; j <= 40; ++j) {
      ASSERT_NE(h, boot1[j]) << "re-issued a retired handle";
    }
  }
}

}  // namespace
}  // namespace asbestos
