// The provenance plane: taint-flow audit ledger, refusal forensics, and the
// syscall-level cycle profiler (src/obs/provenance.h, src/obs/profiler.h).
//
// The ledger answers "why is this process tainted?" by recording every
// taint-propagating event as a DAG edge and walking it back to the taint's
// origin; refusal records capture the exact failing label comparison at
// every drop site. Both are covert-channel surfaces in their own right, so
// reads go through a clearance-gated reader with the trace ring's
// cumulative-label discipline (the counting-channel proof lives in
// tests/covert_channel_test.cc). The profiler turns the deterministic
// virtual clock into nested-span flamegraphs without ever charging it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/provenance.h"
#include "src/obs/reset.h"
#include "src/obs/trace.h"
#include "src/sim/cycles.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

Handle H(uint64_t v) { return Handle::FromValue(v); }

// --- Ledger unit behaviour ---------------------------------------------------

class ProvenanceLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ProvenanceLedger::SetEnabled(true);
    obs::ProvenanceLedger::Get().Clear();
  }
  void TearDown() override {
    obs::ProvenanceLedger::Get().SetCapacity(8192);
    obs::ProvenanceLedger::Get().Clear();
    obs::ProvenanceLedger::SetEnabled(false);
  }
};

TEST_F(ProvenanceLedgerTest, DisabledLedgerRecordsNothing) {
  obs::ProvenanceLedger::SetEnabled(false);
  obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "a", "b", 0, 0, Label::Top(), 1);
  ledger.RecordRefusal("site", "a", "detail", 9, Level::kL3, Level::kL2,
                       Label::Top(), Label::Bottom(), 1);
  EXPECT_TRUE(ledger.edges().empty());
  EXPECT_TRUE(ledger.refusals().empty());
  EXPECT_EQ(ledger.total_edges(), 0u);
  EXPECT_EQ(ledger.total_refusals(), 0u);
}

TEST_F(ProvenanceLedgerTest, GateFromPrivilegeHidesPrivilegeShapedCauses) {
  // A ⋆/0-shaped cause label would gate nothing if used directly — knowing
  // that u's declassifier acted is u-secret — so every explicit entry maps
  // to level 3 and the default to 1.
  const Label priv({{H(7), Level::kStar}, {H(8), Level::kL0}}, Level::kL1);
  const Label gate = obs::GateFromPrivilege(priv);
  EXPECT_EQ(gate.Get(H(7)), Level::kL3);
  EXPECT_EQ(gate.Get(H(8)), Level::kL3);
  EXPECT_EQ(gate.default_level(), Level::kL1);
}

TEST_F(ProvenanceLedgerTest, CumulativeGateOutlivesEviction) {
  // History is state: once a trace produced one secret-gated record, even
  // its LATER public-gated records must stay invisible to a low reader —
  // and that must survive the secret record being evicted from the ring,
  // or eviction would slowly declassify the count.
  obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  ledger.SetCapacity(2);
  const Label secret({{H(99), Level::kL3}}, Level::kL1);
  const uint64_t secret_trace = 42;
  const uint64_t public_trace = 43;
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "worker", "dbproxy", 0, 0,
                    secret, secret_trace);
  // Push the secret edge out of the ring with public edges on the SAME trace.
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "worker", "dbproxy", 0, 0,
                    Label::Bottom(), secret_trace);
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "worker", "dbproxy", 0, 0,
                    Label::Bottom(), secret_trace);
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "other", "netd", 0, 0,
                    Label::Bottom(), public_trace);
  ASSERT_EQ(ledger.edges().size(), 2u);  // capacity enforced
  EXPECT_EQ(ledger.total_edges(), 4u);   // emission count is not
  EXPECT_EQ(ledger.CumulativeGate(secret_trace).Get(H(99)), Level::kL3);

  obs::ProvenanceReader low(Label::DefaultReceive());
  ASSERT_EQ(low.VisibleEdges().size(), 1u);
  EXPECT_EQ(low.VisibleEdges()[0].trace_id, public_trace);
  EXPECT_EQ(low.VisibleEdgeCount(), 1u);
  obs::ProvenanceReader high(Label::Top());
  EXPECT_EQ(high.VisibleEdgeCount(), 2u);
}

TEST_F(ProvenanceLedgerTest, RecordingNeverPerturbsLabelWorkStats) {
  // The ledger's own label algebra (gate Lubs, cumulative joins) must not
  // leak into the Figure 6-9 work counters: outputs with the ledger enabled
  // would otherwise differ from the seed's.
  const Label cause({{H(5), Level::kL3}, {H(6), Level::kL2}}, Level::kL1);
  const LabelWorkStats before = GetLabelWorkStats();
  obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  ledger.RecordEdge(obs::EdgeKind::kContaminate, "a", "b", 0, 0, cause, 7);
  ledger.RecordEdge(obs::EdgeKind::kGrant, "a", "b", 0, 0, cause, 7);
  ledger.RecordRefusal("kernel.delivery", "a", "detail", 5, Level::kL3,
                       Level::kL2, cause, cause, 7);
  const LabelWorkStats& after = GetLabelWorkStats();
  EXPECT_EQ(after.ops, before.ops);
  EXPECT_EQ(after.entries_visited, before.entries_visited);
  EXPECT_EQ(after.fast_path_hits, before.fast_path_hits);
}

// --- Kernel-driven edges and refusals ----------------------------------------

class ProvenanceKernelTest : public ProvenanceLedgerTest {
 protected:
  Kernel kernel_{0x90BE11EFULL};
  std::vector<RecorderProcess::Received> received_;

  ProcessId MakeProcess(const std::string& name) {
    SpawnArgs args;
    args.name = name;
    return kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  }

  // A recorder with the given receive label and one wide-open Top port.
  std::pair<ProcessId, Handle> MakeRecorder(const std::string& name,
                                            const Label& recv) {
    SpawnArgs args;
    args.name = name;
    args.recv_label = recv;
    const ProcessId pid =
        kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), args);
    Handle port;
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      port = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
    });
    return {pid, port};
  }
};

TEST_F(ProvenanceKernelTest, WhyTaintedWalksContaminationBackToItsOrigin) {
  // tx mints h, voluntarily raises itself to {h 3}, then contaminates rx.
  // The ledger must answer WhyTainted(rx, h) with the full hop chain:
  // rx ← tx [contaminate], then tx's self-taint origin.
  auto [rx, port] = MakeRecorder("rx", Label(Level::kL3));
  (void)rx;
  const ProcessId tx = MakeProcess("tx");
  Handle h;
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    h = ctx.NewHandle();
    EXPECT_EQ(ctx.SetSendLevel(h, Level::kL3), Status::kOk);
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u) << "the permissive receiver accepts taint";

  obs::ProvenanceReader high(Label::Top());
  const std::vector<obs::TaintHop> chain = high.WhyTainted("rx", h.value());
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].edge.kind, obs::EdgeKind::kContaminate);
  EXPECT_EQ(chain[0].edge.subject, "rx");
  EXPECT_EQ(chain[0].edge.source, "tx");
  EXPECT_EQ(chain[0].edge.cause.Get(h), Level::kL3);
  EXPECT_NE(chain[0].edge.pre_rep, chain[0].edge.post_rep) << "a Lub ran";
  EXPECT_EQ(chain[0].via, "rx \xe2\x86\x90 tx [contaminate]");
  EXPECT_EQ(chain[1].edge.kind, obs::EdgeKind::kOrigin);
  EXPECT_EQ(chain[1].edge.subject, "tx");
  EXPECT_EQ(chain[1].edge.source, "");

  // Who got tainted with h is at least as secret as h: a reader without
  // clearance for {h 3} gets an EMPTY chain, not a truncated one, and
  // cannot count the edges either.
  obs::ProvenanceReader low(Label::DefaultReceive());
  EXPECT_TRUE(low.WhyTainted("rx", h.value()).empty());
  EXPECT_EQ(low.VisibleEdgeCount(), 0u);
  EXPECT_GE(high.VisibleEdgeCount(), 3u);  // mint origin, raise origin, contaminate
}

TEST_F(ProvenanceKernelTest, DeliveryRefusalRecordsTheFailingComparison) {
  // A default-clearance receiver refuses {h 3} traffic; the forensics
  // record must name the exact handle and the levels on both sides of the
  // failed ES ⊑ (QR ⊔ DR) ⊓ V ⊓ pR comparison.
  auto [rx, port] = MakeRecorder("rx", Label::DefaultReceive());
  (void)rx;
  const ProcessId tx = MakeProcess("tx");
  Handle h;
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    h = ctx.NewHandle();
    EXPECT_EQ(ctx.SetSendLevel(h, Level::kL3), Status::kOk);
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);  // will be dropped
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());

  obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  ASSERT_EQ(ledger.refusals().size(), 1u);
  const obs::RefusalRecord& r = ledger.refusals().back();
  EXPECT_EQ(r.site, "kernel.delivery");
  EXPECT_EQ(r.subject, "rx");
  EXPECT_EQ(r.handle, h.value());
  EXPECT_EQ(r.observed, Level::kL3);
  EXPECT_EQ(r.bound, Level::kL2);
  EXPECT_NE(r.detail.find("req 1"), std::string::npos) << r.detail;

  // The refusal reveals the taint that was presented: gated like the taint.
  obs::ProvenanceReader low(Label::DefaultReceive());
  EXPECT_EQ(low.VisibleRefusalCount(), 0u);
  obs::ProvenanceReader high(Label::Top());
  EXPECT_EQ(high.VisibleRefusalCount(), 1u);
}

TEST_F(ProvenanceKernelTest, PrivilegeRefusalNamesTheMissingStar) {
  // Decontaminating without holding ⋆ is silently dropped (covert-channel
  // discipline) — but the ledger, readable only above the gate, records
  // which handle's ⋆ was missing.
  auto [rx, port] = MakeRecorder("rx", Label::DefaultReceive());
  (void)rx;
  const ProcessId tx = MakeProcess("tx");
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    SendArgs args;
    args.decont_send = Label({{H(0x777), Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);  // same answer
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());

  obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  ASSERT_EQ(ledger.refusals().size(), 1u);
  const obs::RefusalRecord& r = ledger.refusals().back();
  EXPECT_EQ(r.site, "kernel.send_privilege");
  EXPECT_EQ(r.subject, "tx");
  EXPECT_EQ(r.handle, 0x777u);
  EXPECT_EQ(r.bound, Level::kStar);
}

TEST_F(ProvenanceKernelTest, GrantAndDeclassifyEdgesAreGatedHigh) {
  // A privileged send (D_S lowering the receiver, then a verify-vouched
  // delivery) produces kGrant / kDeclassify edges whose gates map the
  // mentioned handles to level 3: knowing that u's privilege was exercised
  // is u-secret control flow even though the cause labels are ⋆/0-shaped.
  auto [rx, port] = MakeRecorder("rx", Label::DefaultReceive());
  (void)rx;
  const ProcessId tx = MakeProcess("tx");
  Handle h;
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    h = ctx.NewHandle();  // tx holds ⋆ at h
    SendArgs grant;
    grant.decont_send = Label({{h, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, grant), Status::kOk);
    SendArgs vouched;
    vouched.verify = Label({{H(0x5151), Level::kL2}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, vouched), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 2u);

  const obs::TaintEdge* grant_edge = nullptr;
  const obs::TaintEdge* declassify_edge = nullptr;
  for (const obs::TaintEdge& e : obs::ProvenanceLedger::Get().edges()) {
    if (e.kind == obs::EdgeKind::kGrant) {
      grant_edge = &e;
    } else if (e.kind == obs::EdgeKind::kDeclassify) {
      declassify_edge = &e;
    }
  }
  ASSERT_NE(grant_edge, nullptr);
  EXPECT_EQ(grant_edge->subject, "rx");
  EXPECT_EQ(grant_edge->source, "tx");
  EXPECT_EQ(grant_edge->cause.Get(h), Level::kL0);
  EXPECT_EQ(grant_edge->gate.Get(h), Level::kL3);
  ASSERT_NE(declassify_edge, nullptr);
  EXPECT_EQ(declassify_edge->cause.Get(H(0x5151)), Level::kL2);
  EXPECT_EQ(declassify_edge->gate.Get(H(0x5151)), Level::kL3);

  obs::ProvenanceReader low(Label::DefaultReceive());
  EXPECT_FALSE(low.CanObserveEdge(*grant_edge));
  EXPECT_FALSE(low.CanObserveEdge(*declassify_edge));
  obs::ProvenanceReader high(Label::Top());
  EXPECT_TRUE(high.CanObserveEdge(*grant_edge));
}

// --- Cycle profiler ----------------------------------------------------------

class CycleProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::CycleProfiler::SetEnabled(true);
    obs::CycleProfiler::Get().Clear();
  }
  void TearDown() override {
    obs::CycleProfiler::Get().Clear();
    obs::CycleProfiler::SetEnabled(false);
  }
  // Advance the virtual clock, as charged work would.
  static void Burn(uint64_t cycles) {
    GetCycleAccounting().Charge(Component::kOther, cycles);
  }
};

TEST_F(CycleProfilerTest, SpansNestAndSplitSelfFromChildTime) {
  obs::CycleProfiler& prof = obs::CycleProfiler::Get();
  prof.Begin("outer");
  Burn(100);
  prof.Begin("inner");
  Burn(40);
  prof.End();
  Burn(10);
  prof.End();

  const auto& stacks = prof.stacks();
  ASSERT_EQ(stacks.count("outer"), 1u);
  ASSERT_EQ(stacks.count("outer;inner"), 1u);
  EXPECT_EQ(stacks.at("outer").total_cycles, 150u);
  EXPECT_EQ(stacks.at("outer").self_cycles, 110u) << "child time excluded";
  EXPECT_EQ(stacks.at("outer;inner").self_cycles, 40u);
  EXPECT_EQ(stacks.at("outer;inner").total_cycles, 40u);
  EXPECT_EQ(prof.CollapsedStacks(), "outer 110\nouter;inner 40\n");
}

TEST_F(CycleProfilerTest, BeginWithParentStitchesAcrossTheWire) {
  // The primary's ship span ends before the follower's apply span begins —
  // the two sides never share a C++ call stack — yet prof_ctx stitches the
  // apply under the ship stack in one merged flamegraph.
  obs::CycleProfiler& prof = obs::CycleProfiler::Get();
  prof.Begin("repl.ship.batch");
  const std::string wire_ctx = prof.current_stack();  // → WireMessage::prof_ctx
  EXPECT_EQ(wire_ctx, "repl.ship.batch");
  Burn(5);
  prof.End();

  EXPECT_EQ(prof.current_stack(), "");
  prof.BeginWithParent(wire_ctx, "repl.apply.batch");
  EXPECT_EQ(prof.current_stack(), "repl.ship.batch;repl.apply.batch");
  Burn(7);
  prof.End();

  ASSERT_EQ(prof.stacks().count("repl.ship.batch;repl.apply.batch"), 1u);
  EXPECT_EQ(prof.stacks().at("repl.ship.batch;repl.apply.batch").self_cycles, 7u);
}

TEST_F(CycleProfilerTest, DisabledSitesBuildNoSpans) {
  obs::CycleProfiler::SetEnabled(false);
  {
    // The call-site guard idiom: the name string is never even built.
    obs::ProfSpan span;
    if (obs::CycleProfiler::enabled()) {
      span.Begin("never");
    }
    Burn(3);
  }
  EXPECT_TRUE(obs::CycleProfiler::Get().stacks().empty());
  const auto snap = obs::Registry::Get().Snapshot();
  EXPECT_EQ(snap.at("obs.prof.enabled"), 0.0);
}

TEST_F(CycleProfilerTest, SyscallTableSurfacesAsMetrics) {
  obs::CycleProfiler& prof = obs::CycleProfiler::Get();
  prof.AttributeSyscall("worker", "send", 120);
  prof.AttributeSyscall("worker", "send", 30);
  prof.AttributeSyscall("netd", "new_port", 5);
  ASSERT_EQ(prof.syscalls().count("worker.send"), 1u);
  EXPECT_EQ(prof.syscalls().at("worker.send").cycles, 150u);
  EXPECT_EQ(prof.syscalls().at("worker.send").calls, 2u);

  const auto snap = obs::Registry::Get().Snapshot();
  EXPECT_EQ(snap.at("obs.prof.sys.worker.send.cycles"), 150.0);
  EXPECT_EQ(snap.at("obs.prof.sys.worker.send.calls"), 2.0);
  EXPECT_EQ(snap.at("obs.prof.sys.netd.new_port.cycles"), 5.0);
  EXPECT_EQ(snap.at("obs.prof.enabled"), 1.0);
}

TEST_F(CycleProfilerTest, KernelDispatchFeedsAttributionAndDeliverySpans) {
  Kernel kernel{0xCAFEF00DULL};
  std::vector<RecorderProcess::Received> received;
  SpawnArgs rargs;
  rargs.name = "rx";
  const ProcessId rx =
      kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), rargs);
  Handle port;
  kernel.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs targs;
  targs.name = "tx";
  const ProcessId tx =
      kernel.CreateProcess(std::make_unique<ScriptedProcess>(), targs);
  kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
    }
  });
  kernel.RunUntilIdle();
  ASSERT_EQ(received.size(), 3u);

  obs::CycleProfiler& prof = obs::CycleProfiler::Get();
  // Flat table: per-(process, syscall) attribution from the dispatch table,
  // base cycles included.
  ASSERT_EQ(prof.syscalls().count("tx.send"), 1u);
  EXPECT_EQ(prof.syscalls().at("tx.send").calls, 3u);
  EXPECT_GT(prof.syscalls().at("tx.send").cycles, 0u);
  // Tree: each syscall ran under a "sys.<name>" span, and each delivery to
  // rx under "deliver.rx".
  ASSERT_EQ(prof.stacks().count("sys.send"), 1u);
  EXPECT_EQ(prof.stacks().at("sys.send").count, 3u);
  ASSERT_EQ(prof.stacks().count("deliver.rx"), 1u);
  EXPECT_EQ(prof.stacks().at("deliver.rx").count, 3u);
}

// --- ResetAll ----------------------------------------------------------------

TEST(ObsResetTest, ResetAllDropsEveryObservabilitySurface) {
  obs::Registry::Get().counter("test.reset_all.probe").Add(7);
  obs::TraceRing::SetEnabled(true);
  const uint64_t tid = obs::TraceRing::Get().MintTraceId();
  obs::TraceRing::Get().Emit(tid, "t", "t.e", "", Label::Bottom());
  obs::ProvenanceLedger::SetEnabled(true);
  obs::ProvenanceLedger::Get().RecordEdge(obs::EdgeKind::kContaminate, "a", "b",
                                          0, 0, Label::Bottom(), tid);
  obs::CycleProfiler::SetEnabled(true);
  obs::CycleProfiler::Get().Begin("x");
  GetCycleAccounting().Charge(Component::kOther, 9);
  obs::CycleProfiler::Get().End();
  obs::CycleProfiler::Get().AttributeSyscall("p", "send", 9);

  obs::ResetAll();

  EXPECT_EQ(obs::Registry::Get().counter("test.reset_all.probe").value(), 0u);
  EXPECT_EQ(obs::TraceReader(Label::Top()).VisibleCount(), 0u);
  EXPECT_TRUE(obs::ProvenanceLedger::Get().edges().empty());
  EXPECT_TRUE(obs::CycleProfiler::Get().stacks().empty());
  EXPECT_TRUE(obs::CycleProfiler::Get().syscalls().empty());

  obs::CycleProfiler::SetEnabled(false);
  obs::ProvenanceLedger::SetEnabled(false);
  obs::TraceRing::SetEnabled(false);
}

}  // namespace
}  // namespace asbestos
